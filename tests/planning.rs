//! Plan-shape integration tests: the planner must make the paper's
//! *decisions* correctly, not just produce correct rows.

use mwtj_core::benchqueries::{mobile_query, MobileQuery};
use mwtj_core::{Engine, RunOptions};
use mwtj_cost::{CalibratedParams, CostModel};
use mwtj_datagen::MobileGen;
use mwtj_mapreduce::ClusterConfig;
use mwtj_planner::{CandidateOp, Planner};
use mwtj_query::{QueryBuilder, ThetaOp};
use mwtj_storage::{DataType, Relation, RelationStats, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
    let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows_unchecked(
        schema,
        (0..n)
            .map(|_| {
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..domain)),
                    Value::Int(rng.gen_range(0..domain)),
                ])
            })
            .collect(),
    )
}

fn stats_of(r: &Relation) -> RelationStats {
    let mut rng = StdRng::seed_from_u64(3);
    RelationStats::collect(r, 256, &mut rng)
}

/// A pure-equality edge must be offered (and chosen) as a hash
/// pair-join candidate, not a replicating chain.
#[test]
fn equality_edges_choose_hash_partitioning() {
    let l = rel("l", 3_000, 1, 500);
    let r = rel("r", 3_000, 2, 500);
    let q = QueryBuilder::new("eq")
        .relation(l.schema().clone())
        .relation(r.schema().clone())
        .join("l", "a", ThetaOp::Eq, "r", "a")
        .build()
        .unwrap();
    let planner = Planner::new(CostModel::new(
        ClusterConfig::with_units(64),
        CalibratedParams::default(),
    ));
    let sl = stats_of(&l);
    let sr = stats_of(&r);
    let (chosen, _) = planner.plan_ours(&q, &[&sl, &sr], 64);
    assert_eq!(chosen.len(), 1);
    assert_eq!(
        chosen[0].op,
        CandidateOp::PairEqui,
        "equality edge should hash-partition, got {:?}",
        chosen[0].op
    );
}

/// An inequality edge has no hash option: it must stay a chain.
#[test]
fn inequality_edges_stay_chain() {
    let l = rel("l", 1_000, 3, 500);
    let r = rel("r", 1_000, 4, 500);
    let q = QueryBuilder::new("ineq")
        .relation(l.schema().clone())
        .relation(r.schema().clone())
        .join("l", "a", ThetaOp::Lt, "r", "a")
        .build()
        .unwrap();
    let planner = Planner::new(CostModel::new(
        ClusterConfig::with_units(64),
        CalibratedParams::default(),
    ));
    let sl = stats_of(&l);
    let sr = stats_of(&r);
    let (chosen, _) = planner.plan_ours(&q, &[&sl, &sr], 64);
    assert!(chosen.iter().all(|c| c.op == CandidateOp::Chain));
}

/// Mobile Q4's plan must collapse to a single full-cover MRJ (the
/// merge-aware comparison; splitting into singles multiplies
/// intermediates).
#[test]
fn q4_plans_as_single_mrj() {
    let q = mobile_query(MobileQuery::Q4);
    let sys = Engine::with_units(96);
    let gen = MobileGen {
        users: 300,
        base_stations: 40,
        days: 10,
        ..Default::default()
    };
    let calls = gen.generate("calls", 200);
    for inst in MobileQuery::Q4.instances() {
        let _ = sys.load_alias(&calls, inst);
    }
    let run = sys.run(&q, &RunOptions::default()).expect("query runs");
    assert!(
        run.plan.contains("1 chain MRJ"),
        "expected a single-MRJ plan, got: {}",
        run.plan
    );
    // And it must still be exact.
    assert_eq!(run.output.len(), sys.oracle(&q).expect("oracle").len());
}

/// The predicted makespan must correlate with the achieved simulated
/// makespan (the planner's decisions are only as good as this signal).
#[test]
fn predicted_time_correlates_with_simulated() {
    let q = mobile_query(MobileQuery::Q1);
    let mut pred_small = 0.0;
    let mut sim_small = 0.0;
    for (rows, slot) in [(120usize, 0), (480, 1)] {
        let sys = Engine::with_units(48);
        let gen = MobileGen {
            users: 300,
            base_stations: 40,
            days: 10,
            ..Default::default()
        };
        let calls = gen.generate("calls", rows);
        for inst in MobileQuery::Q1.instances() {
            let _ = sys.load_alias(&calls, inst);
        }
        let run = sys.run(&q, &RunOptions::default()).expect("query runs");
        assert!(run.predicted_secs > 0.0);
        if slot == 0 {
            pred_small = run.predicted_secs;
            sim_small = run.sim_secs;
        } else {
            assert!(
                run.predicted_secs > pred_small,
                "prediction must grow with data"
            );
            assert!(run.sim_secs > sim_small, "simulation must grow with data");
        }
    }
}
