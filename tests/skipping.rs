//! Zone-map skipping is *transparent*: for every method and partition
//! strategy the skip-on run must be bit-identical to the skip-off run
//! (same rows in the same order, same schema, same plan) — skipping
//! may only drop provably-empty work, never reroute it. A proptest
//! sweeps random band widths including the zero-overlap and
//! full-overlap extremes.

use mwtj_core::{Engine, Method, RunOptions};
use mwtj_hilbert::PartitionStrategy;
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::{tuple, DataType, Relation, Schema};
use proptest::prelude::*;

/// A relation whose `a` column is sorted, so DFS blocks are
/// value-clustered and zone ranges are tight (the favourable case for
/// pruning).
fn sorted_rel(name: &str, n: i64, lo: i64) -> Relation {
    let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
    Relation::from_rows_unchecked(schema, (0..n).map(|i| tuple![lo + i, i]).collect())
}

/// Fresh engine with a wide sorted relation, a narrow one, and a mid
/// one for the 3-way chain — fresh per combo so zone counters and the
/// plan cache are isolated.
fn chain_engine() -> (Engine, MultiwayQuery) {
    let engine = Engine::with_units(16);
    let big = sorted_rel("big", 12_000, 0);
    let mid = sorted_rel("mid", 25, 50);
    let top = sorted_rel("top", 25, 90);
    let _ = engine.load_relation(&big);
    let _ = engine.load_relation(&mid);
    let _ = engine.load_relation(&top);
    let q = QueryBuilder::new("chain")
        .relation(big.schema().clone())
        .relation(mid.schema().clone())
        .relation(top.schema().clone())
        .join("big", "a", ThetaOp::Lt, "mid", "a")
        .join("mid", "a", ThetaOp::Le, "top", "a")
        .build()
        .unwrap();
    (engine, q)
}

/// Every method × every partition strategy: the skip-on run is
/// bit-identical to the skip-off run, and the skip-off run records no
/// zone activity at all.
#[test]
fn skipping_is_bit_identical_across_methods_and_partitions() {
    for m in Method::ALL {
        for p in [
            PartitionStrategy::Hilbert,
            PartitionStrategy::Grid,
            PartitionStrategy::ZOrder,
        ] {
            let (engine, q) = chain_engine();
            let on = engine
                .run(&q, &RunOptions::new().method(m).partition(p))
                .unwrap_or_else(|e| panic!("{m}:{p} skip-on: {e}"));
            let off = engine
                .run(
                    &q,
                    &RunOptions::new().method(m).partition(p).skipping(false),
                )
                .unwrap_or_else(|e| panic!("{m}:{p} skip-off: {e}"));
            assert_eq!(on.output.rows(), off.output.rows(), "{m}:{p} rows");
            assert_eq!(on.output.schema(), off.output.schema(), "{m}:{p} schema");
            assert_eq!(on.plan, off.plan, "{m}:{p} plan");
            assert_eq!(
                off.zone_totals(),
                (0, 0, 0, 0, 0, 0),
                "{m}:{p} skip-off must record no zone activity"
            );
        }
    }
}

/// On the clustered band the paper's method must actually *prune*:
/// blocks go unread and the Eq. 3 map-output volume drops, while the
/// output stays bit-identical (checked above).
#[test]
fn tight_band_prunes_blocks_and_shrinks_shuffle() {
    let (engine, q) = chain_engine();
    let on = engine.run(&q, &RunOptions::default()).unwrap();
    let off = engine.run(&q, &RunOptions::new().skipping(false)).unwrap();
    let (blocks, blocks_pruned, pairs, pairs_pruned, rows, rows_pruned) = on.zone_totals();
    assert!(blocks_pruned > 0, "no blocks pruned of {blocks}");
    assert!(pairs_pruned > 0, "no pairs pruned of {pairs}");
    assert!(rows_pruned > 0, "no rows pruned of {rows}");
    assert!(on.skip_fraction() > 0.0);
    let shuffle = |r: &mwtj_core::QueryRun| -> (u64, u64) {
        r.jobs.iter().fold((0, 0), |(rec, byt), j| {
            (rec + j.map_output_records, byt + j.map_output_bytes)
        })
    };
    let (on_rec, on_byt) = shuffle(&on);
    let (off_rec, off_byt) = shuffle(&off);
    assert!(
        on_rec < off_rec,
        "map-output records must shrink: {on_rec} vs {off_rec}"
    );
    assert!(
        on_byt < off_byt,
        "map-output bytes must shrink: {on_byt} vs {off_byt}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random band widths — from zero overlap (the right window sits
    /// entirely outside the left domain; everything prunes, output is
    /// empty) to full overlap (the band covers the whole domain;
    /// nothing can prune) — never change a single output row.
    #[test]
    fn random_band_widths_are_transparent(
        // Right window start: below, inside, or above the left domain.
        win_lo in -200i64..1700,
        win_rows in 1i64..40,
        // 0 ⇒ strict band `<`; large ⇒ nearly the whole domain.
        flip in any::<bool>(),
    ) {
        let engine = Engine::with_units(8);
        let left = sorted_rel("l", 1_500, 0);
        let right = sorted_rel("r", win_rows, win_lo);
        let _ = engine.load_relation(&left);
        let _ = engine.load_relation(&right);
        let op = if flip { ThetaOp::Gt } else { ThetaOp::Lt };
        let q = QueryBuilder::new("band")
            .relation(left.schema().clone())
            .relation(right.schema().clone())
            .join("l", "a", op, "r", "a")
            .build()
            .unwrap();
        let on = engine.run(&q, &RunOptions::default()).unwrap();
        let off = engine
            .run(&q, &RunOptions::new().skipping(false))
            .unwrap();
        prop_assert_eq!(on.output.rows(), off.output.rows());
        prop_assert_eq!(on.output.schema(), off.output.schema());
        prop_assert_eq!(&on.plan, &off.plan);
    }
}
