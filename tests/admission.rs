//! Admission-control integration: concurrent queries share the
//! cluster's `k_P` unit budget. The acceptance bar: with budget `k_P`,
//! ≥8 concurrent queries all complete, the aggregate in-flight unit
//! reservations never exceed `k_P`, and every result is bit-identical
//! to a sequential oracle run.

use mwtj_core::{Engine, Method, RunOptions};
use mwtj_join::oracle::canonicalize;
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::{tuple, DataType, Relation, Schema, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Barrier};

fn rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
    let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows_unchecked(
        schema,
        (0..n)
            .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
            .collect(),
    )
}

fn loaded_engine(k_p: u32) -> (Engine, Vec<Relation>) {
    let engine = Engine::with_units(k_p);
    let rels = vec![
        rel("r", 90, 1, 25),
        rel("s", 70, 2, 25),
        rel("t", 50, 3, 25),
    ];
    for r in &rels {
        let _ = engine.load_relation(r);
    }
    (engine, rels)
}

fn queries(rels: &[Relation]) -> Vec<MultiwayQuery> {
    let (r, s, t) = (&rels[0], &rels[1], &rels[2]);
    let two = |name: &str, op: ThetaOp| {
        QueryBuilder::new(name)
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", op, "s", "a")
            .build()
            .unwrap()
    };
    let three = QueryBuilder::new("three")
        .relation(r.schema().clone())
        .relation(s.schema().clone())
        .relation(t.schema().clone())
        .join("r", "a", ThetaOp::Lt, "s", "a")
        .join("s", "b", ThetaOp::Eq, "t", "b")
        .build()
        .unwrap();
    vec![
        two("eq", ThetaOp::Eq),
        two("le", ThetaOp::Le),
        two("ne", ThetaOp::Ne),
        three,
    ]
}

/// The headline invariant: 12 concurrent queries (mixed shapes and
/// methods, every one admission-controlled) against a budget of 8
/// units — everyone completes, reservations stay within budget, and
/// every answer equals the sequential oracle bit for bit.
#[test]
fn concurrent_queries_stay_within_budget_and_match_oracle() {
    const K_P: u32 = 8;
    let (engine, rels) = loaded_engine(K_P);
    let qs = queries(&rels);
    // Sequential ground truth, canonicalized (row order is the only
    // nondeterminism between runs; canonicalize sorts it away).
    let oracles: Vec<Vec<Tuple>> = qs
        .iter()
        .map(|q| canonicalize(engine.oracle(q).unwrap()))
        .collect();

    let methods = [
        Method::Ours,
        Method::Hive, // k_P-unaware: wants the whole cluster
        Method::Pig,
        Method::YSmart,
    ];
    let barrier = Arc::new(Barrier::new(12));
    let mut handles = Vec::new();
    for i in 0..12usize {
        let engine = engine.clone();
        let q = qs[i % qs.len()].clone();
        let want = oracles[i % qs.len()].clone();
        let method = methods[i % methods.len()];
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let run = engine
                .run(&q, &RunOptions::from(method))
                .expect("completes");
            assert!(run.granted_units >= 1 && run.granted_units <= K_P);
            assert!(run.ticket > 0);
            assert_eq!(
                canonicalize(run.output.into_rows()),
                want,
                "query {i} ({method}) diverged from the sequential oracle"
            );
        }));
    }
    for h in handles {
        h.join().expect("no query thread may panic");
    }
    let stats = engine.scheduler().stats();
    assert_eq!(stats.admitted, 12, "{stats:?}");
    assert_eq!(stats.in_flight_units, 0, "reservations must be released");
    assert!(
        stats.peak_in_flight_units <= K_P,
        "aggregate reservations exceeded the budget: {stats:?}"
    );
}

/// Oversubscription resolves by queueing: with the whole budget held,
/// a full-cluster query waits and only proceeds when units free up.
#[test]
fn oversubscribed_query_queues_until_units_free() {
    let (engine, rels) = loaded_engine(8);
    let q = queries(&rels).remove(0);
    let hold = engine.scheduler().admit(8).unwrap();
    let worker = {
        let engine = engine.clone();
        let q = q.clone();
        std::thread::spawn(move || engine.run(&q, &RunOptions::from(Method::Hive)).unwrap())
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    let stats = engine.scheduler().stats();
    assert_eq!(stats.queued_now, 1, "query must be parked: {stats:?}");
    drop(hold);
    let run = worker.join().unwrap();
    assert_eq!(run.granted_units, 8, "full grant once the budget frees");
    let want = canonicalize(engine.oracle(&q).unwrap());
    assert_eq!(canonicalize(run.output.into_rows()), want);
    assert!(engine.scheduler().stats().queued >= 1);
}

/// Oversubscription resolves by degrading: with part of the budget
/// held, a full-cluster query accepts the free slice and replans at
/// the smaller `k` — same answer, fewer units.
#[test]
fn oversubscribed_query_degrades_to_free_slice() {
    let (engine, rels) = loaded_engine(8);
    let q = queries(&rels).remove(1);
    let want = canonicalize(engine.oracle(&q).unwrap());
    let hold = engine.scheduler().admit(3).unwrap();
    // Hive wants all 8; 5 are free and the default floor is half the
    // ask, so admission degrades the query to a 5-unit replan.
    let run = engine.run(&q, &RunOptions::from(Method::Hive)).unwrap();
    assert_eq!(run.granted_units, 5, "degraded to the free slice");
    assert_eq!(canonicalize(run.output.into_rows()), want);
    // The degraded replan really ran at k=5: Hive requests one reduce
    // task per unit, so no job may exceed 5.
    assert!(run.jobs.iter().all(|j| j.units <= 5 && j.reduce_tasks <= 5));
    assert!(run.jobs.iter().all(|j| j.ticket == run.ticket));
    drop(hold);
    assert_eq!(engine.scheduler().stats().degraded, 1);
}

/// `run_many` routes every batch member through admission.
#[test]
fn run_many_is_admission_controlled() {
    let (engine, rels) = loaded_engine(8);
    let qs = queries(&rels);
    let refs: Vec<&MultiwayQuery> = qs.iter().cycle().take(9).collect();
    let results = engine.run_many(&refs, &RunOptions::default());
    assert_eq!(results.len(), 9);
    for (i, res) in results.iter().enumerate() {
        let run = res.as_ref().expect("batch member completes");
        let want = canonicalize(engine.oracle(refs[i]).unwrap());
        assert_eq!(canonicalize(run.output.rows().to_vec()), want, "query {i}");
    }
    let stats = engine.scheduler().stats();
    assert_eq!(stats.admitted, 9);
    assert!(stats.peak_in_flight_units <= stats.budget, "{stats:?}");
    assert_eq!(stats.in_flight_units, 0);
}
