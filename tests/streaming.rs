//! Streaming-pipeline integration: streamed row batches must be
//! bit-identical to the materialised `Relation` for every method ×
//! partition strategy, with unchanged simulated cost metrics (Eq. 2–4);
//! peak resident rows on the streaming path must stay bounded by
//! batch size × channel depth; and dropping a stream mid-way must
//! release the admission ticket and clean up namespaced DFS files.

use mwtj_core::{Engine, Method, RunOptions, StreamOptions};
use mwtj_hilbert::PartitionStrategy;
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::{tuple, DataType, Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
    let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows_unchecked(
        schema,
        (0..n)
            .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
            .collect(),
    )
}

/// Engine with a three-way chain query (inequality + equality edges,
/// so plans exercise chain MRJs, merges and cascades).
fn three_way_engine(k_p: u32) -> (Engine, MultiwayQuery) {
    let engine = Engine::with_units(k_p);
    let r = rel("r", 70, 11, 24);
    let s = rel("s", 60, 12, 24);
    let t = rel("t", 50, 13, 24);
    let _ = engine.load_relation(&r);
    let _ = engine.load_relation(&s);
    let _ = engine.load_relation(&t);
    let q = QueryBuilder::new("q3")
        .relation(r.schema().clone())
        .relation(s.schema().clone())
        .relation(t.schema().clone())
        .join("r", "a", ThetaOp::Lt, "s", "a")
        .join("s", "b", ThetaOp::Eq, "t", "b")
        .build()
        .unwrap();
    (engine, q)
}

/// The acceptance bar: for **every** method × partition strategy, the
/// concatenated streamed batches equal `Engine::run`'s output
/// row-for-row (same order, same values) and the simulated cost
/// metrics are bit-identical — streaming changes delivery, never the
/// answer or the priced plan.
#[test]
fn streamed_equals_materialised_for_all_methods_and_strategies() {
    for method in Method::ALL {
        for strategy in [PartitionStrategy::Hilbert, PartitionStrategy::Grid] {
            let opts = RunOptions::new().method(method).partition(strategy);
            let (engine, q) = three_way_engine(16);
            let run = engine.run(&q, &opts).unwrap();
            let stream = engine
                .run_streamed(&q, &opts, &StreamOptions::new().batch_rows(17))
                .unwrap();
            assert_eq!(
                stream.schema(),
                run.output.schema(),
                "{method} {strategy:?}: schema-first frame must match"
            );
            let (rel, end) = stream.collect_rows().unwrap();
            assert_eq!(
                rel.rows(),
                run.output.rows(),
                "{method} {strategy:?}: streamed rows must be bit-identical, in order"
            );
            assert_eq!(
                end.sim_secs, run.sim_secs,
                "{method} {strategy:?}: simulated makespan must be unchanged"
            );
            assert_eq!(
                end.predicted_secs, run.predicted_secs,
                "{method} {strategy:?}: prediction must be unchanged"
            );
            assert_eq!(end.jobs.len(), run.jobs.len());
            for (a, b) in end.jobs.iter().zip(&run.jobs) {
                assert_eq!(a.name, b.name, "{method} {strategy:?}");
                assert_eq!(
                    a.sim_total_secs, b.sim_total_secs,
                    "{method} {strategy:?} job {}: per-job sim clock drifted",
                    a.name
                );
                assert_eq!(a.output_bytes, b.output_bytes, "{method} {strategy:?}");
                assert_eq!(a.reduce_candidates, b.reduce_candidates);
            }
            assert_eq!(end.rows as usize, run.output.len());
        }
    }
}

/// SQL end-to-end: streamed and materialised SQL runs agree, public
/// aliases (not internal `__q<N>_` names) appear on the schema and
/// metrics, and the per-query namespace is cleaned up afterwards.
///
/// (Two separate SQL invocations bind distinct `__q<N>_` namespaces,
/// which seed the chain jobs' deterministic global ids differently —
/// the result *set* is identical but its order is not, so this
/// comparison canonicalises; the builder-path test above is the
/// order-sensitive one.)
#[test]
fn streamed_sql_matches_run_sql_and_cleans_namespace() {
    use mwtj_join::oracle::canonicalize;
    let (engine, _) = three_way_engine(8);
    let sql = "SELECT x.a, y.b FROM r x, s y WHERE x.a <= y.a";
    let run = engine.run_sql(sql).unwrap();
    let stream = engine
        .run_sql_streamed(
            "sqlstream",
            sql,
            &RunOptions::default(),
            &StreamOptions::new().batch_rows(9),
        )
        .unwrap();
    assert_eq!(stream.schema().fields()[0].name, "x.a");
    let (rel, end) = stream.collect_rows().unwrap();
    assert_eq!(
        canonicalize(rel.into_rows()),
        canonicalize(run.output.into_rows())
    );
    assert!(!end.plan.contains("__q"), "plan leaked: {}", end.plan);
    assert!(end.jobs.iter().all(|j| !j.name.contains("__q")));
    // Namespace gone: no internal instances, no namespaced DFS files.
    assert!(engine
        .loaded_instances()
        .iter()
        .all(|(name, _)| !name.starts_with("__q")));
    assert!(engine
        .cluster()
        .dfs()
        .list()
        .iter()
        .all(|f| !f.contains("__q")));
}

/// The bounded-memory acceptance bar: a dense (cross-product-heavy)
/// output streams through a small batch × shallow channel without the
/// resident row count ever exceeding batch × (depth + 2) — one batch
/// queued per channel slot, one blocked in `send`, one with the
/// consumer.
#[test]
fn peak_resident_rows_bounded_by_batch_times_depth() {
    let engine = Engine::with_units(8);
    let l = rel("l", 160, 21, 12);
    let r = rel("r", 150, 22, 12);
    let _ = engine.load_relation(&l);
    let _ = engine.load_relation(&r);
    // Dense: ~50% of the 24k cross product survives `<=`.
    let q = QueryBuilder::new("dense")
        .relation(l.schema().clone())
        .relation(r.schema().clone())
        .join("l", "a", ThetaOp::Le, "r", "a")
        .build()
        .unwrap();
    let (batch_rows, depth) = (16usize, 2usize);
    let mut stream = engine
        .run_streamed(
            &q,
            &RunOptions::default(),
            &StreamOptions::new()
                .batch_rows(batch_rows)
                .channel_depth(depth),
        )
        .unwrap();
    let mut rows = 0u64;
    let mut batches = 0u64;
    while let Some(batch) = stream.next_batch().unwrap() {
        assert!(batch.rows.len() <= batch_rows);
        rows += batch.rows.len() as u64;
        batches += 1;
    }
    let end = stream.end().unwrap();
    assert_eq!(end.rows, rows);
    assert_eq!(end.batches, batches);
    assert!(
        rows > 8_000,
        "dense query should produce a large output, got {rows}"
    );
    assert!(batches > 100, "expected many small batches, got {batches}");
    let bound = batch_rows * (depth + 2);
    assert!(
        stream.peak_resident_rows() <= bound,
        "peak resident rows {} exceeded bound {bound}",
        stream.peak_resident_rows()
    );
}

/// Dropping a stream mid-way must cancel the run: admission units
/// return to the budget, namespaced intermediate DFS files disappear,
/// and — for SQL streams — the per-query alias namespace unloads.
#[test]
fn drop_mid_stream_releases_ticket_and_cleans_up() {
    let engine = Engine::with_units(8);
    let l = rel("l", 200, 31, 10);
    let r = rel("r", 200, 32, 10);
    let _ = engine.load_relation(&l);
    let _ = engine.load_relation(&r);
    let sql = "SELECT x.a, y.b FROM l x, r y WHERE x.a <= y.a";
    let mut stream = engine
        .run_sql_streamed(
            "drops",
            sql,
            &RunOptions::default(),
            &StreamOptions::new().batch_rows(1).channel_depth(1),
        )
        .unwrap();
    assert!(stream.next_batch().unwrap().is_some(), "first batch");
    drop(stream); // joins the worker — cancellation is deterministic
    let stats = engine.scheduler().stats();
    assert_eq!(stats.in_flight_units, 0, "ticket must be released");
    assert!(
        engine
            .cluster()
            .dfs()
            .list()
            .iter()
            .all(|f| !f.starts_with("__run") && !f.contains("__q")),
        "cancelled stream leaked DFS files: {:?}",
        engine.cluster().dfs().list()
    );
    assert!(
        engine
            .loaded_instances()
            .iter()
            .all(|(name, _)| !name.starts_with("__q")),
        "cancelled stream leaked alias instances"
    );
    // The engine still serves queries normally afterwards.
    let again = engine.run_sql(sql).unwrap();
    assert!(!again.output.is_empty());
}

/// Streams queue through admission like any run: a stream holds its
/// units until drained, and a second query admitted meanwhile sees the
/// shared budget shrink.
#[test]
fn stream_holds_admission_units_until_drained() {
    let (engine, q) = three_way_engine(8);
    let mut stream = engine
        .run_streamed(
            &q,
            &RunOptions::default(),
            &StreamOptions::new().batch_rows(1).channel_depth(1),
        )
        .unwrap();
    // The worker is blocked on the full channel mid-run: its
    // reservation is still in flight.
    assert!(stream.next_batch().unwrap().is_some());
    assert!(
        engine.scheduler().stats().in_flight_units > 0,
        "stream must hold its units while batches remain"
    );
    while stream.next_batch().unwrap().is_some() {}
    assert_eq!(engine.scheduler().stats().in_flight_units, 0);
}
