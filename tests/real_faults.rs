//! End-to-end real-fault execution: fault-injected runs are
//! bit-identical to fault-free runs across every method and partition
//! strategy (buffered and streamed), per-query deadlines kill in-flight
//! runs with full resource release, and failing runs never leak
//! scheduler units — the tentpole guarantees, asserted at the engine's
//! public API.

use mwtj_core::{Engine, EngineError, Method, RunOptions, StreamOptions};
use mwtj_datagen::{MobileGen, SyntheticGen};
use mwtj_hilbert::PartitionStrategy;
use mwtj_join::oracle::canonicalize;
use mwtj_mapreduce::FaultPlan;
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::{Schema, Tuple};

/// An engine with the calls table under enough aliases for several
/// distinct queries.
fn serving_engine(units: u32) -> Engine {
    let gen = MobileGen {
        users: 150,
        base_stations: 25,
        days: 8,
        ..Default::default()
    };
    let engine = Engine::with_units(units);
    let _ = engine.load_relation(&gen.generate("calls", 140));
    for inst in ["t1", "t2", "t3"] {
        let _ = engine.load_alias_of("calls", inst).expect("base loaded");
    }
    engine
}

fn inst_schema(engine: &Engine, name: &str) -> Schema {
    let rel = engine.relation(name).expect("loaded");
    let fields = rel
        .schema()
        .fields()
        .iter()
        .filter(|f| f.name != mwtj_core::RID_COLUMN)
        .cloned()
        .collect();
    Schema::new(name, fields)
}

/// A three-way chain query exercising both chain MRJs (space
/// partitioning) and merge jobs.
fn three_way(engine: &Engine) -> MultiwayQuery {
    QueryBuilder::new("three_way")
        .relation(inst_schema(engine, "t1"))
        .relation(inst_schema(engine, "t2"))
        .relation(inst_schema(engine, "t3"))
        .join("t1", "bt", ThetaOp::Le, "t2", "bt")
        .join("t2", "bsc", ThetaOp::Eq, "t3", "bsc")
        .build()
        .expect("query builds")
}

fn pair_query(engine: &Engine, name: &str, col: &str, op: ThetaOp) -> MultiwayQuery {
    QueryBuilder::new(name)
        .relation(inst_schema(engine, "t1"))
        .relation(inst_schema(engine, "t2"))
        .join("t1", col, op, "t2", col)
        .build()
        .expect("query builds")
}

/// Rows in output order plus the plan text: the "bit-identical"
/// fingerprint a faulty run must reproduce exactly (not just as a
/// multiset).
fn fingerprint(run: &mwtj_core::QueryRun) -> (Vec<Tuple>, String) {
    (run.output.clone().into_rows(), run.plan.clone())
}

/// The tentpole differential property: for every method × partition
/// strategy, a run with 0.3-probability injected faults (error- and
/// panic-mode, really aborting attempts) produces the *identical*
/// ordered rows and plan as the fault-free run — and across the sweep
/// the retries are real (counted in `fault_totals`).
#[test]
fn faulty_runs_are_bit_identical_across_methods_and_partitions() {
    let engine = serving_engine(16);
    let q = three_way(&engine);
    let methods = [
        Method::Ours,
        Method::OursGrid,
        Method::YSmart,
        Method::Hive,
        Method::Pig,
    ];
    let strategies = [
        PartitionStrategy::Hilbert,
        PartitionStrategy::Grid,
        PartitionStrategy::ZOrder,
    ];
    let mut total_attempts = 0u64;
    let mut total_retries = 0u64;
    let mut total_panics = 0u64;
    for (mi, method) in methods.iter().enumerate() {
        for (si, strategy) in strategies.iter().enumerate() {
            let base = RunOptions::new().method(*method).partition(*strategy);
            let clean = engine.run(&q, &base).expect("clean run");
            let faulty_opts = base
                .clone()
                .fault_plan(FaultPlan::with_probability(0.3, 7 + (mi * 3 + si) as u64));
            let faulty = engine.run(&q, &faulty_opts).expect("faulty run");
            assert_eq!(
                fingerprint(&clean),
                fingerprint(&faulty),
                "{method:?}/{strategy:?}: faults must not change rows or plan"
            );
            let t = faulty.fault_totals();
            total_attempts += t.attempts;
            total_retries += t.real_retries;
            total_panics += t.panics_caught;
        }
    }
    assert!(
        total_retries > 0,
        "a 0.3 fault rate across 15 runs must rerun some attempts (attempts={total_attempts})"
    );
    assert!(
        total_panics > 0,
        "panic-mode injection must exercise catch_unwind end-to-end"
    );
    assert!(
        total_panics <= total_retries,
        "caught panics are a subset of real retries"
    );
}

/// Streamed execution under faults: the concatenated batches equal the
/// buffered fault-free output in order, and the stream's end metrics
/// show the retries happened.
#[test]
fn streamed_faulty_runs_match_buffered_clean_runs() {
    let engine = serving_engine(16);
    let q = pair_query(&engine, "eq_d", "d", ThetaOp::Eq);
    for method in [Method::Ours, Method::Hive] {
        let base = RunOptions::new().method(method);
        let clean = engine.run(&q, &base).expect("clean buffered run");
        let faulty = base
            .clone()
            .fault_plan(FaultPlan::with_probability(0.35, 41));
        let mut stream = engine
            .run_streamed(&q, &faulty, &StreamOptions::default())
            .expect("stream admits");
        let mut rows: Vec<Tuple> = Vec::new();
        while let Some(batch) = stream.next_batch().expect("stream batch") {
            rows.extend(batch.rows);
        }
        let end = stream.end().expect("stream end");
        assert_eq!(
            rows,
            clean.output.clone().into_rows(),
            "{method:?}: streamed faulty rows must equal buffered clean rows in order"
        );
        let attempts: u64 = end
            .jobs
            .iter()
            .map(|m| (m.map_attempts + m.reduce_attempts) as u64)
            .sum();
        let tasks: u64 = end
            .jobs
            .iter()
            .map(|m| (m.map_tasks + m.reduce_tasks) as u64)
            .sum();
        assert!(
            attempts > tasks,
            "{method:?}: a 35% fault rate must retry for real ({attempts} attempts, {tasks} tasks)"
        );
    }
}

/// A query whose deadline passes while it is parked in the admission
/// queue is refused with a typed deadline error, counted as shed, and
/// never holds units; the same query admits normally once the budget
/// frees up.
#[test]
fn queued_deadline_refusal_is_typed_and_sheds() {
    let engine = serving_engine(8);
    let q = pair_query(&engine, "eq_d", "d", ThetaOp::Eq);
    let hold = engine.scheduler().admit(8).expect("hold the whole budget");
    let before = engine.scheduler().stats();
    let err = engine
        .run(&q, &RunOptions::new().deadline_ms(60))
        .expect_err("queued past its deadline");
    assert!(
        err.is_deadline_exceeded(),
        "typed deadline refusal, got: {err}"
    );
    let after = engine.scheduler().stats();
    assert_eq!(after.shed, before.shed + 1, "the refusal is counted");
    assert_eq!(after.queued_now, 0, "the refused query left the queue");
    assert_eq!(
        after.in_flight_units, 8,
        "only the hold's units are out — the refused query held none"
    );
    drop(hold);
    let run = engine
        .run(&q, &RunOptions::new().deadline_ms(60_000))
        .expect("admits normally with budget free and a live deadline");
    assert_eq!(
        canonicalize(run.output.into_rows()),
        canonicalize(engine.oracle(&q).expect("oracle")),
    );
}

/// A deadline expiring mid-run cancels the query cooperatively and
/// fails it with a typed error, releasing the admission ticket and
/// every intermediate `__run<tag>_` DFS file — the engine stays fully
/// usable and the kill is counted.
#[test]
fn mid_execution_deadline_kill_releases_everything() {
    // Enough data that a three-way run takes well over the deadline,
    // without a combinatorial output (2 rows per key keeps the eq-chain
    // output linear in the input).
    let gen = SyntheticGen::default();
    let engine = Engine::with_units(8);
    let _ = engine.load_relation(&gen.uniform_keys("s", 8_000, 4_000));
    for inst in ["a", "b", "c"] {
        let _ = engine.load_alias_of("s", inst).expect("base loaded");
    }
    let q = QueryBuilder::new("killme")
        .relation(inst_schema(&engine, "a"))
        .relation(inst_schema(&engine, "b"))
        .relation(inst_schema(&engine, "c"))
        .join("a", "k", ThetaOp::Eq, "b", "k")
        .join("b", "k", ThetaOp::Eq, "c", "k")
        .build()
        .expect("query builds");
    let before_files = engine.cluster().dfs().list();
    let err = engine
        .run(&q, &RunOptions::new().deadline_ms(3))
        .expect_err("a multi-job run cannot finish in 3ms");
    assert!(err.is_deadline_exceeded(), "typed deadline kill, got {err}");
    // Killed in the queue (counted as shed) or mid-run (counted as a
    // deadline kill) — either way it is counted somewhere.
    let fs = engine.stats_snapshot().faults;
    let shed = engine.scheduler().stats().shed;
    assert!(
        fs.deadline_exceeded + shed >= 1,
        "the kill must be counted (deadline_exceeded={}, shed={shed})",
        fs.deadline_exceeded
    );
    // Full release: units back, no run-namespace files left behind.
    assert_eq!(engine.scheduler().stats().in_flight_units, 0);
    let leaked: Vec<String> = engine
        .cluster()
        .dfs()
        .list()
        .into_iter()
        .filter(|f| f.starts_with("__run") && !before_files.contains(f))
        .collect();
    assert!(leaked.is_empty(), "leaked run files: {leaked:?}");
    // The engine is fully usable afterwards: the same query, undead-
    // lined, runs to completion deterministically.
    let a = engine.run(&q, &RunOptions::new()).expect("engine survives");
    let b = engine.run(&q, &RunOptions::new()).expect("still healthy");
    assert!(!a.output.is_empty(), "the chain join has matches");
    assert_eq!(a.output.into_rows(), b.output.into_rows());
}

/// Satellite regression: failing runs — streamed or buffered — return
/// their admission units. Repeated failures must never shrink the
/// scheduler's free budget.
#[test]
fn failing_runs_never_shrink_the_scheduler_budget() {
    let engine = serving_engine(8);
    let q = three_way(&engine);
    for i in 0..4 {
        // Alternate buffered and streamed kills.
        let opts = RunOptions::new().deadline_ms(if i % 2 == 0 { 0 } else { 1 });
        if i % 2 == 0 {
            let _ = engine.run(&q, &opts);
        } else {
            if let Ok(mut stream) = engine.run_streamed(&q, &opts, &StreamOptions::default()) {
                while let Ok(Some(_)) = stream.next_batch() {}
            }
        }
    }
    // The streaming worker releases its ticket asynchronously; give it
    // a moment, then the budget must be whole again.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let st = engine.scheduler().stats();
        if st.in_flight_units == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "units never returned: {st:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // And a full-budget admission still succeeds instantly.
    let ticket = engine.scheduler().admit(8).expect("budget is whole");
    assert_eq!(ticket.granted(), 8);
}

/// Satellite chaos soak: ≥8 concurrent queries mixing every method,
/// 0.3-probability faults and a spread of deadlines over one shared
/// engine. Completed queries are bit-identical to the sequential
/// fault-free oracle; deadline-killed queries fail with typed errors;
/// the scheduler budget returns to full.
#[test]
fn chaos_soak_mixed_methods_faults_and_deadlines() {
    let engine = serving_engine(32);
    let shapes = [
        ("eq_d", "d", ThetaOp::Eq),
        ("lt_bt", "bt", ThetaOp::Lt),
        ("ge_l", "l", ThetaOp::Ge),
        ("ne_bsc", "bsc", ThetaOp::Ne),
    ];
    let mut queries: Vec<MultiwayQuery> = shapes
        .iter()
        .map(|(n, c, op)| pair_query(&engine, n, c, *op))
        .collect();
    queries.push(three_way(&engine));
    let methods = [
        Method::Ours,
        Method::OursGrid,
        Method::YSmart,
        Method::Hive,
        Method::Pig,
    ];
    // 10 jobs: every method at least twice, a deterministic spread of
    // deadlines — generous ones that must not fire, tiny ones that may
    // kill mid-run, and none.
    let deadlines: [Option<u64>; 10] = [
        None,
        Some(60_000),
        Some(2),
        None,
        Some(1),
        Some(60_000),
        None,
        Some(3),
        None,
        Some(60_000),
    ];
    let jobs: Vec<(usize, Method, Option<u64>)> = (0..10)
        .map(|i| (i % queries.len(), methods[i % methods.len()], deadlines[i]))
        .collect();
    assert!(jobs.len() >= 8, "soak demands ≥8 concurrent queries");
    let results: Vec<Result<mwtj_core::QueryRun, EngineError>> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(qi, method, deadline)| {
                let engine = &engine;
                let q = &queries[*qi];
                let mut opts = RunOptions::new()
                    .method(*method)
                    .fault_plan(FaultPlan::with_probability(0.3, 1000 + *qi as u64));
                if let Some(ms) = deadline {
                    opts = opts.deadline_ms(*ms);
                }
                s.spawn(move || engine.run(q, &opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no worker panics through the engine"))
            .collect()
    });
    for ((qi, method, deadline), result) in jobs.iter().zip(results) {
        match result {
            Ok(run) => {
                let want = canonicalize(engine.oracle(&queries[*qi]).expect("oracle"));
                assert_eq!(
                    canonicalize(run.output.into_rows()),
                    want,
                    "{method:?} on query {qi} under chaos must match the oracle"
                );
            }
            Err(e) => {
                assert!(
                    deadline.is_some_and(|ms| ms < 60_000),
                    "only tiny-deadline queries may fail, got {e} for {method:?}/{deadline:?}"
                );
                assert!(
                    e.is_deadline_exceeded() || e.is_overloaded(),
                    "chaos failures must be typed flow-control errors, got {e}"
                );
            }
        }
    }
    // The soak must leave the budget whole.
    let st = engine.scheduler().stats();
    assert_eq!(st.in_flight_units, 0, "budget leaked: {st:?}");
    assert_eq!(st.queued_now, 0);
}
