//! Property-based tests on the core invariants (proptest).

use mwtj_hilbert::{HilbertCurve, PartitionStrategy, SpacePartition};
use mwtj_join::oracle::{canonicalize, oracle_join};
use mwtj_join::ChainThetaJob;
use mwtj_mapreduce::{ClusterConfig, Dfs, Engine, InputSpec};
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::{codec, DataType, Relation, Schema, Tuple, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------- codec

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Double),
        "[a-zA-Z0-9 àéü]{0,24}".prop_map(|s| Value::from(s.as_str())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode/decode is the identity (bit-exact for doubles) and
    /// `encoded_len` is exact.
    #[test]
    fn codec_roundtrip(values in prop::collection::vec(arb_value(), 0..12)) {
        let enc = codec::encode_tuple(&values);
        prop_assert_eq!(enc.len(), codec::encoded_len(&values));
        let dec = codec::decode_tuple(&enc).unwrap();
        prop_assert_eq!(values.len(), dec.len());
        for (a, b) in values.iter().zip(&dec) {
            match (a, b) {
                (Value::Double(x), Value::Double(y)) =>
                    prop_assert_eq!(x.to_bits(), y.to_bits()),
                _ => prop_assert_eq!(a, b),
            }
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn codec_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = codec::decode_tuple(&bytes);
    }
}

// ---------------------------------------------------------------- hilbert

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// index∘coords = id for random dimensions/orders within budget.
    #[test]
    fn hilbert_bijective(dims in 1usize..5, bits in 1u32..5, probe in any::<u64>()) {
        let curve = HilbertCurve::new(dims, bits);
        let h = probe % curve.num_cells();
        let xy = curve.coords(h);
        prop_assert_eq!(curve.index(&xy), h);
        for &c in &xy {
            prop_assert!(c < curve.side());
        }
    }

    /// Every cell has exactly one owner, and the owner receives every
    /// relation's stripe copy for that cell.
    #[test]
    fn partition_covers_cells(
        dims in 2usize..4,
        k_r in 1u32..20,
        cards in prop::collection::vec(1u64..5_000, 2..4),
        probe in prop::collection::vec(any::<u64>(), 8),
        grid in any::<bool>(),
    ) {
        let cards = &cards[..dims.min(cards.len())];
        if cards.len() < 2 { return Ok(()); }
        let strategy = if grid { PartitionStrategy::Grid } else { PartitionStrategy::Hilbert };
        let p = SpacePartition::new(strategy, cards, k_r, 3);
        let side = 1u64 << p.bits();
        // Random cells: owner must be listed in each dim's stripe list.
        for chunk in probe.chunks(cards.len()) {
            if chunk.len() < cards.len() { continue; }
            let cell: Vec<u64> = chunk.iter().map(|&x| x % side).collect();
            let owner = p.owner_of_cell(&cell);
            prop_assert!(owner < p.num_components());
            for (d, &s) in cell.iter().enumerate() {
                prop_assert!(
                    p.components_for_stripe(d, s).contains(&owner),
                    "owner {} missing from dim {} stripe {}", owner, d, s
                );
            }
        }
    }

    /// The partition score is at least Σ|R| (every tuple is copied at
    /// least once) and the replication factor never exceeds k_R.
    #[test]
    fn partition_score_bounds(
        k_r in 1u32..32,
        a in 10u64..10_000,
        b in 10u64..10_000,
        c in 10u64..10_000,
    ) {
        let p = SpacePartition::hilbert(&[a, b, c], k_r);
        let total = (a + b + c) as f64;
        prop_assert!(p.score() >= total * 0.999);
        prop_assert!(p.replication_factor() <= p.num_components() as f64 + 1e-9);
    }
}

// ---------------------------------------------------------------- joins

fn arb_op() -> impl Strategy<Value = ThetaOp> {
    prop_oneof![
        Just(ThetaOp::Lt),
        Just(ThetaOp::Le),
        Just(ThetaOp::Eq),
        Just(ThetaOp::Ge),
        Just(ThetaOp::Gt),
        Just(ThetaOp::Ne),
    ]
}

fn rel_from(name: &str, rows: &[(i64, i64)]) -> Relation {
    let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
    Relation::from_rows_unchecked(
        schema,
        rows.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect(),
    )
}

fn run_chain(
    query: &MultiwayQuery,
    edges: &[usize],
    rels: &[&Relation],
    k_r: u32,
    strategy: PartitionStrategy,
) -> Vec<Tuple> {
    let cfg = ClusterConfig::default();
    let dfs = Dfs::new();
    let cards: Vec<u64> = rels.iter().map(|r| r.len() as u64).collect();
    let job = ChainThetaJob::new(query, edges, &cards, k_r, strategy);
    let mut inputs = Vec::new();
    for (dim, &qrel) in job.dims().iter().enumerate() {
        let fname = format!("rel{qrel}");
        dfs.put_relation(&fname, rels[qrel], &cfg);
        inputs.push(InputSpec::new(fname, dim as u8));
    }
    let engine = Engine::new(cfg, dfs);
    engine
        .run(&job, &inputs, 8, job.reducers(), None)
        .output
        .into_rows()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chain theta-join MRJ produces exactly the oracle's multiset
    /// for random two-relation inputs, any operator, any k_R, either
    /// partition strategy.
    #[test]
    fn chain_join_equals_oracle_2way(
        lrows in prop::collection::vec((0i64..20, 0i64..20), 0..40),
        rrows in prop::collection::vec((0i64..20, 0i64..20), 0..40),
        op in arb_op(),
        k_r in 1u32..10,
        grid in any::<bool>(),
    ) {
        let l = rel_from("l", &lrows);
        let r = rel_from("r", &rrows);
        let q = QueryBuilder::new("prop")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "a", op, "r", "a")
            .build()
            .unwrap();
        let strategy = if grid { PartitionStrategy::Grid } else { PartitionStrategy::Hilbert };
        let got = canonicalize(run_chain(&q, &[0], &[&l, &r], k_r, strategy));
        let want = canonicalize(oracle_join(&q, &[&l, &r]));
        prop_assert_eq!(got, want);
    }

    /// Three-way chains with two random operators also match.
    #[test]
    fn chain_join_equals_oracle_3way(
        arows in prop::collection::vec((0i64..12, 0i64..12), 1..20),
        brows in prop::collection::vec((0i64..12, 0i64..12), 1..20),
        crows in prop::collection::vec((0i64..12, 0i64..12), 1..20),
        op1 in arb_op(),
        op2 in arb_op(),
        k_r in 1u32..8,
    ) {
        let a = rel_from("a", &arows);
        let b = rel_from("b", &brows);
        let c = rel_from("c", &crows);
        let q = QueryBuilder::new("prop3")
            .relation(a.schema().clone())
            .relation(b.schema().clone())
            .relation(c.schema().clone())
            .join("a", "a", op1, "b", "a")
            .join("b", "b", op2, "c", "b")
            .build()
            .unwrap();
        let got = canonicalize(run_chain(&q, &[0, 1], &[&a, &b, &c], k_r, PartitionStrategy::Hilbert));
        let want = canonicalize(oracle_join(&q, &[&a, &b, &c]));
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------- options

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `RunOptions` Display/FromStr is a total round-trip over *every*
    /// field combination — the server's wire format depends on it.
    /// (Regression: fault plans used to print as a bare `+faults`
    /// marker that `FromStr` rejected.)
    #[test]
    fn run_options_display_fromstr_roundtrip(
        method_pick in 0usize..5,
        partition_pick in 0usize..4,
        has_faults in any::<bool>(),
        prob_mil in 0u64..1000,
        seed in any::<u64>(),
        attempts in 1u32..6,
        calibrated in any::<bool>(),
        skipping in any::<bool>(),
    ) {
        use mwtj_core::{Method, RunOptions};
        use mwtj_hilbert::PartitionStrategy as Ps;
        use mwtj_mapreduce::FaultPlan;

        let mut opts = RunOptions::new().method(Method::ALL[method_pick]);
        let partitions = [None, Some(Ps::Hilbert), Some(Ps::Grid), Some(Ps::ZOrder)];
        if let Some(p) = partitions[partition_pick] {
            opts = opts.partition(p);
        }
        if has_faults {
            opts = opts.fault_plan(FaultPlan {
                fail_probability: prob_mil as f64 / 1000.0,
                max_attempts: attempts,
                seed,
            });
        }
        opts = opts.calibrated(calibrated).skipping(skipping);

        let printed = opts.to_string();
        let reparsed: RunOptions = printed
            .parse()
            .unwrap_or_else(|e| panic!("`{printed}` failed to parse: {e}"));
        prop_assert_eq!(&reparsed, &opts);
        // Display is canonical: printing the reparse is a fixed point.
        prop_assert_eq!(reparsed.to_string(), printed);
    }
}

// ---------------------------------------------------------------- planner

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full system (plan + execute, any method) matches the oracle
    /// on random data for a fixed 3-relation query shape.
    #[test]
    fn system_equals_oracle(
        arows in prop::collection::vec((0i64..15, 0i64..15), 1..30),
        brows in prop::collection::vec((0i64..15, 0i64..15), 1..30),
        crows in prop::collection::vec((0i64..15, 0i64..15), 1..30),
        op in arb_op(),
        method_pick in 0usize..5,
    ) {
        use mwtj_core::{Engine, Method, RunOptions};
        let methods = Method::ALL;
        let a = rel_from("a", &arows);
        let b = rel_from("b", &brows);
        let c = rel_from("c", &crows);
        let sys = Engine::with_units(12);
        let _ = sys.load_relation(&a);
        let _ = sys.load_relation(&b);
        let _ = sys.load_relation(&c);
        let q = QueryBuilder::new("prop_sys")
            .relation(a.schema().clone())
            .relation(b.schema().clone())
            .relation(c.schema().clone())
            .join("a", "a", op, "b", "a")
            .join("b", "b", ThetaOp::Eq, "c", "b")
            .build()
            .unwrap();
        let want = canonicalize(sys.oracle(&q).expect("oracle runs"));
        let run = sys
            .run(&q, &RunOptions::from(methods[method_pick]))
            .expect("query runs");
        let got = canonicalize(run.output.into_rows());
        prop_assert_eq!(got, want);
    }
}
