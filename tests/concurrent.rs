//! Concurrent serving: `Engine::run_many` executes independent queries
//! in parallel over one shared engine, with results identical to
//! sequential `run` and to the single-threaded oracle.

use mwtj_core::{Engine, EngineError, Method, RunOptions};
use mwtj_datagen::MobileGen;
use mwtj_join::oracle::canonicalize;
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::Schema;

/// An engine with the calls table under enough aliases for several
/// distinct queries.
fn serving_engine() -> Engine {
    let gen = MobileGen {
        users: 150,
        base_stations: 25,
        days: 8,
        ..Default::default()
    };
    let engine = Engine::with_units(32);
    let _ = engine.load_relation(&gen.generate("calls", 140));
    for inst in ["t1", "t2", "t3"] {
        let _ = engine.load_alias_of("calls", inst).expect("base loaded");
    }
    engine
}

fn inst_schema(engine: &Engine, name: &str) -> Schema {
    // Base columns only; the engine re-augments at run time.
    let rel = engine.relation(name).expect("loaded");
    let fields = rel
        .schema()
        .fields()
        .iter()
        .filter(|f| f.name != mwtj_core::RID_COLUMN)
        .cloned()
        .collect();
    Schema::new(name, fields)
}

fn batch(engine: &Engine) -> Vec<MultiwayQuery> {
    let t1 = inst_schema(engine, "t1");
    let t2 = inst_schema(engine, "t2");
    let t3 = inst_schema(engine, "t3");
    let pair = |name: &str, ca: &str, op, cb: &str| {
        QueryBuilder::new(name)
            .relation(t1.clone())
            .relation(t2.clone())
            .join("t1", ca, op, "t2", cb)
            .build()
            .expect("query builds")
    };
    vec![
        pair("eq_d", "d", ThetaOp::Eq, "d"),
        pair("lt_bt", "bt", ThetaOp::Lt, "bt"),
        pair("ge_l", "l", ThetaOp::Ge, "l"),
        pair("ne_bsc", "bsc", ThetaOp::Ne, "d"),
        QueryBuilder::new("three_way")
            .relation(t1.clone())
            .relation(t2.clone())
            .relation(t3.clone())
            .join("t1", "bt", ThetaOp::Le, "t2", "bt")
            .join("t2", "bsc", ThetaOp::Eq, "t3", "bsc")
            .build()
            .expect("query builds"),
    ]
}

/// ≥ 4 independent queries concurrently; every result equals both the
/// sequential run and the oracle.
#[test]
fn run_many_matches_sequential_and_oracle() {
    let engine = serving_engine();
    let queries = batch(&engine);
    assert!(queries.len() >= 4, "acceptance demands ≥4 queries");
    let refs: Vec<&MultiwayQuery> = queries.iter().collect();
    let opts = RunOptions::default();

    let concurrent = engine.run_many(&refs, &opts);
    assert_eq!(concurrent.len(), queries.len());
    for (q, result) in queries.iter().zip(concurrent) {
        let conc = result.unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let seq = engine.run(q, &opts).expect("sequential run");
        let want = canonicalize(engine.oracle(q).expect("oracle"));
        let got = canonicalize(conc.output.into_rows());
        assert_eq!(got, want, "{} concurrent vs oracle", q.name);
        assert_eq!(
            canonicalize(seq.output.into_rows()),
            want,
            "{} sequential vs oracle",
            q.name
        );
    }
}

/// Concurrent batches may mix methods' workloads repeatedly without
/// interference from shared intermediate files.
#[test]
fn repeated_concurrent_batches_are_stable() {
    let engine = serving_engine();
    let queries = batch(&engine);
    let refs: Vec<&MultiwayQuery> = queries.iter().collect();
    let baseline: Vec<usize> = refs
        .iter()
        .map(|q| engine.oracle(q).expect("oracle").len())
        .collect();
    for opts in [
        RunOptions::default(),
        RunOptions::from(Method::Hive),
        RunOptions::from(Method::YSmart),
    ] {
        let got: Vec<usize> = engine
            .run_many(&refs, &opts)
            .into_iter()
            .map(|r| r.expect("runs").output.len())
            .collect();
        assert_eq!(got, baseline, "row counts under {opts}");
    }
}

/// A failing query inside a batch fails alone; the rest succeed.
#[test]
fn batch_failures_are_isolated() {
    let engine = serving_engine();
    let good = batch(&engine);
    let ghost = QueryBuilder::new("ghost")
        .relation(inst_schema(&engine, "t1"))
        .relation(Schema::from_pairs(
            "unloaded",
            &[("d", mwtj_storage::DataType::Int)],
        ))
        .join("t1", "d", ThetaOp::Eq, "unloaded", "d")
        .build()
        .expect("builds");
    let mut refs: Vec<&MultiwayQuery> = good.iter().collect();
    refs.insert(2, &ghost);
    let results = engine.run_many(&refs, &RunOptions::default());
    for (i, res) in results.iter().enumerate() {
        if i == 2 {
            assert!(matches!(
                res,
                Err(EngineError::RelationNotLoaded { name }) if name == "unloaded"
            ));
        } else {
            assert!(res.is_ok(), "query {i} should succeed: {res:?}");
        }
    }
}

/// Sessions are cloneable handles; a batch can also be driven by hand
/// from plain threads sharing one engine.
#[test]
fn sessions_share_one_engine_across_threads() {
    let engine = serving_engine();
    let queries = batch(&engine);
    let session = engine.session().with_options(RunOptions::default());
    let counts: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let session = session.clone();
                s.spawn(move || session.query(q).expect("runs").output.len())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for (q, n) in queries.iter().zip(counts) {
        assert_eq!(
            n,
            engine.oracle(q).expect("oracle").len(),
            "{} via session thread",
            q.name
        );
    }
}
