//! Prepared-query lifecycle integration: `prepare` once + `execute` N
//! times must be **bit-identical** — rows *and* simulated Eq. 2–4
//! metrics — to N ad-hoc `run_sql` calls, across every method ×
//! partition strategy and on the streamed path, while the second and
//! later executions skip parse + plan (plan-cache hit counters
//! asserted). Also covered: `?` parameter binding vs literal SQL, the
//! reload-between-prepare-and-execute staleness regression, reduced-`k`
//! replan caching under admission degradation, and concurrent
//! executions of one `Prepared` handle from many sessions.

use mwtj_core::{AdmissionPolicy, Engine, Method, RunOptions, StreamOptions};
use mwtj_hilbert::PartitionStrategy;
use mwtj_join::oracle::canonicalize;
use mwtj_storage::{tuple, DataType, Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
    let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows_unchecked(
        schema,
        (0..n)
            .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
            .collect(),
    )
}

/// An engine loaded with the three demo-shaped relations. Built per
/// comparison arm so cache counters and plans are isolated.
fn demo_engine(k_p: u32) -> Engine {
    let engine = Engine::with_units(k_p);
    let _ = engine.load_relation(&rel("r", 70, 11, 24));
    let _ = engine.load_relation(&rel("s", 60, 12, 24));
    let _ = engine.load_relation(&rel("t", 50, 13, 24));
    engine
}

/// Three-way chain SQL (inequality + equality edges): plans exercise
/// chain MRJs, merges and the baseline cascades.
const SQL3: &str = "SELECT x.a, y.b, z.b FROM r x, s y, t z WHERE x.a < y.a AND y.b = z.b";

/// Everything a differential comparison pins, per run.
fn fingerprint(run: &mwtj_core::QueryRun) -> (Vec<mwtj_storage::Tuple>, String, f64, f64, u32) {
    (
        run.output.rows().to_vec(),
        run.plan.clone(),
        run.sim_secs,
        run.predicted_secs,
        run.granted_units,
    )
}

/// The acceptance bar: for every method × partition strategy, prepare
/// once + execute 3× on one engine is bit-identical (rows, plan
/// description, simulated and predicted seconds, granted units) to 3
/// ad-hoc `run_sql` calls on an identically-loaded twin engine — and
/// the prepared engine's second and later executions are plan-cache
/// hits.
#[test]
fn prepared_matches_adhoc_bit_identically_all_methods_and_strategies() {
    for method in Method::ALL {
        for strategy in [PartitionStrategy::Hilbert, PartitionStrategy::Grid] {
            let opts = RunOptions::new().method(method).partition(strategy);
            let adhoc_engine = demo_engine(16);
            let prepared_engine = demo_engine(16);

            let adhoc: Vec<_> = (0..3)
                .map(|_| fingerprint(&adhoc_engine.run_sql_with("sql", SQL3, &opts).unwrap()))
                .collect();
            let prepared = prepared_engine.prepare_sql("sql", SQL3).unwrap();
            assert_eq!(prepared.param_count(), 0);
            let execs: Vec<_> = (0..3)
                .map(|_| fingerprint(&prepared_engine.execute(&prepared, &[], &opts).unwrap()))
                .collect();

            for (i, (a, p)) in adhoc.iter().zip(&execs).enumerate() {
                assert_eq!(a, p, "{method} {strategy} execution {i} diverged");
            }
            let st = prepared_engine.stats_snapshot().plan_cache;
            match method {
                Method::Ours | Method::OursGrid => {
                    assert_eq!(st.misses, 1, "{method} {strategy}: one planning pass");
                    assert_eq!(
                        st.hits, 2,
                        "{method} {strategy}: later executions must hit the plan cache"
                    );
                }
                // Baselines plan nothing, so they cache nothing.
                _ => assert_eq!((st.hits, st.misses), (0, 0), "{method} {strategy}"),
            }
            // And the answer is the truth (register the aliases so the
            // oracle can resolve the parsed query's instance names).
            for (alias, base) in [("x", "r"), ("y", "s"), ("z", "t")] {
                let _ = adhoc_engine.load_alias_of(base, alias).unwrap();
            }
            let q = adhoc_engine.parse_sql("q", SQL3).unwrap().query;
            let want = canonicalize(adhoc_engine.oracle(&q).unwrap());
            assert_eq!(
                canonicalize(execs[0].0.clone()),
                want,
                "{method} {strategy}"
            );
        }
    }
}

/// Ad-hoc `run_sql` is now a composition of the same stages, so it
/// shares the plan cache with prepared statements of the same text —
/// in both directions.
#[test]
fn adhoc_and_prepared_share_one_plan_entry() {
    let engine = demo_engine(16);
    let prepared = engine.prepare_sql("sql", SQL3).unwrap();
    engine
        .execute(&prepared, &[], &RunOptions::default())
        .unwrap();
    let after_first = engine.stats_snapshot().plan_cache;
    assert_eq!((after_first.misses, after_first.hits), (1, 0));
    // Ad-hoc run of the same text: parse happens, planning does not.
    engine.run_sql(SQL3).unwrap();
    let after_adhoc = engine.stats_snapshot().plan_cache;
    assert_eq!(after_adhoc.misses, 1, "ad-hoc must reuse the prepared plan");
    assert_eq!(after_adhoc.hits, 1);
    assert_eq!(after_adhoc.entries, 1);
}

/// The streamed path works off the same prepared handle and the same
/// cached plan: concatenated batches equal the unary execution
/// row-for-row, with identical simulated metrics.
#[test]
fn streamed_execution_off_the_same_handle_is_bit_identical() {
    let engine = demo_engine(16);
    let prepared = engine.prepare_sql("sql", SQL3).unwrap();
    let opts = RunOptions::default();
    let unary = engine.execute(&prepared, &[], &opts).unwrap();
    let stream = engine
        .execute_streamed(&prepared, &[], &opts, &StreamOptions::new().batch_rows(13))
        .unwrap();
    assert_eq!(stream.schema(), unary.output.schema());
    let (rows, end) = stream.collect_rows().unwrap();
    assert_eq!(rows.rows(), unary.output.rows(), "row-for-row identical");
    assert_eq!(end.sim_secs, unary.sim_secs);
    assert_eq!(end.predicted_secs, unary.predicted_secs);
    // Unary execution missed once; the streamed one hit.
    let st = engine.stats_snapshot().plan_cache;
    assert_eq!((st.misses, st.hits), (1, 1));
    assert_eq!(engine.scheduler().stats().in_flight_units, 0);
}

/// `?` positional parameters: executions with different bindings reuse
/// one template plan (cache hit asserted) and each binding's rows are
/// bit-identical to the literal ad-hoc SQL — including a negated slot.
#[test]
fn parameter_bindings_match_literal_sql() {
    let engine = demo_engine(16);
    let prepared = engine
        .prepare_sql("sql", "SELECT x.a, y.b FROM r x, s y WHERE x.a + ? < y.a")
        .unwrap();
    assert_eq!(prepared.param_count(), 1);
    for (v, literal) in [
        (3.0, "SELECT x.a, y.b FROM r x, s y WHERE x.a + 3 < y.a"),
        (-2.0, "SELECT x.a, y.b FROM r x, s y WHERE x.a - 2 < y.a"),
        (0.0, "SELECT x.a, y.b FROM r x, s y WHERE x.a + 0 < y.a"),
    ] {
        let bound = engine
            .execute(&prepared, &[v], &RunOptions::default())
            .unwrap();
        let adhoc = demo_engine(16).run_sql(literal).unwrap();
        assert_eq!(
            bound.output.rows(),
            adhoc.output.rows(),
            "param {v} vs literal"
        );
    }
    let st = engine.stats_snapshot().plan_cache;
    assert_eq!(st.misses, 1, "one template plan across bindings");
    assert_eq!(st.hits, 2);

    // A negated slot subtracts.
    let neg = engine
        .prepare_sql("sql", "SELECT x.a, y.b FROM r x, s y WHERE x.a - ? < y.a")
        .unwrap();
    let a = engine
        .execute(&neg, &[2.0], &RunOptions::default())
        .unwrap();
    let b = engine
        .execute(&prepared, &[-2.0], &RunOptions::default())
        .unwrap();
    assert_eq!(a.output.rows(), b.output.rows());

    // Binding the wrong arity is a typed error, not a panic.
    assert!(matches!(
        engine.execute(&prepared, &[], &RunOptions::default()),
        Err(mwtj_core::EngineError::Sql(_))
    ));
    assert!(matches!(
        engine.execute(&prepared, &[1.0, 2.0], &RunOptions::default()),
        Err(mwtj_core::EngineError::Sql(_))
    ));
    // And a template cannot run ad hoc (no parameters to bind).
    assert!(engine
        .run_sql("SELECT x.a FROM r x, s y WHERE x.a + ? < y.a")
        .is_err());
}

/// Regression: a parameterised *equality* template must not cache an
/// equi-hash plan from a zero binding and then feed a nonzero binding
/// into it (the hash kernel's equality key would be empty — this used
/// to assert-crash the execution). The template's plan is made with
/// the `?` slot visible, which disqualifies the equi-hash operator, so
/// every binding executes the same chain plan correctly.
#[test]
fn parameterised_equality_survives_zero_then_nonzero_bindings() {
    let engine = demo_engine(16);
    let prepared = engine
        .prepare_sql("sql", "SELECT x.a, y.b FROM r x, s y WHERE x.a + ? = y.a")
        .unwrap();
    let zero = engine
        .execute(&prepared, &[0.0], &RunOptions::default())
        .unwrap();
    // The nonzero binding reuses the same template plan — no panic,
    // correct rows.
    let five = engine
        .execute(&prepared, &[5.0], &RunOptions::default())
        .unwrap();
    assert_eq!(engine.stats_snapshot().plan_cache.hits, 1);
    for (run, literal) in [
        (&zero, "SELECT x.a, y.b FROM r x, s y WHERE x.a + 0 = y.a"),
        (&five, "SELECT x.a, y.b FROM r x, s y WHERE x.a + 5 = y.a"),
    ] {
        let adhoc = demo_engine(16).run_sql(literal).unwrap();
        assert_eq!(
            canonicalize(run.output.rows().to_vec()),
            canonicalize(adhoc.output.rows().to_vec())
        );
    }
    // The streamed path takes the same plan.
    let stream = engine
        .execute_streamed(
            &prepared,
            &[5.0],
            &RunOptions::default(),
            &StreamOptions::new().batch_rows(8),
        )
        .unwrap();
    let (rows, _) = stream.collect_rows().unwrap();
    assert_eq!(
        canonicalize(rows.into_rows()),
        canonicalize(five.output.rows().to_vec())
    );
}

/// A statement prepared on one engine re-binds when executed on
/// another: unrelated engines' statistics epochs coincide trivially
/// (both start at 0), so the handle tracks engine identity and must
/// not serve the first engine's embedded schemas against the second's
/// data.
#[test]
fn prepared_handle_rebinds_on_a_different_engine() {
    let sql = "SELECT x.a FROM r x, s y WHERE x.a < y.a";
    let a = demo_engine(8);
    let prepared = a.prepare_sql("sql", sql).unwrap();
    let b = Engine::with_units(8);
    let _ = b.load_relation(&rel("r", 30, 91, 10));
    let _ = b.load_relation(&rel("s", 25, 92, 10));
    assert_eq!(a.stats_epoch(), b.stats_epoch(), "the trap: equal epochs");
    let run_b = b.execute(&prepared, &[], &RunOptions::default()).unwrap();
    let adhoc_b = b.run_sql(sql).unwrap();
    assert_eq!(run_b.output.rows(), adhoc_b.output.rows());
    // Back on the original engine the handle re-binds again.
    let run_a = a.execute(&prepared, &[], &RunOptions::default()).unwrap();
    let adhoc_a = a.run_sql(sql).unwrap();
    assert_eq!(run_a.output.rows(), adhoc_a.output.rows());
}

/// Regression (stale-plan fix): a relation reload between `prepare`
/// and `execute` bumps the statistics epoch; the execution must verify
/// the epoch at admission time, replan against the *new* statistics
/// and answer over the *new* data.
#[test]
fn reload_between_prepare_and_execute_replans_against_fresh_data() {
    let engine = demo_engine(16);
    let prepared = engine.prepare_sql("sql", SQL3).unwrap();
    // Warm the plan cache under the old data.
    engine
        .execute(&prepared, &[], &RunOptions::default())
        .unwrap();
    let warm = engine.stats_snapshot().plan_cache;
    assert_eq!((warm.misses, warm.replans), (1, 0));

    // Reload `r` with different data: epoch bumps, cached plan is stale.
    let _ = engine.load_relation(&rel("r", 150, 99, 24));
    let run = engine
        .execute(&prepared, &[], &RunOptions::default())
        .unwrap();
    let st = engine.stats_snapshot().plan_cache;
    assert_eq!(st.replans, 1, "stale-epoch entry must be replanned");
    assert_eq!(st.evictions, 1, "…and the stale entry evicted");

    // The answer reflects the reloaded data, not the prepare-time
    // snapshot.
    for (alias, base) in [("x", "r"), ("y", "s"), ("z", "t")] {
        let _ = engine.load_alias_of(base, alias).unwrap();
    }
    let q = engine.parse_sql("q", SQL3).unwrap().query;
    let want = canonicalize(engine.oracle(&q).unwrap());
    assert_eq!(canonicalize(run.output.into_rows()), want);
}

/// Admission degradation: when the free slice forces a smaller `k`,
/// the reduced-`k` replan is cached per `k` — a second degraded
/// execution of the same statement skips planning entirely.
#[test]
fn degraded_executions_cache_reduced_k_replans_per_k() {
    let engine = Engine::with_units_and_policy(
        8,
        AdmissionPolicy {
            degrade_floor: 0.0, // take any free unit rather than queue
            max_queue: None,
        },
    );
    let _ = engine.load_relation(&rel("r", 70, 11, 24));
    let _ = engine.load_relation(&rel("s", 60, 12, 24));
    let _ = engine.load_relation(&rel("t", 50, 13, 24));
    let prepared = engine.prepare_sql("sql", SQL3).unwrap();

    // Baseline: undegraded execution plans at the full k.
    let full = engine
        .execute(&prepared, &[], &RunOptions::default())
        .unwrap();
    assert_eq!(engine.stats_snapshot().plan_cache.misses, 1);

    // Hold most of the budget so the next executions degrade.
    let hold = engine.scheduler().admit(6).unwrap();
    let degraded = engine
        .execute(&prepared, &[], &RunOptions::default())
        .unwrap();
    assert!(
        degraded.granted_units < full.granted_units,
        "expected a degraded grant ({} vs {})",
        degraded.granted_units,
        full.granted_units
    );
    let st = engine.stats_snapshot().plan_cache;
    assert_eq!(st.replans, 1, "degradation replans at the smaller k");
    assert_eq!(
        st.entries, 2,
        "full-k and reduced-k plans live side by side"
    );

    // Same squeeze again: both the full-k admission plan and the
    // reduced-k execution plan are cache hits now.
    let hits_before = st.hits;
    let again = engine
        .execute(&prepared, &[], &RunOptions::default())
        .unwrap();
    assert_eq!(again.granted_units, degraded.granted_units);
    let st2 = engine.stats_snapshot().plan_cache;
    assert_eq!(st2.replans, 1, "no second replan");
    assert_eq!(st2.hits, hits_before + 2);
    // Degraded or not, the rows are the query's rows.
    assert_eq!(
        canonicalize(again.output.into_rows()),
        canonicalize(full.output.into_rows())
    );
    drop(hold);
}

/// One `Prepared` handle executed concurrently from many sessions:
/// every execution returns the same rows as the sequential run, and
/// all reservations drain.
#[test]
fn concurrent_executions_of_one_handle_from_many_sessions() {
    // Never degrade: a degraded execution replans at a smaller `k`
    // (its own cache entry), which would make the miss count depend on
    // thread timing. With a 1.0 floor contended executions queue and
    // run the one full-`k` plan.
    let engine = Engine::with_units_and_policy(
        8,
        AdmissionPolicy {
            degrade_floor: 1.0,
            max_queue: None,
        },
    );
    let _ = engine.load_relation(&rel("r", 70, 11, 24));
    let _ = engine.load_relation(&rel("s", 60, 12, 24));
    let _ = engine.load_relation(&rel("t", 50, 13, 24));
    let prepared = engine.prepare_sql("sql", SQL3).unwrap();
    let want = engine
        .execute(&prepared, &[], &RunOptions::default())
        .unwrap()
        .output;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let session = engine.session();
                let prepared = prepared.clone();
                scope.spawn(move || session.execute(&prepared, &[]).unwrap().output)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().rows(), want.rows());
        }
    });
    let st = engine.stats_snapshot().plan_cache;
    assert_eq!(st.misses, 1, "six concurrent executions, one plan");
    assert!(st.hits >= 6);
    assert_eq!(engine.scheduler().stats().in_flight_units, 0);
}
