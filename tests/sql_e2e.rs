//! SQL front-end integration: a SQL string round-trips
//! parse → plan → execute and agrees with the oracle, and every error
//! path is a typed error rather than a panic.

use mwtj_core::{Engine, EngineError, Method, RunOptions};
use mwtj_datagen::MobileGen;
use mwtj_join::oracle::canonicalize;
use mwtj_storage::Error as StorageError;

fn engine_with_calls(rows: usize) -> Engine {
    let gen = MobileGen {
        users: 150,
        base_stations: 25,
        days: 8,
        ..Default::default()
    };
    let engine = Engine::with_units(16);
    let _ = engine.load_relation(&gen.generate("calls", rows));
    engine
}

/// The paper's Q1 as SQL: parse → auto-alias → plan → execute on every
/// method, all agreeing with the single-threaded oracle.
#[test]
fn sql_round_trips_to_oracle_agreement() {
    let engine = engine_with_calls(150);
    let sql = "SELECT t3.id FROM calls t1, calls t2, calls t3 \
               WHERE t1.bt <= t2.bt AND t1.l >= t2.l \
               AND t2.bsc = t3.bsc AND t2.d = t3.d";
    let parsed = engine.parse_sql("Q1", sql).expect("parses");
    assert_eq!(
        parsed.instances,
        vec![
            ("t1".to_string(), "calls".to_string()),
            ("t2".to_string(), "calls".to_string()),
            ("t3".to_string(), "calls".to_string()),
        ]
    );

    // run_sql binds t1/t2/t3 in a private namespace; for the oracle we
    // register the instances explicitly.
    let first = engine.run_sql(sql).expect("executes end to end");
    for inst in ["t1", "t2", "t3"] {
        let _ = engine.load_alias_of("calls", inst).expect("alias");
    }
    let want = canonicalize(engine.oracle(&parsed.query).expect("oracle"));
    assert_eq!(canonicalize(first.output.into_rows()), want);
    assert!(!want.is_empty(), "query should produce rows at this scale");

    for m in Method::ALL {
        let run = engine
            .run_sql_with("Q1", sql, &RunOptions::from(m))
            .expect("executes");
        assert_eq!(canonicalize(run.output.into_rows()), want, "{m}");
    }
}

/// SQL alias instances live in a per-query namespace and are cleaned
/// up when the run finishes: nothing leaks into the shared catalog or
/// the DFS, and explicitly-registered aliases still share storage.
#[test]
fn sql_aliases_are_transient_and_explicit_aliases_share_rows() {
    let engine = engine_with_calls(80);
    engine
        .run_sql("SELECT t1.id FROM calls t1, calls t2 WHERE t1.d = t2.d AND t1.bt < t2.bt")
        .expect("runs");
    for inst in ["t1", "t2"] {
        assert!(
            engine.relation(inst).is_none(),
            "{inst} must not persist after the query"
        );
    }
    let leftovers: Vec<String> = engine
        .cluster()
        .dfs()
        .list()
        .into_iter()
        .filter(|f| f.contains("__q"))
        .collect();
    assert!(leftovers.is_empty(), "stale instance files: {leftovers:?}");
    // The explicit registration path still shares rows with the base.
    let base = engine.relation("calls").expect("loaded");
    let _ = engine.load_alias_of("calls", "t9").expect("alias");
    let alias = engine.relation("t9").expect("registered");
    assert!(std::ptr::eq(base.rows().as_ptr(), alias.rows().as_ptr()));
}

#[test]
fn unknown_base_relation_is_typed_error() {
    let engine = engine_with_calls(30);
    let err = engine
        .run_sql("SELECT t1.id FROM nope t1, calls t2 WHERE t1.d = t2.d")
        .unwrap_err();
    match err {
        EngineError::Sql(StorageError::UnknownRelation { name }) => assert_eq!(name, "nope"),
        other => panic!("expected UnknownRelation, got {other:?}"),
    }
}

#[test]
fn unknown_column_is_typed_error() {
    let engine = engine_with_calls(30);
    let err = engine
        .run_sql("SELECT t1.id FROM calls t1, calls t2 WHERE t1.zz = t2.d")
        .unwrap_err();
    match err {
        EngineError::Sql(StorageError::UnknownColumn { column, .. }) => assert_eq!(column, "zz"),
        other => panic!("expected UnknownColumn, got {other:?}"),
    }
}

#[test]
fn bad_operator_is_typed_error() {
    let engine = engine_with_calls(30);
    for sql in [
        "SELECT t1.id FROM calls t1, calls t2 WHERE t1.d ?? t2.d",
        "SELECT t1.id FROM calls t1, calls t2 WHERE t1.d ! t2.d",
    ] {
        match engine.run_sql(sql) {
            Err(EngineError::Sql(_)) => {}
            other => panic!("`{sql}` should be a SQL error, got {other:?}"),
        }
    }
}

#[test]
fn empty_projection_is_typed_error() {
    let engine = engine_with_calls(30);
    let err = engine
        .run_sql("SELECT FROM calls t1, calls t2 WHERE t1.d = t2.d")
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Sql(_)),
        "empty projection should be a SQL error, got {err:?}"
    );
}

/// Per-query alias namespaces: the same alias bound to *different*
/// bases in consecutive (or concurrent) queries is no longer a
/// conflict — each query reads its own base's data. The engine-global
/// conflict check still guards explicit registrations.
#[test]
fn alias_rebinding_across_queries_reads_each_querys_own_base() {
    let gen = MobileGen {
        users: 100,
        base_stations: 20,
        days: 6,
        ..Default::default()
    };
    let engine = Engine::with_units(8);
    let _ = engine.load_relation(&gen.generate("calls", 60));
    let _ = engine.load_relation(&gen.generate("texts", 40));
    let on_calls = engine
        .run_sql("SELECT a.id FROM calls a, calls b WHERE a.d = b.d AND a.bt < b.bt")
        .expect("first binding runs");
    // The same alias `a` over a different base now simply works …
    let on_texts = engine
        .run_sql("SELECT a.id FROM texts a, texts b WHERE a.d = b.d AND a.bt < b.bt")
        .expect("rebinding in a fresh query namespace runs");
    // … and each run saw its own base (the bases have different sizes,
    // so identical outputs would be a wrong-data smoking gun).
    assert_eq!(on_calls.output.schema().fields()[0].name, "a.id");
    assert_eq!(on_texts.output.schema().fields()[0].name, "a.id");
    // Explicit engine-global registration still refuses to rebind.
    let _ = engine.load_alias_of("calls", "a").expect("first bind");
    match engine.load_alias_of("texts", "a") {
        Err(EngineError::AliasConflict {
            alias,
            bound_to,
            requested,
        }) => {
            assert_eq!(alias, "a");
            assert_eq!(bound_to, "calls");
            assert_eq!(requested, "texts");
        }
        other => panic!("expected AliasConflict, got {other:?}"),
    }
    // The original binding still serves, identically.
    let again = engine
        .run_sql("SELECT a.id FROM calls a, calls b WHERE a.d = b.d AND a.bt < b.bt")
        .expect("original binding still runs");
    assert_eq!(again.output.len(), on_calls.output.len());
}

/// A concurrent SQL batch binds every query's aliases in private
/// namespaces before the fan-out (regression: parsed-but-never-run
/// aliases used to 404) and isolates parse failures to their slot.
#[test]
fn run_sql_many_registers_aliases_and_isolates_failures() {
    let engine = engine_with_calls(100);
    let sqls = [
        "SELECT t1.id FROM calls t1, calls t2 WHERE t1.bt < t2.bt AND t1.bsc = t2.bsc",
        "SELECT * FROM calls a, calls b WHERE a.bsc = b.bsc AND a.bt <= b.bt",
        "SELECT x.id FROM nope x, calls y WHERE x.d = y.d",
        "SELECT u.id FROM calls u, calls v WHERE u.d = v.d",
    ];
    let results = engine.run_sql_many(&sqls, &RunOptions::default());
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert!(results[1].is_ok(), "{:?}", results[1]);
    assert!(
        matches!(
            &results[2],
            Err(EngineError::Sql(StorageError::UnknownRelation { name })) if name == "nope"
        ),
        "{:?}",
        results[2]
    );
    assert!(results[3].is_ok(), "{:?}", results[3]);
    // Batch instances are transient: the shared catalog stays clean.
    for inst in ["a", "b", "u", "v", "t1", "t2"] {
        assert!(
            engine.relation(inst).is_none(),
            "{inst} must not persist after the batch"
        );
    }
    assert!(engine
        .cluster()
        .dfs()
        .list()
        .iter()
        .all(|f| !f.contains("__q")));
}

#[test]
fn malformed_sql_never_panics() {
    let engine = engine_with_calls(20);
    for sql in [
        "",
        "SELECT",
        "SELECT * FROM",
        "SELECT * FROM calls a",
        "SELECT * FROM calls a, calls b",
        "SELECT * FROM calls a, calls b WHERE",
        "SELECT * FROM calls a, calls b WHERE a.d < b.d garbage",
        "WHERE a.d < b.d",
        "SELECT * FROM calls a, calls b WHERE a.d < a.d", // same relation
    ] {
        assert!(engine.run_sql(sql).is_err(), "`{sql}` must error");
    }
}
