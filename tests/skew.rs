//! Load-balance tests: the Hilbert partition's claim (§5.1) is that
//! reducer workload stays balanced *regardless of the key
//! distribution*, because components partition the cross-product
//! space, not the key domain. Hash partitioning, by contrast, sends
//! every copy of a hot key to one reducer.

use mwtj_datagen::SyntheticGen;
use mwtj_hilbert::PartitionStrategy;
use mwtj_join::{ChainThetaJob, IntermediateShape, PairJob, PairStrategy};
use mwtj_mapreduce::{ClusterConfig, Dfs, Engine, InputSpec, JobMetrics};
use mwtj_query::{QueryBuilder, ThetaOp};
use mwtj_storage::{Relation, Schema};

/// One heavily skewed relation: 40% of rows share key 0.
fn skewed() -> Relation {
    SyntheticGen::default().skewed_keys("s", 1_500, 200, 0.35)
}

fn query(rel: &Relation) -> mwtj_query::MultiwayQuery {
    let l = Schema::new("l", rel.schema().fields().to_vec());
    let r = Schema::new("r", rel.schema().fields().to_vec());
    QueryBuilder::new("skewq")
        .relation(l)
        .relation(r)
        .join("l", "k", ThetaOp::Eq, "r", "k")
        .build()
        .expect("query")
}

fn run_hash(rel: &Relation, reducers: u32) -> JobMetrics {
    let cfg = ClusterConfig::with_units(32);
    let dfs = Dfs::new();
    dfs.put_relation("s", rel, &cfg);
    let q = query(rel);
    let compiled = q.compile().expect("compiles");
    let preds: Vec<_> = compiled
        .per_condition
        .iter()
        .flat_map(|c| c.iter().copied())
        .collect();
    let job = PairJob::new(
        "hash_skew",
        &q,
        IntermediateShape::base(&q, 0),
        IntermediateShape::base(&q, 1),
        preds,
        PairStrategy::EquiHash,
        (rel.len() as u64, rel.len() as u64),
        reducers,
    );
    let engine = Engine::new(cfg, dfs);
    engine
        .run(
            &job,
            &[InputSpec::new("s", 0), InputSpec::new("s", 1)],
            32,
            job.reducers(),
            None,
        )
        .metrics
}

fn run_hilbert(rel: &Relation, reducers: u32) -> JobMetrics {
    let cfg = ClusterConfig::with_units(32);
    let dfs = Dfs::new();
    dfs.put_relation("s", rel, &cfg);
    let q = query(rel);
    let job = ChainThetaJob::new(
        &q,
        &[0],
        &[rel.len() as u64, rel.len() as u64],
        reducers,
        PartitionStrategy::Hilbert,
    );
    let engine = Engine::new(cfg, dfs);
    engine
        .run(
            &job,
            &[InputSpec::new("s", 0), InputSpec::new("s", 1)],
            32,
            job.reducers(),
            None,
        )
        .metrics
}

/// The Hilbert partition's reducer *input* skew must stay near 1 even
/// under a 40%-hot key, while hash partitioning concentrates the hot
/// key on one reducer.
#[test]
fn hilbert_input_skew_is_bounded_under_hot_keys() {
    let rel = skewed();
    let hilbert = run_hilbert(&rel, 16);
    let hash = run_hash(&rel, 16);
    assert!(
        hilbert.skew() < 2.0,
        "hilbert reducer-input skew {:.2} should be near 1",
        hilbert.skew()
    );
    assert!(
        hash.skew() > hilbert.skew(),
        "hash skew {:.2} should exceed hilbert skew {:.2}",
        hash.skew(),
        hilbert.skew()
    );
}

/// Both produce the same (exact) join result despite the skew.
#[test]
fn skewed_results_agree() {
    let rel = skewed();
    let hilbert = run_hilbert(&rel, 12);
    let hash = run_hash(&rel, 12);
    assert_eq!(hilbert.output_records, hash.output_records);
    assert!(hilbert.output_records > 0);
}

/// The price of balance: Hilbert replicates tuples (√k_R per side)
/// where hash sends one copy — the paper's copy-volume/balance
/// trade-off, visible in the metrics.
#[test]
fn hilbert_pays_replication_for_balance() {
    let rel = skewed();
    let hilbert = run_hilbert(&rel, 16);
    let hash = run_hash(&rel, 16);
    assert!(
        hilbert.map_output_records > hash.map_output_records,
        "hilbert {} copies should exceed hash {} copies",
        hilbert.map_output_records,
        hash.map_output_records
    );
    // But bounded by the √k_R closed form (+ slack for segment raggedness).
    let bound = (16.0f64).sqrt() * 1.8 * hash.map_output_records as f64;
    assert!(
        (hilbert.map_output_records as f64) < bound,
        "{} copies exceeds √k_R bound {}",
        hilbert.map_output_records,
        bound
    );
}
