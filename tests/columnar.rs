//! Columnar storage is *transparent*: for every method, partition
//! strategy and skip setting, a columnar-backed engine must produce
//! output, plans and simulated Eq. 2–4 metrics bit-identical to a
//! row-major engine over the same data. The columnar layout is purely
//! a host-side accelerator — it may change how fast the host computes,
//! never what the simulated cluster observes. Property tests pin the
//! CSV → column-builder → row-gather round trip (quoted embedded
//! newlines, NULLs, integers beyond 2^53, non-finite doubles) and the
//! dictionary-encoded string order against `Value` semantics.

use mwtj_core::{Engine, Method, QueryRun, RunOptions};
use mwtj_hilbert::PartitionStrategy;
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::{
    parse_csv, to_csv, ColumnData, Columns, DataType, Relation, Schema, Tuple, Value,
};
use proptest::prelude::*;
use std::cmp::Ordering;

/// A relation exercising every storage class: an Int join key, a
/// Double payload (including -0.0 and values beyond 2^53), a
/// dictionary-friendly Str payload with duplicates, and NULLs in both
/// payload columns. Types match the schema, so the columnar backing
/// actually attaches.
fn typed_rel(name: &str, n: i64, lo: i64) -> Relation {
    let schema = Schema::from_pairs(
        name,
        &[
            ("a", DataType::Int),
            ("d", DataType::Double),
            ("s", DataType::Str),
        ],
    );
    let tags = ["alpha", "beta", "gamma"];
    let rows = (0..n)
        .map(|i| {
            let d = match i % 5 {
                0 => Value::Null,
                1 => Value::Double(-0.0),
                2 => Value::Double(((1i64 << 53) + i) as f64),
                _ => Value::Double(i as f64 * 0.5 - 7.25),
            };
            let s = if i % 7 == 0 {
                Value::Null
            } else {
                Value::str(tags[(i % 3) as usize])
            };
            Tuple::new(vec![Value::Int(lo + i), d, s])
        })
        .collect();
    Relation::from_rows(schema, rows).expect("typed_rel rows match schema")
}

/// Fresh engine pair over identical relations: one columnar (the
/// default), one forced row-major. The chain query joins on the Int
/// key but drags the Double/Str payloads through every shuffle.
fn engine_pair() -> (Engine, Engine, MultiwayQuery) {
    let columnar = Engine::with_units(16);
    let row_major = Engine::with_units(16);
    row_major.set_columnar_storage(false);
    let big = typed_rel("big", 4_000, 0);
    let mid = typed_rel("mid", 25, 50);
    let top = typed_rel("top", 25, 90);
    for engine in [&columnar, &row_major] {
        let _ = engine.load_relation(&big);
        let _ = engine.load_relation(&mid);
        let _ = engine.load_relation(&top);
    }
    let q = QueryBuilder::new("chain")
        .relation(big.schema().clone())
        .relation(mid.schema().clone())
        .relation(top.schema().clone())
        .join("big", "a", ThetaOp::Lt, "mid", "a")
        .join("mid", "a", ThetaOp::Le, "top", "a")
        .build()
        .unwrap();
    (columnar, row_major, q)
}

/// Every deterministic field of a run, with floats captured by bit
/// pattern. Host wall-clock (`real_secs`) and correlation ids
/// (`ticket`, `trace_id`) are deliberately excluded — everything else
/// must match exactly.
fn sim_fingerprint(run: &QueryRun) -> Vec<String> {
    let mut fp = vec![format!(
        "predicted={:016x} sim={:016x} units={}",
        run.predicted_secs.to_bits(),
        run.sim_secs.to_bits(),
        run.granted_units
    )];
    for j in &run.jobs {
        fp.push(format!(
            "{} map={} red={} units={} in={}B/{}r out={}B/{}r shuffle={}B/{}r \
             rmax={} rmean={:016x} cand={} simM={:016x} simS={:016x} simT={:016x} \
             att={}/{} zones={},{},{},{},{},{}",
            j.name,
            j.map_tasks,
            j.reduce_tasks,
            j.units,
            j.input_bytes,
            j.input_records,
            j.output_bytes,
            j.output_records,
            j.map_output_bytes,
            j.map_output_records,
            j.reduce_input_max_bytes,
            j.reduce_input_mean_bytes.to_bits(),
            j.reduce_candidates,
            j.sim_map_end_secs.to_bits(),
            j.sim_shuffle_end_secs.to_bits(),
            j.sim_total_secs.to_bits(),
            j.map_attempts,
            j.reduce_attempts,
            j.zone_blocks,
            j.zone_blocks_pruned,
            j.zone_pairs,
            j.zone_pairs_pruned,
            j.zone_rows_total,
            j.zone_rows_pruned,
        ));
    }
    fp
}

/// Every method × every partition strategy × skipping on/off: the
/// columnar engine's run is bit-identical to the row-major engine's —
/// rows, schema, plan, and every simulated metric down to f64 bits.
#[test]
fn columnar_is_bit_identical_across_methods_and_partitions() {
    let (columnar, row_major, q) = engine_pair();
    // Guard: the two engines really hold different layouts, so the
    // comparison below is not vacuous.
    let cs = columnar.stats_snapshot().storage;
    let rs = row_major.stats_snapshot().storage;
    assert_eq!(
        cs.columnar_relations, 3,
        "columnar engine must attach backing"
    );
    assert_eq!(rs.columnar_relations, 0, "row-major engine must not");
    assert!(cs.dict_entries > 0, "Str column must dictionary-encode");
    assert!(cs.null_values > 0, "NULLs must be present in the backing");
    for m in Method::ALL {
        for p in [
            PartitionStrategy::Hilbert,
            PartitionStrategy::Grid,
            PartitionStrategy::ZOrder,
        ] {
            for skip in [true, false] {
                let opts = RunOptions::new().method(m).partition(p).skipping(skip);
                let col = columnar
                    .run(&q, &opts)
                    .unwrap_or_else(|e| panic!("{m}:{p} skip={skip} columnar: {e}"));
                let row = row_major
                    .run(&q, &opts)
                    .unwrap_or_else(|e| panic!("{m}:{p} skip={skip} row-major: {e}"));
                assert_eq!(col.output.rows(), row.output.rows(), "{m}:{p}:{skip} rows");
                assert_eq!(
                    col.output.schema(),
                    row.output.schema(),
                    "{m}:{p}:{skip} schema"
                );
                assert_eq!(col.plan, row.plan, "{m}:{p}:{skip} plan");
                assert_eq!(
                    sim_fingerprint(&col),
                    sim_fingerprint(&row),
                    "{m}:{p}:{skip} simulated metrics"
                );
            }
        }
    }
}

/// The engine-level layout switch is observable only through storage
/// stats — flipping it after load changes nothing already resident.
#[test]
fn layout_switch_applies_at_load_time_only() {
    let engine = Engine::with_units(4);
    let rel = typed_rel("r", 100, 0);
    let _ = engine.load_relation(&rel);
    assert_eq!(engine.stats_snapshot().storage.columnar_relations, 1);
    // Disabling afterwards must not strip what is already loaded …
    engine.set_columnar_storage(false);
    assert_eq!(engine.stats_snapshot().storage.columnar_relations, 1);
    // … but relations loaded from now on arrive row-major.
    let _ = engine.load_relation(&typed_rel("r2", 100, 0));
    let snap = engine.stats_snapshot().storage;
    assert_eq!(snap.relations, 2);
    assert_eq!(snap.columnar_relations, 1);
}

/// Bit-exact `Value` equality: derived `PartialEq` treats -0.0 == 0.0
/// and NaN != NaN, so doubles are compared by bit pattern instead.
fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn rows_bits_eq(a: &[Tuple], b: &[Tuple]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.values().len() == rb.values().len()
                && ra
                    .values()
                    .iter()
                    .zip(rb.values())
                    .all(|(va, vb)| value_bits_eq(va, vb))
        })
}

/// One generated cell per column class, exercising the hard cases the
/// issue names: i64 beyond ±2^53, non-finite and negative-zero
/// doubles, strings with quotes, commas and embedded newlines, and
/// NULLs everywhere.
fn int_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1000i64..1000).prop_map(Value::Int),
        Just(Value::Int((1i64 << 53) + 1)),
        Just(Value::Int(i64::MIN)),
    ]
}

fn double_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        // Raw bit patterns, with NaN payloads canonicalised: CSV text
        // spells every NaN "NaN", so only the canonical quiet NaN can
        // round-trip bit-exactly (the columnar store itself preserves
        // whatever bits the parser produced).
        any::<f64>().prop_map(|d| Value::Double(if d.is_nan() { f64::NAN } else { d })),
        Just(Value::Double(f64::NAN)),
        Just(Value::Double(f64::INFINITY)),
        Just(Value::Double(f64::NEG_INFINITY)),
        Just(Value::Double(-0.0)),
    ]
}

fn str_cell() -> impl Strategy<Value = Value> {
    // Never empty: the CSV dialect spells both NULL and the empty
    // string as an empty field, so only non-empty strings round-trip.
    prop_oneof![
        Just(Value::Null),
        "[a-c]{1,3}".prop_map(Value::str),
        prop::collection::vec(
            prop_oneof![
                Just('"'),
                Just(','),
                Just('\n'),
                Just('x'),
                Just('é'),
                Just(' ')
            ],
            1..6
        )
        .prop_map(|cs| Value::str(cs.into_iter().collect::<String>())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV text → streaming column builders → row gather is an exact
    /// round trip: the parsed relation's gathered columnar rows equal
    /// its row-major rows bit-for-bit, and both equal the source rows.
    #[test]
    fn csv_column_builders_round_trip(
        rows in prop::collection::vec((int_cell(), double_cell(), str_cell()), 0..40)
    ) {
        let schema = Schema::from_pairs(
            "t",
            &[("a", DataType::Int), ("d", DataType::Double), ("s", DataType::Str)],
        );
        let source: Vec<Tuple> = rows
            .into_iter()
            .map(|(a, d, s)| Tuple::new(vec![a, d, s]))
            .collect();
        let reference = Relation::from_rows_unchecked(schema.clone(), source.clone());
        let text = to_csv(&reference);
        let parsed = parse_csv(&schema, &text).expect("generated CSV must parse");
        prop_assert!(rows_bits_eq(parsed.rows(), &source), "parsed rows differ");
        let cols = parsed.columns().expect("parse_csv must attach columnar backing");
        prop_assert!(
            rows_bits_eq(&cols.gather_rows(), parsed.rows()),
            "gathered columnar rows differ from row-major rows"
        );
        prop_assert_eq!(cols.len(), source.len());
        prop_assert_eq!(cols.layout(), parsed.layout().unwrap());
    }

    /// Dictionary-encoded string comparisons agree with `Value::Str`
    /// semantics: resolving two codes through the shared dictionary and
    /// comparing the `&str`s gives exactly `sql_cmp` / `total_cmp` of
    /// the original values.
    #[test]
    fn dictionary_order_matches_value_order(
        cells in prop::collection::vec(str_cell(), 1..30)
    ) {
        let rows: Vec<Tuple> = cells.iter().map(|v| Tuple::new(vec![v.clone()])).collect();
        let cols = Columns::from_rows(vec![DataType::Str], &rows).unwrap();
        let col = cols.column(0);
        let ColumnData::Str { codes, dict } = col.data() else {
            panic!("Str column must dictionary-encode");
        };
        for i in 0..cells.len() {
            for j in 0..cells.len() {
                let via_dict: Option<Ordering> = if col.is_null(i) || col.is_null(j) {
                    None
                } else {
                    Some(dict.get(codes[i]).as_ref().cmp(dict.get(codes[j]).as_ref()))
                };
                prop_assert_eq!(
                    via_dict,
                    cells[i].sql_cmp(&cells[j]),
                    "sql_cmp disagreement at ({}, {})", i, j
                );
                if let Some(ord) = via_dict {
                    prop_assert_eq!(
                        ord,
                        cells[i].total_cmp(&cells[j]),
                        "total_cmp disagreement at ({}, {})", i, j
                    );
                }
                // Equal codes ⇔ SQL-equal strings: the dictionary never
                // splits one string across two codes or merges two.
                if !col.is_null(i) && !col.is_null(j) {
                    prop_assert_eq!(
                        codes[i] == codes[j],
                        cells[i].sql_cmp(&cells[j]) == Some(Ordering::Equal)
                    );
                }
            }
        }
    }
}
