//! Fault-tolerance integration tests: injected task failures really
//! abort attempts mid-execution (error- and panic-mode), the engine
//! retries from materialised input, and results never change — only
//! the simulated clock and the retry counters.

use mwtj_datagen::SyntheticGen;
use mwtj_join::{IntermediateShape, PairJob, PairStrategy};
use mwtj_mapreduce::{
    ClusterConfig, Dfs, Emit, Engine, ExecError, FaultPlan, InputSpec, MrJob, TaggedRecord,
};
use mwtj_query::{QueryBuilder, ThetaOp};
use mwtj_storage::{Schema, Tuple};

fn engine_with(fault: FaultPlan) -> (Engine, PairJob, Vec<InputSpec>) {
    let cfg = ClusterConfig::with_units(16);
    let gen = SyntheticGen::default();
    let rel = gen.uniform_keys("s", 4_000, 200);
    let dfs = Dfs::new();
    dfs.put_relation("s", &rel, &cfg);
    let l = Schema::new("l", rel.schema().fields().to_vec());
    let r = Schema::new("r", rel.schema().fields().to_vec());
    let q = QueryBuilder::new("ft")
        .relation(l)
        .relation(r)
        .join("l", "k", ThetaOp::Eq, "r", "k")
        .build()
        .expect("query");
    let compiled = q.compile().expect("compiles");
    let preds: Vec<_> = compiled
        .per_condition
        .iter()
        .flat_map(|c| c.iter().copied())
        .collect();
    let job = PairJob::new(
        "ft_join",
        &q,
        IntermediateShape::base(&q, 0),
        IntermediateShape::base(&q, 1),
        preds,
        PairStrategy::EquiHash,
        (4_000, 4_000),
        8,
    );
    let mut engine = Engine::new(cfg, dfs);
    engine.set_fault_plan(fault);
    let inputs = vec![InputSpec::new("s", 0), InputSpec::new("s", 1)];
    (engine, job, inputs)
}

#[test]
fn failures_do_not_change_results() {
    let (clean_engine, clean_job, clean_inputs) = engine_with(FaultPlan::none());
    let clean = clean_engine.run(&clean_job, &clean_inputs, 16, clean_job.reducers(), None);

    let (faulty_engine, faulty_job, faulty_inputs) =
        engine_with(FaultPlan::with_probability(0.4, 1234));
    let faulty = faulty_engine.run(&faulty_job, &faulty_inputs, 16, faulty_job.reducers(), None);

    assert_eq!(
        clean.output.sorted_rows(),
        faulty.output.sorted_rows(),
        "injected failures must not change the answer"
    );
    assert_eq!(clean.metrics.output_records, faulty.metrics.output_records);
}

#[test]
fn failures_inflate_the_simulated_clock_and_attempts() {
    let (clean_engine, job, inputs) = engine_with(FaultPlan::none());
    let clean = clean_engine.run(&job, &inputs, 16, job.reducers(), None);

    let (faulty_engine, job_f, inputs_f) = engine_with(FaultPlan::with_probability(0.4, 99));
    let faulty = faulty_engine.run(&job_f, &inputs_f, 16, job_f.reducers(), None);

    assert!(
        faulty.metrics.map_attempts > faulty.metrics.map_tasks
            || faulty.metrics.reduce_attempts > faulty.metrics.reduce_tasks,
        "a 40% failure rate must produce retries (map {}→{}, reduce {}→{})",
        faulty.metrics.map_tasks,
        faulty.metrics.map_attempts,
        faulty.metrics.reduce_tasks,
        faulty.metrics.reduce_attempts
    );
    assert!(
        faulty.metrics.sim_total_secs > clean.metrics.sim_total_secs,
        "retries must cost simulated time ({} !> {})",
        faulty.metrics.sim_total_secs,
        clean.metrics.sim_total_secs
    );
}

#[test]
fn fault_runs_are_reproducible() {
    let (e1, j1, i1) = engine_with(FaultPlan::with_probability(0.3, 77));
    let (e2, j2, i2) = engine_with(FaultPlan::with_probability(0.3, 77));
    let a = e1.run(&j1, &i1, 16, j1.reducers(), None);
    let b = e2.run(&j2, &i2, 16, j2.reducers(), None);
    assert_eq!(a.metrics.map_attempts, b.metrics.map_attempts);
    assert!((a.metrics.sim_total_secs - b.metrics.sim_total_secs).abs() < 1e-12);
}

/// Retries are *real*: the metrics count actually-rerun attempts, the
/// attempt totals add up (`attempts = tasks + real retries` when every
/// task eventually succeeds), and roughly half the injected aborts die
/// as caught panics rather than injected errors.
#[test]
fn real_retries_and_caught_panics_are_counted() {
    let (engine, job, inputs) = engine_with(FaultPlan::with_probability(0.4, 1234));
    let run = engine.run(&job, &inputs, 16, job.reducers(), None);
    let m = &run.metrics;
    assert!(
        m.real_map_retries + m.real_reduce_retries > 0,
        "a 40% failure rate must rerun some attempts for real"
    );
    assert_eq!(
        m.map_attempts,
        m.map_tasks + m.real_map_retries,
        "every map attempt is either a task's success or a counted retry"
    );
    assert_eq!(
        m.reduce_attempts,
        m.reduce_tasks + m.real_reduce_retries,
        "every reduce attempt is either a task's success or a counted retry"
    );
    assert!(
        m.panics_caught > 0,
        "panic-mode injection must exercise catch_unwind"
    );
    assert!(
        m.panics_caught <= m.real_map_retries + m.real_reduce_retries,
        "caught panics are a subset of real retries"
    );
}

/// A job whose reduce genuinely panics on every attempt. Injected
/// faults spare the final allowed attempt by construction, so only a
/// real task bug like this can exhaust `max_attempts` — it must
/// surface as a typed `TaskFailed`, not an engine crash.
struct PanickingReduce;

impl MrJob for PanickingReduce {
    fn name(&self) -> String {
        "always_panics".into()
    }
    fn output_schema(&self) -> Schema {
        Schema::from_pairs("boom", &[("k", mwtj_storage::DataType::Int)])
    }
    fn map(&self, _tag: u8, row: &Tuple, _seed: u64, _idx: usize, emit: &mut Emit<'_>) {
        emit(
            0,
            TaggedRecord {
                tag: 0,
                aux: 0,
                tuple: row.clone(),
            },
        );
    }
    fn reduce(&self, _key: u64, _records: &[TaggedRecord], _out: &mut Vec<Tuple>) -> u64 {
        panic!("deterministic task bug");
    }
}

#[test]
fn panicking_task_exhausts_attempts_into_typed_error() {
    let cfg = ClusterConfig::with_units(8);
    let gen = SyntheticGen::default();
    let rel = gen.uniform_keys("s", 500, 50);
    let dfs = Dfs::new();
    dfs.put_relation("s", &rel, &cfg);
    let engine = Engine::new(cfg, dfs);
    let inputs = vec![InputSpec::new("s", 0)];
    let err = engine
        .try_run_with(
            &PanickingReduce,
            &inputs,
            8,
            4,
            None,
            &FaultPlan {
                fail_probability: 0.0,
                max_attempts: 3,
                seed: 0,
            },
            false,
            None,
        )
        .expect_err("an always-panicking reduce cannot succeed");
    match err {
        ExecError::TaskFailed {
            stage,
            attempts,
            ref detail,
            ..
        } => {
            assert_eq!(stage, "reduce");
            assert_eq!(attempts, 3, "the full attempt budget is spent");
            assert!(
                detail.contains("panic"),
                "detail carries the panic: {detail}"
            );
            assert!(
                detail.contains("deterministic task bug"),
                "detail carries the payload: {detail}"
            );
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
}

#[test]
fn higher_failure_rates_cost_more() {
    let mut prev = 0.0;
    for p in [0.0, 0.2, 0.45] {
        let plan = if p == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::with_probability(p, 5)
        };
        let (e, j, i) = engine_with(plan);
        let run = e.run(&j, &i, 16, j.reducers(), None);
        assert!(
            run.metrics.sim_total_secs >= prev,
            "p={p}: {} < {prev}",
            run.metrics.sim_total_secs
        );
        prev = run.metrics.sim_total_secs;
    }
}
