//! End-to-end integration tests: every benchmark query, every planner,
//! checked for exact agreement with the single-threaded oracle on
//! small data — all through the `Engine` API.

use mwtj_core::benchqueries::{mobile_query, tpch_query, MobileQuery, TpchQuery};
use mwtj_core::{Engine, Method, RunOptions};
use mwtj_datagen::{MobileGen, TpchGen};
use mwtj_join::oracle::canonicalize;
use mwtj_storage::Relation;

fn mobile_system(which: MobileQuery, rows: usize, k_p: u32) -> Engine {
    let engine = Engine::with_units(k_p);
    let gen = MobileGen {
        users: 200,
        base_stations: 30,
        days: 10,
        ..Default::default()
    };
    let calls = gen.generate("calls", rows);
    let _ = engine.load_relation(&calls);
    for inst in which.instances() {
        let _ = engine
            .load_alias_of("calls", inst)
            .expect("base table is loaded");
    }
    engine
}

fn check_all_methods(engine: &Engine, q: &mwtj_query::MultiwayQuery) {
    let want = canonicalize(engine.oracle(q).expect("oracle runs"));
    for m in Method::ALL {
        let run = engine.run(q, &RunOptions::from(m)).expect("query runs");
        let got = canonicalize(run.output.into_rows());
        assert_eq!(got.len(), want.len(), "{m} row count for {}", q.name);
        assert_eq!(got, want, "{m} rows for {}", q.name);
    }
}

#[test]
fn mobile_q1_exact_all_methods() {
    let q = mobile_query(MobileQuery::Q1);
    let sys = mobile_system(MobileQuery::Q1, 220, 24);
    check_all_methods(&sys, &q);
}

#[test]
fn mobile_q2_exact_all_methods() {
    let q = mobile_query(MobileQuery::Q2);
    let sys = mobile_system(MobileQuery::Q2, 150, 24);
    check_all_methods(&sys, &q);
}

#[test]
fn mobile_q3_exact_all_methods() {
    let q = mobile_query(MobileQuery::Q3);
    let sys = mobile_system(MobileQuery::Q3, 120, 24);
    check_all_methods(&sys, &q);
}

#[test]
fn mobile_q4_exact_all_methods() {
    let q = mobile_query(MobileQuery::Q4);
    let sys = mobile_system(MobileQuery::Q4, 90, 24);
    check_all_methods(&sys, &q);
}

fn tpch_system(which: TpchQuery, scale: f64, k_p: u32) -> Engine {
    let engine = Engine::with_units(k_p);
    let gen = TpchGen {
        scale,
        ..Default::default()
    };
    for (inst, base) in which.instances() {
        let data: Relation = match *base {
            "supplier" => gen.supplier(),
            "customer" => gen.customer(),
            "orders" => gen.orders(),
            "part" => gen.part(),
            "nation" => gen.nation(),
            "lineitem" => gen.lineitem(),
            other => panic!("table {other}"),
        };
        let _ = engine.load_relation(&data.rename(inst));
    }
    engine
}

#[test]
fn tpch_q7_exact_all_methods() {
    let q = tpch_query(TpchQuery::Q7);
    let sys = tpch_system(TpchQuery::Q7, 0.0002, 24);
    check_all_methods(&sys, &q);
}

#[test]
fn tpch_q17_exact_all_methods() {
    let q = tpch_query(TpchQuery::Q17);
    let sys = tpch_system(TpchQuery::Q17, 0.0002, 24);
    check_all_methods(&sys, &q);
}

#[test]
fn tpch_q18_exact_all_methods() {
    let q = tpch_query(TpchQuery::Q18);
    let sys = tpch_system(TpchQuery::Q18, 0.0002, 24);
    check_all_methods(&sys, &q);
}

#[test]
fn tpch_q21_exact_all_methods() {
    let q = tpch_query(TpchQuery::Q21);
    let sys = tpch_system(TpchQuery::Q21, 0.0002, 24);
    check_all_methods(&sys, &q);
}

/// The answer must not depend on the processing-unit budget.
#[test]
fn results_invariant_under_kp() {
    let q = mobile_query(MobileQuery::Q1);
    let runs: Vec<Vec<mwtj_storage::Tuple>> = [4u32, 16, 64]
        .iter()
        .map(|&k_p| {
            let sys = mobile_system(MobileQuery::Q1, 150, k_p);
            canonicalize(
                sys.run(&q, &RunOptions::default())
                    .expect("query runs")
                    .output
                    .into_rows(),
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

/// Fewer processing units must never make the simulated makespan
/// substantially shorter (the paper's resource-awareness premise).
/// Tolerance is loose: at toy sizes the planner's k_R heuristic can
/// pick a slightly different (and occasionally luckier) reducer count
/// per k_P — Eq. 10 is an approximation, not an oracle — but an
/// 8-unit cluster must never *meaningfully* beat a 64-unit one.
#[test]
fn simulated_time_monotone_in_kp() {
    let q = mobile_query(MobileQuery::Q1);
    let t64 = mobile_system(MobileQuery::Q1, 200, 64)
        .run(&q, &RunOptions::default())
        .expect("query runs")
        .sim_secs;
    let t8 = mobile_system(MobileQuery::Q1, 200, 8)
        .run(&q, &RunOptions::default())
        .expect("query runs")
        .sim_secs;
    assert!(
        t8 >= t64 * 0.5,
        "8 units ({t8:.3}s) should not meaningfully beat 64 units ({t64:.3}s)"
    );
}
