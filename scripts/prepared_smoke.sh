#!/usr/bin/env bash
# CI smoke for the prepared-statement lifecycle: prepare once, execute
# twice with different parameters, and assert the second execution was
# a plan-cache HIT (planning skipped). Also exercises close semantics
# (typed unknown-id error) and the one-shot client's --prepare flow
# over TCP. Expects the release binary
# (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server

# ---- stdin mode: the stateful lifecycle on one session ----
OUT=$(printf '%s\n' \
  'prepare SELECT x.a, y.b FROM r x, s y WHERE x.a + ? <= y.a' \
  'execute 1 0' \
  'stats' \
  'execute 1 5' \
  'stats' \
  'close 1' \
  'execute 1 0' \
  'quit' \
  | "$BIN" --stdin --demo)

grep -q '^ok stmt=1 params=1$' <<<"$OUT" \
  || { echo "prepared smoke: bad prepare response"; echo "$OUT"; exit 1; }

ROWS=$(grep -c '^ok rows=' <<<"$OUT")
[ "$ROWS" -eq 2 ] \
  || { echo "prepared smoke: expected 2 executions, got $ROWS"; echo "$OUT"; exit 1; }

# hits= from the two stats lines: the second execution (different
# params!) must have reused the first one's plan.
HITS=$(sed -n 's/^ok entries=.* hits=\([0-9]*\).*/\1/p' <<<"$OUT")
H1=$(head -1 <<<"$HITS"); H2=$(tail -1 <<<"$HITS")
[ "$H2" -gt "$H1" ] \
  || { echo "prepared smoke: no plan-cache hit on 2nd execute (hits $H1 -> $H2)"; echo "$OUT"; exit 1; }

grep -q '^ok closed=1$' <<<"$OUT" \
  || { echo "prepared smoke: close failed"; echo "$OUT"; exit 1; }
grep -q '^err unknown statement id 1' <<<"$OUT" \
  || { echo "prepared smoke: executing a closed statement must be a typed error"; echo "$OUT"; exit 1; }

echo "prepared smoke (stdin): plan-cache hits $H1 -> $H2 across two parameterised executions"

# ---- TCP: the client's --prepare lifecycle demo ----
ADDR=${MWTJ_PREPARED_SMOKE_ADDR:-127.0.0.1:7413}
SERVER_LOG=$(mktemp)
"$BIN" --listen "$ADDR" --demo >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SERVER_LOG"' EXIT

# Bounded poll for readiness: fail loudly (with the server log) if the
# server dies or never answers, instead of limping into later commands.
READY=0
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  if "$BIN" client "$ADDR" ping >/dev/null 2>&1; then READY=1; break; fi
  sleep 0.1
done
if [ "$READY" -ne 1 ]; then
  echo "prepared smoke: server on $ADDR never became ready; server log:"
  cat "$SERVER_LOG"
  exit 1
fi

PREP_OUT=$("$BIN" client --prepare --params 3 "$ADDR" \
  "SELECT x.a, y.b FROM r x, s y WHERE x.a + ? <= y.a")
grep -q '^ok stmt=' <<<"$PREP_OUT" \
  || { echo "prepared smoke: client --prepare missing prepare response"; echo "$PREP_OUT"; exit 1; }
grep -q '^ok rows=' <<<"$PREP_OUT" \
  || { echo "prepared smoke: client --prepare missing execute response"; echo "$PREP_OUT"; exit 1; }
grep -q '^ok closed=' <<<"$PREP_OUT" \
  || { echo "prepared smoke: client --prepare missing close response"; echo "$PREP_OUT"; exit 1; }

# And streamed execution off a prepared handle over TCP.
STREAM_OUT=$("$BIN" client --prepare --stream --params 0 "$ADDR" \
  "SELECT x.a, y.b FROM r x, s y WHERE x.a + ? <= y.a")
grep -q 'ok stream=schema' <<<"$STREAM_OUT" \
  || { echo "prepared smoke: streamed execute missing schema frame"; echo "$STREAM_OUT"; exit 1; }
grep -q 'ok stream=end' <<<"$STREAM_OUT" \
  || { echo "prepared smoke: streamed execute missing end frame"; echo "$STREAM_OUT"; exit 1; }

"$BIN" client "$ADDR" shutdown >/dev/null
wait "$SERVER_PID"
trap - EXIT
echo "prepared smoke (tcp): --prepare lifecycle + streamed execute ok"
