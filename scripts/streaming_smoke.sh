#!/usr/bin/env bash
# CI streaming smoke: bounded-memory run of the dense-output demo query
# (~50% of a 240×180 cross product survives `<=`) with a small batch
# size through the --stdin server. Asserts the result arrives as many
# small batch frames plus a terminal metrics frame — i.e. the server
# never materialises the result set. Expects the release binary
# (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server

OUT=$(printf 'stream ours batch=16 SELECT x.a, y.b FROM r x, s y WHERE x.a <= y.a\nquit\n' \
  | "$BIN" --stdin --demo)

# (No `... | head -1` pipelines here: under pipefail, head closing the
# pipe early would SIGPIPE the producer and fail the script.)
FIRST=${OUT%%$'\n'*}
[[ $FIRST == 'ok stream=schema cols=2'* ]] \
  || { echo "streaming smoke: missing schema frame (got: $FIRST)"; exit 1; }

BATCHES=$(grep -c 'ok stream=batch rows=' <<<"$OUT")
# ~22k result rows at 16 rows/batch → well over 1000 batch frames.
[ "$BATCHES" -ge 100 ] \
  || { echo "streaming smoke: expected >=100 batch frames, got $BATCHES"; exit 1; }

grep -q 'ok stream=end rows=' <<<"$OUT" \
  || { echo "streaming smoke: missing end frame"; exit 1; }

ROWS=$(grep 'ok stream=end' <<<"$OUT" | tr ' ' '\n' | sed -n 's/^rows=//p')
[ "$ROWS" -ge 10000 ] \
  || { echo "streaming smoke: dense query produced only $ROWS rows"; exit 1; }

echo "streaming smoke: $BATCHES batches, $ROWS rows, bounded memory"
