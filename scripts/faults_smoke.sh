#!/usr/bin/env bash
# CI smoke for real fault execution: boot the demo server, run the
# same query with and without 0.3-probability fault injection, and
# assert (a) the two result bodies are byte-identical (retries rerun
# tasks from materialised input — results never change), (b) the
# `stats` frame proves the retries really happened (real_retries > 0,
# panics_caught > 0 for the catch_unwind path), and (c) a
# `+deadline=0` run answers the typed `err deadline exceeded` frame.
# Expects the release binary (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server

# Enough rows for several map blocks and reduce partitions, so a 0.3
# fault rate reliably selects some attempts.
BIG=$(awk 'BEGIN{for(i=0;i<6000;i++){printf "%d,%d",i%97,i; if(i<5999) printf ";"}}')
SQL='SELECT x.a, y.b FROM big x, big2 y WHERE x.a = y.a AND x.b < y.b'

OUT=$(printf '%s\n' \
  "load big a:int,b:int $BIG" \
  "load big2 a:int,b:int $BIG" \
  "run ours $SQL" \
  'ping' \
  "run ours+faults=0.3@7/4 $SQL" \
  'ping' \
  "run ours+deadline=0 $SQL" \
  'ping' \
  'stats' \
  'quit' \
  | "$BIN" --stdin)

grep -q 'rows=6000' <<<"$OUT" \
  || { echo "faults smoke: relation did not load"; echo "$OUT" | head; exit 1; }

# The clean and fault-injected result bodies (between `ok rows=`
# headers and `ok pong` sentinels) must be byte-identical, in order:
# injected faults really abort attempts, yet never change the answer.
CLEAN=$(awk '/^ok rows=/{grab=(++seen==1); next} /^ok pong$/{grab=0} grab' <<<"$OUT")
FAULTY=$(awk '/^ok rows=/{grab=(++seen==2); next} /^ok pong$/{grab=0} grab' <<<"$OUT")
[ -n "$CLEAN" ] || { echo "faults smoke: no clean result"; echo "$OUT" | head; exit 1; }
[ -n "$FAULTY" ] || { echo "faults smoke: no faulty result"; echo "$OUT" | head; exit 1; }
if [ "$CLEAN" != "$FAULTY" ]; then
  echo "faults smoke: fault-injected result differs from clean result"
  diff <(echo "$CLEAN") <(echo "$FAULTY") | head
  exit 1
fi

# The blown deadline must answer the typed frame, not a success or a
# free-text error.
grep -q '^err deadline exceeded$' <<<"$OUT" \
  || { echo "faults smoke: no typed deadline frame"; echo "$OUT" | grep '^err' | head; exit 1; }

# The stats frame must prove the retries were real.
STATS=$(grep '^ok entries=' <<<"$OUT" | tail -1)
RETRIES=$(sed -n 's/.* real_retries=\([0-9]*\).*/\1/p' <<<"$STATS")
PANICS=$(sed -n 's/.* panics_caught=\([0-9]*\).*/\1/p' <<<"$STATS")
ATTEMPTS=$(sed -n 's/.* task_attempts=\([0-9]*\).*/\1/p' <<<"$STATS")
[ "${RETRIES:-0}" -gt 0 ] \
  || { echo "faults smoke: real_retries not > 0: $STATS"; exit 1; }
[ "${PANICS:-0}" -gt 0 ] \
  || { echo "faults smoke: panics_caught not > 0 (catch_unwind path untested): $STATS"; exit 1; }

ROWS_HDR=$(grep -m1 '^ok rows=' <<<"$OUT")
echo "faults smoke: byte parity on $ROWS_HDR, attempts=$ATTEMPTS real_retries=$RETRIES panics_caught=$PANICS"
