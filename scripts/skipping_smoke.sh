#!/usr/bin/env bash
# CI smoke for zone-map data skipping: load a value-clustered relation
# and a narrow window, run the same tight band with skipping on and
# off, and assert (a) the two result bodies are identical (skipping is
# drop-only — bit-identical output) and (b) the `stats` frame reports
# a non-zero skip fraction and pruned blocks. Expects the release
# binary (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server

# 12k sorted rows: multiple value-clustered DFS blocks, so the band's
# zone ranges prune most of them.
BIG=$(awk 'BEGIN{for(i=0;i<12000;i++){printf "%d,%d",i,i; if(i<11999) printf ";"}}')
SMALL=$(awk 'BEGIN{for(i=0;i<8;i++){printf "%d,%d",30+i,i; if(i<7) printf ";"}}')
SQL='SELECT x.a, y.b FROM big x, small y WHERE x.a < y.a'

OUT=$(printf '%s\n' \
  "load big a:int,b:int $BIG" \
  "load small a:int,b:int $SMALL" \
  "run ours $SQL" \
  'ping' \
  "run ours+noskip $SQL" \
  'ping' \
  'stats' \
  'quit' \
  | "$BIN" --stdin)

grep -q 'rows=12000' <<<"$OUT" \
  || { echo "skipping smoke: big relation did not load"; echo "$OUT" | head; exit 1; }

# The two run bodies (between `ok rows=` headers and `ok pong`
# sentinels) must be identical: skipping never changes a row.
ON=$(awk '/^ok rows=/{grab=(++seen==1); next} /^ok pong$/{grab=0} grab' <<<"$OUT" | sort)
OFF=$(awk '/^ok rows=/{grab=(++seen==2); next} /^ok pong$/{grab=0} grab' <<<"$OUT" | sort)
[ -n "$ON" ] || { echo "skipping smoke: no skip-on result"; echo "$OUT" | head; exit 1; }
if [ "$ON" != "$OFF" ]; then
  echo "skipping smoke: skip-on and skip-off results differ"
  diff <(echo "$ON") <(echo "$OFF") | head
  exit 1
fi

# The tight band must actually have pruned.
STATS=$(grep '^ok entries=' <<<"$OUT" | tail -1)
FRACTION=$(sed -n 's/.* skip_fraction=\([0-9.]*\).*/\1/p' <<<"$STATS")
BLOCKS=$(sed -n 's/.* zone_blocks_pruned=\([0-9]*\).*/\1/p' <<<"$STATS")
awk -v f="$FRACTION" 'BEGIN{exit !(f > 0)}' \
  || { echo "skipping smoke: skip_fraction not > 0: $STATS"; exit 1; }
[ "${BLOCKS:-0}" -gt 0 ] \
  || { echo "skipping smoke: no blocks pruned: $STATS"; exit 1; }

ROWS_HDR=$(grep -m1 '^ok rows=' <<<"$OUT")
echo "skipping smoke: row parity on $ROWS_HDR, skip_fraction=$FRACTION, blocks pruned=$BLOCKS"
