#!/usr/bin/env bash
# CI smoke: launch mwtj-server, run one SQL query through the client,
# and assert a clean shutdown. Expects the release binary to be built
# (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server
ADDR=${MWTJ_SMOKE_ADDR:-127.0.0.1:7411}

SERVER_LOG=$(mktemp)
"$BIN" --listen "$ADDR" --demo >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SERVER_LOG"' EXIT

# Bounded poll for readiness: fail loudly (with the server log) if the
# server dies or never answers, instead of limping into later commands.
READY=0
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  if "$BIN" client "$ADDR" ping >/dev/null 2>&1; then READY=1; break; fi
  sleep 0.1
done
if [ "$READY" -ne 1 ]; then
  echo "server smoke: server on $ADDR never became ready; server log:"
  cat "$SERVER_LOG"
  exit 1
fi

"$BIN" client "$ADDR" ping
"$BIN" client "$ADDR" run ours "SELECT x.a, y.b FROM r x, s y WHERE x.a = y.a" | head -2
"$BIN" client "$ADDR" status

# Streaming: the same query must arrive as a schema frame, then
# MULTIPLE batch frames (incremental delivery, not one monolithic
# body), then an end frame whose row total matches the unary run.
RUN_OUT=$("$BIN" client "$ADDR" run ours "SELECT x.a, y.b FROM r x, s y WHERE x.a <= y.a")
RUN_ROWS=$(tr ' ' '\n' <<<"${RUN_OUT%%$'\n'*}" | sed -n 's/^rows=//p')
STREAM_OUT=$("$BIN" client --stream "$ADDR" stream ours batch=64 \
  "SELECT x.a, y.b FROM r x, s y WHERE x.a <= y.a")
[[ ${STREAM_OUT%%$'\n'*} == 'ok stream=schema'* ]] \
  || { echo "stream smoke: missing schema frame"; exit 1; }
BATCHES=$(grep -c 'ok stream=batch' <<<"$STREAM_OUT")
[ "$BATCHES" -ge 2 ] \
  || { echo "stream smoke: expected >=2 batch frames, got $BATCHES"; exit 1; }
STREAM_ROWS=$(grep 'ok stream=end' <<<"$STREAM_OUT" | tr ' ' '\n' | sed -n 's/^rows=//p')
[ "$STREAM_ROWS" = "$RUN_ROWS" ] \
  || { echo "stream smoke: streamed $STREAM_ROWS rows != run $RUN_ROWS"; exit 1; }
echo "stream smoke: $BATCHES batches, $STREAM_ROWS rows (matches run)"

"$BIN" client "$ADDR" shutdown

wait "$SERVER_PID"
trap - EXIT
echo "server smoke: clean shutdown"
