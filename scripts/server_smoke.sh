#!/usr/bin/env bash
# CI smoke: launch mwtj-server, run one SQL query through the client,
# and assert a clean shutdown. Expects the release binary to be built
# (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server
ADDR=${MWTJ_SMOKE_ADDR:-127.0.0.1:7411}

"$BIN" --listen "$ADDR" --demo &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if "$BIN" client "$ADDR" ping >/dev/null 2>&1; then break; fi
  sleep 0.2
done

"$BIN" client "$ADDR" ping
"$BIN" client "$ADDR" run ours "SELECT x.a, y.b FROM r x, s y WHERE x.a = y.a" | head -2
"$BIN" client "$ADDR" status
"$BIN" client "$ADDR" shutdown

wait "$SERVER_PID"
trap - EXIT
echo "server smoke: clean shutdown"
