#!/usr/bin/env bash
# CI smoke for the observability layer: boot a demo server, run a
# query, scrape the `metrics` verb and assert the exposition parses
# (every line is `name{label=value,...} number`) with at least one
# query-latency histogram sample, then assert `EXPLAIN ANALYZE`
# answers a profile frame with the lifecycle stages. Finally the
# flight-recorder loop: `history` answers the run we just made, the
# same trace id is visible to plain SQL over `sys.queries`, and
# `profile <trace>` renders the retained tree. Expects the release
# binary (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server
ADDR=${MWTJ_OBS_SMOKE_ADDR:-127.0.0.1:7414}

SERVER_LOG=$(mktemp)
# --slow-query-ms 1: every demo run clears the threshold, so the
# recorder retains its profile and `profile <trace>` has something
# to render.
"$BIN" --listen "$ADDR" --demo --slow-query-ms 1 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SERVER_LOG"' EXIT

# Bounded poll for readiness: fail loudly (with the server log) if the
# server dies or never answers, instead of limping into later commands.
READY=0
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  if "$BIN" client "$ADDR" ping >/dev/null 2>&1; then READY=1; break; fi
  sleep 0.1
done
if [ "$READY" -ne 1 ]; then
  echo "obs smoke: server on $ADDR never became ready; server log:"
  cat "$SERVER_LOG"
  exit 1
fi

SQL="SELECT x.a, y.b FROM r x, s y WHERE x.a <= y.a"

# Plain EXPLAIN answers the plan without executing.
EXPLAIN_OUT=$("$BIN" client "$ADDR" explain "$SQL")
grep -q '^ok trace=' <<<"$EXPLAIN_OUT" \
  || { echo "obs smoke: explain missing trace id"; echo "$EXPLAIN_OUT"; exit 1; }
grep -q '^plan: ours:' <<<"$EXPLAIN_OUT" \
  || { echo "obs smoke: explain missing plan line"; echo "$EXPLAIN_OUT"; exit 1; }

# A real run, then scrape the registry.
"$BIN" client "$ADDR" run ours "$SQL" >/dev/null

METRICS=$("$BIN" client "$ADDR" metrics)
[[ ${METRICS%%$'\n'*} == 'ok format=text' ]] \
  || { echo "obs smoke: bad metrics header"; echo "$METRICS"; exit 1; }

# Every exposition line must parse as `name[{labels}] number`.
BAD=$(tail -n +2 <<<"$METRICS" \
  | grep -cEv '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9e+-]+)?$' || true)
[ "$BAD" -eq 0 ] \
  || { echo "obs smoke: $BAD unparseable exposition line(s)"; echo "$METRICS"; exit 1; }

LATENCY_COUNT=$(sed -n 's/^mwtj_query_latency_ms_count{method=ours} //p' <<<"$METRICS")
[ -n "$LATENCY_COUNT" ] && [ "$LATENCY_COUNT" -ge 1 ] \
  || { echo "obs smoke: no query latency samples"; echo "$METRICS"; exit 1; }

grep -q '^mwtj_queries_total{method=ours} ' <<<"$METRICS" \
  || { echo "obs smoke: missing query counter"; echo "$METRICS"; exit 1; }

# The JSON variant answers the same registry.
"$BIN" client "$ADDR" stats json | grep -q 'mwtj_queries_total' \
  || { echo "obs smoke: stats json missing counters"; exit 1; }

# EXPLAIN ANALYZE executes and renders the per-stage profile tree.
ANALYZE_OUT=$("$BIN" client "$ADDR" run "EXPLAIN ANALYZE $SQL")
grep -q 'analyze=true' <<<"$ANALYZE_OUT" \
  || { echo "obs smoke: explain analyze not analyzed"; echo "$ANALYZE_OUT"; exit 1; }
for STAGE in plan admission execute job0/map; do
  grep -q "$STAGE" <<<"$ANALYZE_OUT" \
    || { echo "obs smoke: profile missing stage $STAGE"; echo "$ANALYZE_OUT"; exit 1; }
done

# The flight recorder answers over the wire: the newest history entry
# is a completed run whose trace id plain SQL can find in sys.queries.
HISTORY=$("$BIN" client --history 5 "$ADDR")
grep -q '^ok entries=' <<<"$HISTORY" \
  || { echo "obs smoke: bad history header"; echo "$HISTORY"; exit 1; }
TRACE=$(sed -n '2s/^trace=\([0-9][0-9]*\) .*/\1/p' <<<"$HISTORY")
[ -n "$TRACE" ] \
  || { echo "obs smoke: history carried no trace id"; echo "$HISTORY"; exit 1; }
grep -q "^trace=$TRACE outcome=ok " <<<"$HISTORY" \
  || { echo "obs smoke: newest history entry not ok"; echo "$HISTORY"; exit 1; }

# The same trace id through the ordinary SQL path — a theta join
# between two sys relations, served like any other query.
SYS_OUT=$("$BIN" client "$ADDR" run ours \
  "SELECT q.trace_id, q.outcome FROM sys.queries q, sys.scheduler s WHERE q.granted_units <= s.budget")
grep -q "^$TRACE,ok\$" <<<"$SYS_OUT" \
  || { echo "obs smoke: trace $TRACE missing from sys.queries"; echo "$SYS_OUT"; exit 1; }

# Its retained profile renders the lifecycle tree.
PROFILE=$("$BIN" client --profile "$TRACE" "$ADDR")
grep -q "^ok trace=$TRACE" <<<"$PROFILE" \
  || { echo "obs smoke: no retained profile for trace $TRACE"; echo "$PROFILE"; exit 1; }
grep -q 'execute' <<<"$PROFILE" \
  || { echo "obs smoke: profile missing execute stage"; echo "$PROFILE"; exit 1; }

# Unknown trace ids answer a typed error, not a crash.
if "$BIN" client --profile 999999999 "$ADDR" >/dev/null 2>&1; then
  echo "obs smoke: bogus profile id must answer err"; exit 1
fi

"$BIN" client "$ADDR" shutdown >/dev/null
wait "$SERVER_PID"
trap - EXIT
rm -f "$SERVER_LOG"
echo "obs smoke: exposition parses, latency count=$LATENCY_COUNT, explain analyze profiled, sys.queries sees trace $TRACE"
