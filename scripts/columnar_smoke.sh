#!/usr/bin/env bash
# CI smoke for columnar relation storage: load the same typed relation
# (ints, doubles, dictionary-friendly strings, NULLs) into a default
# (columnar) server and a --row-major server, and assert (a) the
# `stats` frame reports the columnar layout on one side and its absence
# on the other, (b) `sys.relations` exposes the layout to plain SQL,
# and (c) the same band query returns identical rows under both
# layouts — the backing is a storage accelerator, never an observable.
# Expects the release binary (cargo build --release -p mwtj-server).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/mwtj-server

# 600 rows, value-clustered key, a double with NULLs (empty fields) and
# a low-cardinality string tag the dictionary should fold to 3 entries.
EVENTS=$(awk 'BEGIN{
  tags[0]="checkout";tags[1]="browse";tags[2]="search";
  for(i=0;i<600;i++){
    d=(i%5==0)?"":sprintf("%.2f",i*0.25);
    printf "%d,%s,%s",i,d,tags[i%3]; if(i<599) printf ";"
  }}')
WINDOW=$(awk 'BEGIN{for(i=0;i<6;i++){printf "%d,%d",40+i,i; if(i<5) printf ";"}}')
SQL='SELECT x.a, x.s, y.b FROM events x, win y WHERE x.a < y.a'
SYS_SQL='SELECT r.name, r.columnar, r.columns, r.dict_entries, r.compression FROM sys.relations r, sys.scheduler s WHERE r.rows > s.queued_now'

run_server() { # $1 = extra server flags (may be empty)
  printf '%s\n' \
    "load events a:int,d:double,s:str $EVENTS" \
    "load win a:int,b:int $WINDOW" \
    "run ours $SQL" \
    'ping' \
    "run ours $SYS_SQL" \
    'ping' \
    'stats' \
    'quit' \
    | "$BIN" --stdin $1
}

COL_OUT=$(run_server "")
ROW_OUT=$(run_server "--row-major")

for out in "$COL_OUT" "$ROW_OUT"; do
  grep -q 'rows=600' <<<"$out" \
    || { echo "columnar smoke: events relation did not load"; echo "$out" | head; exit 1; }
done

# (a) Layout stats through the `stats` verb: the columnar server holds
# dictionary-encoded, null-tracked column vectors; the row-major one
# reports none.
COL_STATS=$(grep '^ok entries=' <<<"$COL_OUT" | tail -1)
ROW_STATS=$(grep '^ok entries=' <<<"$ROW_OUT" | tail -1)
field() { sed -n "s/.* $2=\([0-9.]*\).*/\1/p" <<<"$1"; }
[ "$(field "$COL_STATS" storage_columnar)" -gt 0 ] \
  || { echo "columnar smoke: no columnar relations in: $COL_STATS"; exit 1; }
[ "$(field "$COL_STATS" storage_dict_entries)" -gt 0 ] \
  || { echo "columnar smoke: no dictionary entries in: $COL_STATS"; exit 1; }
[ "$(field "$COL_STATS" storage_null_values)" -gt 0 ] \
  || { echo "columnar smoke: no tracked NULLs in: $COL_STATS"; exit 1; }
[ "$(field "$ROW_STATS" storage_columnar)" = 0 ] \
  || { echo "columnar smoke: --row-major still columnar: $ROW_STATS"; exit 1; }

# (b) The layout is queryable through sys.relations (second run body).
COL_SYS=$(awk '/^ok rows=/{grab=(++seen==2); next} /^ok pong$/{grab=0} grab' <<<"$COL_OUT")
grep -q '^events,1,' <<<"$COL_SYS" \
  || { echo "columnar smoke: sys.relations does not report events as columnar"; echo "$COL_SYS"; exit 1; }
ROW_SYS=$(awk '/^ok rows=/{grab=(++seen==2); next} /^ok pong$/{grab=0} grab' <<<"$ROW_OUT")
grep -q '^events,0,' <<<"$ROW_SYS" \
  || { echo "columnar smoke: sys.relations does not report events as row-major"; echo "$ROW_SYS"; exit 1; }

# (c) Row parity: the first run body must be identical across layouts.
COL_ROWS=$(awk '/^ok rows=/{grab=(++seen==1); next} /^ok pong$/{grab=0} grab' <<<"$COL_OUT" | sort)
ROW_ROWS=$(awk '/^ok rows=/{grab=(++seen==1); next} /^ok pong$/{grab=0} grab' <<<"$ROW_OUT" | sort)
[ -n "$COL_ROWS" ] || { echo "columnar smoke: no columnar result"; echo "$COL_OUT" | head; exit 1; }
if [ "$COL_ROWS" != "$ROW_ROWS" ]; then
  echo "columnar smoke: columnar and row-major results differ"
  diff <(echo "$COL_ROWS") <(echo "$ROW_ROWS") | head
  exit 1
fi

DICT=$(field "$COL_STATS" storage_dict_entries)
COMPRESSION=$(field "$COL_STATS" storage_compression)
echo "columnar smoke: layout visible (dict_entries=$DICT, compression=$COMPRESSION), row parity across layouts"
