//! Server integration: protocol round-trips over real TCP, malformed
//! frames, rude disconnects, concurrent clients vs the oracle, and
//! graceful shutdown.

use mwtj_core::{Engine, RunOptions};
use mwtj_join::oracle::canonicalize;
use mwtj_server::{load_demo, serve_lines, Client, Server};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Start a demo-loaded server on an ephemeral port; returns the shared
/// engine, the address, and the serve-thread handle.
fn start_server(units: u32) -> (Engine, SocketAddr, std::thread::JoinHandle<u64>) {
    let engine = Engine::with_units(units);
    load_demo(&engine);
    let server = Server::bind(engine.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (engine, addr, handle)
}

fn shutdown(addr: SocketAddr) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    let reply = c.request("shutdown").expect("shutdown reply");
    assert!(reply.starts_with("ok"), "{reply}");
}

/// Sorted data rows of a `run` response (skips the `ok` header and the
/// CSV column header).
fn response_rows(reply: &str) -> Vec<String> {
    assert!(reply.starts_with("ok "), "{reply}");
    let mut rows: Vec<String> = reply.lines().skip(2).map(str::to_string).collect();
    rows.sort();
    rows
}

/// Oracle rows for `sql`, rendered to sorted CSV lines with the same
/// codec the server uses.
fn oracle_rows(engine: &Engine, sql: &str) -> Vec<String> {
    let parsed = engine.parse_sql("oracle", sql).expect("parse");
    for (alias, base) in &parsed.instances {
        let _ = engine.load_alias_of(base, alias).expect("alias");
    }
    let rows = canonicalize(engine.oracle(&parsed.query).expect("oracle"));
    let rel = mwtj_storage::Relation::from_rows_unchecked(parsed.query.output_schema(), rows);
    let csv = mwtj_storage::csv::to_csv(&rel);
    let mut lines: Vec<String> = csv.trim_end().lines().skip(1).map(str::to_string).collect();
    lines.sort();
    lines
}

const Q_RS: &str = "SELECT x.a, y.b FROM r x, s y WHERE x.a = y.a";
const Q_ST: &str = "SELECT u.a, v.b FROM s u, t v WHERE u.a <= v.a";

#[test]
fn protocol_round_trip_ping_status_load_run_tables() {
    let (_engine, addr, handle) = start_server(8);
    let mut c = Client::connect(addr).expect("connect");

    assert_eq!(c.request("ping").unwrap(), "ok pong");

    let status = c.request("status").unwrap();
    assert!(status.starts_with("ok budget=8 "), "{status}");

    // Load a tiny relation with inline rows, join it, drop it.
    let loaded = c.request("load tiny a:int,b:int 1,10;2,20;3,30").unwrap();
    assert!(loaded.contains("rows=3"), "{loaded}");
    let reply = c
        .request("run ours SELECT x.a, y.b FROM tiny x, tiny y WHERE x.a < y.a")
        .unwrap();
    assert!(reply.starts_with("ok rows=3 "), "{reply}");
    let rows = response_rows(&reply);
    assert_eq!(rows, vec!["1,20", "1,30", "2,30"]);

    let tables = c.request("tables").unwrap();
    assert!(tables.lines().any(|l| l == "tiny,3"), "{tables}");
    assert!(c.request("unload tiny").unwrap().contains("unloaded=true"));

    // Errors are responses, not disconnects.
    let err = c
        .request("run SELECT * FROM nope x, r y WHERE x.a = y.a")
        .unwrap();
    assert!(err.starts_with("err "), "{err}");
    let err = c.request("frobnicate").unwrap();
    assert!(err.starts_with("err unknown command"), "{err}");
    assert_eq!(c.request("ping").unwrap(), "ok pong", "connection survives");

    assert_eq!(c.request("quit").unwrap(), "ok bye");
    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn run_results_match_oracle_and_rewrite_aliases() {
    let (engine, addr, handle) = start_server(8);
    let mut c = Client::connect(addr).expect("connect");
    let reply = c.run_sql(&RunOptions::default(), Q_RS).unwrap();
    // Header row carries the *public* aliases.
    let header = reply.lines().nth(1).unwrap();
    assert_eq!(header, "x.a,y.b");
    assert_eq!(response_rows(&reply), oracle_rows(&engine, Q_RS));
    shutdown(addr);
    handle.join().unwrap();
}

/// Streamed queries over real TCP: schema frame first, batch frames
/// respecting `batch=N`, end frame with consistent totals — and the
/// concatenated batch rows equal the unary `run` response.
#[test]
fn streamed_query_frames_match_run_response() {
    use mwtj_server::{parse_stream_frame, StreamFrame};
    let (_engine, addr, handle) = start_server(8);
    let mut c = Client::connect(addr).expect("connect");
    let run_reply = c.run_sql(&RunOptions::default(), Q_ST).unwrap();
    let want = response_rows(&run_reply);

    let frames = c
        .stream_sql(&RunOptions::default(), Some(7), Q_ST)
        .expect("stream");
    assert!(frames.len() >= 3, "schema + ≥1 batch + end: {frames:?}");
    let parsed: Vec<StreamFrame> = frames
        .iter()
        .map(|f| parse_stream_frame(f).expect("well-formed frame"))
        .collect();
    let StreamFrame::Schema { schema } = &parsed[0] else {
        panic!("first frame must be the schema: {:?}", parsed[0]);
    };
    assert_eq!(schema.fields()[0].name, "u.a", "public aliases on wire");
    let mut rows: Vec<String> = Vec::new();
    let mut batch_total = 0u64;
    for frame in &parsed[1..parsed.len() - 1] {
        let StreamFrame::Batch { rows: n, csv } = frame else {
            panic!("middle frames must be batches: {frame:?}");
        };
        assert!(*n >= 1 && *n <= 7, "batch size bound violated: {n}");
        batch_total += *n as u64;
        rows.extend(csv.lines().map(str::to_string));
    }
    let StreamFrame::End {
        rows: total,
        batches,
        units,
        ticket,
        ..
    } = parsed[parsed.len() - 1]
    else {
        panic!("last frame must be the end: {:?}", parsed.last());
    };
    assert_eq!(total, batch_total);
    assert_eq!(batches as usize, parsed.len() - 2);
    assert!(units >= 1 && ticket > 0);
    rows.sort();
    assert_eq!(rows, want, "streamed rows must equal the unary response");

    // The connection stays usable after a stream, and engine-side
    // failures arrive as a single err frame.
    assert_eq!(c.request("ping").unwrap(), "ok pong");
    let err_frames = c
        .stream_sql(
            &RunOptions::default(),
            None,
            "SELECT * FROM ghost g, r y WHERE g.a = y.a",
        )
        .unwrap();
    assert_eq!(err_frames.len(), 1);
    assert!(err_frames[0].starts_with("err "), "{:?}", err_frames[0]);
    assert_eq!(c.request("ping").unwrap(), "ok pong");

    shutdown(addr);
    handle.join().unwrap();
}

/// A client that hangs up mid-stream cancels the run server-side: no
/// leaked admission units, no leaked namespaced DFS files, and the
/// server keeps serving.
#[test]
fn client_disconnect_mid_stream_cancels_the_run() {
    let (engine, addr, handle) = start_server(8);
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        // Tiny batches keep the worker streaming long enough that the
        // disconnect lands mid-run.
        let payload = format!("stream batch=1 {Q_ST}");
        mwtj_server::write_frame(&mut raw, &payload).unwrap();
        // Read just the schema frame, then hang up rudely.
        let first = mwtj_server::read_frame(&mut raw).unwrap().unwrap();
        assert!(first.starts_with("ok stream=schema"), "{first}");
        drop(raw);
    }
    // Give the server time to notice the broken pipe and unwind.
    for _ in 0..100 {
        if engine.scheduler().stats().in_flight_units == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = engine.scheduler().stats();
    assert_eq!(stats.in_flight_units, 0, "stream leaked units: {stats:?}");
    assert!(
        engine
            .cluster()
            .dfs()
            .list()
            .iter()
            .all(|f| !f.starts_with("__run") && !f.contains("__q")),
        "stream leaked DFS files: {:?}",
        engine.cluster().dfs().list()
    );
    let mut c = Client::connect(addr).expect("connect after abuse");
    assert_eq!(c.request("ping").unwrap(), "ok pong");
    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn malformed_frames_get_an_error_and_do_not_kill_the_server() {
    let (_engine, addr, handle) = start_server(8);

    // Hostile length prefix.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        raw.flush().unwrap();
        let reply = mwtj_server::read_frame(&mut raw).unwrap();
        assert!(reply.unwrap().starts_with("err bad frame"), "oversized");
        // Server closes the broken connection afterwards.
        assert_eq!(mwtj_server::read_frame(&mut raw).unwrap(), None);
    }

    // Invalid UTF-8 payload.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&2u32.to_be_bytes()).unwrap();
        raw.write_all(&[0xff, 0xfe]).unwrap();
        raw.flush().unwrap();
        let reply = mwtj_server::read_frame(&mut raw).unwrap();
        assert!(reply.unwrap().starts_with("err bad frame"), "bad utf8");
    }

    // Truncated frame, then rude disconnect.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"only a few bytes").unwrap();
        raw.flush().unwrap();
        drop(raw);
    }
    std::thread::sleep(Duration::from_millis(50));

    // The server still serves fresh clients.
    let mut c = Client::connect(addr).expect("connect after abuse");
    assert_eq!(c.request("ping").unwrap(), "ok pong");
    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn client_disconnect_mid_query_leaves_server_healthy() {
    let (engine, addr, handle) = start_server(8);
    // Fire a query and hang up without reading the response.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let payload = format!("run {Q_RS}");
        mwtj_server::write_frame(&mut raw, &payload).unwrap();
        drop(raw);
    }
    std::thread::sleep(Duration::from_millis(100));
    // Server is alive, scheduler leaked nothing, and queries still run.
    let mut c = Client::connect(addr).expect("connect after disconnect");
    let reply = c.run_sql(&RunOptions::default(), Q_RS).unwrap();
    assert_eq!(response_rows(&reply), oracle_rows(&engine, Q_RS));
    let stats = engine.scheduler().stats();
    assert_eq!(stats.in_flight_units, 0, "ticket leaked: {stats:?}");
    shutdown(addr);
    handle.join().unwrap();
}

/// ≥8 concurrent clients, small unit budget: everyone completes, every
/// result matches the oracle, and the aggregate in-flight reservations
/// never exceed the budget.
#[test]
fn eight_concurrent_clients_match_oracle_within_budget() {
    let (engine, addr, handle) = start_server(6);
    let want_rs = oracle_rows(&engine, Q_RS);
    let want_st = oracle_rows(&engine, Q_ST);
    let mut clients = Vec::new();
    for i in 0..10 {
        let want = if i % 2 == 0 {
            want_rs.clone()
        } else {
            want_st.clone()
        };
        let sql = if i % 2 == 0 { Q_RS } else { Q_ST };
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let reply = c.run_sql(&RunOptions::default(), sql).expect("run");
            assert_eq!(response_rows(&reply), want, "client {i}");
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    let stats = engine.scheduler().stats();
    assert!(stats.admitted >= 10, "{stats:?}");
    assert!(
        stats.peak_in_flight_units <= stats.budget,
        "budget exceeded: {stats:?}"
    );
    assert_eq!(stats.in_flight_units, 0);
    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_and_counts_requests() {
    let (engine, addr, handle) = start_server(8);
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(c.request("ping").unwrap(), "ok pong");
    assert!(c.request("shutdown").unwrap().starts_with("ok"));
    let served = handle.join().unwrap();
    assert!(served >= 2, "served {served}");
    // The scheduler refuses new work after the drain.
    assert!(engine.scheduler().is_shutting_down());
    assert!(engine.run_sql(Q_RS).is_err());
    // And the listener is gone (connect may succeed briefly on some
    // stacks, but a request will never be answered).
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.request("ping").is_err());
    }
}

#[test]
fn stdin_mode_serves_one_line_requests() {
    let engine = Engine::with_units(8);
    load_demo(&engine);
    let input = format!("ping\n\nload tiny a:int 1;2;3\nrun {Q_RS}\nstatus\nquit\n");
    let mut out = Vec::new();
    serve_lines(&engine, input.as_bytes(), &mut out).expect("serve_lines");
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with("ok pong\n"), "{text}");
    assert!(text.contains("ok relation=tiny rows=3"), "{text}");
    assert!(text.contains("ok rows="), "{text}");
    assert!(text.contains("budget=8"), "{text}");
    assert!(text.trim_end().ends_with("ok bye"), "{text}");
}

/// The `hits=` field of a `stats` response.
fn stats_hits(reply: &str) -> u64 {
    assert!(reply.starts_with("ok "), "{reply}");
    reply
        .split_whitespace()
        .find_map(|w| w.strip_prefix("hits="))
        .and_then(|v| v.parse().ok())
        .expect("stats reply carries hits=")
}

/// A value-clustered relation joined under a tight band prunes; the
/// `stats` frame must report the zone-map counters moving alongside
/// the plan-cache counters, all in one frame.
#[test]
fn stats_frame_reports_zone_skip_counters() {
    use mwtj_storage::{tuple, DataType, Relation, Schema};
    let (engine, addr, handle) = start_server(8);
    let big = Relation::from_rows_unchecked(
        Schema::from_pairs("big", &[("a", DataType::Int), ("b", DataType::Int)]),
        (0..12_000i64).map(|i| tuple![i, i]).collect(),
    );
    let small = Relation::from_rows_unchecked(
        Schema::from_pairs("small", &[("a", DataType::Int), ("b", DataType::Int)]),
        (0..8i64).map(|i| tuple![i + 30, i]).collect(),
    );
    let _ = engine.load_relation(&big);
    let _ = engine.load_relation(&small);
    let run = engine
        .run_sql("SELECT * FROM big x, small y WHERE x.a < y.a")
        .expect("pruning run");
    assert!(run.skip_fraction() > 0.0, "band must prune");

    let mut c = Client::connect(addr).expect("connect");
    let reply = c.request("stats").unwrap();
    assert!(reply.starts_with("ok "), "{reply}");
    let field = |k: &str| -> f64 {
        reply
            .split_whitespace()
            .find_map(|w| w.strip_prefix(&format!("{k}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("stats reply missing {k}=: {reply}"))
    };
    assert!(field("zone_rows_pruned") > 0.0);
    assert!(field("zone_blocks_pruned") > 0.0);
    assert!(field("zone_pairs_kept") >= 1.0);
    let f = field("skip_fraction");
    assert!(f > 0.0 && f <= 1.0, "skip_fraction={f}");
    // Plan-cache counters ride in the same frame.
    let _ = field("entries");
    let _ = field("misses");
    let _ = field("evictions");
    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn prepared_lifecycle_over_tcp() {
    let (_engine, addr, handle) = start_server(8);
    let mut c = Client::connect(addr).expect("connect");

    // Prepare a parameterised statement.
    let prep = c
        .prepare("SELECT x.a, y.b FROM r x, s y WHERE x.a + ? <= y.a")
        .unwrap();
    assert!(prep.starts_with("ok stmt="), "{prep}");
    assert!(prep.contains("params=1"), "{prep}");
    let id = Client::parse_stmt_id(&prep).expect("stmt id");

    // Execute twice with different parameters; the second execution
    // must be a plan-cache hit (same template plan).
    let opts = RunOptions::default();
    let first = c.execute(id, &opts, &[0.0]).unwrap();
    assert!(first.starts_with("ok rows="), "{first}");
    let hits_after_first = stats_hits(&c.request("stats").unwrap());
    let second = c.execute(id, &opts, &[5.0]).unwrap();
    assert!(second.starts_with("ok rows="), "{second}");
    let hits_after_second = stats_hits(&c.request("stats").unwrap());
    assert!(
        hits_after_second > hits_after_first,
        "second execute must hit the plan cache ({hits_after_first} -> {hits_after_second})"
    );

    // The parameterless binding equals the ad-hoc literal run.
    let adhoc = c
        .request("run SELECT x.a, y.b FROM r x, s y WHERE x.a + 0 <= y.a")
        .unwrap();
    assert_eq!(response_rows(&first), response_rows(&adhoc));

    // Wrong arity is a typed err frame, not a disconnect.
    let bad = c.execute(id, &opts, &[]).unwrap();
    assert!(bad.starts_with("err"), "{bad}");

    // Close, then every further use is a typed unknown-id error.
    assert!(c.close_stmt(id).unwrap().starts_with("ok closed="));
    assert!(c
        .execute(id, &opts, &[0.0])
        .unwrap()
        .starts_with("err unknown statement id"));
    assert!(c
        .close_stmt(id)
        .unwrap()
        .starts_with("err unknown statement id"));
    assert!(c
        .request("execute 999 1.0")
        .unwrap()
        .starts_with("err unknown statement id"));

    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn statement_ids_are_per_connection() {
    let (_engine, addr, handle) = start_server(8);
    let mut c1 = Client::connect(addr).expect("connect c1");
    let mut c2 = Client::connect(addr).expect("connect c2");
    let prep = c1.prepare(Q_RS).unwrap();
    let id = Client::parse_stmt_id(&prep).expect("stmt id");
    // The other connection cannot see (or close) the statement.
    assert!(c2
        .execute(id, &RunOptions::default(), &[])
        .unwrap()
        .starts_with("err unknown statement id"));
    assert!(c2
        .close_stmt(id)
        .unwrap()
        .starts_with("err unknown statement id"));
    // The owner still can.
    assert!(c1
        .execute(id, &RunOptions::default(), &[])
        .unwrap()
        .starts_with("ok rows="));
    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn streamed_execute_off_a_prepared_statement() {
    let (_engine, addr, handle) = start_server(8);
    let mut c = Client::connect(addr).expect("connect");
    let prep = c.prepare(Q_ST).unwrap();
    let id = Client::parse_stmt_id(&prep).expect("stmt id");

    // Unary execution for the row-count reference.
    let unary = c.execute(id, &RunOptions::default(), &[]).unwrap();
    let unary_rows: u64 = unary
        .split_whitespace()
        .find_map(|w| w.strip_prefix("rows="))
        .and_then(|v| v.parse().ok())
        .expect("rows=");

    // Streamed execution off the same handle: schema frame, ≥2 batch
    // frames, end frame with the same row total.
    let mut frames = Vec::new();
    let ok = c
        .stream(&format!("execute {id} stream batch=64"), |f| {
            frames.push(f.to_string())
        })
        .unwrap();
    assert!(ok, "stream must end cleanly: {frames:?}");
    assert!(frames[0].starts_with("ok stream=schema"), "{:?}", frames[0]);
    let batches = frames
        .iter()
        .filter(|f| f.starts_with("ok stream=batch"))
        .count();
    assert!(batches >= 2, "expected incremental batches, got {batches}");
    let end = frames.last().unwrap();
    assert!(end.starts_with("ok stream=end"), "{end}");
    let streamed_rows: u64 = end
        .split_whitespace()
        .find_map(|w| w.strip_prefix("rows="))
        .and_then(|v| v.parse().ok())
        .expect("end rows=");
    assert_eq!(streamed_rows, unary_rows);

    // Streaming an unknown id is one err frame, not a broken stream.
    let mut err_frames = Vec::new();
    let ok = c
        .stream("execute 42 stream", |f| err_frames.push(f.to_string()))
        .unwrap();
    assert!(!ok);
    assert!(
        err_frames[0].starts_with("err unknown statement id"),
        "{err_frames:?}"
    );

    shutdown(addr);
    handle.join().unwrap();
}

#[test]
fn stdin_mode_serves_the_prepared_lifecycle() {
    let engine = Engine::with_units(8);
    load_demo(&engine);
    let input = "prepare SELECT x.a FROM r x, s y WHERE x.a + ? < y.a\n\
                 execute 1 2\n\
                 execute 1 stream batch=32 2\n\
                 stats\n\
                 close 1\n\
                 execute 1 2\n\
                 quit\n";
    let mut out = Vec::new();
    serve_lines(&engine, input.as_bytes(), &mut out).expect("serve_lines");
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with("ok stmt=1 params=1\n"), "{text}");
    assert!(text.contains("ok rows="), "{text}");
    assert!(text.contains("ok stream=schema"), "{text}");
    assert!(text.contains("ok stream=end"), "{text}");
    assert!(text.contains("hits="), "{text}");
    assert!(text.contains("ok closed=1"), "{text}");
    assert!(text.contains("err unknown statement id 1"), "{text}");
    let hits = stats_hits(text.lines().find(|l| l.starts_with("ok entries=")).unwrap());
    assert!(
        hits >= 1,
        "streamed re-execution must hit the plan cache: {text}"
    );
}

#[test]
fn statement_table_is_bounded_per_connection() {
    let engine = Engine::with_units(4);
    load_demo(&engine);
    // 256 statements fit; the 257th prepare is refused with a typed
    // error, and closing one frees a slot.
    let mut input = String::new();
    for _ in 0..257 {
        input.push_str("prepare SELECT x.a FROM r x, s y WHERE x.a < y.a\n");
    }
    input.push_str("close 1\nprepare SELECT x.a FROM r x, s y WHERE x.a < y.a\nquit\n");
    let mut out = Vec::new();
    serve_lines(&engine, input.as_bytes(), &mut out).expect("serve_lines");
    let text = String::from_utf8(out).unwrap();
    let oks = text.lines().filter(|l| l.starts_with("ok stmt=")).count();
    assert_eq!(oks, 257, "256 initial + 1 after a close");
    let fulls = text
        .lines()
        .filter(|l| l.starts_with("err statement table full"))
        .count();
    assert_eq!(fulls, 1, "{text}");
    assert!(text.contains("ok closed=1"), "{text}");
}

/// The observability verbs over real TCP: `metrics` answers the text
/// exposition (with a populated latency histogram after a run),
/// `stats json` answers the same registry as JSON, and
/// `explain`/`EXPLAIN ANALYZE` answer plan and profile frames.
#[test]
fn metrics_and_explain_verbs_over_tcp() {
    let (_engine, addr, handle) = start_server(8);
    let mut c = Client::connect(addr).expect("connect");

    // Plain explain: a plan frame, no execution.
    let explained = c.request(&format!("explain {Q_RS}")).unwrap();
    assert!(explained.starts_with("ok trace="), "{explained}");
    assert!(explained.contains("analyze=false"), "{explained}");
    assert!(explained.contains("plan: ours:"), "{explained}");
    assert!(explained.contains("units: requested="), "{explained}");
    // Nothing ran, so no query latency samples yet.
    let metrics = c.request("metrics").unwrap();
    assert!(
        !metrics.contains("mwtj_query_latency_ms_count"),
        "{metrics}"
    );

    // A real run populates the registry.
    let reply = c.run_sql(&RunOptions::default(), Q_RS).unwrap();
    assert!(reply.starts_with("ok rows="), "{reply}");
    let metrics = c.request("metrics").unwrap();
    assert!(metrics.starts_with("ok format=text\n"), "{metrics}");
    let count_line = metrics
        .lines()
        .find(|l| l.starts_with("mwtj_query_latency_ms_count"))
        .unwrap_or_else(|| panic!("no latency count in {metrics}"));
    let count: u64 = count_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(count >= 1, "{count_line}");
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("mwtj_queries_total{method=ours}")),
        "{metrics}"
    );
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("mwtj_query_latency_ms_bucket{le=+Inf,method=ours}")),
        "{metrics}"
    );
    // The wire-write histogram saw at least the earlier responses.
    assert!(metrics.contains("mwtj_wire_write_ms_count"), "{metrics}");

    // The JSON variant parses far enough to carry the same counter.
    let json = c.request("stats json").unwrap();
    assert!(json.starts_with("ok format=json\n"), "{json}");
    assert!(json.contains("mwtj_queries_total"), "{json}");

    // EXPLAIN ANALYZE through the `run` verb: executes and renders the
    // profile tree with per-job stages.
    let analyzed = c.request(&format!("run EXPLAIN ANALYZE {Q_RS}")).unwrap();
    assert!(analyzed.starts_with("ok trace="), "{analyzed}");
    assert!(analyzed.contains("analyze=true"), "{analyzed}");
    assert!(analyzed.contains("rows: "), "{analyzed}");
    for stage in ["plan", "admission", "execute", "job0/map"] {
        assert!(
            analyzed.lines().any(|l| l.trim_start().starts_with(stage)),
            "missing stage {stage} in {analyzed}"
        );
    }
    // …and the `explain analyze` verb form routes identically.
    let verb = c.request(&format!("explain analyze {Q_RS}")).unwrap();
    assert!(verb.contains("analyze=true"), "{verb}");

    shutdown(addr);
    handle.join().unwrap();
}

/// The introspection tentpole over real TCP: run a query, then SELECT
/// it back from `sys.queries` (theta-joined against `sys.scheduler`),
/// page the flight recorder with `history`, and fetch a retained
/// slow-run profile by trace id with `profile`.
#[test]
fn sys_catalog_history_and_profile_over_tcp() {
    let (engine, addr, handle) = start_server(8);
    // Any traced run at or over 1 ms wall time retains its profile.
    engine.set_slow_query_ms(1);
    let mut c = Client::connect(addr).expect("connect");

    let reply = c
        .run_sql(
            &RunOptions::default(),
            "SELECT x.a, y.b, z.a FROM r x, s y, t z WHERE x.a = y.a AND y.b = z.b",
        )
        .unwrap();
    assert!(reply.starts_with("ok rows="), "{reply}");

    // `history` reports the run, newest first, with its trace id.
    let history = c.request("history 5").unwrap();
    assert!(history.starts_with("ok entries="), "{history}");
    let line = history.lines().nth(1).expect("one history entry");
    let trace: u64 = line
        .split_whitespace()
        .find_map(|w| w.strip_prefix("trace="))
        .expect("trace= field")
        .parse()
        .expect("numeric trace id");
    assert!(line.contains("outcome=ok"), "{line}");

    // The same trace id answers from sys.queries through plain SQL —
    // a theta join between two sys relations.
    let sys = c
        .run_sql(
            &RunOptions::default(),
            "SELECT q.trace_id, q.outcome FROM sys.queries q, sys.scheduler s \
             WHERE q.granted_units <= s.budget",
        )
        .unwrap();
    assert!(sys.starts_with("ok rows="), "{sys}");
    assert!(
        response_rows(&sys)
            .iter()
            .any(|r| r == &format!("{trace},ok")),
        "trace {trace} missing from sys.queries: {sys}"
    );

    // sys.metrics sees the registry through SQL, end to end.
    let metrics = c
        .run_sql(
            &RunOptions::default(),
            "SELECT m.name, m.value FROM sys.metrics m, sys.scheduler s \
             WHERE m.count >= s.queued_now",
        )
        .unwrap();
    assert!(metrics.contains("mwtj_queries_total"), "{metrics}");

    // The slow run's profile tree is retained and fetchable.
    let profile = c.request(&format!("profile {trace}")).unwrap();
    assert!(
        profile.starts_with(&format!("ok trace={trace}")),
        "{profile}"
    );
    assert!(profile.contains("query"), "{profile}");
    // Unknown trace ids answer a typed error, not a hang-up.
    let missing = c.request("profile 999999999").unwrap();
    assert!(missing.starts_with("err no retained profile"), "{missing}");

    shutdown(addr);
    handle.join().unwrap();
}
