//! Property tests for the streaming protocol frames: schema/batch/end
//! round-trip through the frame codec and the length-prefixed framing,
//! and malformed frames are rejected.

use mwtj_core::StreamEnd;
use mwtj_server::protocol::{
    batch_frame, end_frame, parse_stream_frame, read_frame, schema_frame, write_frame, StreamFrame,
};
use mwtj_storage::{csv, DataType, Schema, Tuple, Value};
use proptest::prelude::*;

/// A random schema whose column names carry a digit (so no random cell
/// value can collide with a column name and trip CSV header
/// detection).
fn arb_schema() -> impl Strategy<Value = Schema> {
    (
        "[a-z]{1,6}",
        prop::collection::vec(
            prop_oneof![
                Just(DataType::Int),
                Just(DataType::Double),
                Just(DataType::Str)
            ],
            1..5,
        ),
    )
        .prop_map(|(name, types)| {
            let pairs: Vec<(String, DataType)> = types
                .into_iter()
                .enumerate()
                .map(|(i, t)| (format!("c{i}"), t))
                .collect();
            let refs: Vec<(&str, DataType)> = pairs.iter().map(|(c, t)| (c.as_str(), *t)).collect();
            Schema::from_pairs(&name, &refs)
        })
}

/// A random cell for one column type. Strings are non-empty (an empty
/// CSV field reads back as NULL by design) and may contain commas and
/// spaces (exercising RFC-4180 quoting); doubles are eighths (exact in
/// binary, so Display round-trips them).
fn cell(t: DataType, int: i64, s: &str) -> Value {
    match t {
        DataType::Int => Value::Int(int),
        DataType::Double => Value::Double((int % 10_000) as f64 / 8.0),
        DataType::Str => Value::from(s),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn schema_frames_roundtrip(schema in arb_schema()) {
        let frame = schema_frame(&schema);
        // Through the length-prefixed framing…
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let wire = read_frame(&mut std::io::Cursor::new(buf)).unwrap().unwrap();
        prop_assert_eq!(&wire, &frame);
        // …and through the typed codec.
        match parse_stream_frame(&wire) {
            Ok(StreamFrame::Schema { schema: got }) => prop_assert_eq!(got, schema),
            other => prop_assert!(false, "expected schema frame, got {:?}", other),
        }
    }

    #[test]
    fn batch_frames_roundtrip(
        schema in arb_schema(),
        ints in prop::collection::vec(any::<i64>(), 0..40),
        strs in prop::collection::vec("[a-z, ]{1,8}", 0..40),
    ) {
        let n = ints.len().min(strs.len());
        let rows: Vec<Tuple> = (0..n)
            .map(|i| {
                Tuple::new(
                    schema
                        .fields()
                        .iter()
                        .map(|f| cell(f.data_type, ints[i].wrapping_add(i as i64), &strs[i]))
                        .collect(),
                )
            })
            .collect();
        let frame = batch_frame(&schema, rows.clone());
        match parse_stream_frame(&frame) {
            Ok(StreamFrame::Batch { rows: got_n, csv: body }) => {
                prop_assert_eq!(got_n, n);
                let rel = csv::parse_csv(&schema, &body).unwrap();
                prop_assert_eq!(rel.rows(), &rows[..]);
            }
            other => prop_assert!(false, "expected batch frame, got {:?}", other),
        }
    }

    #[test]
    fn end_frames_roundtrip(
        rows in any::<u64>(),
        batches in any::<u64>(),
        units in 1u32..1024,
        ticket in any::<u64>(),
        sim_n in 0i64..1_000_000,
        pred_n in 0i64..1_000_000,
    ) {
        let end = StreamEnd {
            rows,
            batches,
            plan: String::new(),
            predicted_secs: pred_n as f64 / 64.0,
            sim_secs: sim_n as f64 / 64.0,
            real_secs: 0.0,
            jobs: Vec::new(),
            ticket,
            granted_units: units,
            trace_id: 0,
        };
        let frame = end_frame(&end);
        match parse_stream_frame(&frame) {
            Ok(StreamFrame::End {
                rows: r,
                batches: b,
                units: u,
                ticket: t,
                sim_secs,
                predicted_secs,
            }) => {
                prop_assert_eq!(r, rows);
                prop_assert_eq!(b, batches);
                prop_assert_eq!(u, units);
                prop_assert_eq!(t, ticket);
                prop_assert_eq!(sim_secs, end.sim_secs);
                prop_assert_eq!(predicted_secs, end.predicted_secs);
            }
            other => prop_assert!(false, "expected end frame, got {:?}", other),
        }
    }

    /// Corrupting any single header token of a valid frame makes the
    /// parser reject it (or, for the `ok` marker itself, classify it
    /// as a non-frame).
    #[test]
    fn mangled_frames_are_rejected(schema in arb_schema(), which in 0u32..6) {
        let frame = match which {
            0 => "err boom".to_string(),
            1 => "ok".to_string(),
            2 => "ok stream=warp".to_string(),
            3 => format!(
                "ok stream=schema cols={} name=x\n{}",
                schema.arity() + 1,
                schema_frame(&schema).split_once('\n').unwrap().1
            ),
            4 => "ok stream=batch rows=3\na,b".to_string(),
            5 => "ok stream=end rows=1 batches=1 units=1 ticket=1 sim_secs=0".to_string(),
            _ => unreachable!(),
        };
        prop_assert!(parse_stream_frame(&frame).is_err(), "accepted `{}`", frame);
    }
}

#[test]
fn batch_frames_with_trailing_all_null_rows_stay_self_consistent() {
    // An all-NULL row renders as an empty CSV line; as the *last*
    // record of a batch it must still be counted (the body keeps every
    // record newline-terminated), or the server would emit frames its
    // own parser rejects.
    let schema = Schema::from_pairs("t", &[("c0", DataType::Str)]);
    let rows = vec![
        Tuple::new(vec![Value::from("x")]),
        Tuple::new(vec![Value::Null]),
    ];
    let frame = batch_frame(&schema, rows);
    match parse_stream_frame(&frame).expect("self-emitted frame must parse") {
        StreamFrame::Batch { rows: n, .. } => assert_eq!(n, 2),
        other => panic!("{other:?}"),
    }
    // Degenerate single all-NULL row.
    let frame = batch_frame(&schema, vec![Tuple::new(vec![Value::Null])]);
    match parse_stream_frame(&frame).expect("all-NULL batch must parse") {
        StreamFrame::Batch { rows: n, .. } => assert_eq!(n, 1),
        other => panic!("{other:?}"),
    }
}

#[test]
fn batch_record_count_respects_quoted_newlines() {
    let schema = Schema::from_pairs("t", &[("c0", DataType::Str)]);
    let rows = vec![
        Tuple::new(vec![Value::from("two\nlines")]),
        Tuple::new(vec![Value::from("plain")]),
    ];
    let frame = batch_frame(&schema, rows.clone());
    match parse_stream_frame(&frame).unwrap() {
        StreamFrame::Batch { rows: n, csv: body } => {
            assert_eq!(n, 2, "quoted newline must not count as a record break");
            let rel = csv::parse_csv(&schema, &body).unwrap();
            assert_eq!(rel.rows(), &rows[..]);
        }
        other => panic!("{other:?}"),
    }
}
