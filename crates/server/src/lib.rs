//! # mwtj-server
//!
//! The serving front-end over [`mwtj_core::Engine`]: a long-lived
//! binary (`mwtj-server`) speaking a length-prefixed line protocol
//! over TCP, plus a `--stdin` line mode for tests and scripts.
//!
//! * [`protocol`] — frame codec ([`read_frame`]/[`write_frame`]) and
//!   the [`Request`] grammar. Run options on the wire are exactly
//!   `RunOptions`' `Display`/`FromStr` forms.
//! * [`server`] — [`Server`] (TCP accept loop, thread per connection,
//!   graceful drain), [`serve_lines`] (stdin mode), [`Client`], and
//!   the demo catalog loader.
//!
//! Every `run` request is admission-controlled by the engine's
//! [`Scheduler`](mwtj_core::Scheduler): concurrent clients share the
//! cluster's `k_P` unit budget, queueing or degrading to a
//! smaller-`k` replan when oversubscribed, instead of each query
//! assuming the whole cluster.
//!
//! The prepared-statement lifecycle is first-class on the wire:
//! `prepare` parses a (possibly `?`-parameterised) statement into a
//! per-connection table, `execute <id> [opts] [stream [batch=N]]
//! [params…]` runs it off the engine's shared plan cache (unary or as
//! a streamed frame sequence), `close <id>` drops it, and `stats`
//! reports the plan-cache counters
//! ([`Engine::stats_snapshot`](mwtj_core::Engine::stats_snapshot))
//! and the zone-map skip counters
//! ([`Engine::stats_snapshot`](mwtj_core::Engine::stats_snapshot))
//! in one frame.
//!
//! ```no_run
//! use mwtj_core::{Engine, RunOptions};
//! use mwtj_server::{load_demo, Client, Server};
//!
//! let engine = Engine::with_units(16);
//! load_demo(&engine);
//! let server = Server::bind(engine, "127.0.0.1:0").unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.serve().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let reply = client
//!     .run_sql(&RunOptions::default(), "SELECT * FROM r x, s y WHERE x.a = y.a")
//!     .unwrap();
//! assert!(reply.starts_with("ok "));
//! ```

#![warn(missing_docs)]

pub mod protocol;
pub mod server;

pub use protocol::{
    batch_frame, end_frame, err_response, ok_response, parse_stream_frame, read_frame,
    schema_frame, write_frame, Request, StreamFrame, DEFAULT_STREAM_BATCH, MAX_FRAME_BYTES,
};
pub use server::{load_demo, serve_lines, Client, Server};
