//! `mwtj-server`: the long-lived query server binary.
//!
//! ```text
//! mwtj-server [--listen ADDR] [--units K] [--max-queue N] [--slow-query-ms MS] [--demo] [--row-major]
//! mwtj-server --stdin [--units K] [--max-queue N] [--slow-query-ms MS] [--demo] [--row-major]
//! mwtj-server client [--stream] ADDR REQUEST...
//! ```
//!
//! The default mode binds a TCP listener and serves the framed
//! protocol until a `shutdown` request. `--stdin` serves one-line
//! requests from stdin (responses on stdout) — handy for scripts and
//! CI. `client` sends a single request (the remaining arguments,
//! joined) to a running server and prints the response; it exits
//! non-zero if the response is an error. With `--stream` the client
//! reads a streamed frame sequence (schema → batches → end) and prints
//! each frame *as it arrives* — a `run` request is rewritten to
//! `stream` for convenience. With `--prepare` the remaining arguments
//! are SQL (with optional `?` parameters) and the client demonstrates
//! the full statement lifecycle on one connection: `prepare` →
//! `execute` with `--params v1,v2,…` (streamed under `--stream`) →
//! `close`, printing every response. `--history [N]` and
//! `--profile TRACE` are shorthand for the `history`/`profile`
//! introspection verbs: the recent flight-recorder entries, and the
//! retained profile tree of one recorded slow run.

use mwtj_core::{AdmissionPolicy, Engine};
use mwtj_server::{load_demo, serve_lines, Client, Server};
use std::io::{self, BufReader};
use std::process::ExitCode;

struct Args {
    listen: String,
    units: u32,
    max_queue: Option<usize>,
    /// Engine-wide slow-query log threshold in wall-clock ms (0 = off);
    /// per-request `+slow=ms` options override it.
    slow_query_ms: u64,
    demo: bool,
    stdin: bool,
    /// Force row-major relation storage (columnar backing off) — the
    /// layout-parity half of the columnar smoke test.
    row_major: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mwtj-server [--listen ADDR] [--units K] [--max-queue N] \
         [--slow-query-ms MS] [--demo] [--stdin] [--row-major]\n\
         \x20      mwtj-server client [--stream] ADDR REQUEST...\n\
         \x20      mwtj-server client --prepare [--stream] [--params V1,V2,...] ADDR SQL...\n\
         \x20      mwtj-server client --history [N] ADDR\n\
         \x20      mwtj-server client --profile TRACE ADDR"
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Args {
    let mut out = Args {
        listen: "127.0.0.1:7411".into(),
        units: 16,
        max_queue: Some(64),
        slow_query_ms: 0,
        demo: false,
        stdin: false,
        row_major: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => out.listen = it.next().unwrap_or_else(|| usage()).clone(),
            "--units" => {
                out.units = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-queue" => {
                let v: i64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                out.max_queue = if v < 0 { None } else { Some(v as usize) };
            }
            "--slow-query-ms" => {
                out.slow_query_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--demo" => out.demo = true,
            "--stdin" => out.stdin = true,
            "--row-major" => out.row_major = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    out
}

fn build_engine(args: &Args) -> Engine {
    let policy = AdmissionPolicy {
        max_queue: args.max_queue,
        ..AdmissionPolicy::default()
    };
    let engine = Engine::with_units_and_policy(args.units, policy);
    engine.set_slow_query_ms(args.slow_query_ms);
    // Layout must be set before --demo loads anything.
    engine.set_columnar_storage(!args.row_major);
    if args.demo {
        load_demo(&engine);
        eprintln!("loaded demo relations: r, s, t (columns a:int, b:int)");
    }
    engine
}

/// The `--prepare` lifecycle demo: prepare → execute (optionally
/// streamed) → close on one connection, printing every response.
fn client_prepare(addr: &str, sql: &str, params: &[f64], streamed: bool) -> ExitCode {
    use std::io::Write as _;
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let step = |label: &str, result: io::Result<String>| -> Result<String, ExitCode> {
        match result {
            Ok(response) => {
                let _ = writeln!(io::stdout(), "{response}");
                if response.starts_with("err") {
                    Err(ExitCode::FAILURE)
                } else {
                    Ok(response)
                }
            }
            Err(e) => {
                eprintln!("{label} failed: {e}");
                Err(ExitCode::FAILURE)
            }
        }
    };
    let prepared = match step("prepare", client.prepare(sql)) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let Some(id) = Client::parse_stmt_id(&prepared) else {
        eprintln!("prepare response carried no stmt= id");
        return ExitCode::FAILURE;
    };
    if streamed {
        let ps: String = params.iter().map(|p| format!(" {p}")).collect();
        match client.stream(&format!("execute {id} stream{ps}"), |frame| {
            let _ = writeln!(io::stdout(), "{frame}");
            let _ = io::stdout().flush();
        }) {
            Ok(true) => {}
            Ok(false) => return ExitCode::FAILURE,
            Err(e) => {
                eprintln!("execute failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Err(code) = step(
        "execute",
        client.execute(id, &mwtj_core::RunOptions::default(), params),
    ) {
        return code;
    }
    match step("close", client.close_stmt(id)) {
        Ok(_) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn client_main(rest: &[String]) -> ExitCode {
    let mut rest = rest;
    let mut streamed = false;
    let mut prepare = false;
    let mut history: Option<Option<usize>> = None;
    let mut profile: Option<u64> = None;
    let mut params: Vec<f64> = Vec::new();
    loop {
        match rest.first().map(String::as_str) {
            Some("--stream") => {
                streamed = true;
                rest = &rest[1..];
            }
            Some("--prepare") => {
                prepare = true;
                rest = &rest[1..];
            }
            Some("--history") => {
                // Optional count: `--history 5 ADDR`. An address never
                // parses as a bare count, so the grammar is unambiguous.
                match rest.get(1).and_then(|w| w.parse::<usize>().ok()) {
                    Some(n) => {
                        history = Some(Some(n));
                        rest = &rest[2..];
                    }
                    None => {
                        history = Some(None);
                        rest = &rest[1..];
                    }
                }
            }
            Some("--profile") => {
                let Some(id) = rest.get(1) else { usage() };
                match id.parse::<u64>() {
                    Ok(t) => profile = Some(t),
                    Err(_) => {
                        eprintln!("--profile: `{id}` is not a trace id");
                        return ExitCode::FAILURE;
                    }
                }
                rest = &rest[2..];
            }
            Some("--params") => {
                let Some(list) = rest.get(1) else { usage() };
                for v in list.split(',') {
                    match v.trim().parse::<f64>() {
                        Ok(p) => params.push(p),
                        Err(_) => {
                            eprintln!("--params: `{v}` is not a number");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                rest = &rest[2..];
            }
            _ => break,
        }
    }
    let Some(addr) = rest.first() else { usage() };
    if rest.len() < 2 && history.is_none() && profile.is_none() {
        usage();
    }
    if prepare {
        let sql = rest[1..].join(" ");
        return client_prepare(addr, &sql, &params, streamed);
    }
    let mut request = if let Some(n) = history {
        match n {
            Some(n) => format!("history {n}"),
            None => "history".to_string(),
        }
    } else if let Some(trace) = profile {
        format!("profile {trace}")
    } else {
        rest[1..].join(" ")
    };
    if streamed {
        // `client --stream ADDR run …` means "the same query,
        // streamed" — rewrite the verb.
        if let Some(tail) = request.strip_prefix("run ") {
            request = format!("stream {tail}");
        }
    }
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Tolerate a closed stdout (e.g. piped into `head`): a truncated
    // print must not look like a failed request.
    use std::io::Write as _;
    if streamed {
        return match client.stream(&request, |frame| {
            let _ = writeln!(io::stdout(), "{frame}");
            let _ = io::stdout().flush();
        }) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("stream failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match client.request(&request) {
        Ok(response) => {
            let _ = writeln!(io::stdout(), "{response}");
            if response.starts_with("err") {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("client") {
        return client_main(&argv[1..]);
    }
    let args = parse_args(&argv);
    let engine = build_engine(&args);
    if args.stdin {
        let stdin = io::stdin();
        let mut stdout = io::stdout();
        if let Err(e) = serve_lines(&engine, BufReader::new(stdin.lock()), &mut stdout) {
            eprintln!("stdin serve failed: {e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let server = match Server::bind(engine, &args.listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "mwtj-server listening on {addr} ({} units); send `shutdown` to stop",
            args.units
        ),
        Err(e) => eprintln!("mwtj-server listening ({e})"),
    }
    match server.serve() {
        Ok(served) => {
            eprintln!("mwtj-server: clean shutdown after {served} request(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}
