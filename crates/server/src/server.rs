//! The long-lived query server: a TCP accept loop (thread per
//! connection) and a line-oriented stdin mode, both dispatching the
//! same [`Request`]s against a shared [`Engine`].
//!
//! Every `run` request flows through the engine's admission-controlled
//! scheduler, so concurrent clients share the cluster's `k_P` unit
//! budget (queueing or degrading under oversubscription) instead of
//! each assuming the whole cluster.
//!
//! Shutdown is graceful: a `shutdown` request (or flipping the handle
//! from [`Server::shutdown_handle`]) stops the accept loop, refuses
//! new admissions, unblocks idle connections, and joins every worker
//! before [`Server::serve`] returns.

use crate::protocol::{
    batch_frame, end_frame, err_response, ok_response, read_frame, schema_frame, write_frame,
    Request, DEFAULT_STREAM_BATCH, MAX_STREAM_BATCH,
};
use mwtj_core::{Engine, EngineError, Prepared, QueryStream, RunOptions, StreamOptions};
use mwtj_storage::{csv, tuple, DataType, Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a handled request asks the connection/server to do next.
enum Action {
    /// Keep serving this connection.
    Continue,
    /// Close this connection.
    Quit,
    /// Drain and stop the whole server.
    Shutdown,
}

/// Most open statements one connection may hold: a client that
/// `prepare`s in a loop without `close` must not grow server memory
/// without bound (the engine-wide plan cache is capped for the same
/// reason).
const MAX_STMTS_PER_CONN: usize = 256;

/// Per-connection prepared-statement table: `prepare` allocates ids,
/// `execute`/`close` resolve them, and the whole table drops with the
/// connection. Ids are connection-local — one client's statement is
/// invisible to every other (the *plans* behind the statements still
/// share the engine-wide cache).
#[derive(Default)]
struct StmtTable {
    next: u64,
    stmts: HashMap<u64, Prepared>,
}

impl StmtTable {
    fn insert(&mut self, prepared: Prepared) -> Result<u64, String> {
        if self.stmts.len() >= MAX_STMTS_PER_CONN {
            return Err(format!(
                "statement table full ({MAX_STMTS_PER_CONN} open statements); close some first"
            ));
        }
        self.next += 1;
        self.stmts.insert(self.next, prepared);
        Ok(self.next)
    }

    fn get(&self, id: u64) -> Result<&Prepared, String> {
        self.stmts.get(&id).ok_or_else(|| Self::unknown(id))
    }

    fn remove(&mut self, id: u64) -> Result<Prepared, String> {
        self.stmts.remove(&id).ok_or_else(|| Self::unknown(id))
    }

    fn unknown(id: u64) -> String {
        format!("unknown statement id {id} (ids are per-connection; prepare first)")
    }
}

/// A bound, not-yet-serving query server.
pub struct Server {
    engine: Engine,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral test port).
    pub fn bind(engine: Engine, addr: &str) -> io::Result<Server> {
        Ok(Server {
            engine,
            listener: TcpListener::bind(addr)?,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the server when set to `true` (tests,
    /// signal handlers).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Accept and serve connections until a `shutdown` request (or the
    /// shutdown handle) fires, then drain: refuse new admissions,
    /// unblock idle connections and join every worker. Returns the
    /// total number of requests served.
    pub fn serve(self) -> io::Result<u64> {
        self.listener.set_nonblocking(true)?;
        // One clone per *live* connection, so drain can unblock parked
        // reads; each handler removes its own entry on exit (a closed
        // connection must not pin its fd for the server's lifetime).
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut next_conn: u64 = 0;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    let conn_id = next_conn;
                    next_conn += 1;
                    match stream.try_clone() {
                        Ok(clone) => {
                            conns
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .insert(conn_id, clone);
                        }
                        // Without a registered clone the drain path
                        // could never unblock this connection's parked
                        // read, and shutdown would hang on the join —
                        // refuse the connection instead (fd pressure is
                        // the likely cause anyway).
                        Err(_) => continue,
                    }
                    let engine = self.engine.clone();
                    let shutdown = Arc::clone(&self.shutdown);
                    let requests = Arc::clone(&self.requests);
                    let conns = Arc::clone(&conns);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(&engine, stream, &shutdown, &requests);
                        conns
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .remove(&conn_id);
                    }));
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: no new admissions (in-flight queries finish), then
        // unblock connections parked in read_frame and join workers.
        // Shutting down only the *read* half keeps the write half open,
        // so a worker still executing a query can deliver its response
        // before closing.
        self.engine.scheduler().shutdown();
        for (_, conn) in conns.lock().unwrap_or_else(|e| e.into_inner()).drain() {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(self.requests.load(Ordering::SeqCst))
    }
}

/// Serve one connection until it quits, disconnects, breaks framing,
/// or the server shuts down.
fn handle_connection(
    engine: &Engine,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
) {
    // Prepared statements live exactly as long as their connection.
    let mut stmts = StmtTable::default();
    loop {
        match read_frame(&mut stream) {
            Ok(Some(payload)) => {
                requests.fetch_add(1, Ordering::Relaxed);
                let parsed = Request::parse(&payload);
                if let Ok(request) = &parsed {
                    // Streamed responses write their own frame
                    // sequence; an I/O error means the client went
                    // away mid-stream (dropping the QueryStream inside
                    // the router cancels the run).
                    if let Some(result) = serve_streaming(engine, &stmts, request, &mut |frame| {
                        write_frame(&mut stream, frame)
                    }) {
                        if result.is_err() {
                            break;
                        }
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        continue;
                    }
                }
                let (response, action) = match parsed {
                    Ok(request) => handle_request(engine, &mut stmts, request),
                    Err(e) => (err_response(e), Action::Continue),
                };
                let wire_started = std::time::Instant::now();
                let written = write_frame(&mut stream, &response);
                engine.metrics().observe(
                    "mwtj_wire_write_ms",
                    &[],
                    wire_started.elapsed().as_secs_f64() * 1e3,
                );
                if let Err(e) = written {
                    // A response body over the frame limit is refused
                    // before any bytes hit the wire, so the stream is
                    // still in sync — tell the client instead of
                    // silently hanging up on it.
                    let too_large = e.kind() == io::ErrorKind::InvalidInput;
                    if !too_large
                        || write_frame(
                            &mut stream,
                            &err_response(format!("response too large: {e}")),
                        )
                        .is_err()
                    {
                        break; // client went away mid-response
                    }
                }
                match action {
                    Action::Continue => {}
                    Action::Quit => break,
                    Action::Shutdown => {
                        shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            }
            // Clean disconnect between frames (includes the drain path,
            // where the server side closed the socket).
            Ok(None) => break,
            // Malformed frame (bad length, truncation, invalid UTF-8):
            // the stream cannot be trusted past this point, so answer
            // best-effort and close.
            Err(e) => {
                let _ = write_frame(&mut stream, &err_response(format!("bad frame: {e}")));
                break;
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    // The drain registry holds a clone of this stream, so dropping our
    // handle alone would leave the connection half-open; shut the
    // socket down explicitly so the peer sees EOF.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Clamp a client's `batch=N` ask into [`StreamOptions`]: one batch
/// bounds the server's resident row set and (approximately) its frame
/// size.
fn stream_opts_for(batch_rows: Option<usize>) -> StreamOptions {
    StreamOptions::new().batch_rows(
        batch_rows
            .unwrap_or(DEFAULT_STREAM_BATCH)
            .clamp(1, MAX_STREAM_BATCH),
    )
}

/// Serve one `stream` request as a schema → batches → end frame
/// sequence through `write` (a framed TCP writer or a line writer).
/// Engine-side failures become `err` frames; only transport failures
/// surface as `Err` (the connection is gone — dropping the stream
/// cancels the run and releases its admission ticket).
fn serve_stream(
    engine: &Engine,
    opts: &RunOptions,
    batch_rows: Option<usize>,
    sql: &str,
    write: &mut dyn FnMut(&str) -> io::Result<()>,
) -> io::Result<()> {
    let stream_opts = stream_opts_for(batch_rows);
    pump_stream(
        engine.run_sql_streamed("server", sql, opts, &stream_opts),
        write,
    )
}

/// Serve one streamed `execute` request off a prepared statement —
/// the same frame sequence as `stream`, from the same cached plan the
/// unary `execute` uses.
fn serve_prepared_stream(
    engine: &Engine,
    prepared: &Prepared,
    params: &[f64],
    opts: &RunOptions,
    batch_rows: Option<usize>,
    write: &mut dyn FnMut(&str) -> io::Result<()>,
) -> io::Result<()> {
    let stream_opts = stream_opts_for(batch_rows);
    pump_stream(
        engine.execute_streamed(prepared, params, opts, &stream_opts),
        write,
    )
}

/// Route a streaming request — `stream <sql>`, or `execute … stream`
/// off a prepared statement — to its frame-sequence writer, shared by
/// the TCP and stdin serving loops. Returns `None` for non-streaming
/// requests (the caller dispatches those unary); `Some(Err(_))` means
/// the transport died mid-stream (dropping the `QueryStream` cancels
/// the run). An unknown statement id answers one typed `err` frame.
fn serve_streaming(
    engine: &Engine,
    stmts: &StmtTable,
    request: &Request,
    write: &mut dyn FnMut(&str) -> io::Result<()>,
) -> Option<io::Result<()>> {
    match request {
        Request::Stream {
            opts,
            batch_rows,
            sql,
        } => Some(serve_stream(engine, opts, *batch_rows, sql, write)),
        Request::Execute {
            id,
            opts,
            params,
            stream: Some(batch),
        } => Some(match stmts.get(*id) {
            Ok(prepared) => serve_prepared_stream(engine, prepared, params, opts, *batch, write),
            Err(e) => write(&err_response(e)),
        }),
        _ => None,
    }
}

/// How long an `err overloaded` frame tells the client to back off
/// before retrying. One round of the scheduler's shortest jobs drains
/// well within this on the demo corpus; clients may of course apply
/// their own jittered backoff on top.
const OVERLOAD_RETRY_AFTER_MS: u64 = 100;

/// Render an engine failure as its wire frame. Flow-control failures
/// get machine-readable frames the client can act on: admission
/// shedding at queue capacity answers `err overloaded
/// retry_after=<ms>`, and a blown per-query deadline answers
/// `err deadline exceeded` whether it expired in the admission queue
/// or mid-execution. Everything else is the error's display text.
fn engine_err_response(e: &EngineError) -> String {
    if e.is_overloaded() {
        err_response(format_args!(
            "overloaded retry_after={OVERLOAD_RETRY_AFTER_MS}"
        ))
    } else if e.is_deadline_exceeded() {
        err_response("deadline exceeded")
    } else {
        err_response(e)
    }
}

/// Drive an admitted (or refused) stream to completion through
/// `write`: schema frame, batch frames, end frame; engine errors
/// become `err` frames.
fn pump_stream(
    stream: Result<QueryStream, EngineError>,
    write: &mut dyn FnMut(&str) -> io::Result<()>,
) -> io::Result<()> {
    let mut stream = match stream {
        Ok(s) => s,
        Err(e) => return write(&engine_err_response(&e)),
    };
    let schema = stream.schema().clone();
    write(&schema_frame(&schema))?;
    loop {
        match stream.next_batch() {
            Ok(Some(batch)) => {
                if let Err(e) = write(&batch_frame(&schema, batch.rows)) {
                    // An over-limit frame (very wide rows) is refused
                    // by write_frame before any bytes hit the wire, so
                    // the stream is still in sync: terminate it with a
                    // typed err frame instead of a dropped connection.
                    if e.kind() == io::ErrorKind::InvalidInput {
                        return write(&err_response(format!(
                            "batch frame too large ({e}); retry with a smaller batch=N"
                        )));
                    }
                    return Err(e);
                }
            }
            Ok(None) => {
                let end = stream
                    .end()
                    .expect("next_batch returned None without an end");
                return write(&end_frame(end));
            }
            Err(e) => return write(&engine_err_response(&e)),
        }
    }
}

/// Render a finished run as the standard `ok` response (shared by
/// `run` and the unary `execute`).
fn run_response(run: &mwtj_core::QueryRun) -> String {
    let body = csv::to_csv(&run.output);
    let fields = [
        ("rows", run.output.len().to_string()),
        ("cols", run.output.schema().arity().to_string()),
        ("units", run.granted_units.to_string()),
        ("ticket", run.ticket.to_string()),
        ("sim_secs", format!("{:.6}", run.sim_secs)),
        ("predicted_secs", format!("{:.6}", run.predicted_secs)),
    ];
    ok_response(&fields, Some(body.trim_end()))
}

/// Dispatch one non-streaming request against the engine and this
/// connection's statement table. Infallible: every failure becomes an
/// `err` response.
fn handle_request(engine: &Engine, stmts: &mut StmtTable, request: Request) -> (String, Action) {
    match request {
        Request::Ping => ("ok pong".into(), Action::Continue),
        Request::Quit => ("ok bye".into(), Action::Quit),
        Request::Shutdown => ("ok draining".into(), Action::Shutdown),
        Request::Stats => {
            // One snapshot call, one set of fields: every value in this
            // reply was read together, so a concurrent run can never
            // make e.g. `hits` and `misses` disagree about how many
            // lookups happened.
            let snap = engine.stats_snapshot();
            let (st, zs, fs) = (snap.plan_cache, snap.zone, snap.faults);
            let fields = [
                ("entries", st.entries.to_string()),
                ("hits", st.hits.to_string()),
                ("misses", st.misses.to_string()),
                ("evictions", st.evictions.to_string()),
                ("replans", st.replans.to_string()),
                ("zone_blocks_pruned", zs.blocks_pruned.to_string()),
                ("zone_pairs_kept", zs.pairs_kept().to_string()),
                ("zone_pairs_pruned", zs.pairs_pruned.to_string()),
                ("zone_rows_pruned", zs.rows_pruned.to_string()),
                ("skip_fraction", format!("{:.6}", zs.skip_fraction())),
                ("zone_map_hits", snap.zone_cache_hits.to_string()),
                ("zone_map_misses", snap.zone_cache_misses.to_string()),
                ("task_attempts", fs.attempts.to_string()),
                ("real_retries", fs.real_retries.to_string()),
                ("panics_caught", fs.panics_caught.to_string()),
                ("deadline_exceeded", fs.deadline_exceeded.to_string()),
                ("shed", snap.scheduler.shed.to_string()),
                ("epoch", snap.epoch.to_string()),
                ("storage_relations", snap.storage.relations.to_string()),
                (
                    "storage_columnar",
                    snap.storage.columnar_relations.to_string(),
                ),
                ("storage_columns", snap.storage.columns.to_string()),
                (
                    "storage_dict_entries",
                    snap.storage.dict_entries.to_string(),
                ),
                ("storage_dict_bytes", snap.storage.dict_bytes.to_string()),
                ("storage_null_values", snap.storage.null_values.to_string()),
                (
                    "storage_resident_bytes",
                    snap.storage.resident_bytes.to_string(),
                ),
                (
                    "storage_encoded_bytes",
                    snap.storage.encoded_bytes.to_string(),
                ),
                (
                    "storage_compression",
                    format!(
                        "{:.6}",
                        if snap.storage.resident_bytes > 0 {
                            snap.storage.encoded_bytes as f64 / snap.storage.resident_bytes as f64
                        } else {
                            0.0
                        }
                    ),
                ),
            ];
            (ok_response(&fields, None), Action::Continue)
        }
        Request::Metrics { json } => {
            let body = if json {
                engine.metrics().render_json()
            } else {
                engine.metrics().render_text()
            };
            let format = if json { "json" } else { "text" };
            (
                ok_response(&[("format", format.into())], Some(body.trim_end())),
                Action::Continue,
            )
        }
        Request::Explain { opts, sql } => explain_response(engine, &opts, &sql),
        Request::Prepare { sql } => match engine.prepare_sql("server", &sql) {
            Ok(prepared) => {
                let params = prepared.param_count();
                match stmts.insert(prepared) {
                    Ok(id) => (
                        ok_response(
                            &[("stmt", id.to_string()), ("params", params.to_string())],
                            None,
                        ),
                        Action::Continue,
                    ),
                    Err(e) => (err_response(e), Action::Continue),
                }
            }
            Err(e) => (err_response(e), Action::Continue),
        },
        Request::Execute {
            id,
            opts,
            params,
            stream: None,
        } => match stmts.get(id) {
            Ok(prepared) => match engine.execute(prepared, &params, &opts) {
                Ok(run) => (run_response(&run), Action::Continue),
                Err(e) => (engine_err_response(&e), Action::Continue),
            },
            Err(e) => (err_response(e), Action::Continue),
        },
        // Streaming executions never reach this dispatcher (both
        // serving loops route them to `serve_prepared_stream` first).
        Request::Execute {
            stream: Some(_), ..
        } => (
            err_response("internal: streamed execute routed to the unary dispatcher"),
            Action::Continue,
        ),
        Request::Close { id } => match stmts.remove(id) {
            Ok(_) => (
                ok_response(&[("closed", id.to_string())], None),
                Action::Continue,
            ),
            Err(e) => (err_response(e), Action::Continue),
        },
        Request::Status => {
            let st = engine.scheduler().stats();
            let fields = [
                ("budget", st.budget.to_string()),
                ("in_flight", st.in_flight_units.to_string()),
                ("peak", st.peak_in_flight_units.to_string()),
                ("queued_now", st.queued_now.to_string()),
                ("admitted", st.admitted.to_string()),
                ("degraded", st.degraded.to_string()),
                ("queued", st.queued.to_string()),
                ("relations", engine.loaded_instances().len().to_string()),
                ("epoch", engine.stats_epoch().to_string()),
            ];
            (ok_response(&fields, None), Action::Continue)
        }
        Request::Tables => {
            let instances = engine.loaded_instances();
            let body: String = instances
                .iter()
                .map(|(name, rows)| format!("{name},{rows}"))
                .collect::<Vec<_>>()
                .join("\n");
            (
                ok_response(&[("relations", instances.len().to_string())], Some(&body)),
                Action::Continue,
            )
        }
        Request::Load { name, schema, csv } => match csv::parse_csv(&schema, &csv) {
            Ok(rel) => {
                let report = engine.load_relation(&rel);
                let fields = [
                    ("relation", name),
                    ("rows", rel.len().to_string()),
                    ("upload_secs", format!("{:.6}", report.upload_secs)),
                    ("sampling_secs", format!("{:.6}", report.sampling_secs)),
                ];
                (ok_response(&fields, None), Action::Continue)
            }
            Err(e) => (err_response(e), Action::Continue),
        },
        Request::Unload { name } => {
            let existed = engine.unload(&name);
            (
                ok_response(&[("unloaded", existed.to_string())], None),
                Action::Continue,
            )
        }
        Request::History { n } => {
            let recorder = engine.flight_recorder();
            let entries = recorder.recent(n.unwrap_or(DEFAULT_HISTORY_ENTRIES));
            let body: String = entries
                .iter()
                .map(history_line)
                .collect::<Vec<_>>()
                .join("\n");
            let fields = [
                ("entries", entries.len().to_string()),
                ("total", recorder.total_recorded().to_string()),
                ("capacity", recorder.capacity().to_string()),
            ];
            (ok_response(&fields, Some(&body)), Action::Continue)
        }
        Request::Profile { trace_id } => match engine.flight_recorder().profile(trace_id) {
            Some(profile) => (
                ok_response(
                    &[("trace", trace_id.to_string())],
                    Some(profile.render().trim_end()),
                ),
                Action::Continue,
            ),
            None => (
                err_response(format!(
                    "no retained profile for trace {trace_id} (only traced runs at or over the \
                     slow-query threshold are retained)"
                )),
                Action::Continue,
            ),
        },
        // Streaming requests never reach this dispatcher (both serving
        // loops route them to `serve_stream` first).
        Request::Stream { .. } => (
            err_response("internal: stream request routed to the unary dispatcher"),
            Action::Continue,
        ),
        Request::Run { opts, sql } => {
            // `run EXPLAIN [ANALYZE] <sql>` routes to the explain
            // handler: EXPLAIN is a statement prefix, not a table.
            if first_word_is(&sql, "explain") {
                return explain_response(engine, &opts, &sql);
            }
            match engine.run_sql_with("server", &sql, &opts) {
                Err(e) => (engine_err_response(&e), Action::Continue),
                Ok(run) => (run_response(&run), Action::Continue),
            }
        }
    }
}

/// How many flight-recorder entries `history` reports when the client
/// doesn't ask for a count.
const DEFAULT_HISTORY_ENTRIES: usize = 20;

/// One `history` body line: stable `key=value` tokens (greppable by
/// scripts), the free-text query shape last so the other fields always
/// split on whitespace.
fn history_line(r: &mwtj_core::FlightRecord) -> String {
    format!(
        "trace={} outcome={} method={} partition={} units={}/{} queued={} wall_ms={:.1} \
         sim_secs={:.6} rows={} jobs={} retries={} panics={} ticket={} shape={}",
        r.trace_id,
        r.outcome,
        r.method,
        r.partition,
        r.granted_units,
        r.requested_units,
        r.queued,
        r.wall_ms,
        r.sim_secs,
        r.rows_out,
        r.jobs.len(),
        r.real_retries,
        r.panics_caught,
        r.ticket,
        r.shape,
    )
}

/// Case-insensitive test of `sql`'s first word.
fn first_word_is(sql: &str, word: &str) -> bool {
    sql.split_whitespace()
        .next()
        .is_some_and(|w| w.eq_ignore_ascii_case(word))
}

/// Serve an `explain` request (or a `run` whose SQL starts with
/// `EXPLAIN`). The verb form accepts the SQL bare (plain explain) or
/// prefixed `analyze` / `EXPLAIN [ANALYZE]`; it is normalized to the
/// statement grammar the engine parses.
fn explain_response(engine: &Engine, opts: &RunOptions, sql: &str) -> (String, Action) {
    let stmt = if first_word_is(sql, "explain") {
        sql.to_string()
    } else {
        // Covers both `explain SELECT …` (bare) and
        // `explain analyze SELECT …`.
        format!("EXPLAIN {sql}")
    };
    match engine.explain_sql("server", &stmt, opts) {
        Ok(report) => {
            let fields = [
                ("trace", report.trace_id.to_string()),
                ("analyze", report.analyze.to_string()),
            ];
            (
                ok_response(&fields, Some(report.render().trim_end())),
                Action::Continue,
            )
        }
        Err(e) => (engine_err_response(&e), Action::Continue),
    }
}

/// Serve newline-delimited single-line requests from `input`, writing
/// one response line-block per request to `out` — the `--stdin` mode
/// CI and scripts drive. Stops at EOF, `quit` or `shutdown`.
pub fn serve_lines(engine: &Engine, input: impl BufRead, out: &mut impl Write) -> io::Result<()> {
    // The whole stdin session is one "connection": prepared statements
    // persist across lines until `close`, `quit` or EOF.
    let mut stmts = StmtTable::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Request::parse(&line);
        if let Ok(request) = &parsed {
            // Frames print as they arrive — incremental delivery on
            // stdout, one frame block per line group.
            if let Some(result) = serve_streaming(engine, &stmts, request, &mut |frame| {
                writeln!(out, "{frame}")?;
                out.flush()
            }) {
                result?;
                continue;
            }
        }
        let (response, action) = match parsed {
            Ok(request) => handle_request(engine, &mut stmts, request),
            Err(e) => (err_response(e), Action::Continue),
        };
        writeln!(out, "{response}")?;
        out.flush()?;
        match action {
            Action::Continue => {}
            Action::Quit | Action::Shutdown => break,
        }
    }
    engine.scheduler().shutdown();
    Ok(())
}

/// Load the three-relation demo catalog (`r`, `s`, `t`; integer
/// columns `a`, `b`) used by the quick-start and the CI smoke test.
pub fn load_demo(engine: &Engine) {
    let mut rng = StdRng::seed_from_u64(0xd47a);
    for (name, n, domain) in [("r", 240usize, 40i64), ("s", 180, 40), ("t", 120, 40)] {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let rows = (0..n)
            .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
            .collect();
        let _ = engine.load_relation(&Relation::from_rows_unchecked(schema, rows));
    }
}

/// A blocking client for the framed TCP protocol.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Send one request payload and wait for its response payload.
    pub fn request(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Convenience: `run <opts>` with the SQL in the body.
    pub fn run_sql(&mut self, opts: &mwtj_core::RunOptions, sql: &str) -> io::Result<String> {
        self.request(&format!("run {opts}\n{sql}"))
    }

    /// Convenience: `prepare` with the SQL in the body. On success the
    /// server answers `ok stmt=<id> params=<n>`; parse the id with
    /// [`Client::parse_stmt_id`].
    pub fn prepare(&mut self, sql: &str) -> io::Result<String> {
        self.request(&format!("prepare\n{sql}"))
    }

    /// The `stmt=<id>` field of a `prepare` response, if present.
    pub fn parse_stmt_id(response: &str) -> Option<u64> {
        response
            .lines()
            .next()?
            .split_whitespace()
            .find_map(|w| w.strip_prefix("stmt="))
            .and_then(|v| v.parse().ok())
    }

    /// Convenience: unary `execute <id> <opts> [params…]`.
    pub fn execute(
        &mut self,
        id: u64,
        opts: &mwtj_core::RunOptions,
        params: &[f64],
    ) -> io::Result<String> {
        let ps: String = params.iter().map(|p| format!(" {p}")).collect();
        self.request(&format!("execute {id} {opts}{ps}"))
    }

    /// Convenience: `close <id>`.
    pub fn close_stmt(&mut self, id: u64) -> io::Result<String> {
        self.request(&format!("close {id}"))
    }

    /// Send a request and read a streamed frame sequence, invoking
    /// `on_frame` per frame as it arrives (incremental consumption).
    /// Stops after an `ok stream=end` frame (returns `Ok(true)`), an
    /// `err` frame (`Ok(false)`), or — for robustness against servers
    /// answering non-stream responses — any single non-stream frame
    /// (`Ok(true)`).
    pub fn stream(&mut self, payload: &str, mut on_frame: impl FnMut(&str)) -> io::Result<bool> {
        write_frame(&mut self.stream, payload)?;
        loop {
            let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-stream",
                )
            })?;
            let head = frame.lines().next().unwrap_or_default().to_string();
            on_frame(&frame);
            if head.starts_with("err") {
                return Ok(false);
            }
            if head.starts_with("ok stream=end") || !head.starts_with("ok stream=") {
                return Ok(true);
            }
        }
    }

    /// Convenience: `stream <opts> [batch=N]` with the SQL in the
    /// body, collecting every frame.
    pub fn stream_sql(
        &mut self,
        opts: &mwtj_core::RunOptions,
        batch_rows: Option<usize>,
        sql: &str,
    ) -> io::Result<Vec<String>> {
        let batch = batch_rows.map_or(String::new(), |n| format!(" batch={n}"));
        let mut frames = Vec::new();
        self.stream(&format!("stream {opts}{batch}\n{sql}"), |f| {
            frames.push(f.to_string())
        })?;
        Ok(frames)
    }

    /// The raw stream (tests use it to simulate rude disconnects and
    /// malformed frames).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
