//! The wire protocol: length-prefixed UTF-8 frames carrying one-line
//! commands with optional multi-line bodies.
//!
//! Framing: every message is a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 text. The payload's first line
//! is the command; the remaining lines are its body (SQL for `run`,
//! CSV rows for `load`). Responses use the same framing: the first
//! line starts with `ok` or `err`, followed by `key=value` tokens, and
//! the body carries row data.
//!
//! Commands also parse from a *single* line (the `--stdin` CLI mode
//! and the one-shot `client` subcommand), with the body inlined after
//! the command words — `;` separating what would be body lines:
//!
//! ```text
//! ping
//! status
//! stats [json]                     -- one coherent engine snapshot;
//!                                     `json` = metrics registry as JSON
//! metrics                          -- metrics registry, text exposition
//! tables
//! run [options] <sql>              -- options = RunOptions FromStr form
//! explain [options] <sql>          -- plan without executing; prefix the
//!                                     SQL with `analyze` to execute and
//!                                     return the per-stage profile
//! prepare <sql>                    -- SQL may hold `?` parameters
//! execute <id> [options] [stream [batch=N]] [p1 p2 ...]
//! close <id>
//! load <name> <col:type,...> [rows;rows;...]
//! history [n]                      -- the n most recent flight-recorder
//!                                     entries (default 20), newest first
//! profile <trace_id>               -- retained slow-run profile tree for
//!                                     one recorded trace id
//! shutdown
//! quit
//! ```
//!
//! `prepare` answers `ok stmt=<id> params=<n>`; the id lives in a
//! *per-connection* statement table, `execute`/`close` with an unknown
//! id answer a typed `err unknown statement id …` frame. Parameters
//! are bare numbers binding the SQL's `?` slots in order; adding
//! `stream` (optionally with `batch=N`) answers with the same
//! schema → batches → end frame sequence as `stream`.
//!
//! The option syntax is exactly [`RunOptions`]'s `Display`/`FromStr`
//! round-trip (`ours`, `ours:grid`, `hive+calibrated`,
//! `pig+faults=0.25@99/4`, `ours+deadline=500`), so the wire format
//! needs no parsing machinery of its own — `+deadline=<ms>` bounds the
//! query's real wall-clock time including queueing.
//!
//! ## Flow-control frames
//!
//! Two failure frames are machine-readable rather than free text:
//!
//! ```text
//! err overloaded retry_after=<ms>   -- admission queue at capacity;
//!                                      back off and resend
//! err deadline exceeded             -- the request's +deadline=<ms>
//!                                      passed (queued or mid-run)
//! ```
//!
//! `stats` reports the engine-wide fault counters alongside the
//! plan-cache and zone-map fields: `task_attempts`, `real_retries`,
//! `panics_caught`, `deadline_exceeded` and `shed` — all taken from one
//! coherent [`Engine::stats_snapshot`](mwtj_core::Engine::stats_snapshot),
//! so the fields of one reply never mix epochs.
//!
//! `metrics` answers the engine's metrics registry in the conventional
//! text exposition — one `name{label="value",…} number` line per
//! sample, histograms as cumulative `_bucket{le="…"}` lines plus
//! `_sum`/`_count` — and `stats json` answers the same registry as one
//! JSON object.
//!
//! `explain <sql>` answers `ok trace=<id> analyze=false` with the
//! chosen plan, Eq. 2 unit request and predicted makespan in the body,
//! without executing (or even admitting) the query. `explain analyze
//! <sql>` executes it with tracing forced on and appends the per-stage
//! profile tree. The SQL itself may carry the `EXPLAIN [ANALYZE]`
//! prefix instead — `run EXPLAIN ANALYZE SELECT …` routes identically.
//!
//! ## Streaming frames
//!
//! A `stream [options] [batch=N] <sql>` request answers with a frame
//! *sequence* instead of one response:
//!
//! ```text
//! ok stream=schema cols=<n> name=<rel>     + body: col:type,...
//! ok stream=batch rows=<n>                 + body: n CSV rows
//! …(zero or more batch frames)…
//! ok stream=end rows=<total> batches=<b> units=<u> ticket=<t>
//!    sim_secs=<s> predicted_secs=<p>
//! ```
//!
//! An `err …` frame at any point terminates the stream. The typed
//! forms round-trip through [`schema_frame`]/[`batch_frame`]/
//! [`end_frame`] and [`parse_stream_frame`].

use mwtj_core::{RunOptions, StreamEnd};
use mwtj_storage::{csv, DataType, Relation, Schema, Tuple};
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (defends the server against a
/// hostile or corrupt length prefix).
pub const MAX_FRAME_BYTES: u32 = 8 * 1024 * 1024;

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); an EOF *inside* a frame, an oversized
/// length prefix, or invalid UTF-8 are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("invalid UTF-8: {e}")))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Scheduler + catalog counters.
    Status,
    /// List loaded relations.
    Tables,
    /// Execute SQL under the given run options.
    Run {
        /// Parsed run options (default when omitted).
        opts: RunOptions,
        /// The SQL text.
        sql: String,
    },
    /// Execute SQL, answering with a streamed frame sequence
    /// (schema → batches → end) instead of one response.
    Stream {
        /// Parsed run options (default when omitted).
        opts: RunOptions,
        /// Rows per batch frame (`batch=N`; server default when
        /// omitted).
        batch_rows: Option<usize>,
        /// The SQL text.
        sql: String,
    },
    /// Parse SQL (which may hold `?` positional parameters) into a
    /// prepared statement in this connection's statement table.
    Prepare {
        /// The SQL text.
        sql: String,
    },
    /// Execute a prepared statement by id.
    Execute {
        /// Statement id from a prior `prepare` on this connection.
        id: u64,
        /// Parsed run options (default when omitted).
        opts: RunOptions,
        /// Values binding the statement's `?` slots, in order.
        params: Vec<f64>,
        /// `Some(batch_rows)` = answer with a streamed frame sequence
        /// (inner `None` = server default batch size); `None` = unary
        /// response.
        stream: Option<Option<usize>>,
    },
    /// Drop a prepared statement from this connection's table.
    Close {
        /// Statement id to drop.
        id: u64,
    },
    /// One coherent engine-statistics snapshot (plan cache, zone maps,
    /// faults, scheduler).
    Stats,
    /// The metrics registry: text exposition (`metrics`) or JSON
    /// (`stats json`).
    Metrics {
        /// `true` = JSON object, `false` = text exposition.
        json: bool,
    },
    /// Report a query's plan (and, with `analyze`, its executed
    /// profile) instead of its rows.
    Explain {
        /// Parsed run options (default when omitted).
        opts: RunOptions,
        /// The SQL text, optionally prefixed `ANALYZE` / `EXPLAIN
        /// [ANALYZE]`.
        sql: String,
    },
    /// Load a relation from CSV rows.
    Load {
        /// Relation name.
        name: String,
        /// Parsed schema from the `col:type,...` spec.
        schema: Schema,
        /// CSV rows (newline-separated).
        csv: String,
    },
    /// Drop a loaded relation.
    Unload {
        /// Relation name.
        name: String,
    },
    /// The most recent flight-recorder entries, newest first.
    History {
        /// How many entries to report (`None` = server default).
        n: Option<usize>,
    },
    /// The retained slow-run profile tree for one trace id.
    Profile {
        /// Trace id of a recorded run.
        trace_id: u64,
    },
    /// Stop the server after in-flight queries finish.
    Shutdown,
    /// Close this connection only.
    Quit,
}

impl Request {
    /// Parse a request payload: first line = command words, remaining
    /// lines = body. A single-line form inlines the body after the
    /// command words (with `;` for body line breaks).
    pub fn parse(payload: &str) -> Result<Request, String> {
        let mut lines = payload.splitn(2, '\n');
        let head = lines.next().unwrap_or_default().trim();
        let body = lines.next().unwrap_or_default();
        let mut words = head.split_whitespace();
        let cmd = words.next().ok_or("empty request")?;
        match cmd.to_ascii_lowercase().as_str() {
            "ping" => Ok(Request::Ping),
            "status" => Ok(Request::Status),
            "stats" => match words.next() {
                Some(w) if w.eq_ignore_ascii_case("json") => Ok(Request::Metrics { json: true }),
                Some(w) => Err(format!("stats: unknown argument `{w}` (expected `json`)")),
                None => Ok(Request::Stats),
            },
            "metrics" => Ok(Request::Metrics { json: false }),
            "tables" => Ok(Request::Tables),
            "shutdown" => Ok(Request::Shutdown),
            "quit" | "exit" => Ok(Request::Quit),
            "prepare" => {
                let rest = head["prepare".len()..].trim_start();
                let sql = gather_sql(rest, body);
                if sql.is_empty() {
                    return Err("prepare: missing SQL text".into());
                }
                Ok(Request::Prepare { sql })
            }
            "execute" => {
                let id_word = words.next().ok_or("execute: missing statement id")?;
                let id: u64 = id_word
                    .parse()
                    .map_err(|_| format!("execute: bad statement id `{id_word}`"))?;
                let rest: Vec<&str> = words.collect();
                let mut i = 0;
                // Optional leading run options (`ours`, `hive+calibrated`,
                // …); a numeric parameter or the `stream` keyword never
                // parses as RunOptions, so the grammar is unambiguous.
                let mut opts = RunOptions::default();
                if let Some(o) = rest.first().and_then(|w| w.parse::<RunOptions>().ok()) {
                    opts = o;
                    i = 1;
                }
                let mut stream = None;
                if rest
                    .get(i)
                    .is_some_and(|w| w.eq_ignore_ascii_case("stream"))
                {
                    i += 1;
                    let mut batch = None;
                    if let Some(b) = rest.get(i).and_then(|w| w.strip_prefix("batch=")) {
                        let rows: usize = b
                            .parse()
                            .map_err(|_| format!("execute: bad batch size `{b}`"))?;
                        if rows == 0 {
                            return Err("execute: batch size must be ≥ 1".into());
                        }
                        batch = Some(rows);
                        i += 1;
                    }
                    stream = Some(batch);
                }
                let mut params = Vec::with_capacity(rest.len() - i);
                for w in &rest[i..] {
                    let v: f64 = w
                        .parse()
                        .map_err(|_| format!("execute: bad parameter `{w}` (expected a number)"))?;
                    // NaN/inf would bind as predicate offsets where
                    // every comparison is false — a silent empty
                    // result; refuse them as the typo they are.
                    if !v.is_finite() {
                        return Err(format!("execute: bad parameter `{w}` (must be finite)"));
                    }
                    params.push(v);
                }
                Ok(Request::Execute {
                    id,
                    opts,
                    params,
                    stream,
                })
            }
            "close" => {
                let id_word = words.next().ok_or("close: missing statement id")?;
                let id: u64 = id_word
                    .parse()
                    .map_err(|_| format!("close: bad statement id `{id_word}`"))?;
                Ok(Request::Close { id })
            }
            "run" => {
                let rest = head["run".len()..].trim_start();
                let (opts, inline) = split_leading_opts(rest);
                let sql = gather_sql(inline, body);
                if sql.is_empty() {
                    return Err("run: missing SQL text".into());
                }
                Ok(Request::Run { opts, sql })
            }
            "explain" => {
                let rest = head["explain".len()..].trim_start();
                let (opts, inline) = split_leading_opts(rest);
                let sql = gather_sql(inline, body);
                if sql.is_empty() {
                    return Err("explain: missing SQL text".into());
                }
                Ok(Request::Explain { opts, sql })
            }
            "stream" => {
                let rest = head["stream".len()..].trim_start();
                // `stream [options] [batch=N] <sql…>`.
                let (opts, mut inline) = split_leading_opts(rest);
                let mut batch_rows = None;
                if let Some(first) = inline.split_whitespace().next() {
                    if let Some(n) = first.strip_prefix("batch=") {
                        let rows: usize = n
                            .parse()
                            .map_err(|_| format!("stream: bad batch size `{n}`"))?;
                        if rows == 0 {
                            return Err("stream: batch size must be ≥ 1".into());
                        }
                        batch_rows = Some(rows);
                        inline = inline[first.len()..].trim_start();
                    }
                }
                let sql = gather_sql(inline, body);
                if sql.is_empty() {
                    return Err("stream: missing SQL text".into());
                }
                Ok(Request::Stream {
                    opts,
                    batch_rows,
                    sql,
                })
            }
            "load" => {
                let name = words.next().ok_or("load: missing relation name")?;
                let spec = words.next().ok_or("load: missing column spec")?;
                let schema = parse_colspec(name, spec)?;
                // Inline rows (if any) use `;` as the row separator.
                let inline: String = words.collect::<Vec<_>>().join(" ").replace(';', "\n");
                let mut csv = String::new();
                if !inline.trim().is_empty() {
                    csv.push_str(inline.trim());
                    csv.push('\n');
                }
                csv.push_str(body);
                Ok(Request::Load {
                    name: name.to_string(),
                    schema,
                    csv,
                })
            }
            "unload" => {
                let name = words.next().ok_or("unload: missing relation name")?;
                Ok(Request::Unload {
                    name: name.to_string(),
                })
            }
            "history" => match words.next() {
                Some(w) => {
                    let n: usize = w
                        .parse()
                        .map_err(|_| format!("history: bad entry count `{w}`"))?;
                    if n == 0 {
                        return Err("history: entry count must be ≥ 1".into());
                    }
                    Ok(Request::History { n: Some(n) })
                }
                None => Ok(Request::History { n: None }),
            },
            "profile" => {
                let id_word = words.next().ok_or("profile: missing trace id")?;
                let trace_id: u64 = id_word
                    .parse()
                    .map_err(|_| format!("profile: bad trace id `{id_word}`"))?;
                Ok(Request::Profile { trace_id })
            }
            other => Err(format!(
                "unknown command `{other}` (expected ping, status, stats, metrics, tables, run, \
                 explain, stream, prepare, execute, close, load, unload, history, profile, \
                 shutdown or quit)"
            )),
        }
    }
}

/// `[options] <rest…>`: the first word is options iff it parses as
/// [`RunOptions`]; otherwise the payload starts immediately (default
/// options).
fn split_leading_opts(rest: &str) -> (RunOptions, &str) {
    match rest.split_whitespace().next() {
        Some(first) => match first.parse::<RunOptions>() {
            Ok(opts) => (opts, rest[first.len()..].trim_start()),
            Err(_) => (RunOptions::default(), rest),
        },
        None => (RunOptions::default(), rest),
    }
}

/// Join the inline tail of the command line with the framed body into
/// one trimmed SQL text.
fn gather_sql(inline: &str, body: &str) -> String {
    let mut sql = String::new();
    if !inline.is_empty() {
        sql.push_str(inline);
        sql.push('\n');
    }
    sql.push_str(body);
    sql.trim().to_string()
}

/// Parse a `col:type,...` schema spec (`int`, `double`/`float`, `str`).
fn parse_colspec(name: &str, spec: &str) -> Result<Schema, String> {
    let mut pairs = Vec::new();
    for part in spec.split(',') {
        let (col, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("column spec `{part}` missing `:type`"))?;
        let dt = match ty.to_ascii_lowercase().as_str() {
            "int" | "i64" => DataType::Int,
            "double" | "float" | "f64" => DataType::Double,
            "str" | "string" | "text" => DataType::Str,
            other => return Err(format!("unknown column type `{other}`")),
        };
        if col.is_empty() {
            return Err(format!("empty column name in `{part}`"));
        }
        pairs.push((col.to_string(), dt));
    }
    if pairs.is_empty() {
        return Err("empty column spec".into());
    }
    let refs: Vec<(&str, DataType)> = pairs.iter().map(|(c, t)| (c.as_str(), *t)).collect();
    Ok(Schema::from_pairs(name, &refs))
}

/// Build an `ok` response: a header of `key=value` tokens plus an
/// optional body.
pub fn ok_response(fields: &[(&str, String)], body: Option<&str>) -> String {
    let mut out = String::from("ok");
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    if let Some(b) = body {
        out.push('\n');
        out.push_str(b);
    }
    out
}

/// Build an `err` response.
pub fn err_response(detail: impl std::fmt::Display) -> String {
    format!("err {detail}")
}

// ------------------------------------------------------------------
// Streaming frames
// ------------------------------------------------------------------

/// Default rows per batch frame for `stream` requests that omit
/// `batch=N`.
pub const DEFAULT_STREAM_BATCH: usize = 512;

/// Upper clamp on client-supplied `batch=N`: keeps one batch's rows
/// (the server's peak resident set) and its rendered frame bounded —
/// 16 Ki rows of ~40-byte demo rows is well under [`MAX_FRAME_BYTES`].
/// Wide rows can still overflow a frame; the server answers that with
/// an `err` frame rather than a dropped connection.
pub const MAX_STREAM_BATCH: usize = 16 * 1024;

/// A parsed frame of a streamed response.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFrame {
    /// The schema frame opening every stream.
    Schema {
        /// The output schema (name + typed columns).
        schema: Schema,
    },
    /// One batch of rows.
    Batch {
        /// Row count (the header's `rows=` field; always equals the
        /// body's record count under RFC-4180 quoting).
        rows: usize,
        /// The rows as header-less CSV (parse with
        /// [`mwtj_storage::csv::parse_csv`] under the schema frame's
        /// schema). Caveat shared with the unary `run` body: a row
        /// whose every column is NULL renders as a *blank* record,
        /// which `parse_csv` skips — `rows` stays authoritative for
        /// counting, but such rows are not reconstructable from CSV.
        csv: String,
    },
    /// The terminal metrics frame.
    End {
        /// Total rows delivered.
        rows: u64,
        /// Batch frames delivered.
        batches: u64,
        /// Processing units granted to the run.
        units: u32,
        /// Admission ticket id.
        ticket: u64,
        /// Achieved simulated makespan.
        sim_secs: f64,
        /// Planner-predicted makespan.
        predicted_secs: f64,
    },
}

/// Number of CSV records in `body` — delegated to the storage codec's
/// quote-aware record splitter (a quoted string value may span lines;
/// an all-NULL row is an *empty* record, closed by its newline), so
/// the wire count can never drift from how [`csv::parse_csv`] splits.
fn csv_record_count(body: &str) -> usize {
    csv::split_records(body).len()
}

/// Data-type tag used in schema frames (the `load` colspec syntax).
fn dt_tag(dt: DataType) -> &'static str {
    match dt {
        DataType::Int => "int",
        DataType::Double => "double",
        DataType::Str => "str",
    }
}

/// The schema frame: `ok stream=schema cols=<n> name=<rel>` with a
/// `col:type,...` body (the same colspec syntax `load` accepts).
pub fn schema_frame(schema: &Schema) -> String {
    let spec: Vec<String> = schema
        .fields()
        .iter()
        .map(|f| format!("{}:{}", f.name, dt_tag(f.data_type)))
        .collect();
    format!(
        "ok stream=schema cols={} name={}\n{}",
        schema.arity(),
        schema.name(),
        spec.join(",")
    )
}

/// A batch frame: `ok stream=batch rows=<n>` with the rows as
/// header-less CSV in the body — verbatim, every record (including a
/// trailing all-NULL one, which renders as an empty line)
/// newline-terminated, so the record count always agrees with `rows=`.
pub fn batch_frame(schema: &Schema, rows: Vec<Tuple>) -> String {
    let n = rows.len();
    let rel = Relation::from_rows_unchecked(schema.clone(), rows);
    let csv = csv::to_csv(&rel);
    // to_csv leads with a header line; the schema frame already
    // carried the columns.
    let body = csv.split_once('\n').map(|(_, rest)| rest).unwrap_or("");
    format!("ok stream=batch rows={n}\n{body}")
}

/// The end frame carrying the run's metrics. Floats print in full
/// `Display` precision so the frame round-trips exactly.
pub fn end_frame(end: &StreamEnd) -> String {
    format!(
        "ok stream=end rows={} batches={} units={} ticket={} sim_secs={} predicted_secs={}",
        end.rows, end.batches, end.granted_units, end.ticket, end.sim_secs, end.predicted_secs
    )
}

/// Parse one streamed-response frame (the inverse of
/// [`schema_frame`]/[`batch_frame`]/[`end_frame`]). Malformed frames —
/// wrong leading tokens, missing or unparseable fields, a batch whose
/// body line count disagrees with `rows=`, a schema whose colspec
/// disagrees with `cols=` — are errors.
pub fn parse_stream_frame(payload: &str) -> Result<StreamFrame, String> {
    let (head, body) = match payload.split_once('\n') {
        Some((h, b)) => (h, b),
        None => (payload, ""),
    };
    let mut words = head.split_whitespace();
    if words.next() != Some("ok") {
        return Err(format!("not a stream frame: `{head}`"));
    }
    let kind = words
        .next()
        .and_then(|w| w.strip_prefix("stream="))
        .ok_or_else(|| format!("missing stream= tag in `{head}`"))?
        .to_string();
    let mut fields = std::collections::HashMap::new();
    for w in words {
        let (k, v) = w
            .split_once('=')
            .ok_or_else(|| format!("bad field `{w}` in `{head}`"))?;
        fields.insert(k, v);
    }
    let field = |k: &str| -> Result<&str, String> {
        fields
            .get(k)
            .copied()
            .ok_or_else(|| format!("missing `{k}=` in `{head}`"))
    };
    fn num<T: std::str::FromStr>(k: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("bad `{k}={v}`"))
    }
    match kind.as_str() {
        "schema" => {
            let cols: usize = num("cols", field("cols")?)?;
            let name = field("name")?;
            let schema = parse_colspec(name, body.trim())?;
            if schema.arity() != cols {
                return Err(format!(
                    "schema frame says cols={cols} but the colspec has {}",
                    schema.arity()
                ));
            }
            Ok(StreamFrame::Schema { schema })
        }
        "batch" => {
            let rows: usize = num("rows", field("rows")?)?;
            let got = csv_record_count(body);
            if got != rows {
                return Err(format!("batch frame says rows={rows} but carries {got}"));
            }
            Ok(StreamFrame::Batch {
                rows,
                csv: body.to_string(),
            })
        }
        "end" => Ok(StreamFrame::End {
            rows: num("rows", field("rows")?)?,
            batches: num("batches", field("batches")?)?,
            units: num("units", field("units")?)?,
            ticket: num("ticket", field("ticket")?)?,
            sim_secs: num("sim_secs", field("sim_secs")?)?,
            predicted_secs: num("predicted_secs", field("predicted_secs")?)?,
        }),
        other => Err(format!("unknown stream frame kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_core::Method;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello\nworld").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello\nworld"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        // EOF inside the length prefix.
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut r).is_err());
        // EOF inside the payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Hostile length prefix: refused before allocating.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Invalid UTF-8.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn parses_run_with_and_without_options() {
        let r =
            Request::parse("run hive+calibrated SELECT * FROM r a, s b WHERE a.x < b.x").unwrap();
        match r {
            Request::Run { opts, sql } => {
                assert_eq!(opts.get_method(), Method::Hive);
                assert!(opts.wants_calibration());
                assert!(sql.starts_with("SELECT"));
            }
            other => panic!("{other:?}"),
        }
        // No options: SQL starts right after `run`.
        let r = Request::parse("run SELECT * FROM r a, s b WHERE a.x = b.x").unwrap();
        match r {
            Request::Run { opts, sql } => {
                assert_eq!(opts, RunOptions::default());
                assert!(sql.starts_with("SELECT"));
            }
            other => panic!("{other:?}"),
        }
        // Framed form: SQL in the body.
        let r = Request::parse("run ours:grid\nSELECT *\nFROM r a, s b\nWHERE a.x = b.x").unwrap();
        match r {
            Request::Run { sql, .. } => assert!(sql.contains('\n')),
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("run").is_err());
        assert!(Request::parse("run ours").is_err(), "options but no SQL");
    }

    #[test]
    fn parses_load_inline_and_body() {
        let r = Request::parse("load r a:int,b:double 1,2.5;3,4.5").unwrap();
        match r {
            Request::Load { name, schema, csv } => {
                assert_eq!(name, "r");
                assert_eq!(schema.arity(), 2);
                assert_eq!(csv.trim().lines().count(), 2);
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse("load s k:int\n7\n8\n9").unwrap();
        match r {
            Request::Load { csv, .. } => assert_eq!(csv.lines().count(), 3),
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("load").is_err());
        assert!(Request::parse("load r").is_err());
        assert!(Request::parse("load r a:blob 1").is_err());
        assert!(Request::parse("load r a 1").is_err());
    }

    #[test]
    fn parses_stream_with_options_and_batch_size() {
        let r =
            Request::parse("stream hive batch=32 SELECT * FROM r a, s b WHERE a.x < b.x").unwrap();
        match r {
            Request::Stream {
                opts,
                batch_rows,
                sql,
            } => {
                assert_eq!(opts.get_method(), Method::Hive);
                assert_eq!(batch_rows, Some(32));
                assert!(sql.starts_with("SELECT"));
            }
            other => panic!("{other:?}"),
        }
        // Options and batch size both optional; SQL may live in the
        // body.
        let r = Request::parse("stream\nSELECT * FROM r a, s b WHERE a.x = b.x").unwrap();
        match r {
            Request::Stream {
                opts, batch_rows, ..
            } => {
                assert_eq!(opts, RunOptions::default());
                assert_eq!(batch_rows, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("stream").is_err());
        assert!(Request::parse("stream batch=0 SELECT 1").is_err());
        assert!(Request::parse("stream batch=xyz SELECT 1").is_err());
    }

    #[test]
    fn stream_frames_build_and_parse() {
        let schema = Schema::from_pairs("out", &[("x.a", DataType::Int), ("y.b", DataType::Str)]);
        let sf = schema_frame(&schema);
        assert!(sf.starts_with("ok stream=schema cols=2 name=out\n"), "{sf}");
        assert_eq!(
            parse_stream_frame(&sf).unwrap(),
            StreamFrame::Schema {
                schema: schema.clone()
            }
        );
        let bf = batch_frame(
            &schema,
            vec![
                mwtj_storage::tuple![1, "hi"],
                mwtj_storage::tuple![2, "a,b"],
            ],
        );
        match parse_stream_frame(&bf).unwrap() {
            StreamFrame::Batch { rows, csv } => {
                assert_eq!(rows, 2);
                assert!(csv.contains("\"a,b\""), "{csv}");
            }
            other => panic!("{other:?}"),
        }
        // Empty batch frames are legal (and carry no body lines).
        match parse_stream_frame(&batch_frame(&schema, Vec::new())).unwrap() {
            StreamFrame::Batch { rows, .. } => assert_eq!(rows, 0),
            other => panic!("{other:?}"),
        }
        assert!(parse_stream_frame("ok stream=batch rows=2\nonly,one").is_err());
        assert!(parse_stream_frame("err boom").is_err());
    }

    #[test]
    fn parses_prepare_execute_close_and_stats() {
        // prepare: inline or body SQL.
        match Request::parse("prepare SELECT * FROM r a, s b WHERE a.x < b.x").unwrap() {
            Request::Prepare { sql } => assert!(sql.starts_with("SELECT")),
            other => panic!("{other:?}"),
        }
        match Request::parse("prepare\nSELECT *\nFROM r a, s b\nWHERE a.x = b.x").unwrap() {
            Request::Prepare { sql } => assert!(sql.contains('\n')),
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("prepare").is_err());

        // execute: id, optional options, optional stream/batch, params.
        match Request::parse("execute 3 hive+calibrated stream batch=16 1.5 -2 0").unwrap() {
            Request::Execute {
                id,
                opts,
                params,
                stream,
            } => {
                assert_eq!(id, 3);
                assert_eq!(opts.get_method(), Method::Hive);
                assert!(opts.wants_calibration());
                assert_eq!(stream, Some(Some(16)));
                assert_eq!(params, vec![1.5, -2.0, 0.0]);
            }
            other => panic!("{other:?}"),
        }
        match Request::parse("execute 1").unwrap() {
            Request::Execute {
                id,
                opts,
                params,
                stream,
            } => {
                assert_eq!(id, 1);
                assert_eq!(opts, RunOptions::default());
                assert!(params.is_empty());
                assert_eq!(stream, None);
            }
            other => panic!("{other:?}"),
        }
        match Request::parse("execute 2 stream 7").unwrap() {
            Request::Execute { stream, params, .. } => {
                assert_eq!(stream, Some(None), "stream without batch=N");
                assert_eq!(params, vec![7.0]);
            }
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("execute").is_err());
        assert!(Request::parse("execute x").is_err());
        assert!(Request::parse("execute 1 stream batch=0").is_err());
        assert!(Request::parse("execute 1 notanumber").is_err());
        // Non-finite parameters would bind as always-false predicate
        // offsets (silent empty results) — typed errors instead.
        assert!(Request::parse("execute 1 nan").is_err());
        assert!(Request::parse("execute 1 inf").is_err());
        assert!(Request::parse("execute 1 -inf").is_err());

        // close + stats.
        assert_eq!(Request::parse("close 9").unwrap(), Request::Close { id: 9 });
        assert!(Request::parse("close").is_err());
        assert!(Request::parse("close q").is_err());
        assert_eq!(Request::parse("stats").unwrap(), Request::Stats);
    }

    #[test]
    fn parses_metrics_and_explain() {
        assert_eq!(
            Request::parse("metrics").unwrap(),
            Request::Metrics { json: false }
        );
        assert_eq!(
            Request::parse("stats JSON").unwrap(),
            Request::Metrics { json: true }
        );
        assert!(Request::parse("stats bogus").is_err());

        match Request::parse("explain hive SELECT * FROM r a, s b WHERE a.x < b.x").unwrap() {
            Request::Explain { opts, sql } => {
                assert_eq!(opts.get_method(), Method::Hive);
                assert!(sql.starts_with("SELECT"));
            }
            other => panic!("{other:?}"),
        }
        // `analyze` never parses as RunOptions, so it stays in the SQL
        // for the engine to interpret.
        match Request::parse("explain analyze SELECT * FROM r a, s b WHERE a.x < b.x").unwrap() {
            Request::Explain { opts, sql } => {
                assert_eq!(opts, RunOptions::default());
                assert!(sql.starts_with("analyze"), "{sql}");
            }
            other => panic!("{other:?}"),
        }
        // Framed form: SQL in the body.
        match Request::parse("explain\nEXPLAIN ANALYZE SELECT *\nFROM r a, s b\nWHERE a.x = b.x")
            .unwrap()
        {
            Request::Explain { sql, .. } => assert!(sql.contains('\n')),
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("explain").is_err());
    }

    /// The `stats` reply carries plan-cache and zone-map skip counters
    /// in one `ok` frame whose `key=value` tokens all parse — the shape
    /// clients (and the CI smoke) extract fields from.
    #[test]
    fn stats_reply_fields_parse_from_one_frame() {
        let reply = ok_response(
            &[
                ("entries", "3".into()),
                ("hits", "7".into()),
                ("misses", "4".into()),
                ("evictions", "1".into()),
                ("replans", "2".into()),
                ("zone_blocks_pruned", "5".into()),
                ("zone_pairs_kept", "9".into()),
                ("zone_pairs_pruned", "6".into()),
                ("zone_rows_pruned", "1200".into()),
                ("skip_fraction", "0.750000".into()),
                ("zone_map_hits", "2".into()),
                ("zone_map_misses", "1".into()),
                ("task_attempts", "42".into()),
                ("real_retries", "5".into()),
                ("panics_caught", "3".into()),
                ("deadline_exceeded", "1".into()),
                ("shed", "2".into()),
                ("epoch", "4".into()),
            ],
            None,
        );
        assert!(!reply.contains('\n'), "single frame, no body: {reply}");
        let mut words = reply.split_whitespace();
        assert_eq!(words.next(), Some("ok"));
        let mut fields = std::collections::HashMap::new();
        for w in words {
            let (k, v) = w.split_once('=').expect("key=value token");
            fields.insert(k, v);
        }
        for k in [
            "entries",
            "hits",
            "misses",
            "evictions",
            "replans",
            "zone_blocks_pruned",
            "zone_pairs_kept",
            "zone_pairs_pruned",
            "zone_rows_pruned",
            "zone_map_hits",
            "zone_map_misses",
            "task_attempts",
            "real_retries",
            "panics_caught",
            "deadline_exceeded",
            "shed",
            "epoch",
        ] {
            let v = fields.get(k).unwrap_or_else(|| panic!("missing {k}"));
            assert!(v.parse::<u64>().is_ok(), "{k}={v}");
        }
        let f: f64 = fields["skip_fraction"].parse().expect("skip_fraction");
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn parses_history_and_profile() {
        assert_eq!(
            Request::parse("history").unwrap(),
            Request::History { n: None }
        );
        assert_eq!(
            Request::parse("history 5").unwrap(),
            Request::History { n: Some(5) }
        );
        assert!(Request::parse("history 0").is_err());
        assert!(Request::parse("history many").is_err());
        assert_eq!(
            Request::parse("profile 42").unwrap(),
            Request::Profile { trace_id: 42 }
        );
        assert!(Request::parse("profile").is_err());
        assert!(Request::parse("profile x").is_err());
    }

    #[test]
    fn parses_simple_commands_and_rejects_garbage() {
        assert_eq!(Request::parse("ping").unwrap(), Request::Ping);
        assert_eq!(Request::parse("  STATUS  ").unwrap(), Request::Status);
        assert_eq!(Request::parse("tables").unwrap(), Request::Tables);
        assert_eq!(Request::parse("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(Request::parse("quit").unwrap(), Request::Quit);
        assert_eq!(
            Request::parse("unload r").unwrap(),
            Request::Unload { name: "r".into() }
        );
        assert!(Request::parse("").is_err());
        assert!(Request::parse("explode").is_err());
    }

    #[test]
    fn response_builders() {
        let ok = ok_response(&[("rows", "3".into())], Some("a,b\n1,2"));
        assert!(ok.starts_with("ok rows=3\n"));
        assert_eq!(err_response("boom"), "err boom");
    }
}
