//! The wire protocol: length-prefixed UTF-8 frames carrying one-line
//! commands with optional multi-line bodies.
//!
//! Framing: every message is a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 text. The payload's first line
//! is the command; the remaining lines are its body (SQL for `run`,
//! CSV rows for `load`). Responses use the same framing: the first
//! line starts with `ok` or `err`, followed by `key=value` tokens, and
//! the body carries row data.
//!
//! Commands also parse from a *single* line (the `--stdin` CLI mode
//! and the one-shot `client` subcommand), with the body inlined after
//! the command words — `;` separating what would be body lines:
//!
//! ```text
//! ping
//! status
//! tables
//! run [options] <sql>              -- options = RunOptions FromStr form
//! load <name> <col:type,...> [rows;rows;...]
//! shutdown
//! quit
//! ```
//!
//! The option syntax is exactly [`RunOptions`]'s `Display`/`FromStr`
//! round-trip (`ours`, `ours:grid`, `hive+calibrated`,
//! `pig+faults=0.25@99/4`), so the wire format needs no parsing
//! machinery of its own.

use mwtj_core::RunOptions;
use mwtj_storage::{DataType, Schema};
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (defends the server against a
/// hostile or corrupt length prefix).
pub const MAX_FRAME_BYTES: u32 = 8 * 1024 * 1024;

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); an EOF *inside* a frame, an oversized
/// length prefix, or invalid UTF-8 are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("invalid UTF-8: {e}")))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Scheduler + catalog counters.
    Status,
    /// List loaded relations.
    Tables,
    /// Execute SQL under the given run options.
    Run {
        /// Parsed run options (default when omitted).
        opts: RunOptions,
        /// The SQL text.
        sql: String,
    },
    /// Load a relation from CSV rows.
    Load {
        /// Relation name.
        name: String,
        /// Parsed schema from the `col:type,...` spec.
        schema: Schema,
        /// CSV rows (newline-separated).
        csv: String,
    },
    /// Drop a loaded relation.
    Unload {
        /// Relation name.
        name: String,
    },
    /// Stop the server after in-flight queries finish.
    Shutdown,
    /// Close this connection only.
    Quit,
}

impl Request {
    /// Parse a request payload: first line = command words, remaining
    /// lines = body. A single-line form inlines the body after the
    /// command words (with `;` for body line breaks).
    pub fn parse(payload: &str) -> Result<Request, String> {
        let mut lines = payload.splitn(2, '\n');
        let head = lines.next().unwrap_or_default().trim();
        let body = lines.next().unwrap_or_default();
        let mut words = head.split_whitespace();
        let cmd = words.next().ok_or("empty request")?;
        match cmd.to_ascii_lowercase().as_str() {
            "ping" => Ok(Request::Ping),
            "status" => Ok(Request::Status),
            "tables" => Ok(Request::Tables),
            "shutdown" => Ok(Request::Shutdown),
            "quit" | "exit" => Ok(Request::Quit),
            "run" => {
                let rest = head["run".len()..].trim_start();
                // `run [options] <sql…>`: the first word is options iff
                // it parses as RunOptions; otherwise the SQL starts
                // immediately (default options).
                let (opts, inline) = match rest.split_whitespace().next() {
                    Some(first) => match first.parse::<RunOptions>() {
                        Ok(opts) => (opts, rest[first.len()..].trim_start()),
                        Err(_) => (RunOptions::default(), rest),
                    },
                    None => (RunOptions::default(), rest),
                };
                let mut sql = String::new();
                if !inline.is_empty() {
                    sql.push_str(inline);
                    sql.push('\n');
                }
                sql.push_str(body);
                let sql = sql.trim().to_string();
                if sql.is_empty() {
                    return Err("run: missing SQL text".into());
                }
                Ok(Request::Run { opts, sql })
            }
            "load" => {
                let name = words.next().ok_or("load: missing relation name")?;
                let spec = words.next().ok_or("load: missing column spec")?;
                let schema = parse_colspec(name, spec)?;
                // Inline rows (if any) use `;` as the row separator.
                let inline: String = words.collect::<Vec<_>>().join(" ").replace(';', "\n");
                let mut csv = String::new();
                if !inline.trim().is_empty() {
                    csv.push_str(inline.trim());
                    csv.push('\n');
                }
                csv.push_str(body);
                Ok(Request::Load {
                    name: name.to_string(),
                    schema,
                    csv,
                })
            }
            "unload" => {
                let name = words.next().ok_or("unload: missing relation name")?;
                Ok(Request::Unload {
                    name: name.to_string(),
                })
            }
            other => Err(format!(
                "unknown command `{other}` (expected ping, status, tables, run, load, unload, shutdown or quit)"
            )),
        }
    }
}

/// Parse a `col:type,...` schema spec (`int`, `double`/`float`, `str`).
fn parse_colspec(name: &str, spec: &str) -> Result<Schema, String> {
    let mut pairs = Vec::new();
    for part in spec.split(',') {
        let (col, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("column spec `{part}` missing `:type`"))?;
        let dt = match ty.to_ascii_lowercase().as_str() {
            "int" | "i64" => DataType::Int,
            "double" | "float" | "f64" => DataType::Double,
            "str" | "string" | "text" => DataType::Str,
            other => return Err(format!("unknown column type `{other}`")),
        };
        if col.is_empty() {
            return Err(format!("empty column name in `{part}`"));
        }
        pairs.push((col.to_string(), dt));
    }
    if pairs.is_empty() {
        return Err("empty column spec".into());
    }
    let refs: Vec<(&str, DataType)> = pairs.iter().map(|(c, t)| (c.as_str(), *t)).collect();
    Ok(Schema::from_pairs(name, &refs))
}

/// Build an `ok` response: a header of `key=value` tokens plus an
/// optional body.
pub fn ok_response(fields: &[(&str, String)], body: Option<&str>) -> String {
    let mut out = String::from("ok");
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    if let Some(b) = body {
        out.push('\n');
        out.push_str(b);
    }
    out
}

/// Build an `err` response.
pub fn err_response(detail: impl std::fmt::Display) -> String {
    format!("err {detail}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_core::Method;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello\nworld").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello\nworld"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        // EOF inside the length prefix.
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut r).is_err());
        // EOF inside the payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Hostile length prefix: refused before allocating.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Invalid UTF-8.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn parses_run_with_and_without_options() {
        let r =
            Request::parse("run hive+calibrated SELECT * FROM r a, s b WHERE a.x < b.x").unwrap();
        match r {
            Request::Run { opts, sql } => {
                assert_eq!(opts.get_method(), Method::Hive);
                assert!(opts.wants_calibration());
                assert!(sql.starts_with("SELECT"));
            }
            other => panic!("{other:?}"),
        }
        // No options: SQL starts right after `run`.
        let r = Request::parse("run SELECT * FROM r a, s b WHERE a.x = b.x").unwrap();
        match r {
            Request::Run { opts, sql } => {
                assert_eq!(opts, RunOptions::default());
                assert!(sql.starts_with("SELECT"));
            }
            other => panic!("{other:?}"),
        }
        // Framed form: SQL in the body.
        let r = Request::parse("run ours:grid\nSELECT *\nFROM r a, s b\nWHERE a.x = b.x").unwrap();
        match r {
            Request::Run { sql, .. } => assert!(sql.contains('\n')),
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("run").is_err());
        assert!(Request::parse("run ours").is_err(), "options but no SQL");
    }

    #[test]
    fn parses_load_inline_and_body() {
        let r = Request::parse("load r a:int,b:double 1,2.5;3,4.5").unwrap();
        match r {
            Request::Load { name, schema, csv } => {
                assert_eq!(name, "r");
                assert_eq!(schema.arity(), 2);
                assert_eq!(csv.trim().lines().count(), 2);
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse("load s k:int\n7\n8\n9").unwrap();
        match r {
            Request::Load { csv, .. } => assert_eq!(csv.lines().count(), 3),
            other => panic!("{other:?}"),
        }
        assert!(Request::parse("load").is_err());
        assert!(Request::parse("load r").is_err());
        assert!(Request::parse("load r a:blob 1").is_err());
        assert!(Request::parse("load r a 1").is_err());
    }

    #[test]
    fn parses_simple_commands_and_rejects_garbage() {
        assert_eq!(Request::parse("ping").unwrap(), Request::Ping);
        assert_eq!(Request::parse("  STATUS  ").unwrap(), Request::Status);
        assert_eq!(Request::parse("tables").unwrap(), Request::Tables);
        assert_eq!(Request::parse("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(Request::parse("quit").unwrap(), Request::Quit);
        assert_eq!(
            Request::parse("unload r").unwrap(),
            Request::Unload { name: "r".into() }
        );
        assert!(Request::parse("").is_err());
        assert!(Request::parse("explode").is_err());
    }

    #[test]
    fn response_builders() {
        let ok = ok_response(&[("rows", "3".into())], Some("a,b\n1,2"));
        assert!(ok.starts_with("ok rows=3\n"));
        assert_eq!(err_response("boom"), "err boom");
    }
}
