//! A from-scratch TPC-H `dbgen` subset.
//!
//! The eight standard tables at their standard relative cardinalities
//! per scale factor (SF 1 = 10k suppliers, 150k customers, 200k parts,
//! 800k partsupps, 1.5M orders, ~6M lineitems, 25 nations, 5 regions),
//! restricted to the columns the paper's benchmark queries (Q7, Q17,
//! Q18, Q21) touch. Deterministic per seed.

use mwtj_storage::{DataType, Relation, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Day ordinal of 1992-01-01 (epoch for date columns).
pub const DATE_LO: i64 = 0;
/// Day ordinal just past 1998-12-31 — dates are uniform in
/// `[DATE_LO, DATE_HI)`, mirroring dbgen's 7-year span.
pub const DATE_HI: i64 = 2_556;

/// TPC-H generator.
#[derive(Debug, Clone)]
pub struct TpchGen {
    /// Scale factor. SF 1 is the full benchmark; the repro default in
    /// the benches is ~0.001–0.01.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchGen {
    fn default() -> Self {
        TpchGen {
            scale: 0.001,
            seed: 0x7bc4,
        }
    }
}

macro_rules! count {
    ($self:ident, $base:expr) => {
        ((($base as f64) * $self.scale).round() as usize).max(1)
    };
}

impl TpchGen {
    /// `nation(n_nationkey, n_name)` — fixed 25 rows.
    pub fn nation(&self) -> Relation {
        let schema = Schema::from_pairs(
            "nation",
            &[("n_nationkey", DataType::Int), ("n_name", DataType::Str)],
        );
        const NAMES: [&str; 25] = [
            "ALGERIA",
            "ARGENTINA",
            "BRAZIL",
            "CANADA",
            "EGYPT",
            "ETHIOPIA",
            "FRANCE",
            "GERMANY",
            "INDIA",
            "INDONESIA",
            "IRAN",
            "IRAQ",
            "JAPAN",
            "JORDAN",
            "KENYA",
            "MOROCCO",
            "MOZAMBIQUE",
            "PERU",
            "CHINA",
            "ROMANIA",
            "SAUDI ARABIA",
            "VIETNAM",
            "RUSSIA",
            "UNITED KINGDOM",
            "UNITED STATES",
        ];
        let rows = NAMES
            .iter()
            .enumerate()
            .map(|(i, n)| Tuple::new(vec![Value::Int(i as i64), Value::from(*n)]))
            .collect();
        Relation::from_rows_unchecked(schema, rows)
    }

    /// `supplier(s_suppkey, s_name, s_nationkey)` — 10k·SF rows.
    pub fn supplier(&self) -> Relation {
        let n = count!(self, 10_000);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x51);
        let schema = Schema::from_pairs(
            "supplier",
            &[
                ("s_suppkey", DataType::Int),
                ("s_name", DataType::Str),
                ("s_nationkey", DataType::Int),
            ],
        );
        let rows = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::from(format!("Supplier#{i:09}")),
                    Value::Int(rng.gen_range(0..25)),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(schema, rows)
    }

    /// `customer(c_custkey, c_name, c_nationkey)` — 150k·SF rows.
    pub fn customer(&self) -> Relation {
        let n = count!(self, 150_000);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc5);
        let schema = Schema::from_pairs(
            "customer",
            &[
                ("c_custkey", DataType::Int),
                ("c_name", DataType::Str),
                ("c_nationkey", DataType::Int),
            ],
        );
        let rows = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::from(format!("Customer#{i:09}")),
                    Value::Int(rng.gen_range(0..25)),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(schema, rows)
    }

    /// `part(p_partkey, p_brand, p_container, p_retailprice)` —
    /// 200k·SF rows. Brands `Brand#11..Brand#55`, containers from
    /// dbgen's vocabulary.
    pub fn part(&self) -> Relation {
        let n = count!(self, 200_000);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9a);
        let schema = Schema::from_pairs(
            "part",
            &[
                ("p_partkey", DataType::Int),
                ("p_brand", DataType::Str),
                ("p_container", DataType::Str),
                ("p_retailprice", DataType::Double),
            ],
        );
        const CONTAINERS: [&str; 8] = [
            "SM CASE",
            "SM BOX",
            "MED BAG",
            "MED BOX",
            "LG CASE",
            "LG BOX",
            "JUMBO PKG",
            "WRAP JAR",
        ];
        let rows = (0..n)
            .map(|i| {
                let brand = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::from(brand),
                    Value::from(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
                    Value::Double(rng.gen_range(900.0..2_000.0)),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(schema, rows)
    }

    /// `partsupp(ps_partkey, ps_suppkey, ps_availqty, ps_supplycost)` —
    /// 4 suppliers per part.
    pub fn partsupp(&self) -> Relation {
        let parts = count!(self, 200_000);
        let sups = count!(self, 10_000);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x65);
        let schema = Schema::from_pairs(
            "partsupp",
            &[
                ("ps_partkey", DataType::Int),
                ("ps_suppkey", DataType::Int),
                ("ps_availqty", DataType::Int),
                ("ps_supplycost", DataType::Double),
            ],
        );
        let mut rows = Vec::with_capacity(parts * 4);
        for p in 0..parts {
            for _ in 0..4 {
                rows.push(Tuple::new(vec![
                    Value::Int(p as i64),
                    Value::Int(rng.gen_range(0..sups) as i64),
                    Value::Int(rng.gen_range(1..10_000)),
                    Value::Double(rng.gen_range(1.0..1_000.0)),
                ]));
            }
        }
        Relation::from_rows_unchecked(schema, rows)
    }

    /// `orders(o_orderkey, o_custkey, o_orderstatus, o_totalprice,
    /// o_orderdate)` — 1.5M·SF rows.
    pub fn orders(&self) -> Relation {
        let n = count!(self, 1_500_000);
        let custs = count!(self, 150_000);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0d);
        let schema = Schema::from_pairs(
            "orders",
            &[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderstatus", DataType::Str),
                ("o_totalprice", DataType::Double),
                ("o_orderdate", DataType::Int),
            ],
        );
        let rows = (0..n)
            .map(|i| {
                let status = match rng.gen_range(0..4) {
                    0 => "F",
                    1 => "O",
                    2 => "P",
                    _ => "F",
                };
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..custs) as i64),
                    Value::from(status),
                    Value::Double(rng.gen_range(1_000.0..500_000.0)),
                    Value::Int(rng.gen_range(DATE_LO..DATE_HI)),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(schema, rows)
    }

    /// `lineitem(l_orderkey, l_partkey, l_suppkey, l_linenumber,
    /// l_quantity, l_extendedprice, l_discount, l_shipdate,
    /// l_commitdate, l_receiptdate)` — 1–7 lines per order (~4 avg),
    /// like dbgen.
    pub fn lineitem(&self) -> Relation {
        let orders = count!(self, 1_500_000);
        let parts = count!(self, 200_000);
        let sups = count!(self, 10_000);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x11);
        let schema = Self::lineitem_schema("lineitem");
        let mut rows = Vec::with_capacity(orders * 4);
        for o in 0..orders {
            let lines = rng.gen_range(1..=7);
            for ln in 0..lines {
                let ship = rng.gen_range(DATE_LO..DATE_HI - 60);
                let commit = ship + rng.gen_range(-30i64..60);
                let receipt = ship + rng.gen_range(1i64..30);
                rows.push(Tuple::new(vec![
                    Value::Int(o as i64),
                    Value::Int(rng.gen_range(0..parts) as i64),
                    Value::Int(rng.gen_range(0..sups) as i64),
                    Value::Int(ln as i64),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::Double(rng.gen_range(900.0..100_000.0)),
                    Value::Double(rng.gen_range(0.0..0.1)),
                    Value::Int(ship),
                    Value::Int(commit),
                    Value::Int(receipt),
                ]));
            }
        }
        Relation::from_rows_unchecked(schema, rows)
    }

    /// The lineitem schema under an arbitrary relation name (self-joins
    /// in Q21 need `l1`, `l2`, `l3` instances).
    pub fn lineitem_schema(name: &str) -> Schema {
        Schema::from_pairs(
            name,
            &[
                ("l_orderkey", DataType::Int),
                ("l_partkey", DataType::Int),
                ("l_suppkey", DataType::Int),
                ("l_linenumber", DataType::Int),
                ("l_quantity", DataType::Int),
                ("l_extendedprice", DataType::Double),
                ("l_discount", DataType::Double),
                ("l_shipdate", DataType::Int),
                ("l_commitdate", DataType::Int),
                ("l_receiptdate", DataType::Int),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> TpchGen {
        TpchGen {
            scale: 0.001,
            seed: 42,
        }
    }

    #[test]
    fn cardinality_ratios_match_dbgen() {
        let g = gen();
        assert_eq!(g.nation().len(), 25);
        assert_eq!(g.supplier().len(), 10);
        assert_eq!(g.customer().len(), 150);
        assert_eq!(g.part().len(), 200);
        assert_eq!(g.partsupp().len(), 800);
        assert_eq!(g.orders().len(), 1_500);
        let li = g.lineitem().len();
        assert!((1_500..=10_500).contains(&li), "lineitem {li}");
    }

    #[test]
    fn foreign_keys_resolve() {
        let g = gen();
        let custs = g.customer().len() as i64;
        for row in g.orders().rows() {
            let ck = row.get(1).as_int().unwrap();
            assert!((0..custs).contains(&ck));
        }
        let sups = g.supplier().len() as i64;
        let parts = g.part().len() as i64;
        for row in g.lineitem().rows() {
            assert!((0..parts).contains(&row.get(1).as_int().unwrap()));
            assert!((0..sups).contains(&row.get(2).as_int().unwrap()));
        }
        for row in g.supplier().rows() {
            assert!((0..25).contains(&row.get(2).as_int().unwrap()));
        }
    }

    #[test]
    fn dates_in_span_and_receipt_after_ship() {
        let g = gen();
        for row in g.lineitem().rows() {
            let ship = row.get(7).as_int().unwrap();
            let receipt = row.get(9).as_int().unwrap();
            assert!((DATE_LO..DATE_HI).contains(&ship));
            assert!(receipt > ship);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen().orders();
        let b = gen().orders();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
        let c = TpchGen { seed: 1, ..gen() }.orders();
        assert_ne!(c.sorted_rows(), a.sorted_rows());
    }

    #[test]
    fn brands_are_dbgen_shaped() {
        let g = gen();
        for row in g.part().rows() {
            let b = row.get(1).as_str().unwrap();
            assert!(b.starts_with("Brand#"), "{b}");
            assert_eq!(b.len(), 8);
        }
    }
}
