//! The mobile-calls data set.
//!
//! Schema (§6.1 of the paper): `id, d (date), bt (begin time), l
//! (length), bsc (base station code)`. Call volume over the day follows
//! a diurnal pattern — we use a two-peak (morning/evening) mixture over
//! 24 hours, periodic across days. Base stations have a skewed (Zipf)
//! popularity, which is what produces the join-key skew the paper's
//! partitioning has to survive.

use mwtj_storage::{DataType, Relation, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of seconds in a day.
const DAY_SECS: i64 = 86_400;

/// Generator for mobile-calls relations.
#[derive(Debug, Clone)]
pub struct MobileGen {
    /// Number of distinct users.
    pub users: u32,
    /// Number of base stations (paper: "over 2000").
    pub base_stations: u32,
    /// Days covered (paper: 61, Oct 1 – Nov 30, 2008).
    pub days: u32,
    /// Zipf exponent for base-station popularity (0 = uniform).
    pub bsc_zipf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MobileGen {
    fn default() -> Self {
        MobileGen {
            users: 21_140, // paper's 2,113,968 users, scaled 1:100
            base_stations: 2_000,
            days: 61,
            bsc_zipf: 0.8,
            seed: 0x5eed_ca11,
        }
    }
}

impl MobileGen {
    /// The relation schema. Dates are day ordinals, begin times are
    /// seconds since midnight, lengths are seconds.
    pub fn schema(name: &str) -> Schema {
        Schema::from_pairs(
            name,
            &[
                ("id", DataType::Int),
                ("d", DataType::Int),
                ("bt", DataType::Int),
                ("l", DataType::Int),
                ("bsc", DataType::Int),
            ],
        )
    }

    /// Generate `n` calls under relation name `name`.
    pub fn generate(&self, name: &str, n: usize) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.base_stations as usize, self.bsc_zipf);
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let id = rng.gen_range(0..self.users) as i64;
                let d = rng.gen_range(0..self.days) as i64;
                let bt = diurnal_second(&mut rng);
                // Call lengths: exponential-ish, mean ~120 s, capped at
                // 2 h.
                let l = (-(rng.gen::<f64>().max(1e-12)).ln() * 120.0)
                    .min(7_200.0)
                    .ceil() as i64;
                let bsc = zipf.sample(&mut rng) as i64;
                Tuple::new(vec![
                    Value::Int(id),
                    Value::Int(d),
                    Value::Int(bt),
                    Value::Int(l),
                    Value::Int(bsc),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(Self::schema(name), rows)
    }

    /// Generate a relation of approximately `target_bytes` encoded
    /// bytes (the benchmark's "underlying data volume" axis).
    pub fn generate_bytes(&self, name: &str, target_bytes: usize) -> Relation {
        // Measure a small probe to get bytes/row, then size accordingly.
        let probe = self.generate(name, 256);
        let per_row = probe.avg_row_bytes().max(1.0);
        let n = ((target_bytes as f64 / per_row).round() as usize).max(1);
        self.generate(name, n)
    }
}

/// Sample a second-of-day from the diurnal two-peak mixture: 20% uniform
/// background, 45% morning peak (~10:00), 35% evening peak (~20:00).
fn diurnal_second(rng: &mut impl Rng) -> i64 {
    let u: f64 = rng.gen();
    let hour = if u < 0.20 {
        rng.gen::<f64>() * 24.0
    } else if u < 0.65 {
        gaussian(rng, 10.0, 2.5).rem_euclid(24.0)
    } else {
        gaussian(rng, 20.0, 2.0).rem_euclid(24.0)
    };
    ((hour / 24.0) * DAY_SECS as f64) as i64
}

fn gaussian(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    // Box–Muller; rand's default feature set in this workspace has no
    // distributions module, so roll the classic transform.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Zipf sampler over ranks `0..n` via inverse-CDF table.
#[derive(Debug, Clone)]
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc.max(1e-12);
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let s = MobileGen::schema("calls");
        assert_eq!(s.arity(), 5);
        let names: Vec<&str> = s.fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["id", "d", "bt", "l", "bsc"]);
    }

    #[test]
    fn generation_is_deterministic() {
        let g = MobileGen::default();
        let a = g.generate("c", 500);
        let b = g.generate("c", 500);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
        let g2 = MobileGen {
            seed: 99,
            ..Default::default()
        };
        assert_ne!(g2.generate("c", 500).sorted_rows(), a.sorted_rows());
    }

    #[test]
    fn values_in_domain() {
        let g = MobileGen {
            users: 100,
            base_stations: 50,
            days: 7,
            ..Default::default()
        };
        let r = g.generate("c", 2_000);
        for row in r.rows() {
            let id = row.get(0).as_int().unwrap();
            let d = row.get(1).as_int().unwrap();
            let bt = row.get(2).as_int().unwrap();
            let l = row.get(3).as_int().unwrap();
            let bsc = row.get(4).as_int().unwrap();
            assert!((0..100).contains(&id));
            assert!((0..7).contains(&d));
            assert!((0..DAY_SECS).contains(&bt));
            assert!((1..=7_200).contains(&l));
            assert!((0..50).contains(&bsc));
        }
    }

    #[test]
    fn diurnal_pattern_has_daytime_peak() {
        let g = MobileGen::default();
        let r = g.generate("c", 20_000);
        let mut by_hour = [0usize; 24];
        for row in r.rows() {
            let bt = row.get(2).as_int().unwrap();
            by_hour[(bt / 3600) as usize] += 1;
        }
        let night: usize = (0..6).map(|h| by_hour[h]).sum();
        let day: usize = (8..22).map(|h| by_hour[h]).sum();
        assert!(
            day > night * 3,
            "diurnal pattern missing: day {day} vs night {night}"
        );
    }

    #[test]
    fn zipf_skews_base_stations() {
        let g = MobileGen::default();
        let r = g.generate("c", 20_000);
        let mut counts = std::collections::HashMap::new();
        for row in r.rows() {
            *counts.entry(row.get(4).as_int().unwrap()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = 20_000.0 / counts.len() as f64;
        assert!(max as f64 > mean * 3.0, "no skew: max {max}, mean {mean}");
    }

    #[test]
    fn generate_bytes_hits_target() {
        let g = MobileGen::default();
        let r = g.generate_bytes("c", 64 * 1024);
        let got = r.encoded_bytes() as f64;
        assert!(
            (got / 65536.0 - 1.0).abs() < 0.15,
            "got {got} bytes for 64 KiB target"
        );
    }
}
