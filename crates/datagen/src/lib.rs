//! # mwtj-datagen
//!
//! Deterministic data generators for the paper's two evaluation data
//! sets plus calibration workloads:
//!
//! * [`mobile`] — the mobile-calls data set (§6.1: `(id, d, bt, l,
//!   bsc)`, 2,113,968 users over 2000+ base stations, 61 days). The
//!   paper scales this set synthetically "following the distribution of
//!   the number of phone calls along a day-time, which is a diurnal
//!   pattern (a periodical function with 24-hour cycles)"; we generate
//!   with that same stated diurnal mixture at any target size.
//! * [`tpch`] — a from-scratch TPC-H `dbgen` subset: the eight standard
//!   tables with standard relative cardinalities per scale factor,
//!   restricted to the columns Q7/Q17/Q18/Q21 touch.
//! * [`synthetic`] — output-controllable self-join workloads, used to
//!   calibrate the cost model's `p` and `q` exactly as §6.2 does ("an
//!   output controllable self-join program over a synthetic data set").

#![warn(missing_docs)]

pub mod mobile;
pub mod synthetic;
pub mod tpch;

pub use mobile::MobileGen;
pub use synthetic::SyntheticGen;
pub use tpch::TpchGen;
