//! Output-controllable synthetic workloads for cost-model calibration.
//!
//! §6.2 of the paper computes the distributions of `p` and `q` "by
//! studying an output controllable self-join program over a synthetic
//! data set". [`SyntheticGen`] produces relations whose self-equi-join
//! output size is analytically known: `n` rows spread over `k` distinct
//! keys gives `Σ (n/k)² ≈ n²/k` join pairs, so sweeping `k` sweeps the
//! map/reduce output ratio precisely.

use mwtj_storage::{DataType, Relation, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for calibration relations.
#[derive(Debug, Clone)]
pub struct SyntheticGen {
    /// RNG seed.
    pub seed: u64,
    /// Bytes of string padding appended to each row (to set row width
    /// independently of key count).
    pub pad_bytes: usize,
}

impl Default for SyntheticGen {
    fn default() -> Self {
        SyntheticGen {
            seed: 0xface,
            pad_bytes: 32,
        }
    }
}

impl SyntheticGen {
    /// Schema: `(k INT, v INT, pad STRING)`.
    pub fn schema(name: &str) -> Schema {
        Schema::from_pairs(
            name,
            &[
                ("k", DataType::Int),
                ("v", DataType::Int),
                ("pad", DataType::Str),
            ],
        )
    }

    /// `n` rows over `distinct_keys` uniformly-popular keys. The
    /// self-equi-join on `k` produces ~`n²/distinct_keys` pairs.
    pub fn uniform_keys(&self, name: &str, n: usize, distinct_keys: usize) -> Relation {
        assert!(distinct_keys >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pad: String = "x".repeat(self.pad_bytes);
        let rows = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..distinct_keys) as i64),
                    Value::Int(i as i64),
                    Value::from(pad.clone()),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(Self::schema(name), rows)
    }

    /// `n` rows with one "hot" key receiving `hot_fraction` of the rows
    /// and the rest uniform over `distinct_keys` — the skew torture
    /// case for partitioners.
    pub fn skewed_keys(
        &self,
        name: &str,
        n: usize,
        distinct_keys: usize,
        hot_fraction: f64,
    ) -> Relation {
        assert!((0.0..=1.0).contains(&hot_fraction));
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5e);
        let pad: String = "x".repeat(self.pad_bytes);
        let rows = (0..n)
            .map(|i| {
                let k = if rng.gen::<f64>() < hot_fraction {
                    0
                } else {
                    rng.gen_range(0..distinct_keys) as i64
                };
                Tuple::new(vec![
                    Value::Int(k),
                    Value::Int(i as i64),
                    Value::from(pad.clone()),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(Self::schema(name), rows)
    }

    /// Rows with a uniform numeric column in `[0, domain)` — band /
    /// inequality join workloads with analytically-known selectivity.
    pub fn uniform_numeric(&self, name: &str, n: usize, domain: i64) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xd0);
        let pad: String = "x".repeat(self.pad_bytes);
        let rows = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..domain)),
                    Value::Int(i as i64),
                    Value::from(pad.clone()),
                ])
            })
            .collect();
        Relation::from_rows_unchecked(Self::schema(name), rows)
    }

    /// Analytic expected self-equi-join output pairs for
    /// [`SyntheticGen::uniform_keys`].
    pub fn expected_self_join_pairs(n: usize, distinct_keys: usize) -> f64 {
        (n as f64) * (n as f64) / distinct_keys as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn self_join_size_is_controllable() {
        let g = SyntheticGen::default();
        let r = g.uniform_keys("s", 2_000, 50);
        let mut by_key: HashMap<i64, usize> = HashMap::new();
        for row in r.rows() {
            *by_key.entry(row.get(0).as_int().unwrap()).or_insert(0) += 1;
        }
        let pairs: f64 = by_key.values().map(|&c| (c * c) as f64).sum();
        let expect = SyntheticGen::expected_self_join_pairs(2_000, 50);
        assert!(
            (pairs / expect - 1.0).abs() < 0.1,
            "pairs {pairs} vs expected {expect}"
        );
    }

    #[test]
    fn skew_concentrates_on_key_zero() {
        let g = SyntheticGen::default();
        let r = g.skewed_keys("s", 10_000, 100, 0.3);
        let zero = r
            .rows()
            .iter()
            .filter(|t| t.get(0).as_int() == Some(0))
            .count();
        assert!(zero > 2_500, "hot key got {zero} rows");
    }

    #[test]
    fn pad_controls_row_width() {
        let small = SyntheticGen {
            pad_bytes: 4,
            ..Default::default()
        }
        .uniform_keys("s", 100, 10);
        let big = SyntheticGen {
            pad_bytes: 200,
            ..Default::default()
        }
        .uniform_keys("s", 100, 10);
        assert!(big.avg_row_bytes() > small.avg_row_bytes() + 150.0);
    }

    #[test]
    fn uniform_numeric_in_domain() {
        let g = SyntheticGen::default();
        let r = g.uniform_numeric("u", 1_000, 500);
        for row in r.rows() {
            let v = row.get(0).as_int().unwrap();
            assert!((0..500).contains(&v));
        }
    }
}
