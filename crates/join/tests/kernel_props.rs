//! Differential property tests for the compiled join kernels.
//!
//! Three evaluators must agree on every random instance, as multisets:
//!
//! * the specialised kernel [`PairKernel::compile`] picks (hash / band
//!   / nested),
//! * the compiled nested loop ([`PairKernel::compile_nested`]), and
//! * the single-threaded query [`oracle_join`].
//!
//! Instances randomise the schemas (arity and per-column types over
//! Int/Double/Str), the predicates (`<`, `<=`, `=`, `!=`, and the
//! flipped forms), NULL density, and the data distribution (skewed
//! toward small keys so hash buckets and band runs both see heavy
//! duplication).

use mwtj_join::kernel::{KernelKind, PairKernel};
use mwtj_join::oracle::{canonicalize, oracle_join};
use mwtj_join::IntermediateShape;
use mwtj_query::theta::CompiledPredicate;
use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::{DataType, Relation, Schema, Tuple, Value};
use proptest::prelude::*;

/// Skew a raw draw toward 0: min of two 0..16 digits — collisions and
/// long equal-key runs are the interesting regime for hash and band.
fn skew(raw: i64) -> i64 {
    let a = raw.rem_euclid(16);
    let b = (raw / 16).rem_euclid(16);
    a.min(b)
}

/// Deterministically materialise a raw i64 draw as a value of the
/// column's declared type, with ~1/13 NULLs.
fn materialise(ty: DataType, raw: i64) -> Value {
    if raw.rem_euclid(13) == 0 {
        return Value::Null;
    }
    match ty {
        DataType::Int => Value::Int(skew(raw)),
        // Signed, and producing -0.0 whenever skew lands on 0 with the
        // negative sign — sql_cmp distinguishes -0.0 from +0.0.
        DataType::Double => {
            let sign = if raw.rem_euclid(2) == 0 { -1.0 } else { 1.0 };
            Value::Double(skew(raw) as f64 * 0.5 * sign)
        }
        DataType::Str => {
            const WORDS: [&str; 5] = ["a", "ab", "b", "ba", "c"];
            Value::from(WORDS[raw.rem_euclid(5) as usize])
        }
    }
}

fn build_rel(name: &str, types: &[DataType], raws: &[Vec<i64>]) -> Relation {
    let fields: Vec<(String, DataType)> = types
        .iter()
        .enumerate()
        .map(|(i, &t)| (format!("c{i}"), t))
        .collect();
    let pairs: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(name, &pairs);
    let rows = raws
        .iter()
        .map(|raw| {
            Tuple::new(
                raw.iter()
                    .zip(types)
                    .map(|(&r, &t)| materialise(t, r))
                    .collect(),
            )
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

const TYPES: [DataType; 3] = [DataType::Int, DataType::Double, DataType::Str];
const OPS: [ThetaOp; 4] = [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Eq, ThetaOp::Ne];

/// Run all three evaluators and assert multiset equality (plain
/// asserts: the proptest shim does not shrink). Returns the kernel kind
/// actually exercised.
fn check_agreement(q: &MultiwayQuery, l: &Relation, r: &Relation) -> KernelKind {
    let left = IntermediateShape::base(q, 0);
    let right = IntermediateShape::base(q, 1);
    let out = IntermediateShape::union(q, &left, &right);
    let preds: Vec<CompiledPredicate> = q
        .compile()
        .expect("query compiles")
        .per_condition
        .iter()
        .flat_map(|c| c.iter().copied())
        .collect();
    let fast = PairKernel::compile(&left, &right, &out, &preds);
    let slow = PairKernel::compile_nested(&left, &right, &out, &preds);

    let lrows: Vec<&Tuple> = l.rows().iter().collect();
    let rrows: Vec<&Tuple> = r.rows().iter().collect();
    let assemble_all = |k: &PairKernel| -> Vec<Tuple> {
        let mut pairs = Vec::new();
        k.join_into(&lrows, &rrows, &mut pairs);
        pairs
            .iter()
            .map(|&(li, ri)| k.assemble(lrows[li as usize], rrows[ri as usize]))
            .collect()
    };

    let got_fast = assemble_all(&fast);
    let got_slow = assemble_all(&slow);
    // Pair streams must agree exactly (order included); the oracle only
    // as a multiset (it enumerates in its own order).
    assert_eq!(&got_fast, &got_slow, "kernel {:?} vs nested", fast.kind());
    let want = canonicalize(oracle_join(q, &[l, r]));
    assert_eq!(
        canonicalize(got_fast),
        want,
        "kernel {:?} vs oracle",
        fast.kind()
    );
    fast.kind()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any predicate set over random schemas: the selected kernel, the
    /// nested loop, and the oracle agree.
    #[test]
    fn kernel_equals_nested_and_oracle(
        ltypes in prop::collection::vec(0usize..3, 1..4),
        rtypes in prop::collection::vec(0usize..3, 1..4),
        lraws in prop::collection::vec(prop::collection::vec(any::<i64>(), 3), 0..28),
        rraws in prop::collection::vec(prop::collection::vec(any::<i64>(), 3), 0..28),
        pred_picks in prop::collection::vec((0usize..4, any::<u64>(), any::<u64>()), 1..3),
    ) {
        let ltypes: Vec<DataType> = ltypes.iter().map(|&i| TYPES[i]).collect();
        let rtypes: Vec<DataType> = rtypes.iter().map(|&i| TYPES[i]).collect();
        let lraws: Vec<Vec<i64>> = lraws.iter().map(|v| v[..ltypes.len()].to_vec()).collect();
        let rraws: Vec<Vec<i64>> = rraws.iter().map(|v| v[..rtypes.len()].to_vec()).collect();
        let l = build_rel("l", &ltypes, &lraws);
        let r = build_rel("r", &rtypes, &rraws);
        let mut qb = QueryBuilder::new("prop")
            .relation(l.schema().clone())
            .relation(r.schema().clone());
        for &(op_i, lc, rc) in &pred_picks {
            let lcol = format!("c{}", lc as usize % ltypes.len());
            let rcol = format!("c{}", rc as usize % rtypes.len());
            qb = qb.join("l", &lcol, OPS[op_i], "r", &rcol);
        }
        let q = qb.build().unwrap();
        check_agreement(&q, &l, &r);
    }

    /// Single-inequality instances: the band kernel is actually the one
    /// under test (not a lucky nested fallback), across both operator
    /// directions and Int/Double/Str columns.
    #[test]
    fn band_kernel_is_exercised_and_exact(
        ty in 0usize..3,
        op_i in 0usize..4,
        lraws in prop::collection::vec(any::<i64>(), 0..40),
        rraws in prop::collection::vec(any::<i64>(), 0..40),
    ) {
        const BAND_OPS: [ThetaOp; 4] = [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Ge, ThetaOp::Gt];
        let types = [TYPES[ty]];
        let lraws: Vec<Vec<i64>> = lraws.iter().map(|&v| vec![v]).collect();
        let rraws: Vec<Vec<i64>> = rraws.iter().map(|&v| vec![v]).collect();
        let l = build_rel("l", &types, &lraws);
        let r = build_rel("r", &types, &rraws);
        let q = QueryBuilder::new("band")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "c0", BAND_OPS[op_i], "r", "c0")
            .build()
            .unwrap();
        let kind = check_agreement(&q, &l, &r);
        prop_assert_eq!(kind, KernelKind::Band);
    }

    /// Equality-bearing instances: the hash kernel is the one under
    /// test, with and without a residual inequality.
    #[test]
    fn hash_kernel_is_exercised_and_exact(
        ty in 0usize..3,
        residual in any::<bool>(),
        res_op in 0usize..4,
        lraws in prop::collection::vec(prop::collection::vec(any::<i64>(), 2), 0..40),
        rraws in prop::collection::vec(prop::collection::vec(any::<i64>(), 2), 0..40),
    ) {
        let types = [TYPES[ty], DataType::Int];
        let l = build_rel("l", &types, &lraws);
        let r = build_rel("r", &types, &rraws);
        let mut qb = QueryBuilder::new("hash")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "c0", ThetaOp::Eq, "r", "c0");
        if residual {
            qb = qb.join("l", "c1", OPS[res_op], "r", "c1");
        }
        let q = qb.build().unwrap();
        let kind = check_agreement(&q, &l, &r);
        prop_assert_eq!(kind, KernelKind::Hash);
    }
}
