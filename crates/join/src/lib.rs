//! # mwtj-join
//!
//! Join operators on the MapReduce runtime:
//!
//! * [`chain`] — **the paper's contribution** (§5.1, Algorithm 1): a
//!   chain multi-way theta-join evaluated in *one* MRJ by partitioning
//!   the cross-product hyper-cube with a Hilbert curve. Map tasks assign
//!   each tuple a random global id (no global view needed), route it to
//!   every reduce component whose region intersects the tuple's stripe,
//!   and reducers emit only the result combinations whose cell they own
//!   — exact output, no duplicates, balanced load.
//! * [`pair`] — pairwise operators: hash-partitioned equi-join,
//!   fragment-replicate ("broadcast") theta-join, and Okcan &
//!   Riedewald's 1-Bucket-Theta. These are the building blocks of the
//!   Hive/Pig/YSmart-style baseline cascades and of the merge steps
//!   that combine partial MRJ outputs (§4.2, Fig. 4).
//! * [`kernel`] — the compiled per-reducer join core: predicates
//!   resolved once to flat column indices + operator function pointers,
//!   dispatching to a residual-filtered hash join, a sort-merge band
//!   join, or a compiled nested loop (see the module docs for the
//!   selection rules).
//! * [`shape`] — the layout of intermediate rows (which relations'
//!   columns live where), shared by every operator.
//! * [`oracle`] — a single-threaded nested-loop evaluator used as
//!   ground truth in tests.

#![warn(missing_docs)]

pub mod chain;
pub mod kernel;
pub mod oracle;
pub mod pair;
pub mod shape;
mod skip;

pub use chain::ChainThetaJob;
pub use kernel::{KernelKind, KeySlice, PairKernel};
pub use oracle::oracle_join;
pub use pair::{PairJob, PairStrategy};
pub use shape::IntermediateShape;
