//! Single-threaded nested-loop oracle for multi-way theta-joins.
//!
//! Ground truth for every distributed operator: evaluates the full
//! query by depth-first enumeration with early predicate pruning, and
//! returns the projected result rows. Deliberately simple — its only
//! job is to be obviously correct.

use mwtj_query::MultiwayQuery;
use mwtj_storage::{Relation, Tuple};

/// Evaluate `query` over `relations` (one per query relation, in query
/// order) and return the projected output rows in unspecified order.
///
/// # Panics
/// Panics if `relations.len()` differs from the query's relation count
/// or a schema mismatches.
pub fn oracle_join(query: &MultiwayQuery, relations: &[&Relation]) -> Vec<Tuple> {
    assert_eq!(
        relations.len(),
        query.num_relations(),
        "one relation per query relation"
    );
    for (s, r) in query.schemas.iter().zip(relations) {
        assert_eq!(
            s.arity(),
            r.schema().arity(),
            "schema arity mismatch for `{}`",
            s.name()
        );
    }
    let compiled = query.compile().expect("query must compile");
    // Predicates checkable once relation `d` is bound (all their
    // relation references ≤ d).
    let n = query.num_relations();
    let mut by_depth: Vec<Vec<usize>> = vec![Vec::new(); n];
    let flat: Vec<_> = compiled
        .per_condition
        .iter()
        .flat_map(|c| c.iter().copied())
        .collect();
    for (pi, p) in flat.iter().enumerate() {
        by_depth[p.left_rel.max(p.right_rel)].push(pi);
    }

    let mut out = Vec::new();
    let mut stack: Vec<&Tuple> = Vec::with_capacity(n);
    descend(query, relations, &flat, &by_depth, &mut stack, &mut out);
    out
}

fn descend<'a>(
    query: &MultiwayQuery,
    relations: &[&'a Relation],
    preds: &[mwtj_query::theta::CompiledPredicate],
    by_depth: &[Vec<usize>],
    stack: &mut Vec<&'a Tuple>,
    out: &mut Vec<Tuple>,
) {
    let depth = stack.len();
    if depth == relations.len() {
        out.push(query.project(stack));
        return;
    }
    'rows: for row in relations[depth].rows() {
        stack.push(row);
        for &pi in &by_depth[depth] {
            if !preds[pi].eval(stack) {
                stack.pop();
                continue 'rows;
            }
        }
        descend(query, relations, preds, by_depth, stack, out);
        stack.pop();
    }
}

/// Sorted copy of `rows` for multiset comparison.
pub fn canonicalize(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_by(|a, b| a.total_cmp(b));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Schema};

    fn rel(name: &str, vals: &[(i64, i64)]) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        Relation::from_rows_unchecked(schema, vals.iter().map(|&(a, b)| tuple![a, b]).collect())
    }

    #[test]
    fn two_way_inequality() {
        let r = rel("r", &[(1, 0), (2, 0), (3, 0)]);
        let s = rel("s", &[(2, 0), (3, 0)]);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Lt, "s", "a")
            .build()
            .unwrap();
        let out = oracle_join(&q, &[&r, &s]);
        // pairs with r.a < s.a: (1,2),(1,3),(2,3) -> 3 rows
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn three_way_chain_counts() {
        let r = rel("r", &[(1, 0), (5, 0)]);
        let s = rel("s", &[(2, 10), (6, 20)]);
        let t = rel("t", &[(0, 15), (0, 25)]);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .relation(t.schema().clone())
            .join("r", "a", ThetaOp::Lt, "s", "a") // (1,2),(1,6),(5,6)
            .join("s", "b", ThetaOp::Lt, "t", "b")
            .build()
            .unwrap();
        let out = oracle_join(&q, &[&r, &s, &t]);
        // (1,2): s.b=10 < t.b in {15,25} -> 2
        // (1,6): s.b=20 < 25 -> 1 ; (5,6): -> 1. total 4
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn projection_applies() {
        let r = rel("r", &[(1, 7)]);
        let s = rel("s", &[(2, 9)]);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Lt, "s", "a")
            .project("s", "b")
            .build()
            .unwrap();
        let out = oracle_join(&q, &[&r, &s]);
        assert_eq!(out, vec![tuple![9]]);
    }

    #[test]
    fn empty_input_empty_output() {
        let r = rel("r", &[]);
        let s = rel("s", &[(2, 9)]);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Lt, "s", "a")
            .build()
            .unwrap();
        assert!(oracle_join(&q, &[&r, &s]).is_empty());
    }

    #[test]
    fn canonicalize_sorts() {
        let rows = vec![tuple![2], tuple![1]];
        assert_eq!(canonicalize(rows), vec![tuple![1], tuple![2]]);
    }
}
