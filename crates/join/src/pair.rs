//! Pairwise join operators over shaped intermediates.
//!
//! [`PairJob`] joins two inputs (base relations or intermediate results)
//! under any conjunction of theta predicates, with three partitioning
//! strategies:
//!
//! * [`PairStrategy::EquiHash`] — hash partition on the equality key
//!   columns (plus the shared-relation tuples when merging two partial
//!   results, §4.2: "their output can be merged using the common
//!   relation as the key"). The classic repartition join; only valid
//!   when there is at least one equality to hash on.
//! * [`PairStrategy::Broadcast`] — fragment-replicate: the designated
//!   side is copied to every reducer, the other side is split evenly.
//!   What Hive/Pig-era systems fall back to for pure inequality joins.
//! * [`PairStrategy::OneBucket`] — Okcan & Riedewald's 1-Bucket-Theta
//!   rectangle tiling of the join matrix: exact cover, each pair
//!   examined by exactly one reducer, balanced without statistics.
//!
//! Whatever the partitioning, the reduce-side join itself runs through
//! a [`PairKernel`] compiled once at job construction (hash join on the
//! equality component, sort-merge band join on a single inequality,
//! compiled nested loop otherwise — see [`crate::kernel`]); the
//! simulated cost accounting still prices the full candidate cross
//! product per reducer, exactly as before.

use crate::kernel::PairKernel;
use crate::shape::IntermediateShape;
use crate::skip::PairSkipFilter;
use mwtj_hilbert::RectPartition;
use mwtj_mapreduce::engine::GROUP_BY_AUX;
use mwtj_mapreduce::{Emit, MrJob, SkipFilter, TagZones, TaggedRecord};
use mwtj_query::theta::CompiledPredicate;
use mwtj_query::MultiwayQuery;
use mwtj_storage::{Schema, Tuple};
use std::hash::{Hash, Hasher};

/// Partitioning strategy for a [`PairJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairStrategy {
    /// Hash repartition on equality keys (requires ≥1 equality
    /// predicate or shared relations).
    EquiHash,
    /// Replicate one side to all reducers; `0` or `1` names the
    /// replicated side.
    Broadcast {
        /// Which input (0 = left, 1 = right) is replicated.
        replicated: u8,
    },
    /// 1-Bucket-Theta rectangle tiling.
    OneBucket,
}

/// A pairwise theta-join / merge job.
pub struct PairJob {
    name: String,
    /// Compiled reduce-side join core (hash / band / nested dispatch,
    /// flat columns, output assembly) — built once at construction.
    kernel: PairKernel,
    /// Map-side `EquiHash` key columns, resolved to flat column indices
    /// per input side (shared-relation columns then equality-predicate
    /// columns, canonical order).
    key_cols: [Vec<usize>; 2],
    strategy: PairStrategy,
    rect: Option<RectPartition>,
    /// Input cardinalities (left, right) — the 1-Bucket global-id
    /// domains.
    cards: (u64, u64),
    reducers: u32,
    out_shape: IntermediateShape,
}

impl PairJob {
    /// Build a pair job.
    ///
    /// * `preds` — compiled predicates between the two sides
    ///   (query-relation indexed; each must reference one relation from
    ///   each side).
    /// * `cardinalities` — per-side input row counts (used by
    ///   `OneBucket` to shape its rectangles).
    /// * `reducers` — reduce task count.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        query: &MultiwayQuery,
        left: IntermediateShape,
        right: IntermediateShape,
        preds: Vec<CompiledPredicate>,
        strategy: PairStrategy,
        cardinalities: (u64, u64),
        reducers: u32,
    ) -> Self {
        assert!(reducers >= 1);
        for (pi, p) in preds.iter().enumerate() {
            let left_on_left = left.has(p.left_rel) && right.has(p.right_rel);
            let left_on_right = right.has(p.left_rel) && left.has(p.right_rel);
            assert!(
                left_on_left || left_on_right,
                "predicate {pi} does not span the two sides"
            );
        }
        let rect = match strategy {
            PairStrategy::OneBucket => Some(RectPartition::new(
                cardinalities.0.max(1),
                cardinalities.1.max(1),
                reducers,
            )),
            _ => None,
        };
        let reducers = match &rect {
            Some(r) => r.num_components(),
            None => reducers,
        };
        let out_shape = IntermediateShape::union(query, &left, &right);
        let kernel = PairKernel::compile(&left, &right, &out_shape, &preds);
        if matches!(strategy, PairStrategy::EquiHash) {
            // The kernel's equality component (shared relations +
            // zero-offset `=` predicates) is the single definition of
            // hashability — the strategy is valid iff it is non-empty.
            assert!(
                !kernel.equality_key().is_empty(),
                "EquiHash needs an equality key or shared relations"
            );
        }

        // Map-side hash key columns per side, derived from the kernel's
        // equality component so shuffle partitioning and the reduce-side
        // build/probe key share one definition.
        let key_cols: [Vec<usize>; 2] = [
            kernel.equality_key().iter().map(|&(l, _)| l).collect(),
            kernel.equality_key().iter().map(|&(_, r)| r).collect(),
        ];
        PairJob {
            name: name.into(),
            kernel,
            key_cols,
            strategy,
            rect,
            cards: (cardinalities.0.max(1), cardinalities.1.max(1)),
            reducers,
            out_shape,
        }
    }

    /// Reduce task count the job must be run with.
    pub fn reducers(&self) -> u32 {
        self.reducers
    }

    /// Output row shape.
    pub fn out_shape(&self) -> &IntermediateShape {
        &self.out_shape
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PairStrategy {
        self.strategy
    }

    /// The compiled reduce-side kernel (inspection: tests and benches
    /// check which algorithm a predicate set selects).
    pub fn kernel(&self) -> &PairKernel {
        &self.kernel
    }

    /// Hash key of a row for `EquiHash`: shared-relation tuples plus
    /// equality-predicate columns, in canonical order — column indices
    /// pre-resolved at construction.
    fn equi_key(&self, tag: u8, row: &Tuple) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for &c in &self.key_cols[tag as usize] {
            row.get(c).hash(&mut h);
        }
        h.finish() & !GROUP_BY_AUX
    }

    fn splitmix(seed: u64, idx: usize) -> u64 {
        let mut z = seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl MrJob for PairJob {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn output_schema(&self) -> Schema {
        self.out_shape.schema.clone()
    }

    fn map(&self, tag: u8, row: &Tuple, block_seed: u64, row_idx: usize, emit: &mut Emit<'_>) {
        match self.strategy {
            PairStrategy::EquiHash => {
                let key = self.equi_key(tag, row);
                emit(
                    key,
                    TaggedRecord {
                        tag,
                        aux: GROUP_BY_AUX | key,
                        tuple: row.clone(),
                    },
                );
            }
            PairStrategy::Broadcast { replicated } => {
                if tag == replicated {
                    for r in 0..self.reducers {
                        emit(
                            r as u64,
                            TaggedRecord {
                                tag,
                                aux: 0,
                                tuple: row.clone(),
                            },
                        );
                    }
                } else {
                    let r = Self::splitmix(block_seed, row_idx) % self.reducers as u64;
                    emit(
                        r,
                        TaggedRecord {
                            tag,
                            aux: 0,
                            tuple: row.clone(),
                        },
                    );
                }
            }
            PairStrategy::OneBucket => {
                let rect = self.rect.as_ref().expect("rect built for OneBucket");
                let gid = Self::splitmix(block_seed, row_idx);
                if tag == 0 {
                    for comp in rect.components_for_row(gid % self.cards.0) {
                        emit(
                            comp as u64,
                            TaggedRecord {
                                tag,
                                aux: 0,
                                tuple: row.clone(),
                            },
                        );
                    }
                } else {
                    for comp in rect.components_for_col(gid % self.cards.1) {
                        emit(
                            comp as u64,
                            TaggedRecord {
                                tag,
                                aux: 0,
                                tuple: row.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    fn skip_filter(&self, zones: &TagZones) -> Option<Box<dyn SkipFilter>> {
        // Pure merges (shared-relation equality only, where NULL
        // matches NULL) compile no theta predicates and return `None`
        // here — zone ranges cannot speak for them.
        PairSkipFilter::build(&self.kernel, zones)
    }

    fn reduce(&self, _key: u64, records: &[TaggedRecord], out: &mut Vec<Tuple>) -> u64 {
        let mut lefts: Vec<&Tuple> = Vec::new();
        let mut rights: Vec<&Tuple> = Vec::new();
        for rec in records {
            if rec.tag == 0 {
                lefts.push(&rec.tuple);
            } else {
                rights.push(&rec.tuple);
            }
        }
        let mut pairs = Vec::new();
        self.kernel.join_into(&lefts, &rights, &mut pairs);
        out.reserve(pairs.len());
        for &(li, ri) in &pairs {
            out.push(
                self.kernel
                    .assemble(lefts[li as usize], rights[ri as usize]),
            );
        }
        // Simulated-cost contract: a reducer running the textbook
        // nested loop examines every (left, right) combination, and the
        // cost model (Eq. 2–4) prices that work. The kernel only makes
        // the *host* faster; the reported candidate count is unchanged.
        (lefts.len() as u64).saturating_mul(rights.len() as u64)
    }

    fn reduce_streamed(
        &self,
        _key: u64,
        records: &[TaggedRecord],
        emit: &mut dyn FnMut(Tuple) -> bool,
    ) -> u64 {
        let mut lefts: Vec<&Tuple> = Vec::new();
        let mut rights: Vec<&Tuple> = Vec::new();
        for rec in records {
            if rec.tag == 0 {
                lefts.push(&rec.tuple);
            } else {
                rights.push(&rec.tuple);
            }
        }
        // Rows materialise one at a time as the kernel visits index
        // pairs — the reducer never holds its output set.
        let _ = self.kernel.join_visit(&lefts, &rights, &mut |li, ri| {
            emit(
                self.kernel
                    .assemble(lefts[li as usize], rights[ri as usize]),
            )
        });
        (lefts.len() as u64).saturating_mul(rights.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{canonicalize, oracle_join};
    use mwtj_mapreduce::{ClusterConfig, Dfs, Engine, InputSpec};
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Relation};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
                .collect(),
        )
    }

    /// Like `rel` but with `b` = unique row id (row identity for merge
    /// tests).
    fn rel_keyed(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|i| tuple![rng.gen_range(0..domain), i as i64])
                .collect(),
        )
    }

    fn run_pair(
        q: &MultiwayQuery,
        l: &Relation,
        r: &Relation,
        strategy: PairStrategy,
        reducers: u32,
    ) -> Vec<Tuple> {
        let cfg = ClusterConfig::default();
        let dfs = Dfs::new();
        dfs.put_relation("L", l, &cfg);
        dfs.put_relation("R", r, &cfg);
        let compiled = q.compile().unwrap();
        let preds: Vec<CompiledPredicate> = compiled
            .per_condition
            .iter()
            .flat_map(|c| c.iter().copied())
            .collect();
        let job = PairJob::new(
            "pair",
            q,
            IntermediateShape::base(q, 0),
            IntermediateShape::base(q, 1),
            preds,
            strategy,
            (l.len() as u64, r.len() as u64),
            reducers,
        );
        let engine = Engine::new(cfg, dfs);
        let run = engine.run(
            &job,
            &[InputSpec::new("L", 0), InputSpec::new("R", 1)],
            16,
            job.reducers(),
            None,
        );
        run.output.into_rows()
    }

    fn ineq_query(l: &Relation, r: &Relation) -> MultiwayQuery {
        QueryBuilder::new("q")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "a", ThetaOp::Lt, "r", "a")
            .build()
            .unwrap()
    }

    #[test]
    fn equi_hash_matches_oracle() {
        let l = rel("l", 400, 21, 50);
        let r = rel("r", 300, 22, 50);
        let q = QueryBuilder::new("q")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "a", ThetaOp::Eq, "r", "a")
            .build()
            .unwrap();
        let want = canonicalize(oracle_join(&q, &[&l, &r]));
        for reducers in [1u32, 4, 16] {
            let got = canonicalize(run_pair(&q, &l, &r, PairStrategy::EquiHash, reducers));
            assert_eq!(got, want, "reducers={reducers}");
        }
    }

    #[test]
    fn broadcast_matches_oracle_for_inequality() {
        let l = rel("l", 120, 23, 60);
        let r = rel("r", 90, 24, 60);
        let q = ineq_query(&l, &r);
        let want = canonicalize(oracle_join(&q, &[&l, &r]));
        for repl in [0u8, 1] {
            let got = canonicalize(run_pair(
                &q,
                &l,
                &r,
                PairStrategy::Broadcast { replicated: repl },
                6,
            ));
            assert_eq!(got, want, "replicated side {repl}");
        }
    }

    #[test]
    fn one_bucket_matches_oracle_for_inequality() {
        let l = rel("l", 200, 25, 80);
        let r = rel("r", 150, 26, 80);
        let q = ineq_query(&l, &r);
        let want = canonicalize(oracle_join(&q, &[&l, &r]));
        for reducers in [1u32, 4, 12] {
            let got = canonicalize(run_pair(&q, &l, &r, PairStrategy::OneBucket, reducers));
            assert_eq!(got, want, "reducers={reducers}");
        }
    }

    #[test]
    fn mixed_eq_and_ineq_on_equihash() {
        // a equality + b inequality: hash on a, check both at reduce.
        let l = rel("l", 250, 27, 20);
        let r = rel("r", 250, 28, 20);
        let q = QueryBuilder::new("q")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "a", ThetaOp::Eq, "r", "a")
            .join("l", "b", ThetaOp::Ge, "r", "b")
            .build()
            .unwrap();
        let want = canonicalize(oracle_join(&q, &[&l, &r]));
        let got = canonicalize(run_pair(&q, &l, &r, PairStrategy::EquiHash, 8));
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "EquiHash needs an equality key")]
    fn equihash_requires_equality() {
        let l = rel("l", 10, 29, 5);
        let r = rel("r", 10, 30, 5);
        let q = ineq_query(&l, &r);
        run_pair(&q, &l, &r, PairStrategy::EquiHash, 4);
    }

    /// Merge semantics: joining two intermediates that share a relation
    /// must only combine rows agreeing on the shared tuples. The shared
    /// relation needs row identity (the paper merges on "primary keys
    /// ... or data IDs", §4.2) — here column `b` is a unique row id, as
    /// the system layer guarantees via its implicit rowid augmentation.
    #[test]
    fn merge_on_shared_relation() {
        // Build query r0 < r1 < r2 (on a). Compute I_a = r0⋈r1 and
        // I_b = r1⋈r2 via oracle, then merge I_a with I_b on shared r1
        // and compare against the full oracle.
        let r0 = rel("r0", 40, 31, 25);
        let r1 = rel_keyed("r1", 35, 32, 25);
        let r2 = rel("r2", 30, 33, 25);
        let q = QueryBuilder::new("q")
            .relation(r0.schema().clone())
            .relation(r1.schema().clone())
            .relation(r2.schema().clone())
            .join("r0", "a", ThetaOp::Lt, "r1", "a")
            .join("r1", "a", ThetaOp::Lt, "r2", "a")
            .build()
            .unwrap();
        // Partial results via oracle on subqueries.
        let qa = QueryBuilder::new("qa")
            .relation(r0.schema().clone())
            .relation(r1.schema().clone())
            .join("r0", "a", ThetaOp::Lt, "r1", "a")
            .build()
            .unwrap();
        let qb = QueryBuilder::new("qb")
            .relation(r1.schema().clone())
            .relation(r2.schema().clone())
            .join("r1", "a", ThetaOp::Lt, "r2", "a")
            .build()
            .unwrap();
        let sa = IntermediateShape::of(&q, &[0, 1]);
        let sb = IntermediateShape::of(&q, &[1, 2]);
        let ia = Relation::from_rows_unchecked(sa.schema.clone(), oracle_join(&qa, &[&r0, &r1]));
        let ib = Relation::from_rows_unchecked(sb.schema.clone(), oracle_join(&qb, &[&r1, &r2]));

        let cfg = ClusterConfig::default();
        let dfs = Dfs::new();
        dfs.put_relation("ia", &ia, &cfg);
        dfs.put_relation("ib", &ib, &cfg);
        let job = PairJob::new(
            "merge",
            &q,
            sa,
            sb,
            vec![], // merge: only shared-relation equality
            PairStrategy::EquiHash,
            (ia.len() as u64, ib.len() as u64),
            8,
        );
        let engine = Engine::new(cfg, dfs);
        let run = engine.run(
            &job,
            &[InputSpec::new("ia", 0), InputSpec::new("ib", 1)],
            16,
            job.reducers(),
            None,
        );
        let got = canonicalize(run.output.into_rows());
        let want = canonicalize(oracle_join(&q, &[&r0, &r1, &r2]));
        assert_eq!(got, want);
    }
}
