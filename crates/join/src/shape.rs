//! Intermediate-row layout.
//!
//! Every operator's output row is the concatenation of whole base-table
//! tuples for some subset of the query's relations, ordered by query
//! relation index. [`IntermediateShape`] records which relations those
//! are and where each one's columns start, so downstream jobs (merges,
//! cascade steps) can address `rel.col` in O(1) without schema lookups.

use mwtj_query::MultiwayQuery;
use mwtj_storage::{Schema, Tuple, Value};

/// Layout of an intermediate row covering a set of query relations.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermediateShape {
    /// Query relation indices present, sorted ascending.
    pub rels: Vec<usize>,
    /// Column offset of each relation's slice in the combined row,
    /// parallel to `rels`.
    pub offsets: Vec<usize>,
    /// Column count of each relation, parallel to `rels`.
    pub widths: Vec<usize>,
    /// Qualified schema of the combined row.
    pub schema: Schema,
}

impl IntermediateShape {
    /// Shape covering exactly the given query relations (deduplicated
    /// and sorted).
    pub fn of(query: &MultiwayQuery, rels: &[usize]) -> Self {
        let mut rels: Vec<usize> = rels.to_vec();
        rels.sort_unstable();
        rels.dedup();
        let mut offsets = Vec::with_capacity(rels.len());
        let mut widths = Vec::with_capacity(rels.len());
        let mut off = 0usize;
        for &r in &rels {
            offsets.push(off);
            let w = query.schemas[r].arity();
            widths.push(w);
            off += w;
        }
        let parts: Vec<&Schema> = rels.iter().map(|&r| &query.schemas[r]).collect();
        let name = format!(
            "i_{}",
            rels.iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("_")
        );
        let schema = Schema::concat(name, &parts);
        IntermediateShape {
            rels,
            offsets,
            widths,
            schema,
        }
    }

    /// Shape of a single base relation.
    pub fn base(query: &MultiwayQuery, rel: usize) -> Self {
        Self::of(query, &[rel])
    }

    /// Shape of the union of two shapes.
    pub fn union(query: &MultiwayQuery, a: &IntermediateShape, b: &IntermediateShape) -> Self {
        let mut rels = a.rels.clone();
        rels.extend_from_slice(&b.rels);
        Self::of(query, &rels)
    }

    /// Query relations present in both shapes (the merge key set).
    pub fn shared(a: &IntermediateShape, b: &IntermediateShape) -> Vec<usize> {
        a.rels
            .iter()
            .copied()
            .filter(|r| b.rels.contains(r))
            .collect()
    }

    /// Does this shape carry relation `rel`?
    pub fn has(&self, rel: usize) -> bool {
        self.rels.binary_search(&rel).is_ok()
    }

    /// Position of `rel` within `rels`.
    fn pos(&self, rel: usize) -> usize {
        self.rels
            .binary_search(&rel)
            .unwrap_or_else(|_| panic!("relation {rel} not in shape {:?}", self.rels))
    }

    /// The value of `rel.col` in a combined row.
    #[inline]
    pub fn value<'a>(&self, row: &'a Tuple, rel: usize, col: usize) -> &'a Value {
        row.get(self.offsets[self.pos(rel)] + col)
    }

    /// The slice of values belonging to `rel` in a combined row.
    pub fn rel_values<'a>(&self, row: &'a Tuple, rel: usize) -> &'a [Value] {
        let p = self.pos(rel);
        &row.values()[self.offsets[p]..self.offsets[p] + self.widths[p]]
    }

    /// Flat column range of `rel` within a combined row — the resolved
    /// form kernels compile to so the per-pair path touches no shape
    /// lookups.
    pub fn col_range(&self, rel: usize) -> std::ops::Range<usize> {
        let p = self.pos(rel);
        self.offsets[p]..self.offsets[p] + self.widths[p]
    }

    /// Build a combined row of this shape from per-relation source rows:
    /// `sources` yields `(shape, row)` pairs; for every relation in
    /// `self`, the first source carrying it provides the columns.
    pub fn assemble(&self, sources: &[(&IntermediateShape, &Tuple)]) -> Tuple {
        let total: usize = self.widths.iter().sum();
        let mut values = Vec::with_capacity(total);
        for &r in &self.rels {
            let (shape, row) = sources
                .iter()
                .find(|(s, _)| s.has(r))
                .unwrap_or_else(|| panic!("no source provides relation {r}"));
            values.extend_from_slice(shape.rel_values(row, r));
        }
        Tuple::new(values)
    }

    /// Total column count.
    pub fn arity(&self) -> usize {
        self.widths.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType};

    fn query() -> MultiwayQuery {
        let s = |n: &str| Schema::from_pairs(n, &[("a", DataType::Int), ("b", DataType::Int)]);
        QueryBuilder::new("q")
            .relation(s("r0"))
            .relation(s("r1"))
            .relation(s("r2"))
            .join("r0", "a", ThetaOp::Lt, "r1", "a")
            .join("r1", "b", ThetaOp::Eq, "r2", "b")
            .build()
            .unwrap()
    }

    #[test]
    fn offsets_and_lookup() {
        let q = query();
        let s = IntermediateShape::of(&q, &[2, 0]);
        assert_eq!(s.rels, vec![0, 2]);
        assert_eq!(s.offsets, vec![0, 2]);
        assert_eq!(s.arity(), 4);
        let row = tuple![10, 11, 20, 21];
        assert_eq!(s.value(&row, 0, 1), &Value::Int(11));
        assert_eq!(s.value(&row, 2, 0), &Value::Int(20));
        assert_eq!(s.rel_values(&row, 2), &[Value::Int(20), Value::Int(21)]);
        assert!(s.has(0) && !s.has(1));
    }

    #[test]
    fn union_and_shared() {
        let q = query();
        let a = IntermediateShape::of(&q, &[0, 1]);
        let b = IntermediateShape::of(&q, &[1, 2]);
        let u = IntermediateShape::union(&q, &a, &b);
        assert_eq!(u.rels, vec![0, 1, 2]);
        assert_eq!(IntermediateShape::shared(&a, &b), vec![1]);
        assert_eq!(IntermediateShape::shared(&a, &a), vec![0, 1]);
    }

    #[test]
    fn assemble_takes_first_source() {
        let q = query();
        let a = IntermediateShape::of(&q, &[0, 1]);
        let b = IntermediateShape::of(&q, &[1, 2]);
        let u = IntermediateShape::union(&q, &a, &b);
        let ra = tuple![1, 2, 3, 4]; // r0=(1,2) r1=(3,4)
        let rb = tuple![3, 4, 5, 6]; // r1=(3,4) r2=(5,6)
        let row = u.assemble(&[(&a, &ra), (&b, &rb)]);
        assert_eq!(row, tuple![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "not in shape")]
    fn missing_relation_panics() {
        let q = query();
        let s = IntermediateShape::of(&q, &[0]);
        let row = tuple![1, 2];
        s.value(&row, 1, 0);
    }

    #[test]
    fn schema_is_qualified() {
        let q = query();
        let s = IntermediateShape::of(&q, &[0, 1]);
        assert_eq!(s.schema.fields()[0].name, "r0.a");
        assert_eq!(s.schema.fields()[2].name, "r1.a");
    }
}
