//! Zone-map skip filters for the join jobs.
//!
//! Both filters answer one conservative question per block (and per
//! row): *could this input possibly contribute an output row, given the
//! min/max ranges of every partner block?* They are compiled once per
//! run from the job's theta predicates — shared-relation equality
//! constraints are deliberately ignored (they are an additional
//! conjunct, so pruning on the theta predicates alone stays sound, and
//! their NULL-matches-NULL merge semantics is exactly what zone ranges
//! cannot capture).
//!
//! Soundness rests on one implication: a row's value always lies inside
//! its block's zone range (or the zone is `Unbounded`), so
//! row-level satisfiability implies block-level satisfiability. Dropping
//! a block whose zones cannot satisfy some predicate against *any*
//! partner block therefore never drops an output row.

use crate::kernel::PairKernel;
use mwtj_mapreduce::{SkipFilter, TagZones};
use mwtj_query::theta::{value_may_satisfy, zones_may_satisfy, CompiledPredicate};
use mwtj_query::ThetaOp;
use mwtj_storage::{BlockZones, Tuple};
use std::sync::Arc;

/// Flat predicate as the pair kernel stores it: left-side-first.
type FlatPred = (usize, f64, ThetaOp, usize, f64);

/// Skip filter for the two-sided [`crate::pair::PairJob`]: tag 0 is the
/// left input, tag 1 the right.
pub(crate) struct PairSkipFilter {
    preds: Vec<FlatPred>,
    left: Vec<Arc<BlockZones>>,
    right: Vec<Arc<BlockZones>>,
    keep_left: Vec<bool>,
    keep_right: Vec<bool>,
    pairs: u64,
    pruned: u64,
}

impl PairSkipFilter {
    /// Compile a filter from the kernel's theta predicates, or `None`
    /// when there is nothing to prune on (pure merges hash on shared
    /// relations only — NULL equality there is out of zone-map reach).
    pub(crate) fn build(kernel: &PairKernel, zones: &TagZones) -> Option<Box<dyn SkipFilter>> {
        let preds: Vec<FlatPred> = kernel.flat_preds().collect();
        if preds.is_empty() {
            return None;
        }
        let left: Vec<Arc<BlockZones>> = zones.blocks(0).to_vec();
        let right: Vec<Arc<BlockZones>> = zones.blocks(1).to_vec();
        let mut keep_left = vec![false; left.len()];
        let mut keep_right = vec![false; right.len()];
        let mut pruned = 0u64;
        for (i, lz) in left.iter().enumerate() {
            for (j, rz) in right.iter().enumerate() {
                let sat = preds.iter().all(|&(lc, lo, op, rc, ro)| {
                    zones_may_satisfy(lz.column(lc), lo, op, rz.column(rc), ro)
                });
                if sat {
                    keep_left[i] = true;
                    keep_right[j] = true;
                } else {
                    pruned += 1;
                }
            }
        }
        let pairs = (left.len() as u64).saturating_mul(right.len() as u64);
        Some(Box::new(PairSkipFilter {
            preds,
            left,
            right,
            keep_left,
            keep_right,
            pairs,
            pruned,
        }))
    }
}

impl SkipFilter for PairSkipFilter {
    fn keep_block(&self, tag: u8, block: usize) -> bool {
        let kept = if tag == 0 {
            &self.keep_left
        } else {
            &self.keep_right
        };
        // Unknown ordinals keep running — conservatism over cleverness.
        kept.get(block).copied().unwrap_or(true)
    }

    fn keep_row(&self, tag: u8, row: &Tuple) -> bool {
        if tag == 0 {
            self.right.iter().any(|rz| {
                self.preds.iter().all(|&(lc, lo, op, rc, ro)| {
                    value_may_satisfy(row.get(lc), lo, op, rz.column(rc), ro)
                })
            })
        } else {
            // Right-side rows test the flipped operator against left
            // zones: `l op r` ⇔ `r flip(op) l`.
            self.left.iter().any(|lz| {
                self.preds.iter().all(|&(lc, lo, op, rc, ro)| {
                    value_may_satisfy(row.get(rc), ro, op.flip(), lz.column(lc), lo)
                })
            })
        }
    }

    fn pair_counts(&self) -> (u64, u64) {
        (self.pairs, self.pruned)
    }
}

/// One edge group of the chain filter: all predicates between one
/// unordered pair of dimensions, orientation preserved.
struct DimGroup {
    dims: (usize, usize),
    preds: Vec<CompiledPredicate>,
}

/// Skip filter for the multi-dimension [`crate::chain::ChainThetaJob`]:
/// tag `d` is dimension `d`, predicates carry *dimension* indices in
/// their `left_rel`/`right_rel` fields.
pub(crate) struct ChainSkipFilter {
    groups: Vec<DimGroup>,
    blocks: Vec<Vec<Arc<BlockZones>>>,
    keep: Vec<Vec<bool>>,
    pairs: u64,
    pruned: u64,
}

impl ChainSkipFilter {
    /// Compile a filter from dimension-remapped predicates. A dimension
    /// block survives iff *every* predicate group touching the
    /// dimension has at least one satisfiable partner block.
    pub(crate) fn build(
        preds: &[CompiledPredicate],
        n_dims: usize,
        zones: &TagZones,
    ) -> Option<Box<dyn SkipFilter>> {
        if preds.is_empty() {
            return None;
        }
        let mut groups: Vec<DimGroup> = Vec::new();
        for p in preds {
            let dims = (p.left_rel.min(p.right_rel), p.left_rel.max(p.right_rel));
            match groups.iter_mut().find(|g| g.dims == dims) {
                Some(g) => g.preds.push(*p),
                None => groups.push(DimGroup {
                    dims,
                    preds: vec![*p],
                }),
            }
        }
        let blocks: Vec<Vec<Arc<BlockZones>>> = (0..n_dims)
            .map(|d| zones.blocks(d as u8).to_vec())
            .collect();
        let mut keep: Vec<Vec<bool>> = blocks.iter().map(|b| vec![true; b.len()]).collect();
        let mut pairs = 0u64;
        let mut pruned = 0u64;
        for g in &groups {
            let (da, db) = g.dims;
            let mut sat_a = vec![false; blocks[da].len()];
            let mut sat_b = vec![false; blocks[db].len()];
            for (i, za) in blocks[da].iter().enumerate() {
                for (j, zb) in blocks[db].iter().enumerate() {
                    pairs += 1;
                    if g.preds.iter().all(|p| Self::pair_sat(p, da, za, zb)) {
                        sat_a[i] = true;
                        sat_b[j] = true;
                    } else {
                        pruned += 1;
                    }
                }
            }
            for (k, s) in sat_a.iter().enumerate() {
                keep[da][k] &= s;
            }
            for (k, s) in sat_b.iter().enumerate() {
                keep[db][k] &= s;
            }
        }
        Some(Box::new(ChainSkipFilter {
            groups,
            blocks,
            keep,
            pairs,
            pruned,
        }))
    }

    /// Zone satisfiability of one predicate over a block pair, where
    /// `za` is dimension `da`'s block and `zb` the partner's.
    fn pair_sat(p: &CompiledPredicate, da: usize, za: &BlockZones, zb: &BlockZones) -> bool {
        if p.left_rel == da {
            zones_may_satisfy(
                za.column(p.left_col),
                p.left_off,
                p.op,
                zb.column(p.right_col),
                p.right_off,
            )
        } else {
            zones_may_satisfy(
                zb.column(p.left_col),
                p.left_off,
                p.op,
                za.column(p.right_col),
                p.right_off,
            )
        }
    }

    /// Row-vs-zone satisfiability of one predicate, where the row lives
    /// in dimension `d` and `z` is a partner-dimension block.
    fn row_sat(p: &CompiledPredicate, d: usize, row: &Tuple, z: &BlockZones) -> bool {
        if p.left_rel == d {
            value_may_satisfy(
                row.get(p.left_col),
                p.left_off,
                p.op,
                z.column(p.right_col),
                p.right_off,
            )
        } else {
            value_may_satisfy(
                row.get(p.right_col),
                p.right_off,
                p.op.flip(),
                z.column(p.left_col),
                p.left_off,
            )
        }
    }
}

impl SkipFilter for ChainSkipFilter {
    fn keep_block(&self, tag: u8, block: usize) -> bool {
        self.keep
            .get(tag as usize)
            .and_then(|v| v.get(block))
            .copied()
            .unwrap_or(true)
    }

    fn keep_row(&self, tag: u8, row: &Tuple) -> bool {
        let d = tag as usize;
        self.groups
            .iter()
            .filter(|g| g.dims.0 == d || g.dims.1 == d)
            .all(|g| {
                let partner = if g.dims.0 == d { g.dims.1 } else { g.dims.0 };
                self.blocks[partner]
                    .iter()
                    .any(|z| g.preds.iter().all(|p| Self::row_sat(p, d, row, z)))
            })
    }

    fn pair_counts(&self) -> (u64, u64) {
        (self.pairs, self.pruned)
    }
}

#[cfg(test)]
mod tests {
    use crate::chain::ChainThetaJob;
    use crate::pair::{PairJob, PairStrategy};
    use crate::shape::IntermediateShape;
    use mwtj_hilbert::PartitionStrategy;
    use mwtj_mapreduce::{ClusterConfig, Dfs, Engine, InputSpec, JobRun, MrJob};
    use mwtj_query::theta::CompiledPredicate;
    use mwtj_query::{MultiwayQuery, QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Relation, Schema};

    /// `n` rows `(lo + i, i)` — sorted on column `a`, so DFS blocks are
    /// value-clustered and zone ranges are tight.
    fn sorted_rel(name: &str, n: usize, lo: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        Relation::from_rows_unchecked(
            schema,
            (0..n).map(|i| tuple![lo + i as i64, i as i64]).collect(),
        )
    }

    /// Run `job` twice over the same DFS — skipping on, then off — and
    /// return both runs.
    fn run_both(
        job: &dyn MrJob,
        dfs: &Dfs,
        inputs: &[InputSpec],
        reducers: u32,
    ) -> (JobRun, JobRun) {
        let cfg = ClusterConfig::default();
        let engine = Engine::new(cfg, dfs.clone());
        let on = engine
            .try_run_with(
                job,
                inputs,
                16,
                reducers,
                None,
                engine.fault_plan(),
                true,
                None,
            )
            .unwrap();
        let off = engine
            .try_run_with(
                job,
                inputs,
                16,
                reducers,
                None,
                engine.fault_plan(),
                false,
                None,
            )
            .unwrap();
        (on, off)
    }

    fn lt_query(l: &Relation, r: &Relation) -> MultiwayQuery {
        QueryBuilder::new("q")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "a", ThetaOp::Lt, "r", "a")
            .build()
            .unwrap()
    }

    fn pair_job(q: &MultiwayQuery, l: &Relation, r: &Relation, strategy: PairStrategy) -> PairJob {
        let compiled = q.compile().unwrap();
        let preds: Vec<CompiledPredicate> = compiled
            .per_condition
            .iter()
            .flat_map(|c| c.iter().copied())
            .collect();
        PairJob::new(
            "pair",
            q,
            IntermediateShape::base(q, 0),
            IntermediateShape::base(q, 1),
            preds,
            strategy,
            (l.len() as u64, r.len() as u64),
            6,
        )
    }

    /// Left spans [0, 12000) over several blocks; right sits in [0, 10).
    /// Under `l.a < r.a` every left block past the first can be proven
    /// empty, and the output must stay bit-identical to skip-off.
    #[test]
    fn pair_prunes_clustered_blocks_with_identical_output() {
        let l = sorted_rel("l", 12_000, 0);
        let r = sorted_rel("r", 10, 0);
        let q = lt_query(&l, &r);
        let dfs = Dfs::new();
        let cfg = ClusterConfig::default();
        dfs.put_relation("L", &l, &cfg);
        dfs.put_relation("R", &r, &cfg);
        let job = pair_job(&q, &l, &r, PairStrategy::Broadcast { replicated: 1 });
        let inputs = [InputSpec::new("L", 0), InputSpec::new("R", 1)];
        let (on, off) = run_both(&job, &dfs, &inputs, job.reducers());

        assert_eq!(on.output.rows(), off.output.rows(), "skipping changed rows");
        assert_eq!(on.output.schema(), off.output.schema());
        assert!(!on.output.rows().is_empty(), "test data should join");
        assert!(on.metrics.zone_blocks > 0);
        assert!(
            on.metrics.zone_blocks_pruned >= 1,
            "clustered far blocks must prune: {:?}",
            on.metrics
        );
        assert!(on.metrics.zone_pairs_pruned >= 1);
        assert!(
            on.metrics.zone_rows_pruned > 0
                && on.metrics.map_output_records < off.metrics.map_output_records,
            "row skipping must shrink the shuffle"
        );
        assert!(on.metrics.map_tasks < off.metrics.map_tasks);
        assert!(on.metrics.input_bytes < off.metrics.input_bytes);
        // Skip-off runs record no zone activity at all.
        assert_eq!(off.metrics.zone_blocks, 0);
        assert_eq!(off.metrics.zone_rows_pruned, 0);
    }

    /// Fully disjoint sides under `>` — every pair proven empty, output
    /// empty on both runs.
    #[test]
    fn pair_disjoint_ranges_prune_everything() {
        let l = sorted_rel("l", 4000, 0);
        let r = sorted_rel("r", 4000, 100_000);
        let q = QueryBuilder::new("q")
            .relation(l.schema().clone())
            .relation(r.schema().clone())
            .join("l", "a", ThetaOp::Gt, "r", "a")
            .build()
            .unwrap();
        let dfs = Dfs::new();
        let cfg = ClusterConfig::default();
        dfs.put_relation("L", &l, &cfg);
        dfs.put_relation("R", &r, &cfg);
        let job = pair_job(&q, &l, &r, PairStrategy::OneBucket);
        let inputs = [InputSpec::new("L", 0), InputSpec::new("R", 1)];
        let (on, off) = run_both(&job, &dfs, &inputs, job.reducers());
        assert!(on.output.rows().is_empty());
        assert!(off.output.rows().is_empty());
        assert_eq!(on.metrics.zone_blocks_pruned, on.metrics.zone_blocks);
        assert_eq!(on.metrics.zone_pairs_pruned, on.metrics.zone_pairs);
        assert_eq!(on.metrics.zone_rows_pruned, on.metrics.zone_rows_total);
        assert_eq!(on.metrics.map_output_records, 0);
    }

    /// Three-way chain with a tight far window: pruning fires on the
    /// Hilbert job and output stays bit-identical.
    #[test]
    fn chain_prunes_with_identical_output() {
        let r0 = sorted_rel("r0", 9000, 0);
        let r1 = sorted_rel("r1", 60, 300);
        let r2 = sorted_rel("r2", 60, 320);
        let q = QueryBuilder::new("q")
            .relation(r0.schema().clone())
            .relation(r1.schema().clone())
            .relation(r2.schema().clone())
            .join("r0", "a", ThetaOp::Lt, "r1", "a")
            .join("r1", "a", ThetaOp::Le, "r2", "a")
            .build()
            .unwrap();
        let cards = [r0.len() as u64, r1.len() as u64, r2.len() as u64];
        for strategy in [PartitionStrategy::Hilbert, PartitionStrategy::Grid] {
            let job = ChainThetaJob::new(&q, &[0, 1], &cards, 6, strategy);
            let dfs = Dfs::new();
            let cfg = ClusterConfig::default();
            let rels = [&r0, &r1, &r2];
            let mut inputs = Vec::new();
            for (dim, &qrel) in job.dims().iter().enumerate() {
                let fname = format!("rel{qrel}");
                dfs.put_relation(&fname, rels[qrel], &cfg);
                inputs.push(InputSpec::new(fname, dim as u8));
            }
            let (on, off) = run_both(&job, &dfs, &inputs, job.reducers());
            assert_eq!(on.output.rows(), off.output.rows(), "{strategy:?}");
            assert!(!on.output.rows().is_empty(), "{strategy:?}: should join");
            assert!(
                on.metrics.zone_rows_pruned > 0,
                "{strategy:?}: {:?}",
                on.metrics
            );
            assert!(
                on.metrics.map_output_records < off.metrics.map_output_records,
                "{strategy:?}"
            );
        }
    }

    /// Row-level pruning is exact at the value boundary: rows that
    /// could still match a partner zone survive.
    #[test]
    fn row_pruning_respects_boundaries() {
        let l = sorted_rel("l", 200, 0);
        let r = sorted_rel("r", 5, 100); // a ∈ [100, 104]
        let q = lt_query(&l, &r);
        let dfs = Dfs::new();
        let cfg = ClusterConfig::default();
        dfs.put_relation("L", &l, &cfg);
        dfs.put_relation("R", &r, &cfg);
        let job = pair_job(&q, &l, &r, PairStrategy::Broadcast { replicated: 1 });
        let inputs = [InputSpec::new("L", 0), InputSpec::new("R", 1)];
        let (on, off) = run_both(&job, &dfs, &inputs, job.reducers());
        assert_eq!(on.output.rows(), off.output.rows());
        // l.a < r.a with r.a ≤ 104: exactly left rows a ∈ [0, 103]
        // survive (104 cannot beat the max), plus all 5 right rows.
        assert_eq!(
            on.metrics.zone_rows_total - on.metrics.zone_rows_pruned,
            104 + 5,
        );
    }
}
