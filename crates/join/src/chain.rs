//! Algorithm 1: a chain multi-way theta-join in one MRJ.
//!
//! Given a no-edge-repeating path of the join graph, the job:
//!
//! 1. builds a [`SpacePartition`] of the hyper-cube spanned by the
//!    path's *distinct* relations into `k_R` components (Hilbert by
//!    default — the paper's perfect partition function; grid available
//!    for the ablation);
//! 2. **map**: draws each tuple a deterministic pseudo-random global id
//!    in `[0, |R_i|)` (mappers have no global view of the relation —
//!    exactly the trick of Algorithm 1), computes the tuple's stripe,
//!    and emits one copy per component whose region intersects that
//!    stripe;
//! 3. **reduce**: each component nests over its per-relation tuple
//!    groups with early predicate pruning and emits a combination iff
//!    (a) every covered θ condition holds and (b) the combination's
//!    cell is *owned* by this component — the ownership test is what
//!    makes the output exact despite tuples being replicated to many
//!    components.

use crate::kernel::StackPred;
use crate::shape::IntermediateShape;
use crate::skip::ChainSkipFilter;
use mwtj_hilbert::{PartitionStrategy, SpacePartition};
use mwtj_mapreduce::{Emit, MrJob, SkipFilter, TagZones, TaggedRecord};
use mwtj_query::theta::CompiledPredicate;
use mwtj_query::MultiwayQuery;
use mwtj_storage::{Schema, Tuple};

/// The chain theta-join job.
pub struct ChainThetaJob {
    name: String,
    /// Distinct query relation indices on the path, sorted — the cube's
    /// dimensions. `dims[i]` is dimension `i`.
    dims: Vec<usize>,
    /// `|R|` per dimension, as of partition construction.
    cardinalities: Vec<u64>,
    partition: SpacePartition,
    /// Predicates of all covered conditions, relation indices remapped
    /// to *dimension* positions and compiled to stack evaluators with
    /// pre-selected operator functions ([`StackPred`]).
    preds: Vec<StackPred>,
    /// The same dimension-remapped predicates in compiled (column/
    /// offset/op) form — what the zone-map skip filter evaluates
    /// against block ranges.
    zone_preds: Vec<CompiledPredicate>,
    /// For each dimension depth, the predicates that become checkable
    /// once that dimension is bound.
    preds_by_depth: Vec<Vec<usize>>,
    out_shape: IntermediateShape,
}

impl ChainThetaJob {
    /// Build the job for the conditions in `edges` (condition indices of
    /// `query`), whose union must form a connected subgraph (a
    /// no-edge-repeating path yields that). `cardinalities` maps query
    /// relation index → `|R|` (from load-time statistics).
    ///
    /// `k_r` is the number of reduce components; `strategy` picks
    /// Hilbert (paper) or grid (ablation baseline).
    pub fn new(
        query: &MultiwayQuery,
        edges: &[usize],
        cardinalities: &[u64],
        k_r: u32,
        strategy: PartitionStrategy,
    ) -> Self {
        assert!(!edges.is_empty(), "a chain job must cover conditions");
        // Distinct relations touched by the covered conditions.
        let mut dims: Vec<usize> = edges
            .iter()
            .flat_map(|&e| {
                let (u, v, _) = query.conditions[e];
                [u, v]
            })
            .collect();
        dims.sort_unstable();
        dims.dedup();
        let dim_cards: Vec<u64> = dims.iter().map(|&r| cardinalities[r].max(1)).collect();
        let bits = SpacePartition::auto_bits(dims.len(), k_r);
        let partition = SpacePartition::new(strategy, &dim_cards, k_r, bits);

        // Compile predicates and remap query-relation indices to
        // dimension positions.
        let compiled = query.compile().expect("query must compile");
        let to_dim = |rel: usize| {
            dims.binary_search(&rel)
                .expect("predicate relation must be a chain dimension")
        };
        let mut preds = Vec::new();
        let mut zone_preds = Vec::new();
        for &e in edges {
            for p in &compiled.per_condition[e] {
                let remapped = CompiledPredicate {
                    left_rel: to_dim(p.left_rel),
                    right_rel: to_dim(p.right_rel),
                    ..*p
                };
                preds.push(StackPred::from_compiled(&remapped));
                zone_preds.push(remapped);
            }
        }
        let mut preds_by_depth = vec![Vec::new(); dims.len()];
        for (pi, p) in preds.iter().enumerate() {
            preds_by_depth[p.depth()].push(pi);
        }
        let out_shape = IntermediateShape::of(query, &dims);
        let name = format!(
            "chain[{}]",
            edges
                .iter()
                .map(|e| format!("θ{e}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        ChainThetaJob {
            name,
            dims,
            cardinalities: dim_cards,
            partition,
            preds,
            zone_preds,
            preds_by_depth,
            out_shape,
        }
    }

    /// The partition in use (inspection/ablation).
    pub fn partition(&self) -> &SpacePartition {
        &self.partition
    }

    /// Number of reduce components the job requires — callers must run
    /// it with exactly this many reducers.
    pub fn reducers(&self) -> u32 {
        self.partition.num_components()
    }

    /// The distinct query relations joined, in dimension order. Input
    /// files must be registered with `tag = dimension index`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Output row shape.
    pub fn out_shape(&self) -> &IntermediateShape {
        &self.out_shape
    }

    /// Deterministic pseudo-random global id for the `row_idx`-th row of
    /// a block with seed `block_seed`, uniform over `[0, card)`.
    fn global_id(block_seed: u64, row_idx: usize, card: u64) -> u64 {
        // splitmix64 over (seed, idx) — cheap, well mixed, stable.
        let mut z = block_seed ^ (row_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z % card.max(1)
    }

    /// Recursive nested-loop over per-dimension groups with early
    /// pruning; emits owned, predicate-satisfying combinations through
    /// `emit` one at a time (the visitor path streamed reducers use —
    /// the buffered [`MrJob::reduce`] path passes a vector-push
    /// closure). When `emit` returns `false` the receiver is gone:
    /// `stop` is raised and the descent unwinds promptly.
    /// Returns the number of candidate extensions examined (the real
    /// CPU work, which the engine prices on the simulated clock).
    #[allow(clippy::too_many_arguments)]
    fn descend<'a>(
        &self,
        my_component: u32,
        groups: &'a [Vec<(u64, &'a Tuple)>],
        stack: &mut Vec<&'a Tuple>,
        stripes: &mut Vec<u64>,
        emit: &mut dyn FnMut(Tuple) -> bool,
        stop: &mut bool,
    ) -> u64 {
        let depth = stack.len();
        if depth == groups.len() {
            // Ownership test: exactly one component owns this cell.
            if self.partition.owner_of_cell(stripes) == my_component
                && !emit(Tuple::concat_all(stack))
            {
                *stop = true;
            }
            return 1;
        }
        let mut work = 0u64;
        'rows: for &(gid, tuple) in &groups[depth] {
            if *stop {
                break;
            }
            work += 1;
            stack.push(tuple);
            for &pi in &self.preds_by_depth[depth] {
                if !self.preds[pi].holds(stack) {
                    stack.pop();
                    continue 'rows;
                }
            }
            stripes.push(self.partition.stripe_of(depth, gid));
            work =
                work.saturating_add(self.descend(my_component, groups, stack, stripes, emit, stop));
            stripes.pop();
            stack.pop();
        }
        work
    }

    /// Shared reduce body: bucket records per dimension and descend.
    fn reduce_inner(
        &self,
        key: u64,
        records: &[TaggedRecord],
        emit: &mut dyn FnMut(Tuple) -> bool,
    ) -> u64 {
        let my_component = key as u32;
        let mut groups: Vec<Vec<(u64, &Tuple)>> = vec![Vec::new(); self.dims.len()];
        for rec in records {
            groups[rec.tag as usize].push((rec.aux, &rec.tuple));
        }
        if groups.iter().any(|g| g.is_empty()) {
            return 0; // some dimension contributed nothing to this cell region
        }
        let mut stack = Vec::with_capacity(self.dims.len());
        let mut stripes = Vec::with_capacity(self.dims.len());
        let mut stop = false;
        self.descend(
            my_component,
            &groups,
            &mut stack,
            &mut stripes,
            emit,
            &mut stop,
        )
    }
}

impl MrJob for ChainThetaJob {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn output_schema(&self) -> Schema {
        self.out_shape.schema.clone()
    }

    fn skip_filter(&self, zones: &TagZones) -> Option<Box<dyn SkipFilter>> {
        ChainSkipFilter::build(&self.zone_preds, self.dims.len(), zones)
    }

    fn map(&self, tag: u8, row: &Tuple, block_seed: u64, row_idx: usize, emit: &mut Emit<'_>) {
        let dim = tag as usize;
        debug_assert!(dim < self.dims.len(), "tag beyond chain dimensions");
        let gid = Self::global_id(block_seed, row_idx, self.cardinalities[dim]);
        let stripe = self.partition.stripe_of(dim, gid);
        for &comp in self.partition.components_for_stripe(dim, stripe) {
            emit(
                comp as u64,
                TaggedRecord {
                    tag,
                    aux: gid, // high bit clear: group = whole component
                    tuple: row.clone(),
                },
            );
        }
    }

    fn reduce(&self, key: u64, records: &[TaggedRecord], out: &mut Vec<Tuple>) -> u64 {
        self.reduce_inner(key, records, &mut |row| {
            out.push(row);
            true
        })
    }

    fn reduce_streamed(
        &self,
        key: u64,
        records: &[TaggedRecord],
        emit: &mut dyn FnMut(Tuple) -> bool,
    ) -> u64 {
        self.reduce_inner(key, records, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{canonicalize, oracle_join};
    use mwtj_mapreduce::{ClusterConfig, Dfs, Engine, InputSpec};
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Relation};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
                .collect(),
        )
    }

    fn run_chain(
        query: &MultiwayQuery,
        edges: &[usize],
        rels: &[&Relation],
        k_r: u32,
        strategy: PartitionStrategy,
    ) -> Vec<Tuple> {
        let cfg = ClusterConfig::default();
        let dfs = Dfs::new();
        let cards: Vec<u64> = rels.iter().map(|r| r.len() as u64).collect();
        let job = ChainThetaJob::new(query, edges, &cards, k_r, strategy);
        let mut inputs = Vec::new();
        for (dim, &qrel) in job.dims().iter().enumerate() {
            let fname = format!("rel{qrel}");
            dfs.put_relation(&fname, rels[qrel], &cfg);
            inputs.push(InputSpec::new(fname, dim as u8));
        }
        let engine = Engine::new(cfg, dfs);
        let run = engine.run(&job, &inputs, 16, job.reducers(), None);
        run.output.into_rows()
    }

    #[test]
    fn two_way_matches_oracle() {
        let r = rel("r", 300, 1, 100);
        let s = rel("s", 200, 2, 100);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Lt, "s", "a")
            .build()
            .unwrap();
        for k_r in [1u32, 4, 9] {
            let got = canonicalize(run_chain(
                &q,
                &[0],
                &[&r, &s],
                k_r,
                PartitionStrategy::Hilbert,
            ));
            let want = canonicalize(oracle_join(&q, &[&r, &s]));
            assert_eq!(got.len(), want.len(), "k_r={k_r}");
            assert_eq!(got, want, "k_r={k_r}");
        }
    }

    #[test]
    fn three_way_chain_matches_oracle() {
        let r = rel("r", 80, 3, 40);
        let s = rel("s", 70, 4, 40);
        let t = rel("t", 60, 5, 40);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .relation(t.schema().clone())
            .join("r", "a", ThetaOp::Le, "s", "a")
            .join("s", "b", ThetaOp::Gt, "t", "b")
            .build()
            .unwrap();
        let want = canonicalize(oracle_join(&q, &[&r, &s, &t]));
        for strategy in [PartitionStrategy::Hilbert, PartitionStrategy::Grid] {
            for k_r in [1u32, 5, 8] {
                let got = canonicalize(run_chain(&q, &[0, 1], &[&r, &s, &t], k_r, strategy));
                assert_eq!(got, want, "k_r={k_r} strategy={strategy:?}");
            }
        }
    }

    #[test]
    fn equality_edges_work_too() {
        let r = rel("r", 150, 6, 20);
        let s = rel("s", 150, 7, 20);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Eq, "s", "a")
            .build()
            .unwrap();
        let got = canonicalize(run_chain(
            &q,
            &[0],
            &[&r, &s],
            6,
            PartitionStrategy::Hilbert,
        ));
        let want = canonicalize(oracle_join(&q, &[&r, &s]));
        assert_eq!(got, want);
    }

    #[test]
    fn covers_subset_of_conditions() {
        // Chain job over edge {0} only of a 3-relation query: result
        // must equal oracle of the 2-relation subquery.
        let r = rel("r", 60, 8, 30);
        let s = rel("s", 50, 9, 30);
        let t = rel("t", 40, 10, 30);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .relation(t.schema().clone())
            .join("r", "a", ThetaOp::Gt, "s", "a")
            .join("s", "b", ThetaOp::Lt, "t", "b")
            .build()
            .unwrap();
        let got = canonicalize(run_chain(
            &q,
            &[0],
            &[&r, &s, &t],
            4,
            PartitionStrategy::Hilbert,
        ));
        let sub = QueryBuilder::new("sub")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Gt, "s", "a")
            .build()
            .unwrap();
        let want = canonicalize(oracle_join(&sub, &[&r, &s]));
        assert_eq!(got, want);
    }

    #[test]
    fn ne_join_matches_oracle() {
        let r = rel("r", 40, 11, 5);
        let s = rel("s", 40, 12, 5);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Ne, "s", "a")
            .build()
            .unwrap();
        let got = canonicalize(run_chain(
            &q,
            &[0],
            &[&r, &s],
            8,
            PartitionStrategy::Hilbert,
        ));
        let want = canonicalize(oracle_join(&q, &[&r, &s]));
        assert_eq!(got, want);
    }

    #[test]
    fn empty_side_yields_empty() {
        let r = rel("r", 0, 13, 5);
        let s = rel("s", 20, 14, 5);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Lt, "s", "a")
            .build()
            .unwrap();
        let got = run_chain(&q, &[0], &[&r, &s], 4, PartitionStrategy::Hilbert);
        assert!(got.is_empty());
    }

    #[test]
    fn global_ids_are_deterministic_and_spread() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let a = ChainThetaJob::global_id(42, i, 1000);
            let b = ChainThetaJob::global_id(42, i, 1000);
            assert_eq!(a, b);
            assert!(a < 1000);
            seen.insert(a);
        }
        // Uniformish: at least half the domain hit by 1000 draws.
        assert!(seen.len() > 500, "only {} distinct ids", seen.len());
    }
}
