//! Compiled join kernels for the per-reducer hot path.
//!
//! Every reducer of a [`PairJob`](crate::PairJob) receives a bag of
//! left rows and a bag of right rows and must produce the matching
//! pairs. The naive implementation re-resolves predicate columns
//! through [`IntermediateShape`] lookups (two binary searches per value
//! access) for every candidate pair — O(|L|·|R|) shape lookups and
//! operator dispatches per reducer. This module compiles the predicate
//! set **once** per job into flat column indices and per-operator
//! function pointers, then dispatches to a specialised kernel.
//!
//! # Kernel selection rules
//!
//! [`PairKernel::compile`] inspects the predicate set and picks, in
//! order:
//!
//! 1. **Hash** ([`KernelKind::Hash`]) — chosen when there is an
//!    equality component: at least one shared relation (merge
//!    semantics: both sides carry the same query relation and must
//!    agree on its tuple) or at least one zero-offset `=` predicate.
//!    Builds a hash table over the equality key on the **smaller**
//!    side, probes with the larger, and filters every candidate with
//!    the full compiled predicate set (hashing is consistent with, but
//!    coarser than, SQL equality — probe hits are *candidates*, not
//!    matches).
//! 2. **Band** ([`KernelKind::Band`]) — chosen when there is no
//!    equality component and the predicate set is a **single**
//!    inequality (`<`, `<=`, `>=`, `>`, offsets allowed). Sorts both
//!    sides on the (possibly offset) join column and emits, per left
//!    row, the contiguous run of right rows satisfying the operator —
//!    O((|L|+|R|)·log + output) instead of O(|L|·|R|). Comparison
//!    semantics replicate [`eval_theta`] exactly: with offsets only
//!    numeric values participate (f64 arithmetic, `total_cmp`);
//!    without offsets numerics and strings join within their own type
//!    class, NULLs and cross-class pairs never match. If an integer
//!    key outside ±2⁵³ shows up in the zero-offset numeric class (where
//!    SQL compares `i64` exactly but an f64 sort key would collapse
//!    neighbours) the kernel bails out to the nested loop for that
//!    input — exactness always wins. The band is also **density
//!    gated**: it first counts the matches with an O(|L|+|R|) boundary
//!    walk and hands dense outputs (more than ⅛ of the cross product)
//!    back to the nested loop, which is output-bound there and skips
//!    the pair sort.
//! 3. **Nested** ([`KernelKind::Nested`]) — the fallback for
//!    irreducible theta sets (`!=`, multi-inequality conjunctions,
//!    offset equalities). Still compiled: flat column indices and one
//!    function-pointer dispatch per predicate, no shape lookups.
//!
//! All kernels emit matching `(left, right)` index pairs in
//! left-major input order — exactly the order the naive nested loop
//! produced — so downstream byte accounting and block layouts are
//! bit-identical; only host wall-clock changes.
//!
//! The simulated cost model is **unaffected** by kernel choice:
//! reducers still report `|L|·|R|` candidates for pair joins (the work
//! a real Hadoop reducer running the naive algorithm would do), so
//! Eq. 2–4 phase timings stay bit-identical before/after this
//! optimisation.
//!
//! # Panic safety under task retries
//!
//! The engine runs every reduce attempt under `catch_unwind` and may
//! rerun it from the same materialised input (fault injection, real
//! panics). Kernels are safe to rerun because they are pure over
//! per-reducer local data: they read the borrowed row bags, build only
//! attempt-local scratch (hash tables, sort permutations) and emit
//! into an attempt-local output — no global or cross-attempt state is
//! mutated, so an unwound attempt leaves nothing to clean up and a
//! rerun is bit-identical.

use crate::shape::IntermediateShape;
use mwtj_query::theta::{eval_theta, CompiledPredicate, ThetaOp};
use mwtj_storage::{Tuple, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Signature of a compiled theta evaluator:
/// `(left value, left offset, right value, right offset) -> holds`.
type ThetaFn = fn(&Value, f64, &Value, f64) -> bool;

/// Pass-through hasher for keys that are already well-mixed 64-bit
/// hashes (the hash join's `key_hash` output).
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PreHashed only hashes u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type PreHashedMap = HashMap<u64, Vec<u32>, std::hash::BuildHasherDefault<PreHashed>>;

/// Monomorphised evaluator for one operator: the `op` branch is
/// resolved once at compile time instead of once per candidate pair.
fn theta_fn(op: ThetaOp) -> ThetaFn {
    match op {
        ThetaOp::Lt => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Lt, r, ro),
        ThetaOp::Le => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Le, r, ro),
        ThetaOp::Eq => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Eq, r, ro),
        ThetaOp::Ge => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Ge, r, ro),
        ThetaOp::Gt => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Gt, r, ro),
        ThetaOp::Ne => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Ne, r, ro),
    }
}

/// A predicate resolved to flat column indices into the (left row,
/// right row) pair, with a pre-selected operator function.
#[derive(Clone)]
pub struct FlatPred {
    l_col: usize,
    l_off: f64,
    r_col: usize,
    r_off: f64,
    op: ThetaOp,
    f: ThetaFn,
}

impl FlatPred {
    /// Does the predicate hold for the pair?
    #[inline]
    pub fn holds(&self, l: &Tuple, r: &Tuple) -> bool {
        (self.f)(l.get(self.l_col), self.l_off, r.get(self.r_col), self.r_off)
    }
}

impl std::fmt::Debug for FlatPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "col{}+{} {} col{}+{}",
            self.l_col, self.l_off, self.op, self.r_col, self.r_off
        )
    }
}

/// A predicate compiled against a *stack* of per-dimension tuples (the
/// chain join's recursive descent), with a pre-selected operator
/// function — the chain-side analogue of [`FlatPred`].
#[derive(Clone)]
pub struct StackPred {
    a_slot: usize,
    a_col: usize,
    a_off: f64,
    b_slot: usize,
    b_col: usize,
    b_off: f64,
    /// Depth at which the predicate becomes checkable (both slots
    /// bound).
    depth: usize,
    f: ThetaFn,
}

impl StackPred {
    /// Compile from a [`CompiledPredicate`] whose relation indices are
    /// already remapped to stack slots.
    pub fn from_compiled(p: &CompiledPredicate) -> Self {
        StackPred {
            a_slot: p.left_rel,
            a_col: p.left_col,
            a_off: p.left_off,
            b_slot: p.right_rel,
            b_col: p.right_col,
            b_off: p.right_off,
            depth: p.left_rel.max(p.right_rel),
            f: theta_fn(p.op),
        }
    }

    /// Depth at which both referenced slots are bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Does the predicate hold for the bound stack prefix?
    #[inline]
    pub fn holds(&self, stack: &[&Tuple]) -> bool {
        (self.f)(
            stack[self.a_slot].get(self.a_col),
            self.a_off,
            stack[self.b_slot].get(self.b_col),
            self.b_off,
        )
    }
}

/// Which specialised algorithm a [`PairKernel`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Hash join on the equality component, residual-filtered.
    Hash,
    /// Sort-merge band join on a single inequality.
    Band,
    /// Compiled nested loop (irreducible theta set).
    Nested,
}

/// The band join's key semantics (see module docs).
#[derive(Debug, Clone, Copy)]
enum BandMode {
    /// Offsets present: only numeric values participate, keys are
    /// `value + offset` as f64 — exactly `eval_theta`'s numeric path.
    Numeric,
    /// Zero offsets: numerics join numerics (f64 keys, with an i64
    /// exactness guard), strings join strings, NULLs never match —
    /// exactly `eval_theta`'s `sql_cmp` path.
    SqlValue,
}

enum Plan {
    /// Hash join on the kernel's `eq_key` columns.
    Hash,
    Band {
        l_col: usize,
        l_off: f64,
        r_col: usize,
        r_off: f64,
        op: ThetaOp,
        mode: BandMode,
    },
    Nested,
}

/// A pair-join kernel compiled once per job from the shapes and the
/// predicate set. `join_into` then runs the per-reducer join with no
/// shape lookups, no string resolution and no per-pair operator
/// dispatch.
pub struct PairKernel {
    plan: Plan,
    /// All predicates, flat-resolved — the full correctness filter.
    preds: Vec<FlatPred>,
    /// Shared-relation column ranges: (left start, right start, width).
    /// Rows must agree on these values (total equality, the merge key).
    shared: Vec<(usize, usize, usize)>,
    /// The equality component as flat (left col, right col) pairs:
    /// shared-relation columns first (canonical order), then
    /// zero-offset `=` predicate columns in predicate order. The hash
    /// plan's build/probe key, and the single source of truth for
    /// map-side `EquiHash` partitioning keys.
    eq_key: Vec<(usize, usize)>,
    /// Output assembly program: (take from left?, start, len) slices in
    /// output order.
    segments: Vec<(bool, usize, usize)>,
    out_arity: usize,
}

impl PairKernel {
    /// Compile a kernel for joining rows shaped `left` and `right` into
    /// rows shaped `out` under `preds` (query-relation indexed; each
    /// predicate must span the two sides).
    pub fn compile(
        left: &IntermediateShape,
        right: &IntermediateShape,
        out: &IntermediateShape,
        preds: &[CompiledPredicate],
    ) -> Self {
        Self::compile_inner(left, right, out, preds, false)
    }

    /// Compile with the specialised kernels disabled — always the
    /// compiled nested loop. The baseline for benchmarks and the
    /// differential oracle for property tests.
    pub fn compile_nested(
        left: &IntermediateShape,
        right: &IntermediateShape,
        out: &IntermediateShape,
        preds: &[CompiledPredicate],
    ) -> Self {
        Self::compile_inner(left, right, out, preds, true)
    }

    fn compile_inner(
        left: &IntermediateShape,
        right: &IntermediateShape,
        out: &IntermediateShape,
        preds: &[CompiledPredicate],
        force_nested: bool,
    ) -> Self {
        // Shared relations: the merge equality component.
        let shared_rels = IntermediateShape::shared(left, right);
        let shared: Vec<(usize, usize, usize)> = shared_rels
            .iter()
            .map(|&rel| {
                let l = left.col_range(rel);
                let r = right.col_range(rel);
                debug_assert_eq!(l.len(), r.len());
                (l.start, r.start, l.len())
            })
            .collect();

        // Resolve predicate orientation and flatten column references.
        let mut flat = Vec::with_capacity(preds.len());
        let mut eq_key: Vec<(usize, usize)> = shared
            .iter()
            .flat_map(|&(ls, rs, w)| (0..w).map(move |i| (ls + i, rs + i)))
            .collect();
        for p in preds {
            let fp = if left.has(p.left_rel) && right.has(p.right_rel) {
                FlatPred {
                    l_col: left.col_range(p.left_rel).start + p.left_col,
                    l_off: p.left_off,
                    r_col: right.col_range(p.right_rel).start + p.right_col,
                    r_off: p.right_off,
                    op: p.op,
                    f: theta_fn(p.op),
                }
            } else {
                // The predicate's left end lives on our right side:
                // flip it (a θ b  ⇔  b θ̄ a).
                let op = p.op.flip();
                FlatPred {
                    l_col: left.col_range(p.right_rel).start + p.right_col,
                    l_off: p.right_off,
                    r_col: right.col_range(p.left_rel).start + p.left_col,
                    r_off: p.left_off,
                    op,
                    f: theta_fn(op),
                }
            };
            if fp.op == ThetaOp::Eq && fp.l_off == 0.0 && fp.r_off == 0.0 {
                eq_key.push((fp.l_col, fp.r_col));
            }
            flat.push(fp);
        }

        let plan = if force_nested {
            Plan::Nested
        } else if !eq_key.is_empty() {
            Plan::Hash
        } else if flat.len() == 1
            && matches!(
                flat[0].op,
                ThetaOp::Lt | ThetaOp::Le | ThetaOp::Ge | ThetaOp::Gt
            )
        {
            let p = &flat[0];
            let mode = if p.l_off == 0.0 && p.r_off == 0.0 {
                BandMode::SqlValue
            } else {
                BandMode::Numeric
            };
            Plan::Band {
                l_col: p.l_col,
                l_off: p.l_off,
                r_col: p.r_col,
                r_off: p.r_off,
                op: p.op,
                mode,
            }
        } else {
            Plan::Nested
        };

        // Output assembly: for each output relation, the first side
        // carrying it provides the columns (left preferred, as the
        // historical `assemble(&[left, right])` call sites did).
        let mut segments = Vec::with_capacity(out.rels.len());
        for &rel in &out.rels {
            let (from_left, range) = if left.has(rel) {
                (true, left.col_range(rel))
            } else {
                (false, right.col_range(rel))
            };
            segments.push((from_left, range.start, range.len()));
        }

        PairKernel {
            plan,
            preds: flat,
            shared,
            eq_key,
            segments,
            out_arity: out.arity(),
        }
    }

    /// The algorithm this kernel dispatches to.
    pub fn kind(&self) -> KernelKind {
        match self.plan {
            Plan::Hash => KernelKind::Hash,
            Plan::Band { .. } => KernelKind::Band,
            Plan::Nested => KernelKind::Nested,
        }
    }

    /// The equality component as flat (left col, right col) pairs, in
    /// canonical order (shared-relation columns, then zero-offset `=`
    /// predicate columns). Empty when the predicate set has no
    /// equality component. Map-side `EquiHash` partitioning derives its
    /// per-side key columns from this, so the shuffle key and the
    /// reduce-side build/probe key can never drift apart.
    pub fn equality_key(&self) -> &[(usize, usize)] {
        &self.eq_key
    }

    /// The compiled theta predicates as flat
    /// `(left col, left offset, op, right col, right offset)` tuples,
    /// always oriented left-side-first — the inputs zone-map skip
    /// filters need. Shared-relation equality constraints are *not*
    /// included (they are an additional conjunct, so pruning on the
    /// theta predicates alone stays conservative).
    pub fn flat_preds(&self) -> impl Iterator<Item = (usize, f64, ThetaOp, usize, f64)> + '_ {
        self.preds
            .iter()
            .map(|p| (p.l_col, p.l_off, p.op, p.r_col, p.r_off))
    }

    /// Full match check for one candidate pair: shared-relation
    /// agreement plus every predicate.
    #[inline]
    fn matches(&self, l: &Tuple, r: &Tuple) -> bool {
        for &(ls, rs, w) in &self.shared {
            if l.values()[ls..ls + w] != r.values()[rs..rs + w] {
                return false;
            }
        }
        self.preds.iter().all(|p| p.holds(l, r))
    }

    /// Join `lefts` × `rights`, appending matching `(left index, right
    /// index)` pairs to `pairs` in left-major input order (the exact
    /// order a nested loop over the inputs would emit).
    pub fn join_into(&self, lefts: &[&Tuple], rights: &[&Tuple], pairs: &mut Vec<(u32, u32)>) {
        if lefts.is_empty() || rights.is_empty() {
            return;
        }
        let base = pairs.len();
        match &self.plan {
            Plan::Nested => self.join_nested(lefts, rights, pairs),
            Plan::Hash => self.join_hash(&self.eq_key, lefts, rights, pairs),
            Plan::Band {
                l_col,
                l_off,
                r_col,
                r_off,
                op,
                mode,
            } => {
                let done = self.join_band(
                    (*l_col, *l_off),
                    (*r_col, *r_off),
                    *op,
                    *mode,
                    lefts,
                    rights,
                    pairs,
                );
                if !done {
                    // Exactness bail-out (i64 keys beyond ±2^53).
                    pairs.truncate(base);
                    self.join_nested(lefts, rights, pairs);
                    return;
                }
            }
        }
        // Hash and band collect out of probe/sort order; restore the
        // canonical left-major order (cheap: u32 pairs, already nearly
        // sorted in the common probe-with-left case).
        if !matches!(self.plan, Plan::Nested) {
            pairs[base..].sort_unstable();
        }
    }

    /// Visit matching `(left index, right index)` pairs in the same
    /// left-major order as [`PairKernel::join_into`], stopping early
    /// (returning `false`) when `visit` returns `false` — the streamed
    /// emission path.
    ///
    /// The nested-loop plan visits truly incrementally, never
    /// materialising the pair set — and it is exactly the plan dense
    /// outputs land on (the band kernel's density gate and the hash
    /// plan's key structure keep the sparse cases elsewhere), so the
    /// worst-case output is the best-streamed one. Hash and band plans
    /// buffer *index pairs* (8 bytes each, never materialised rows) to
    /// restore left-major order before visiting.
    pub fn join_visit(
        &self,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        visit: &mut dyn FnMut(u32, u32) -> bool,
    ) -> bool {
        if lefts.is_empty() || rights.is_empty() {
            return true;
        }
        match &self.plan {
            Plan::Nested => self.visit_nested(lefts, rights, visit),
            _ => {
                let mut pairs = Vec::new();
                self.join_into(lefts, rights, &mut pairs);
                for (li, ri) in pairs {
                    if !visit(li, ri) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Compiled nested loop as a visitor; returns `false` on early
    /// stop.
    fn visit_nested(
        &self,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        visit: &mut dyn FnMut(u32, u32) -> bool,
    ) -> bool {
        for (li, l) in lefts.iter().enumerate() {
            for (ri, r) in rights.iter().enumerate() {
                if self.matches(l, r) && !visit(li as u32, ri as u32) {
                    return false;
                }
            }
        }
        true
    }

    fn join_nested(&self, lefts: &[&Tuple], rights: &[&Tuple], pairs: &mut Vec<(u32, u32)>) {
        let _ = self.visit_nested(lefts, rights, &mut |li, ri| {
            pairs.push((li, ri));
            true
        });
    }

    /// Hash of the equality-key columns of one row. Consistent with SQL
    /// equality (`Value::hash` makes numerically equal Int/Double hash
    /// alike), coarser than it — collisions are filtered by `matches`.
    fn key_hash(row: &Tuple, cols: impl Iterator<Item = usize>) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for c in cols {
            row.get(c).hash(&mut h);
        }
        h.finish()
    }

    fn join_hash(
        &self,
        key: &[(usize, usize)],
        lefts: &[&Tuple],
        rights: &[&Tuple],
        pairs: &mut Vec<(u32, u32)>,
    ) {
        // Build on the smaller side, probe with the larger.
        let build_left = lefts.len() <= rights.len();
        let (build, probe) = if build_left {
            (lefts, rights)
        } else {
            (rights, lefts)
        };
        // Keys are already well-mixed 64-bit hashes: store them under
        // an identity hasher rather than paying a second SipHash per
        // build/probe row.
        let mut table: PreHashedMap =
            HashMap::with_capacity_and_hasher(build.len(), Default::default());
        for (bi, b) in build.iter().enumerate() {
            let h = if build_left {
                Self::key_hash(b, key.iter().map(|&(l, _)| l))
            } else {
                Self::key_hash(b, key.iter().map(|&(_, r)| r))
            };
            table.entry(h).or_default().push(bi as u32);
        }
        for (pi, p) in probe.iter().enumerate() {
            let h = if build_left {
                Self::key_hash(p, key.iter().map(|&(_, r)| r))
            } else {
                Self::key_hash(p, key.iter().map(|&(l, _)| l))
            };
            if let Some(bucket) = table.get(&h) {
                for &bi in bucket {
                    let (li, ri) = if build_left {
                        (bi, pi as u32)
                    } else {
                        (pi as u32, bi)
                    };
                    if self.matches(lefts[li as usize], rights[ri as usize]) {
                        pairs.push((li, ri));
                    }
                }
            }
        }
    }

    /// Sort-merge band join. Returns `false` when an exactness guard
    /// trips and the caller must fall back to the nested loop.
    #[allow(clippy::too_many_arguments)]
    fn join_band(
        &self,
        (l_col, l_off): (usize, f64),
        (r_col, r_off): (usize, f64),
        op: ThetaOp,
        mode: BandMode,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        pairs: &mut Vec<(u32, u32)>,
    ) -> bool {
        // Numeric class: f64 keys (value + offset). In SqlValue mode an
        // i64 beyond ±2^53 would be compared exactly by sql_cmp but
        // inexactly by an f64 key — bail out.
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let mut l_num: Vec<(f64, u32)> = Vec::new();
        let mut r_num: Vec<(f64, u32)> = Vec::new();
        let mut l_str: Vec<(&str, u32)> = Vec::new();
        let mut r_str: Vec<(&str, u32)> = Vec::new();
        let sql_mode = matches!(mode, BandMode::SqlValue);
        for (side, col, off, num, strs) in [
            (lefts, l_col, l_off, &mut l_num, &mut l_str),
            (rights, r_col, r_off, &mut r_num, &mut r_str),
        ] {
            for (i, row) in side.iter().enumerate() {
                match row.get(col) {
                    Value::Int(v) => {
                        if sql_mode && (*v > EXACT as i64 || *v < -(EXACT as i64)) {
                            return false;
                        }
                        num.push((*v as f64 + off, i as u32));
                    }
                    // In SqlValue mode the key must be the *raw* f64:
                    // sql_cmp orders by total_cmp, which distinguishes
                    // -0.0 from +0.0 and NaN payloads — `d + 0.0`
                    // would collapse them.
                    Value::Double(d) => num.push((if sql_mode { *d } else { d + off }, i as u32)),
                    Value::Str(s) if sql_mode => strs.push((s.as_ref(), i as u32)),
                    // NULLs, and strings under offsets, never satisfy
                    // an inequality.
                    _ => {}
                }
            }
        }
        l_num.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        r_num.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        l_str.sort_unstable_by(|a, b| a.0.cmp(b.0));
        r_str.sort_unstable_by(|a, b| a.0.cmp(b.0));
        // Density gate: count the matches with a cheap monotone boundary
        // walk before materialising anything. When the output is a
        // large fraction of the cross product, both algorithms are
        // output-bound but the band path additionally pays a pair sort
        // — the nested loop is the better engine there. The win the
        // band kernel exists for is the sparse regime, where it is
        // orders of magnitude ahead.
        let total = Self::band_count(&l_num, &r_num, op, f64::total_cmp)
            + Self::band_count(&l_str, &r_str, op, Ord::cmp);
        let cross = (lefts.len() as u64).saturating_mul(rights.len() as u64);
        if total.saturating_mul(8) > cross {
            return false;
        }
        Self::band_emit(&l_num, &r_num, op, f64::total_cmp, pairs);
        if sql_mode {
            Self::band_emit(&l_str, &r_str, op, Ord::cmp, pairs);
        }
        true
    }

    /// Does `l op r` hold for the ordering of the two keys?
    fn band_holds(op: ThetaOp, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering;
        match op {
            ThetaOp::Lt => ord == Ordering::Less,
            ThetaOp::Le => ord != Ordering::Greater,
            ThetaOp::Ge => ord != Ordering::Less,
            ThetaOp::Gt => ord == Ordering::Greater,
            _ => unreachable!("band ops are inequalities"),
        }
    }

    /// Number of matching pairs between two key-sorted sides, via one
    /// monotone boundary walk — O(|L| + |R|).
    fn band_count<K>(
        lefts: &[(K, u32)],
        rights: &[(K, u32)],
        op: ThetaOp,
        cmp: impl Fn(&K, &K) -> std::cmp::Ordering + Copy,
    ) -> u64 {
        if lefts.is_empty() || rights.is_empty() {
            return 0;
        }
        let suffix = matches!(op, ThetaOp::Lt | ThetaOp::Le);
        let mut b = 0usize;
        let mut total = 0u64;
        for (lk, _) in lefts.iter() {
            if suffix {
                while b < rights.len() && !Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                total += (rights.len() - b) as u64;
            } else {
                while b < rights.len() && Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                total += b as u64;
            }
        }
        total
    }

    /// One type-class band scan over key-sorted sides: walk the lefts
    /// in key order sliding the right boundary monotonically, emitting
    /// the matching contiguous run per left row.
    fn band_emit<K>(
        lefts: &[(K, u32)],
        rights: &[(K, u32)],
        op: ThetaOp,
        cmp: impl Fn(&K, &K) -> std::cmp::Ordering + Copy,
        pairs: &mut Vec<(u32, u32)>,
    ) {
        if lefts.is_empty() || rights.is_empty() {
            return;
        }
        // For l op r with r's keys ascending, the matching right rows
        // form a suffix (Lt/Le) or prefix (Gt/Ge) whose boundary moves
        // monotonically as the left key grows.
        let suffix = matches!(op, ThetaOp::Lt | ThetaOp::Le);
        let mut b = 0usize;
        if suffix {
            for (lk, li) in lefts.iter() {
                while b < rights.len() && !Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                for (_, ri) in &rights[b..] {
                    pairs.push((*li, *ri));
                }
            }
        } else {
            for (lk, li) in lefts.iter() {
                while b < rights.len() && Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                for (_, ri) in &rights[..b] {
                    pairs.push((*li, *ri));
                }
            }
        }
    }

    /// Assemble one output row from a matching pair — the compiled
    /// slice-copy form of [`IntermediateShape::assemble`].
    pub fn assemble(&self, l: &Tuple, r: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.out_arity);
        for &(from_left, start, len) in &self.segments {
            let src = if from_left { l.values() } else { r.values() };
            values.extend_from_slice(&src[start..start + len]);
        }
        Tuple::new(values)
    }
}

impl std::fmt::Debug for PairKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairKernel")
            .field("kind", &self.kind())
            .field("preds", &self.preds)
            .field("shared", &self.shared)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_query::{ColExpr, MultiwayQuery, QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Schema};

    fn two_rel_query(op: ThetaOp) -> MultiwayQuery {
        let s = |n: &str| Schema::from_pairs(n, &[("a", DataType::Int), ("b", DataType::Int)]);
        QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join("l", "a", op, "r", "a")
            .build()
            .unwrap()
    }

    fn compile_for(q: &MultiwayQuery) -> (PairKernel, PairKernel) {
        let left = IntermediateShape::base(q, 0);
        let right = IntermediateShape::base(q, 1);
        let out = IntermediateShape::union(q, &left, &right);
        let preds: Vec<CompiledPredicate> = q
            .compile()
            .unwrap()
            .per_condition
            .iter()
            .flat_map(|c| c.iter().copied())
            .collect();
        (
            PairKernel::compile(&left, &right, &out, &preds),
            PairKernel::compile_nested(&left, &right, &out, &preds),
        )
    }

    fn join_pairs(k: &PairKernel, lefts: &[Tuple], rights: &[Tuple]) -> Vec<(u32, u32)> {
        let l: Vec<&Tuple> = lefts.iter().collect();
        let r: Vec<&Tuple> = rights.iter().collect();
        let mut pairs = Vec::new();
        k.join_into(&l, &r, &mut pairs);
        pairs
    }

    #[test]
    fn selection_rules() {
        assert_eq!(
            compile_for(&two_rel_query(ThetaOp::Eq)).0.kind(),
            KernelKind::Hash
        );
        for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Ge, ThetaOp::Gt] {
            assert_eq!(compile_for(&two_rel_query(op)).0.kind(), KernelKind::Band);
        }
        assert_eq!(
            compile_for(&two_rel_query(ThetaOp::Ne)).0.kind(),
            KernelKind::Nested
        );
        // Eq + inequality: hash with residual.
        let s = |n: &str| Schema::from_pairs(n, &[("a", DataType::Int), ("b", DataType::Int)]);
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join("l", "a", ThetaOp::Eq, "r", "a")
            .join("l", "b", ThetaOp::Lt, "r", "b")
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Hash);
        // Two inequalities: nested.
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join("l", "a", ThetaOp::Lt, "r", "a")
            .join("l", "b", ThetaOp::Gt, "r", "b")
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Nested);
        // Offset equality is not hashable: nested.
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join_expr(
                ColExpr::col_plus("l", "a", 1.0),
                ThetaOp::Eq,
                ColExpr::col("r", "a"),
            )
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Nested);
        // Offset inequality stays a band.
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join_expr(
                ColExpr::col_plus("l", "a", 3.0),
                ThetaOp::Gt,
                ColExpr::col("r", "a"),
            )
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Band);
    }

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter().map(|&(a, b)| tuple![a, b]).collect()
    }

    #[test]
    fn kernels_agree_with_nested_and_emit_left_major() {
        let lefts = rows(&[(5, 1), (1, 2), (3, 3), (3, 4)]);
        let rights = rows(&[(3, 1), (2, 2), (5, 3), (1, 4), (3, 5)]);
        for op in ThetaOp::ALL {
            let q = two_rel_query(op);
            let (fast, slow) = compile_for(&q);
            let want = join_pairs(&slow, &lefts, &rights);
            let got = join_pairs(&fast, &lefts, &rights);
            assert_eq!(got, want, "{op} ({:?})", fast.kind());
            // Left-major order: strictly increasing lexicographically.
            for w in got.windows(2) {
                assert!(w[0] < w[1], "{op} emitted out of order: {got:?}");
            }
        }
    }

    #[test]
    fn band_handles_nulls_strings_and_doubles() {
        let q = two_rel_query(ThetaOp::Lt);
        let (fast, slow) = compile_for(&q);
        assert_eq!(fast.kind(), KernelKind::Band);
        let lefts = vec![
            tuple![1, 0],
            Tuple::new(vec![Value::Null, Value::Int(0)]),
            Tuple::new(vec![Value::from("apple"), Value::Int(0)]),
            tuple![2.5, 0],
            Tuple::new(vec![Value::from("pear"), Value::Int(0)]),
        ];
        let rights = vec![
            tuple![2, 0],
            Tuple::new(vec![Value::from("banana"), Value::Int(0)]),
            Tuple::new(vec![Value::Null, Value::Int(0)]),
            tuple![2.25, 0],
        ];
        assert_eq!(
            join_pairs(&fast, &lefts, &rights),
            join_pairs(&slow, &lefts, &rights)
        );
    }

    /// sql_cmp orders by total_cmp, which distinguishes -0.0 < +0.0
    /// and NaN bit patterns; the band keys must too.
    #[test]
    fn band_distinguishes_negative_zero_and_nan() {
        let q = two_rel_query(ThetaOp::Lt);
        let (fast, slow) = compile_for(&q);
        assert_eq!(fast.kind(), KernelKind::Band);
        let specials = [0.0f64, -0.0, f64::NAN, -f64::NAN, f64::INFINITY];
        let lefts: Vec<Tuple> = specials.iter().map(|&d| tuple![d, 0]).collect();
        let rights: Vec<Tuple> = specials.iter().rev().map(|&d| tuple![d, 0]).collect();
        let got = join_pairs(&fast, &lefts, &rights);
        assert_eq!(got, join_pairs(&slow, &lefts, &rights));
        // -0.0 < +0.0 under total_cmp: the pair (left=-0.0, right=+0.0)
        // must be present (left idx 1, right idx 4).
        assert!(got.contains(&(1, 4)), "missing -0.0 < +0.0 pair: {got:?}");
    }

    #[test]
    fn band_bails_out_on_huge_ints() {
        let q = two_rel_query(ThetaOp::Lt);
        let (fast, slow) = compile_for(&q);
        let big = 1i64 << 53;
        // big and big+1 collapse to the same f64; sql_cmp orders them.
        let lefts = rows(&[(big, 0), (big + 1, 0)]);
        let rights = rows(&[(big + 1, 0), (big, 0)]);
        assert_eq!(
            join_pairs(&fast, &lefts, &rights),
            join_pairs(&slow, &lefts, &rights)
        );
    }

    #[test]
    fn hash_matches_mixed_int_double_keys() {
        let q = two_rel_query(ThetaOp::Eq);
        let (fast, slow) = compile_for(&q);
        let lefts = vec![tuple![7, 0], tuple![7.0, 1], tuple![8, 2]];
        let rights = vec![tuple![7.0, 0], tuple![7, 1], tuple![8.5, 2]];
        let got = join_pairs(&fast, &lefts, &rights);
        assert_eq!(got, join_pairs(&slow, &lefts, &rights));
        assert_eq!(got.len(), 4); // 2 lefts × 2 rights with key 7
    }

    #[test]
    fn assemble_matches_shape_assemble() {
        let q = two_rel_query(ThetaOp::Eq);
        let left = IntermediateShape::base(&q, 0);
        let right = IntermediateShape::base(&q, 1);
        let out = IntermediateShape::union(&q, &left, &right);
        let (fast, _) = compile_for(&q);
        let l = tuple![1, 2];
        let r = tuple![3, 4];
        assert_eq!(
            fast.assemble(&l, &r),
            out.assemble(&[(&left, &l), (&right, &r)])
        );
    }

    #[test]
    fn stack_pred_matches_compiled_predicate() {
        let p = CompiledPredicate {
            left_rel: 0,
            left_col: 1,
            left_off: 2.0,
            op: ThetaOp::Gt,
            right_rel: 1,
            right_col: 0,
            right_off: 0.0,
        };
        let sp = StackPred::from_compiled(&p);
        assert_eq!(sp.depth(), 1);
        let a = tuple![0, 4];
        let b = tuple![5];
        assert_eq!(sp.holds(&[&a, &b]), p.eval(&[&a, &b])); // 4+2 > 5
        let b2 = tuple![7];
        assert_eq!(sp.holds(&[&a, &b2]), p.eval(&[&a, &b2]));
    }
}
