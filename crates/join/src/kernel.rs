//! Compiled join kernels for the per-reducer hot path.
//!
//! Every reducer of a [`PairJob`](crate::PairJob) receives a bag of
//! left rows and a bag of right rows and must produce the matching
//! pairs. The naive implementation re-resolves predicate columns
//! through [`IntermediateShape`] lookups (two binary searches per value
//! access) for every candidate pair — O(|L|·|R|) shape lookups and
//! operator dispatches per reducer. This module compiles the predicate
//! set **once** per job into flat column indices and per-operator
//! function pointers, then dispatches to a specialised kernel.
//!
//! # Kernel selection rules
//!
//! [`PairKernel::compile`] inspects the predicate set and picks, in
//! order:
//!
//! 1. **Hash** ([`KernelKind::Hash`]) — chosen when there is an
//!    equality component: at least one shared relation (merge
//!    semantics: both sides carry the same query relation and must
//!    agree on its tuple) or at least one zero-offset `=` predicate.
//!    Builds a hash table over the equality key on the **smaller**
//!    side, probes with the larger, and filters every candidate with
//!    the full compiled predicate set (hashing is consistent with, but
//!    coarser than, SQL equality — probe hits are *candidates*, not
//!    matches).
//! 2. **Band** ([`KernelKind::Band`]) — chosen when there is no
//!    equality component and the predicate set is a **single**
//!    inequality (`<`, `<=`, `>=`, `>`, offsets allowed). Sorts both
//!    sides on the (possibly offset) join column and emits, per left
//!    row, the contiguous run of right rows satisfying the operator —
//!    O((|L|+|R|)·log + output) instead of O(|L|·|R|). Comparison
//!    semantics replicate [`eval_theta`] exactly: with offsets only
//!    numeric values participate (f64 arithmetic, `total_cmp`);
//!    without offsets numerics and strings join within their own type
//!    class, NULLs and cross-class pairs never match. An all-integer
//!    zero-offset numeric class sorts on exact `i64` keys (valid at
//!    any magnitude); only when integers beyond ±2⁵³ *mix with
//!    doubles* (where SQL compares Int/Int exactly but Int/Double
//!    through f64, so no single sort key reproduces the order) does
//!    the kernel bail out to the nested loop for that input —
//!    exactness always wins. The band is also **density
//!    gated**: it first counts the matches with an O(|L|+|R|) boundary
//!    walk and hands dense outputs (more than ⅛ of the cross product)
//!    back to the nested loop, which is output-bound there and skips
//!    the pair sort.
//! 3. **Nested** ([`KernelKind::Nested`]) — the fallback for
//!    irreducible theta sets (`!=`, multi-inequality conjunctions,
//!    offset equalities). Still compiled: flat column indices and one
//!    function-pointer dispatch per predicate, no shape lookups.
//!
//! # Vectorized (columnar) evaluation
//!
//! All three kernels consume *column vectors*, not tuple structs, on
//! their hot paths. Each reducer input is transposed once — key and
//! predicate columns are projected into `&[i64]`/`&[f64]` key vectors
//! (the same typed form `mwtj_storage::columns` stores relations in) —
//! and the inner loops then run over contiguous typed slices: the hash
//! plan folds per-column key bits into one 64-bit hash per row, the
//! band plan sorts typed keys (with an exact `i64` class for
//! all-integer columns, which no longer bails out on values beyond
//! ±2⁵³), and the nested loop evaluates predicates through
//! [`TypedPred`] — rows are gathered only at emit time. Inputs whose
//! value mix cannot be vectorized exactly fall back to per-pair
//! [`eval_theta`], so results never change. Columnar-backed callers
//! (benches, the smoke parity test) can skip the transpose entirely
//! via [`PairKernel::join_key_slices`].
//!
//! All kernels emit matching `(left, right)` index pairs in
//! left-major input order — exactly the order the naive nested loop
//! produced — so downstream byte accounting and block layouts are
//! bit-identical; only host wall-clock changes.
//!
//! The simulated cost model is **unaffected** by kernel choice:
//! reducers still report `|L|·|R|` candidates for pair joins (the work
//! a real Hadoop reducer running the naive algorithm would do), so
//! Eq. 2–4 phase timings stay bit-identical before/after this
//! optimisation.
//!
//! # Panic safety under task retries
//!
//! The engine runs every reduce attempt under `catch_unwind` and may
//! rerun it from the same materialised input (fault injection, real
//! panics). Kernels are safe to rerun because they are pure over
//! per-reducer local data: they read the borrowed row bags, build only
//! attempt-local scratch (hash tables, sort permutations) and emit
//! into an attempt-local output — no global or cross-attempt state is
//! mutated, so an unwound attempt leaves nothing to clean up and a
//! rerun is bit-identical.

use crate::shape::IntermediateShape;
use mwtj_query::theta::{eval_theta, CompiledPredicate, ThetaOp, TypedPred};
use mwtj_storage::{Tuple, Value};
use std::collections::HashMap;
use std::hash::Hasher;

/// Signature of a compiled theta evaluator:
/// `(left value, left offset, right value, right offset) -> holds`.
type ThetaFn = fn(&Value, f64, &Value, f64) -> bool;

/// Pass-through hasher for keys that are already well-mixed 64-bit
/// hashes (the hash join's `key_hash` output).
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PreHashed only hashes u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type PreHashedMap = HashMap<u64, Vec<u32>, std::hash::BuildHasherDefault<PreHashed>>;

/// Seed for the vectorized key hash (the FNV-1a offset basis).
const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a byte string — the hash contribution of string keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = HASH_SEED;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One key column's contribution to a row's equality hash. The only
/// contract is *SQL-equal values contribute equal bits* (collisions
/// are filtered by the full `matches` check): numerics contribute
/// their f64-bits view — `sql_cmp` compares Int/Double (and equality
/// under total_cmp) through exactly that view, and equal Int/Int pairs
/// trivially share bits — strings contribute an FNV over their bytes,
/// and NULLs (equal only to each other, for the shared-relation merge
/// key) a fixed tag. Cross-class values are never SQL-equal, so their
/// contributions are unconstrained.
#[inline]
fn key_bits(v: &Value) -> u64 {
    match v {
        Value::Int(x) => (*x as f64).to_bits(),
        Value::Double(d) => d.to_bits(),
        Value::Str(s) => fnv1a(s.as_bytes()),
        Value::Null => 0x6e75_6c6c_6e75_6c6c, // "nullnull"
    }
}

/// Fold one column contribution into a running key hash
/// (splitmix-style multiply/xor-shift: cheap, and pushes entropy into
/// the low bits the identity-hashed table buckets on).
#[inline]
fn hash_mix(h: u64, c: u64) -> u64 {
    let x = (h ^ c).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^ (x >> 32)
}

/// Monomorphised evaluator for one operator: the `op` branch is
/// resolved once at compile time instead of once per candidate pair.
fn theta_fn(op: ThetaOp) -> ThetaFn {
    match op {
        ThetaOp::Lt => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Lt, r, ro),
        ThetaOp::Le => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Le, r, ro),
        ThetaOp::Eq => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Eq, r, ro),
        ThetaOp::Ge => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Ge, r, ro),
        ThetaOp::Gt => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Gt, r, ro),
        ThetaOp::Ne => |l, lo, r, ro| eval_theta(l, lo, ThetaOp::Ne, r, ro),
    }
}

/// A predicate resolved to flat column indices into the (left row,
/// right row) pair, with a pre-selected operator function.
#[derive(Clone)]
pub struct FlatPred {
    l_col: usize,
    l_off: f64,
    r_col: usize,
    r_off: f64,
    op: ThetaOp,
    f: ThetaFn,
}

impl FlatPred {
    /// Does the predicate hold for the pair?
    #[inline]
    pub fn holds(&self, l: &Tuple, r: &Tuple) -> bool {
        (self.f)(l.get(self.l_col), self.l_off, r.get(self.r_col), self.r_off)
    }
}

impl std::fmt::Debug for FlatPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "col{}+{} {} col{}+{}",
            self.l_col, self.l_off, self.op, self.r_col, self.r_off
        )
    }
}

/// A predicate compiled against a *stack* of per-dimension tuples (the
/// chain join's recursive descent), with a pre-selected operator
/// function — the chain-side analogue of [`FlatPred`].
#[derive(Clone)]
pub struct StackPred {
    a_slot: usize,
    a_col: usize,
    a_off: f64,
    b_slot: usize,
    b_col: usize,
    b_off: f64,
    /// Depth at which the predicate becomes checkable (both slots
    /// bound).
    depth: usize,
    f: ThetaFn,
}

impl StackPred {
    /// Compile from a [`CompiledPredicate`] whose relation indices are
    /// already remapped to stack slots.
    pub fn from_compiled(p: &CompiledPredicate) -> Self {
        StackPred {
            a_slot: p.left_rel,
            a_col: p.left_col,
            a_off: p.left_off,
            b_slot: p.right_rel,
            b_col: p.right_col,
            b_off: p.right_off,
            depth: p.left_rel.max(p.right_rel),
            f: theta_fn(p.op),
        }
    }

    /// Depth at which both referenced slots are bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Does the predicate hold for the bound stack prefix?
    #[inline]
    pub fn holds(&self, stack: &[&Tuple]) -> bool {
        (self.f)(
            stack[self.a_slot].get(self.a_col),
            self.a_off,
            stack[self.b_slot].get(self.b_col),
            self.b_off,
        )
    }
}

/// Which specialised algorithm a [`PairKernel`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Hash join on the equality component, residual-filtered.
    Hash,
    /// Sort-merge band join on a single inequality.
    Band,
    /// Compiled nested loop (irreducible theta set).
    Nested,
}

/// The band join's key semantics (see module docs).
#[derive(Debug, Clone, Copy)]
enum BandMode {
    /// Offsets present: only numeric values participate, keys are
    /// `value + offset` as f64 — exactly `eval_theta`'s numeric path.
    Numeric,
    /// Zero offsets: numerics join numerics (f64 keys, with an i64
    /// exactness guard), strings join strings, NULLs never match —
    /// exactly `eval_theta`'s `sql_cmp` path.
    SqlValue,
}

enum Plan {
    /// Hash join on the kernel's `eq_key` columns.
    Hash,
    Band {
        l_col: usize,
        l_off: f64,
        r_col: usize,
        r_off: f64,
        op: ThetaOp,
        mode: BandMode,
    },
    Nested,
}

/// A pair-join kernel compiled once per job from the shapes and the
/// predicate set. `join_into` then runs the per-reducer join with no
/// shape lookups, no string resolution and no per-pair operator
/// dispatch.
pub struct PairKernel {
    plan: Plan,
    /// All predicates, flat-resolved — the full correctness filter.
    preds: Vec<FlatPred>,
    /// Shared-relation column ranges: (left start, right start, width).
    /// Rows must agree on these values (total equality, the merge key).
    shared: Vec<(usize, usize, usize)>,
    /// The equality component as flat (left col, right col) pairs:
    /// shared-relation columns first (canonical order), then
    /// zero-offset `=` predicate columns in predicate order. The hash
    /// plan's build/probe key, and the single source of truth for
    /// map-side `EquiHash` partitioning keys.
    eq_key: Vec<(usize, usize)>,
    /// Output assembly program: (take from left?, start, len) slices in
    /// output order.
    segments: Vec<(bool, usize, usize)>,
    out_arity: usize,
}

impl PairKernel {
    /// Compile a kernel for joining rows shaped `left` and `right` into
    /// rows shaped `out` under `preds` (query-relation indexed; each
    /// predicate must span the two sides).
    pub fn compile(
        left: &IntermediateShape,
        right: &IntermediateShape,
        out: &IntermediateShape,
        preds: &[CompiledPredicate],
    ) -> Self {
        Self::compile_inner(left, right, out, preds, false)
    }

    /// Compile with the specialised kernels disabled — always the
    /// compiled nested loop. The baseline for benchmarks and the
    /// differential oracle for property tests.
    pub fn compile_nested(
        left: &IntermediateShape,
        right: &IntermediateShape,
        out: &IntermediateShape,
        preds: &[CompiledPredicate],
    ) -> Self {
        Self::compile_inner(left, right, out, preds, true)
    }

    fn compile_inner(
        left: &IntermediateShape,
        right: &IntermediateShape,
        out: &IntermediateShape,
        preds: &[CompiledPredicate],
        force_nested: bool,
    ) -> Self {
        // Shared relations: the merge equality component.
        let shared_rels = IntermediateShape::shared(left, right);
        let shared: Vec<(usize, usize, usize)> = shared_rels
            .iter()
            .map(|&rel| {
                let l = left.col_range(rel);
                let r = right.col_range(rel);
                debug_assert_eq!(l.len(), r.len());
                (l.start, r.start, l.len())
            })
            .collect();

        // Resolve predicate orientation and flatten column references.
        let mut flat = Vec::with_capacity(preds.len());
        let mut eq_key: Vec<(usize, usize)> = shared
            .iter()
            .flat_map(|&(ls, rs, w)| (0..w).map(move |i| (ls + i, rs + i)))
            .collect();
        for p in preds {
            let fp = if left.has(p.left_rel) && right.has(p.right_rel) {
                FlatPred {
                    l_col: left.col_range(p.left_rel).start + p.left_col,
                    l_off: p.left_off,
                    r_col: right.col_range(p.right_rel).start + p.right_col,
                    r_off: p.right_off,
                    op: p.op,
                    f: theta_fn(p.op),
                }
            } else {
                // The predicate's left end lives on our right side:
                // flip it (a θ b  ⇔  b θ̄ a).
                let op = p.op.flip();
                FlatPred {
                    l_col: left.col_range(p.right_rel).start + p.right_col,
                    l_off: p.right_off,
                    r_col: right.col_range(p.left_rel).start + p.left_col,
                    r_off: p.left_off,
                    op,
                    f: theta_fn(op),
                }
            };
            if fp.op == ThetaOp::Eq && fp.l_off == 0.0 && fp.r_off == 0.0 {
                eq_key.push((fp.l_col, fp.r_col));
            }
            flat.push(fp);
        }

        let plan = if force_nested {
            Plan::Nested
        } else if !eq_key.is_empty() {
            Plan::Hash
        } else if flat.len() == 1
            && matches!(
                flat[0].op,
                ThetaOp::Lt | ThetaOp::Le | ThetaOp::Ge | ThetaOp::Gt
            )
        {
            let p = &flat[0];
            let mode = if p.l_off == 0.0 && p.r_off == 0.0 {
                BandMode::SqlValue
            } else {
                BandMode::Numeric
            };
            Plan::Band {
                l_col: p.l_col,
                l_off: p.l_off,
                r_col: p.r_col,
                r_off: p.r_off,
                op: p.op,
                mode,
            }
        } else {
            Plan::Nested
        };

        // Output assembly: for each output relation, the first side
        // carrying it provides the columns (left preferred, as the
        // historical `assemble(&[left, right])` call sites did).
        let mut segments = Vec::with_capacity(out.rels.len());
        for &rel in &out.rels {
            let (from_left, range) = if left.has(rel) {
                (true, left.col_range(rel))
            } else {
                (false, right.col_range(rel))
            };
            segments.push((from_left, range.start, range.len()));
        }

        PairKernel {
            plan,
            preds: flat,
            shared,
            eq_key,
            segments,
            out_arity: out.arity(),
        }
    }

    /// The algorithm this kernel dispatches to.
    pub fn kind(&self) -> KernelKind {
        match self.plan {
            Plan::Hash => KernelKind::Hash,
            Plan::Band { .. } => KernelKind::Band,
            Plan::Nested => KernelKind::Nested,
        }
    }

    /// The equality component as flat (left col, right col) pairs, in
    /// canonical order (shared-relation columns, then zero-offset `=`
    /// predicate columns). Empty when the predicate set has no
    /// equality component. Map-side `EquiHash` partitioning derives its
    /// per-side key columns from this, so the shuffle key and the
    /// reduce-side build/probe key can never drift apart.
    pub fn equality_key(&self) -> &[(usize, usize)] {
        &self.eq_key
    }

    /// The compiled theta predicates as flat
    /// `(left col, left offset, op, right col, right offset)` tuples,
    /// always oriented left-side-first — the inputs zone-map skip
    /// filters need. Shared-relation equality constraints are *not*
    /// included (they are an additional conjunct, so pruning on the
    /// theta predicates alone stays conservative).
    pub fn flat_preds(&self) -> impl Iterator<Item = (usize, f64, ThetaOp, usize, f64)> + '_ {
        self.preds
            .iter()
            .map(|p| (p.l_col, p.l_off, p.op, p.r_col, p.r_off))
    }

    /// Full match check for one candidate pair: shared-relation
    /// agreement plus every predicate.
    #[inline]
    fn matches(&self, l: &Tuple, r: &Tuple) -> bool {
        for &(ls, rs, w) in &self.shared {
            if l.values()[ls..ls + w] != r.values()[rs..rs + w] {
                return false;
            }
        }
        self.preds.iter().all(|p| p.holds(l, r))
    }

    /// Join `lefts` × `rights`, appending matching `(left index, right
    /// index)` pairs to `pairs` in left-major input order (the exact
    /// order a nested loop over the inputs would emit).
    pub fn join_into(&self, lefts: &[&Tuple], rights: &[&Tuple], pairs: &mut Vec<(u32, u32)>) {
        if lefts.is_empty() || rights.is_empty() {
            return;
        }
        let base = pairs.len();
        match &self.plan {
            Plan::Nested => self.join_nested(lefts, rights, pairs),
            Plan::Hash => self.join_hash(&self.eq_key, lefts, rights, pairs),
            Plan::Band {
                l_col,
                l_off,
                r_col,
                r_off,
                op,
                mode,
            } => {
                let done = self.join_band(
                    (*l_col, *l_off),
                    (*r_col, *r_off),
                    *op,
                    *mode,
                    lefts,
                    rights,
                    pairs,
                );
                if !done {
                    // Exactness bail-out (i64 keys beyond ±2^53).
                    pairs.truncate(base);
                    self.join_nested(lefts, rights, pairs);
                    return;
                }
            }
        }
        // Hash and band collect out of probe/sort order; restore the
        // canonical left-major order (cheap: u32 pairs, already nearly
        // sorted in the common probe-with-left case).
        if !matches!(self.plan, Plan::Nested) {
            pairs[base..].sort_unstable();
        }
    }

    /// Visit matching `(left index, right index)` pairs in the same
    /// left-major order as [`PairKernel::join_into`], stopping early
    /// (returning `false`) when `visit` returns `false` — the streamed
    /// emission path.
    ///
    /// The nested-loop plan visits truly incrementally, never
    /// materialising the pair set — and it is exactly the plan dense
    /// outputs land on (the band kernel's density gate and the hash
    /// plan's key structure keep the sparse cases elsewhere), so the
    /// worst-case output is the best-streamed one. Hash and band plans
    /// buffer *index pairs* (8 bytes each, never materialised rows) to
    /// restore left-major order before visiting.
    pub fn join_visit(
        &self,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        visit: &mut dyn FnMut(u32, u32) -> bool,
    ) -> bool {
        if lefts.is_empty() || rights.is_empty() {
            return true;
        }
        match &self.plan {
            Plan::Nested => self.visit_nested(lefts, rights, visit),
            _ => {
                let mut pairs = Vec::new();
                self.join_into(lefts, rights, &mut pairs);
                for (li, ri) in pairs {
                    if !visit(li, ri) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Candidate-pair threshold above which the nested loop pays the
    /// one-time column transpose to evaluate predicates through
    /// [`TypedPred`]. Below it the projection overhead dominates the
    /// O(|L|·|R|) saving.
    const VECTOR_MIN_PAIRS: u64 = 4096;

    /// Compiled nested loop as a visitor; returns `false` on early
    /// stop. Large inputs take the vectorized path when their value
    /// mix permits; small or unvectorizable inputs run the per-pair
    /// scalar loop. Both produce the identical visit sequence.
    fn visit_nested(
        &self,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        visit: &mut dyn FnMut(u32, u32) -> bool,
    ) -> bool {
        let cross = (lefts.len() as u64).saturating_mul(rights.len() as u64);
        if cross >= Self::VECTOR_MIN_PAIRS && !self.preds.is_empty() {
            if let Some(done) = self.visit_nested_vectorized(lefts, rights, visit) {
                return done;
            }
        }
        self.visit_nested_scalar(lefts, rights, visit)
    }

    /// The per-pair fallback: one full `matches` call per candidate.
    fn visit_nested_scalar(
        &self,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        visit: &mut dyn FnMut(u32, u32) -> bool,
    ) -> bool {
        for (li, l) in lefts.iter().enumerate() {
            for (ri, r) in rights.iter().enumerate() {
                if self.matches(l, r) && !visit(li as u32, ri as u32) {
                    return false;
                }
            }
        }
        true
    }

    /// Columnar nested loop: project each predicate's two columns once
    /// and classify them into a [`TypedPred`] — typed `i64`/`f64` key
    /// vectors plus validity masks, bit-identical to per-pair
    /// [`eval_theta`] by construction — then run the pair loop over
    /// flat slices, gathering rows only for the (rare) predicates that
    /// refused to vectorize. Returns `None` when no predicate
    /// vectorized (the scalar loop is then no slower).
    fn visit_nested_vectorized(
        &self,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        visit: &mut dyn FnMut(u32, u32) -> bool,
    ) -> Option<bool> {
        let mut typed: Vec<TypedPred> = Vec::with_capacity(self.preds.len());
        let mut slow: Vec<&FlatPred> = Vec::new();
        for p in &self.preds {
            let l_vals: Vec<&Value> = lefts.iter().map(|t| t.get(p.l_col)).collect();
            let r_vals: Vec<&Value> = rights.iter().map(|t| t.get(p.r_col)).collect();
            match TypedPred::prepare(&l_vals, p.l_off, p.op, &r_vals, p.r_off) {
                Some(tp) => typed.push(tp),
                None => slow.push(p),
            }
        }
        if typed.is_empty() {
            return None;
        }
        for (li, l) in lefts.iter().enumerate() {
            'pair: for (ri, r) in rights.iter().enumerate() {
                for tp in &typed {
                    if !tp.holds(li, ri) {
                        continue 'pair;
                    }
                }
                for p in &slow {
                    if !p.holds(l, r) {
                        continue 'pair;
                    }
                }
                for &(ls, rs, w) in &self.shared {
                    if l.values()[ls..ls + w] != r.values()[rs..rs + w] {
                        continue 'pair;
                    }
                }
                if !visit(li as u32, ri as u32) {
                    return Some(false);
                }
            }
        }
        Some(true)
    }

    fn join_nested(&self, lefts: &[&Tuple], rights: &[&Tuple], pairs: &mut Vec<(u32, u32)>) {
        let _ = self.visit_nested(lefts, rights, &mut |li, ri| {
            pairs.push((li, ri));
            true
        });
    }

    /// Equality-key hashes for a whole bag of rows, built column-major:
    /// one pass per key column folds that column's [`key_bits`] into
    /// every row's running hash — the columnar replacement for one
    /// SipHash per row per probe. Consistent with SQL equality,
    /// coarser than it — collisions are filtered by `matches`.
    fn key_hashes(rows: &[&Tuple], cols: impl Iterator<Item = usize>) -> Vec<u64> {
        let mut hashes = vec![HASH_SEED; rows.len()];
        for c in cols {
            for (h, row) in hashes.iter_mut().zip(rows) {
                *h = hash_mix(*h, key_bits(row.get(c)));
            }
        }
        hashes
    }

    fn join_hash(
        &self,
        key: &[(usize, usize)],
        lefts: &[&Tuple],
        rights: &[&Tuple],
        pairs: &mut Vec<(u32, u32)>,
    ) {
        // Build on the smaller side, probe with the larger.
        let build_left = lefts.len() <= rights.len();
        let (build, probe) = if build_left {
            (lefts, rights)
        } else {
            (rights, lefts)
        };
        let (build_hashes, probe_hashes) = if build_left {
            (
                Self::key_hashes(build, key.iter().map(|&(l, _)| l)),
                Self::key_hashes(probe, key.iter().map(|&(_, r)| r)),
            )
        } else {
            (
                Self::key_hashes(build, key.iter().map(|&(_, r)| r)),
                Self::key_hashes(probe, key.iter().map(|&(l, _)| l)),
            )
        };
        // Keys are already well-mixed 64-bit hashes: store them under
        // an identity hasher rather than paying a second hash per
        // build/probe row.
        let mut table: PreHashedMap =
            HashMap::with_capacity_and_hasher(build.len(), Default::default());
        for (bi, &h) in build_hashes.iter().enumerate() {
            table.entry(h).or_default().push(bi as u32);
        }
        for (pi, &h) in probe_hashes.iter().enumerate() {
            if let Some(bucket) = table.get(&h) {
                for &bi in bucket {
                    let (li, ri) = if build_left {
                        (bi, pi as u32)
                    } else {
                        (pi as u32, bi)
                    };
                    if self.matches(lefts[li as usize], rights[ri as usize]) {
                        pairs.push((li, ri));
                    }
                }
            }
        }
    }

    /// Sort a keyed index vector, first checking whether the keys are
    /// already in order — columnar inputs are frequently pre-sorted or
    /// clustered, and the O(n) check is cheap against the O(n log n)
    /// sort it skips. Ties may land in any order: the emitted pair
    /// *set* depends only on key values, and the final left-major pair
    /// sort erases walk order.
    fn sort_keys<K>(keys: &mut [(K, u32)], cmp: impl Fn(&K, &K) -> std::cmp::Ordering + Copy) {
        let sorted = keys
            .windows(2)
            .all(|w| cmp(&w[0].0, &w[1].0) != std::cmp::Ordering::Greater);
        if !sorted {
            keys.sort_unstable_by(|a, b| cmp(&a.0, &b.0));
        }
    }

    /// Sort-merge band join over typed key vectors. Returns `false`
    /// when an exactness guard trips (or the density gate rejects) and
    /// the caller must fall back to the nested loop.
    #[allow(clippy::too_many_arguments)]
    fn join_band(
        &self,
        (l_col, l_off): (usize, f64),
        (r_col, r_off): (usize, f64),
        op: ThetaOp,
        mode: BandMode,
        lefts: &[&Tuple],
        rights: &[&Tuple],
        pairs: &mut Vec<(u32, u32)>,
    ) -> bool {
        /// One side's key columns, split by type class in a single
        /// extraction pass. NULLs (and strings under offsets) never
        /// satisfy an inequality and are dropped here.
        struct SideKeys<'a> {
            ints: Vec<(i64, u32)>,
            doubles: Vec<(f64, u32)>,
            strs: Vec<(&'a str, u32)>,
            /// Any integer beyond ±2^53 (not exactly representable as
            /// f64)?
            big: bool,
        }
        fn extract<'a>(side: &[&'a Tuple], col: usize, sql_mode: bool) -> SideKeys<'a> {
            let mut keys = SideKeys {
                ints: Vec::new(),
                doubles: Vec::new(),
                strs: Vec::new(),
                big: false,
            };
            for (i, row) in side.iter().enumerate() {
                match row.get(col) {
                    Value::Int(v) => {
                        keys.big |= v.unsigned_abs() > (1u64 << 53);
                        keys.ints.push((*v, i as u32));
                    }
                    Value::Double(d) => keys.doubles.push((*d, i as u32)),
                    Value::Str(s) if sql_mode => keys.strs.push((s.as_ref(), i as u32)),
                    _ => {}
                }
            }
            keys
        }

        let sql_mode = matches!(mode, BandMode::SqlValue);
        let mut l = extract(lefts, l_col, sql_mode);
        let mut r = extract(rights, r_col, sql_mode);
        let cross = (lefts.len() as u64).saturating_mul(rights.len() as u64);

        if sql_mode && l.doubles.is_empty() && r.doubles.is_empty() {
            // All-integer numeric class: sort on exact i64 keys — the
            // very comparison sql_cmp performs for Int/Int, at any
            // magnitude, so the ±2^53 guard below never applies.
            Self::sort_keys(&mut l.ints, Ord::cmp);
            Self::sort_keys(&mut r.ints, Ord::cmp);
            Self::sort_keys(&mut l.strs, Ord::cmp);
            Self::sort_keys(&mut r.strs, Ord::cmp);
            let total = Self::band_count(&l.ints, &r.ints, op, Ord::cmp)
                + Self::band_count(&l.strs, &r.strs, op, Ord::cmp);
            if total.saturating_mul(8) > cross {
                return false;
            }
            Self::band_emit(&l.ints, &r.ints, op, Ord::cmp, pairs);
            Self::band_emit(&l.strs, &r.strs, op, Ord::cmp, pairs);
            return true;
        }
        if sql_mode && (l.big || r.big) {
            // Mixed Int/Double numeric class with integers beyond
            // ±2^53: sql_cmp compares Int/Int exactly but Int/Double
            // through f64 — no single sort key reproduces that order.
            // Bail out to the nested loop; exactness always wins.
            return false;
        }
        // f64 numeric class: fold integer keys in (the conversion is
        // value-exact here — big ints either bailed above or carry
        // offsets, where eval_theta itself works in f64) and apply
        // offsets. In SqlValue mode offsets are zero and doubles keep
        // their *raw* bits: sql_cmp orders by total_cmp, which
        // distinguishes -0.0 from +0.0 and NaN payloads — `d + 0.0`
        // would collapse them.
        for (keys, off) in [(&mut l, l_off), (&mut r, r_off)] {
            if !sql_mode {
                for k in keys.doubles.iter_mut() {
                    k.0 += off;
                }
            }
            let SideKeys { ints, doubles, .. } = keys;
            for &(v, i) in ints.iter() {
                doubles.push((v as f64 + off, i));
            }
        }
        Self::sort_keys(&mut l.doubles, f64::total_cmp);
        Self::sort_keys(&mut r.doubles, f64::total_cmp);
        Self::sort_keys(&mut l.strs, Ord::cmp);
        Self::sort_keys(&mut r.strs, Ord::cmp);
        // Density gate: count the matches with a cheap monotone boundary
        // walk before materialising anything. When the output is a
        // large fraction of the cross product, both algorithms are
        // output-bound but the band path additionally pays a pair sort
        // — the nested loop is the better engine there. The win the
        // band kernel exists for is the sparse regime, where it is
        // orders of magnitude ahead.
        let total = Self::band_count(&l.doubles, &r.doubles, op, f64::total_cmp)
            + Self::band_count(&l.strs, &r.strs, op, Ord::cmp);
        if total.saturating_mul(8) > cross {
            return false;
        }
        Self::band_emit(&l.doubles, &r.doubles, op, f64::total_cmp, pairs);
        if sql_mode {
            Self::band_emit(&l.strs, &r.strs, op, Ord::cmp, pairs);
        }
        true
    }

    /// Does `l op r` hold for the ordering of the two keys?
    fn band_holds(op: ThetaOp, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering;
        match op {
            ThetaOp::Lt => ord == Ordering::Less,
            ThetaOp::Le => ord != Ordering::Greater,
            ThetaOp::Ge => ord != Ordering::Less,
            ThetaOp::Gt => ord == Ordering::Greater,
            _ => unreachable!("band ops are inequalities"),
        }
    }

    /// Number of matching pairs between two key-sorted sides, via one
    /// monotone boundary walk — O(|L| + |R|).
    fn band_count<K>(
        lefts: &[(K, u32)],
        rights: &[(K, u32)],
        op: ThetaOp,
        cmp: impl Fn(&K, &K) -> std::cmp::Ordering + Copy,
    ) -> u64 {
        if lefts.is_empty() || rights.is_empty() {
            return 0;
        }
        let suffix = matches!(op, ThetaOp::Lt | ThetaOp::Le);
        let mut b = 0usize;
        let mut total = 0u64;
        for (lk, _) in lefts.iter() {
            if suffix {
                while b < rights.len() && !Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                total += (rights.len() - b) as u64;
            } else {
                while b < rights.len() && Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                total += b as u64;
            }
        }
        total
    }

    /// One type-class band scan over key-sorted sides: walk the lefts
    /// in key order sliding the right boundary monotonically, emitting
    /// the matching contiguous run per left row.
    fn band_emit<K>(
        lefts: &[(K, u32)],
        rights: &[(K, u32)],
        op: ThetaOp,
        cmp: impl Fn(&K, &K) -> std::cmp::Ordering + Copy,
        pairs: &mut Vec<(u32, u32)>,
    ) {
        if lefts.is_empty() || rights.is_empty() {
            return;
        }
        // For l op r with r's keys ascending, the matching right rows
        // form a suffix (Lt/Le) or prefix (Gt/Ge) whose boundary moves
        // monotonically as the left key grows.
        let suffix = matches!(op, ThetaOp::Lt | ThetaOp::Le);
        let mut b = 0usize;
        if suffix {
            for (lk, li) in lefts.iter() {
                while b < rights.len() && !Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                for (_, ri) in &rights[b..] {
                    pairs.push((*li, *ri));
                }
            }
        } else {
            for (lk, li) in lefts.iter() {
                while b < rights.len() && Self::band_holds(op, cmp(lk, &rights[b].0)) {
                    b += 1;
                }
                for (_, ri) in &rights[..b] {
                    pairs.push((*li, *ri));
                }
            }
        }
    }

    /// Zero-allocation positional band walk for already-sorted key
    /// accessors: when both sides are non-decreasing under `cmp`, the
    /// slice positions *are* the sorted order, so the monotone
    /// boundary walk of [`PairKernel::band_emit`] runs directly over
    /// them — no index-key vector, no sort, and the pairs come out
    /// left-major already. Returns `false` without emitting when
    /// either side is unsorted (caller falls back to the keyed sort
    /// path).
    #[allow(clippy::too_many_arguments)]
    fn band_emit_sorted<K>(
        ln: usize,
        rn: usize,
        lk: impl Fn(usize) -> K,
        rk: impl Fn(usize) -> K,
        op: ThetaOp,
        cmp: impl Fn(&K, &K) -> std::cmp::Ordering + Copy,
        pairs: &mut Vec<(u32, u32)>,
    ) -> bool {
        let sorted = |key: &dyn Fn(usize) -> K, n: usize| {
            (1..n).all(|i| cmp(&key(i - 1), &key(i)) != std::cmp::Ordering::Greater)
        };
        if !sorted(&lk, ln) || !sorted(&rk, rn) {
            return false;
        }
        let suffix = matches!(op, ThetaOp::Lt | ThetaOp::Le);
        let mut b = 0usize;
        for li in 0..ln {
            let k = lk(li);
            if suffix {
                while b < rn && !Self::band_holds(op, cmp(&k, &rk(b))) {
                    b += 1;
                }
                for ri in b..rn {
                    pairs.push((li as u32, ri as u32));
                }
            } else {
                while b < rn && Self::band_holds(op, cmp(&k, &rk(b))) {
                    b += 1;
                }
                for ri in 0..b {
                    pairs.push((li as u32, ri as u32));
                }
            }
        }
        true
    }

    /// Run this kernel directly over the two sides' typed key-column
    /// slices — the columnar fast path for callers whose relations
    /// carry a `mwtj_storage::Columns` backing (benches, parity
    /// harnesses): no tuple gather, no `Value` dispatch in the inner
    /// loop.
    ///
    /// Applicable when the compiled shape is exactly one predicate
    /// over the given key columns with no shared-relation merge
    /// constraints — the single-inequality band plan and the
    /// single-equality hash plan. The slices must be NULL-free (the
    /// contract under which `Column::as_i64`/`as_f64` hand them out)
    /// and are taken as *the* key columns; the kernel's compiled
    /// column indices are not consulted.
    ///
    /// Emits exactly the left-major `(left, right)` pairs
    /// [`PairKernel::join_into`] yields on the gathered rows and
    /// returns `true`; returns `false` (emitting nothing) when the
    /// kernel shape needs full rows and the caller must gather.
    pub fn join_key_slices(
        &self,
        left: KeySlice<'_>,
        right: KeySlice<'_>,
        pairs: &mut Vec<(u32, u32)>,
    ) -> bool {
        use std::cmp::Ordering;
        if !self.shared.is_empty() || self.preds.len() != 1 {
            return false;
        }
        if left.is_empty() || right.is_empty() {
            return true;
        }
        let base = pairs.len();
        match &self.plan {
            Plan::Band {
                l_off,
                r_off,
                op,
                mode,
                ..
            } => {
                let sql_mode = matches!(mode, BandMode::SqlValue);
                if let (KeySlice::I64(ls), KeySlice::I64(rs)) = (left, right) {
                    if sql_mode {
                        // All-integer class: exact i64 band at any
                        // magnitude, as in `join_band`. Value-clustered
                        // slices (the DFS-block regime) take the
                        // zero-allocation positional walk.
                        if Self::band_emit_sorted(
                            ls.len(),
                            rs.len(),
                            |i| ls[i],
                            |i| rs[i],
                            *op,
                            Ord::cmp,
                            pairs,
                        ) {
                            return true;
                        }
                        let mut lk = Self::index_keys(ls.iter().copied());
                        let mut rk = Self::index_keys(rs.iter().copied());
                        Self::sort_keys(&mut lk, Ord::cmp);
                        Self::sort_keys(&mut rk, Ord::cmp);
                        Self::band_emit(&lk, &rk, *op, Ord::cmp, pairs);
                        pairs[base..].sort_unstable();
                        return true;
                    }
                }
                // f64 class. Int-vs-Double (and offset) comparisons go
                // through f64 in eval_theta itself, so converting an
                // i64 slice is value-exact semantics even beyond ±2^53
                // — the only inexact combination, Int/Int under
                // sql_cmp, took the branch above. Raw doubles keep
                // their bits in sql mode (offsets are zero there).
                let (lo, ro) = (*l_off, *r_off);
                let lkey = |i: usize| match left {
                    KeySlice::I64(v) => v[i] as f64 + lo,
                    KeySlice::F64(v) if sql_mode => v[i],
                    KeySlice::F64(v) => v[i] + lo,
                };
                let rkey = |i: usize| match right {
                    KeySlice::I64(v) => v[i] as f64 + ro,
                    KeySlice::F64(v) if sql_mode => v[i],
                    KeySlice::F64(v) => v[i] + ro,
                };
                if Self::band_emit_sorted(
                    left.len(),
                    right.len(),
                    lkey,
                    rkey,
                    *op,
                    f64::total_cmp,
                    pairs,
                ) {
                    return true;
                }
                let keyed = |s: KeySlice<'_>, off: f64| match s {
                    KeySlice::I64(v) => Self::index_keys(v.iter().map(|&x| x as f64 + off)),
                    KeySlice::F64(v) if sql_mode => Self::index_keys(v.iter().copied()),
                    KeySlice::F64(v) => Self::index_keys(v.iter().map(|&x| x + off)),
                };
                let mut lk = keyed(left, *l_off);
                let mut rk = keyed(right, *r_off);
                Self::sort_keys(&mut lk, f64::total_cmp);
                Self::sort_keys(&mut rk, f64::total_cmp);
                // No density gate: its row-path fallback (the nested
                // loop) produces the identical pair set anyway, and
                // there are no rows here to fall back to.
                Self::band_emit(&lk, &rk, *op, f64::total_cmp, pairs);
            }
            Plan::Hash if self.eq_key.len() == 1 => {
                // The single predicate is the zero-offset equality the
                // key came from; over NULL-free typed slices SQL
                // equality is i64 equality (Int/Int) or total_cmp
                // equality through the f64 view (any Double involved).
                let eq = |li: usize, ri: usize| match (left, right) {
                    (KeySlice::I64(a), KeySlice::I64(b)) => a[li] == b[ri],
                    _ => left.get_f64(li).total_cmp(&right.get_f64(ri)) == Ordering::Equal,
                };
                let bits = |s: KeySlice<'_>, i: usize| match s {
                    KeySlice::I64(v) => (v[i] as f64).to_bits(),
                    KeySlice::F64(v) => v[i].to_bits(),
                };
                let build_left = left.len() <= right.len();
                let (b, p) = if build_left {
                    (left, right)
                } else {
                    (right, left)
                };
                let mut table: PreHashedMap =
                    HashMap::with_capacity_and_hasher(b.len(), Default::default());
                for bi in 0..b.len() {
                    table
                        .entry(hash_mix(HASH_SEED, bits(b, bi)))
                        .or_default()
                        .push(bi as u32);
                }
                for pi in 0..p.len() {
                    if let Some(bucket) = table.get(&hash_mix(HASH_SEED, bits(p, pi))) {
                        for &bi in bucket {
                            let (li, ri) = if build_left {
                                (bi, pi as u32)
                            } else {
                                (pi as u32, bi)
                            };
                            if eq(li as usize, ri as usize) {
                                pairs.push((li, ri));
                            }
                        }
                    }
                }
            }
            _ => return false,
        }
        pairs[base..].sort_unstable();
        true
    }

    /// Attach ascending `u32` indices to an iterator of keys.
    fn index_keys<K>(keys: impl Iterator<Item = K>) -> Vec<(K, u32)> {
        keys.enumerate().map(|(i, k)| (k, i as u32)).collect()
    }

    /// Assemble one output row from a matching pair — the compiled
    /// slice-copy form of [`IntermediateShape::assemble`].
    pub fn assemble(&self, l: &Tuple, r: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.out_arity);
        for &(from_left, start, len) in &self.segments {
            let src = if from_left { l.values() } else { r.values() };
            values.extend_from_slice(&src[start..start + len]);
        }
        Tuple::new(values)
    }
}

/// A borrowed, NULL-free, typed key column — the slice form
/// `mwtj_storage::Column::as_i64`/`as_f64` expose when a column has no
/// NULLs, and the input [`PairKernel::join_key_slices`] consumes.
#[derive(Debug, Clone, Copy)]
pub enum KeySlice<'a> {
    /// 64-bit integer keys.
    I64(&'a [i64]),
    /// 64-bit float keys.
    F64(&'a [f64]),
}

impl KeySlice<'_> {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            KeySlice::I64(s) => s.len(),
            KeySlice::F64(s) => s.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The f64 view of one key — the representation `sql_cmp` compares
    /// Int/Double pairs through.
    #[inline]
    fn get_f64(&self, i: usize) -> f64 {
        match self {
            KeySlice::I64(s) => s[i] as f64,
            KeySlice::F64(s) => s[i],
        }
    }
}

impl std::fmt::Debug for PairKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairKernel")
            .field("kind", &self.kind())
            .field("preds", &self.preds)
            .field("shared", &self.shared)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_query::{ColExpr, MultiwayQuery, QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Schema};

    fn two_rel_query(op: ThetaOp) -> MultiwayQuery {
        let s = |n: &str| Schema::from_pairs(n, &[("a", DataType::Int), ("b", DataType::Int)]);
        QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join("l", "a", op, "r", "a")
            .build()
            .unwrap()
    }

    fn compile_for(q: &MultiwayQuery) -> (PairKernel, PairKernel) {
        let left = IntermediateShape::base(q, 0);
        let right = IntermediateShape::base(q, 1);
        let out = IntermediateShape::union(q, &left, &right);
        let preds: Vec<CompiledPredicate> = q
            .compile()
            .unwrap()
            .per_condition
            .iter()
            .flat_map(|c| c.iter().copied())
            .collect();
        (
            PairKernel::compile(&left, &right, &out, &preds),
            PairKernel::compile_nested(&left, &right, &out, &preds),
        )
    }

    fn join_pairs(k: &PairKernel, lefts: &[Tuple], rights: &[Tuple]) -> Vec<(u32, u32)> {
        let l: Vec<&Tuple> = lefts.iter().collect();
        let r: Vec<&Tuple> = rights.iter().collect();
        let mut pairs = Vec::new();
        k.join_into(&l, &r, &mut pairs);
        pairs
    }

    #[test]
    fn selection_rules() {
        assert_eq!(
            compile_for(&two_rel_query(ThetaOp::Eq)).0.kind(),
            KernelKind::Hash
        );
        for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Ge, ThetaOp::Gt] {
            assert_eq!(compile_for(&two_rel_query(op)).0.kind(), KernelKind::Band);
        }
        assert_eq!(
            compile_for(&two_rel_query(ThetaOp::Ne)).0.kind(),
            KernelKind::Nested
        );
        // Eq + inequality: hash with residual.
        let s = |n: &str| Schema::from_pairs(n, &[("a", DataType::Int), ("b", DataType::Int)]);
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join("l", "a", ThetaOp::Eq, "r", "a")
            .join("l", "b", ThetaOp::Lt, "r", "b")
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Hash);
        // Two inequalities: nested.
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join("l", "a", ThetaOp::Lt, "r", "a")
            .join("l", "b", ThetaOp::Gt, "r", "b")
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Nested);
        // Offset equality is not hashable: nested.
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join_expr(
                ColExpr::col_plus("l", "a", 1.0),
                ThetaOp::Eq,
                ColExpr::col("r", "a"),
            )
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Nested);
        // Offset inequality stays a band.
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join_expr(
                ColExpr::col_plus("l", "a", 3.0),
                ThetaOp::Gt,
                ColExpr::col("r", "a"),
            )
            .build()
            .unwrap();
        assert_eq!(compile_for(&q).0.kind(), KernelKind::Band);
    }

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter().map(|&(a, b)| tuple![a, b]).collect()
    }

    #[test]
    fn kernels_agree_with_nested_and_emit_left_major() {
        let lefts = rows(&[(5, 1), (1, 2), (3, 3), (3, 4)]);
        let rights = rows(&[(3, 1), (2, 2), (5, 3), (1, 4), (3, 5)]);
        for op in ThetaOp::ALL {
            let q = two_rel_query(op);
            let (fast, slow) = compile_for(&q);
            let want = join_pairs(&slow, &lefts, &rights);
            let got = join_pairs(&fast, &lefts, &rights);
            assert_eq!(got, want, "{op} ({:?})", fast.kind());
            // Left-major order: strictly increasing lexicographically.
            for w in got.windows(2) {
                assert!(w[0] < w[1], "{op} emitted out of order: {got:?}");
            }
        }
    }

    #[test]
    fn band_handles_nulls_strings_and_doubles() {
        let q = two_rel_query(ThetaOp::Lt);
        let (fast, slow) = compile_for(&q);
        assert_eq!(fast.kind(), KernelKind::Band);
        let lefts = vec![
            tuple![1, 0],
            Tuple::new(vec![Value::Null, Value::Int(0)]),
            Tuple::new(vec![Value::from("apple"), Value::Int(0)]),
            tuple![2.5, 0],
            Tuple::new(vec![Value::from("pear"), Value::Int(0)]),
        ];
        let rights = vec![
            tuple![2, 0],
            Tuple::new(vec![Value::from("banana"), Value::Int(0)]),
            Tuple::new(vec![Value::Null, Value::Int(0)]),
            tuple![2.25, 0],
        ];
        assert_eq!(
            join_pairs(&fast, &lefts, &rights),
            join_pairs(&slow, &lefts, &rights)
        );
    }

    /// sql_cmp orders by total_cmp, which distinguishes -0.0 < +0.0
    /// and NaN bit patterns; the band keys must too.
    #[test]
    fn band_distinguishes_negative_zero_and_nan() {
        let q = two_rel_query(ThetaOp::Lt);
        let (fast, slow) = compile_for(&q);
        assert_eq!(fast.kind(), KernelKind::Band);
        let specials = [0.0f64, -0.0, f64::NAN, -f64::NAN, f64::INFINITY];
        let lefts: Vec<Tuple> = specials.iter().map(|&d| tuple![d, 0]).collect();
        let rights: Vec<Tuple> = specials.iter().rev().map(|&d| tuple![d, 0]).collect();
        let got = join_pairs(&fast, &lefts, &rights);
        assert_eq!(got, join_pairs(&slow, &lefts, &rights));
        // -0.0 < +0.0 under total_cmp: the pair (left=-0.0, right=+0.0)
        // must be present (left idx 1, right idx 4).
        assert!(got.contains(&(1, 4)), "missing -0.0 < +0.0 pair: {got:?}");
    }

    #[test]
    fn band_exact_i64_class_handles_huge_ints() {
        let q = two_rel_query(ThetaOp::Lt);
        let (fast, slow) = compile_for(&q);
        let big = 1i64 << 53;
        // big and big+1 collapse to the same f64; sql_cmp orders them.
        // The all-integer class sorts on exact i64 keys, so the band
        // must distinguish them without bailing out.
        let lefts = rows(&[(big, 0), (big + 1, 0), (-big - 7, 0), (3, 0)]);
        let rights = rows(&[(big + 1, 0), (big, 0), (i64::MAX, 0), (i64::MIN, 0)]);
        assert_eq!(
            join_pairs(&fast, &lefts, &rights),
            join_pairs(&slow, &lefts, &rights)
        );
    }

    #[test]
    fn band_bails_out_on_huge_ints_mixed_with_doubles() {
        let q = two_rel_query(ThetaOp::Lt);
        let (fast, slow) = compile_for(&q);
        let big = 1i64 << 53;
        // A double in the class forces f64 keys, where big and big+1
        // collapse — the kernel must fall back to the nested loop.
        let lefts = vec![tuple![big, 0], tuple![big + 1, 0], tuple![2.5, 0]];
        let rights = vec![tuple![big + 1, 0], tuple![big, 0], tuple![9e15, 0]];
        assert_eq!(
            join_pairs(&fast, &lefts, &rights),
            join_pairs(&slow, &lefts, &rights)
        );
    }

    /// The vectorized nested loop must visit exactly the pairs the
    /// scalar per-pair loop visits, over a value mix that exercises
    /// every TypedPred class and the scalar fallback (strings, NULLs,
    /// huge ints mixed with doubles).
    #[test]
    fn vectorized_nested_agrees_with_scalar() {
        let s = |n: &str| Schema::from_pairs(n, &[("a", DataType::Int), ("b", DataType::Int)]);
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join("l", "a", ThetaOp::Lt, "r", "a")
            .join("l", "b", ThetaOp::Ne, "r", "b")
            .build()
            .unwrap();
        let (fast, _) = compile_for(&q);
        assert_eq!(fast.kind(), KernelKind::Nested);
        let val = |i: i64| -> Value {
            match i % 7 {
                0 => Value::Int(i),
                1 => Value::Double(i as f64 / 3.0),
                2 => Value::Null,
                3 => Value::from(format!("s{i}")),
                4 => Value::Int((1i64 << 53) + i),
                5 => Value::Double(-0.0),
                _ => Value::Double(f64::NAN),
            }
        };
        // 70 × 70 = 4900 candidate pairs ≥ VECTOR_MIN_PAIRS, so
        // visit_nested takes the vectorized path for `fast`.
        assert!(70 * 70 >= PairKernel::VECTOR_MIN_PAIRS as usize);
        let lefts: Vec<Tuple> = (0..70)
            .map(|i| Tuple::new(vec![val(i), val(i * 3 + 1)]))
            .collect();
        let rights: Vec<Tuple> = (0..70)
            .map(|i| Tuple::new(vec![val(i * 5 + 2), val(i * 2)]))
            .collect();
        let l: Vec<&Tuple> = lefts.iter().collect();
        let r: Vec<&Tuple> = rights.iter().collect();
        let mut got = Vec::new();
        assert!(fast.visit_nested(&l, &r, &mut |li, ri| {
            got.push((li, ri));
            true
        }));
        let mut want = Vec::new();
        assert!(fast.visit_nested_scalar(&l, &r, &mut |li, ri| {
            want.push((li, ri));
            true
        }));
        assert_eq!(got, want);
        assert!(!want.is_empty(), "degenerate test: no matching pairs");
    }

    /// `join_key_slices` must emit exactly the pairs `join_into` emits
    /// on the gathered rows, for every supported plan and slice-type
    /// combination.
    #[test]
    fn key_slices_match_gathered_rows() {
        let ints: Vec<i64> = vec![5, 1, 3, 1i64 << 53, (1i64 << 53) + 1, -9, 3];
        let doubles: Vec<f64> = vec![2.5, -0.0, 0.0, 1e300, -9.0, 3.0, 2.5];
        let int_rows = |v: &[i64]| -> Vec<Tuple> { v.iter().map(|&x| tuple![x, 0]).collect() };
        let dbl_rows = |v: &[f64]| -> Vec<Tuple> { v.iter().map(|&x| tuple![x, 0]).collect() };
        for op in [
            ThetaOp::Lt,
            ThetaOp::Le,
            ThetaOp::Eq,
            ThetaOp::Ge,
            ThetaOp::Gt,
        ] {
            let (fast, _) = compile_for(&two_rel_query(op));
            let cases: Vec<(KeySlice<'_>, KeySlice<'_>, Vec<Tuple>, Vec<Tuple>)> = vec![
                (
                    KeySlice::I64(&ints),
                    KeySlice::I64(&ints[1..]),
                    int_rows(&ints),
                    int_rows(&ints[1..]),
                ),
                (
                    KeySlice::F64(&doubles),
                    KeySlice::F64(&doubles[2..]),
                    dbl_rows(&doubles),
                    dbl_rows(&doubles[2..]),
                ),
                (
                    KeySlice::I64(&ints),
                    KeySlice::F64(&doubles),
                    int_rows(&ints),
                    dbl_rows(&doubles),
                ),
            ];
            for (ls, rs, lrows, rrows) in cases {
                let mut got = Vec::new();
                assert!(
                    fast.join_key_slices(ls, rs, &mut got),
                    "{op}: slice path refused {ls:?} × {rs:?}"
                );
                let want = join_pairs(&fast, &lrows, &rrows);
                assert_eq!(got, want, "{op} over {ls:?} × {rs:?}");
            }
        }
        // Offset band (Numeric mode): l.a + 3 > r.a.
        let s = |n: &str| Schema::from_pairs(n, &[("a", DataType::Int), ("b", DataType::Int)]);
        let q = QueryBuilder::new("q")
            .relation(s("l"))
            .relation(s("r"))
            .join_expr(
                ColExpr::col_plus("l", "a", 3.0),
                ThetaOp::Gt,
                ColExpr::col("r", "a"),
            )
            .build()
            .unwrap();
        let (band, _) = compile_for(&q);
        assert_eq!(band.kind(), KernelKind::Band);
        let mut got = Vec::new();
        assert!(band.join_key_slices(KeySlice::I64(&ints), KeySlice::F64(&doubles), &mut got));
        let want = join_pairs(&band, &int_rows(&ints), &dbl_rows(&doubles));
        assert_eq!(got, want);
        // Nested plans have no slice form.
        let (nested, _) = compile_for(&two_rel_query(ThetaOp::Ne));
        assert!(!nested.join_key_slices(KeySlice::I64(&ints), KeySlice::I64(&ints), &mut got));
    }

    #[test]
    fn hash_matches_mixed_int_double_keys() {
        let q = two_rel_query(ThetaOp::Eq);
        let (fast, slow) = compile_for(&q);
        let lefts = vec![tuple![7, 0], tuple![7.0, 1], tuple![8, 2]];
        let rights = vec![tuple![7.0, 0], tuple![7, 1], tuple![8.5, 2]];
        let got = join_pairs(&fast, &lefts, &rights);
        assert_eq!(got, join_pairs(&slow, &lefts, &rights));
        assert_eq!(got.len(), 4); // 2 lefts × 2 rights with key 7
    }

    #[test]
    fn assemble_matches_shape_assemble() {
        let q = two_rel_query(ThetaOp::Eq);
        let left = IntermediateShape::base(&q, 0);
        let right = IntermediateShape::base(&q, 1);
        let out = IntermediateShape::union(&q, &left, &right);
        let (fast, _) = compile_for(&q);
        let l = tuple![1, 2];
        let r = tuple![3, 4];
        assert_eq!(
            fast.assemble(&l, &r),
            out.assemble(&[(&left, &l), (&right, &r)])
        );
    }

    #[test]
    fn stack_pred_matches_compiled_predicate() {
        let p = CompiledPredicate {
            left_rel: 0,
            left_col: 1,
            left_off: 2.0,
            op: ThetaOp::Gt,
            right_rel: 1,
            right_col: 0,
            right_off: 0.0,
        };
        let sp = StackPred::from_compiled(&p);
        assert_eq!(sp.depth(), 1);
        let a = tuple![0, 4];
        let b = tuple![5];
        assert_eq!(sp.holds(&[&a, &b]), p.eval(&[&a, &b])); // 4+2 > 5
        let b2 = tuple![7];
        assert_eq!(sp.holds(&[&a, &b2]), p.eval(&[&a, &b2]));
    }
}
