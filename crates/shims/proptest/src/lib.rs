//! Minimal stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(..)]`), [`Strategy`]
//! with `prop_map`, [`Just`], [`any`], integer-range strategies,
//! `prop::collection::vec`, simple `"[chars]{m,n}"` string patterns,
//! `prop_oneof!`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the generated inputs left to the assertion message. Cases are
//! generated from a fixed seed, so failures reproduce exactly.

#![warn(missing_docs)]

use std::ops::Range;

/// Everything a test file needs, star-importable.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for the `case`-th case of a test run.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(case as u64 + 0x51ED),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T` (edge values included by raw-bit
/// generation for numerics).
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix extremes in: property tests on codecs care about them.
        match rng.below(16) {
            0 => i64::MIN,
            1 => i64::MAX,
            2 => 0,
            _ => rng.next_u64() as i64,
        }
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Raw bit patterns: hits NaNs, infinities, subnormals.
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(i32, i64, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/s0)
    (S0/s0, S1/s1)
    (S0/s0, S1/s1, S2/s2)
    (S0/s0, S1/s1, S2/s2, S3/s3)
}

/// String pattern strategy: supports `"[chars]{m,n}"` where `chars`
/// mixes literals and `a-z` ranges — the subset the workspace's tests
/// use. A bare literal string (no brackets) generates itself.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = match parse_char_class(self) {
            Some(parsed) => parsed,
            None => return (*self).to_string(),
        };
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                alphabet.extend(char::from_u32(c));
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo = reps.0.trim().parse().ok()?;
    let hi = reps.1.trim().parse().ok()?;
    if alphabet.is_empty() || lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategy choosing uniformly among type-erased alternatives (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from pre-boxed alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property (no shrinking in this shim: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $cfg; $($rest)*);
    };
    (@expand $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    // Bodies may `return Ok(())` to skip a case, as in
                    // real proptest; assertion failures panic instead of
                    // shrinking. The immediately-called closure gives
                    // `return` its target.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} rejected case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..10, n in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(n < 4);
        }

        #[test]
        fn vec_and_oneof_compose(v in prop::collection::vec(prop_oneof![Just(1i64), 5i64..9], 0..6)) {
            prop_assert!(v.len() < 6);
            for x in v {
                prop_assert!(x == 1 || (5..9).contains(&x));
            }
        }

        #[test]
        fn string_patterns_respect_class(s in "[a-c9 ]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '9' | ' ')));
        }
    }
}
