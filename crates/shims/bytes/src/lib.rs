//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits
//! with exactly the methods the storage codec uses. Backed by plain
//! `Vec<u8>`; "freezing" is a move, not a refcount.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Sequential reading from a byte source, advancing past what was read.
pub trait Buf {
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
}

impl Buf for &[u8] {
    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self[..8]);
        *self = &self[8..];
        f64::from_le_bytes(raw)
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Sequential writing into a byte sink.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_f64_le(1.5);
        w.put_slice(b"ab");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64_le(), 1.5);
        r.advance(1);
        assert_eq!(r, b"b");
    }
}
