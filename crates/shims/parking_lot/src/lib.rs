//! Minimal stand-in for `parking_lot`: wraps `std::sync` locks behind
//! the non-poisoning `parking_lot` API surface the workspace uses
//! (`lock`/`read`/`write` returning guards directly, `into_inner`
//! returning the value). A poisoned std lock is recovered rather than
//! propagated, matching `parking_lot`'s indifference to panics.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, blocking.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
