//! Minimal stand-in for `crossbeam::scope`, implemented over
//! `std::thread::scope` (stable since 1.63). Only the `scope`/`spawn`
//! pair the MapReduce engine uses is provided; the closure passed to
//! [`Scope::spawn`] receives the scope again, as crossbeam's does.
//!
//! Panic semantics differ slightly: where crossbeam returns `Err` from
//! `scope` when a child panicked, `std::thread::scope` resumes the
//! panic on join — callers that `.expect(..)` the result observe a
//! panic either way.

#![warn(missing_docs)]

use std::thread;

/// Spawn handle for scoped threads (mirrors `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; the closure receives the scope so it can
    /// spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Run `f` with a scope in which borrowing, scoped threads can be
/// spawned; returns once all of them have finished.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .expect("no panics");
        assert_eq!(counter.into_inner(), 8);
    }
}
