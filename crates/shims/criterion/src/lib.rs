//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements the `criterion_group!`/`criterion_main!` macros,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! and [`Bencher::iter`] with a simple best-of-N wall-clock timer that
//! prints one line per benchmark. No statistics, plots or CLI — just
//! enough to build and run the workspace's micro-benchmarks offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value/computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            samples: 20,
            measure: Duration::from_secs(1),
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
    measure: Duration,
}

impl BenchmarkGroup {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Set the number of samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark and print its best observed time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up + calibration: grow the iteration count until one
        // sample takes ≥ ~1/50 of the measurement budget.
        let floor = self.measure.max(Duration::from_millis(50)) / 50;
        loop {
            f(&mut b);
            if b.elapsed >= floor || b.iters >= 1 << 30 {
                break;
            }
            b.iters *= 4;
        }
        let mut best = b.elapsed;
        let deadline = Instant::now() + self.measure;
        for _ in 1..self.samples {
            if Instant::now() >= deadline {
                break;
            }
            f(&mut b);
            best = best.min(b.elapsed);
        }
        let per_iter = best.as_nanos() as f64 / b.iters as f64;
        println!("  {name}: {per_iter:.1} ns/iter ({} iters/sample)", b.iters);
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to measure reliably.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declare a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
