//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no network access, so this shim provides
//! exactly the API surface the workspace consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic,
//! `Send + Sync`-friendly plain data, and statistically good enough for
//! the workspace's seeded simulations and distribution-shape tests.
//! Streams differ from the real `rand` crate's `StdRng` (ChaCha12), so
//! seeds produce different — but equally stable — sequences.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Standard-distribution sampling for a type.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that can be sampled uniformly.
///
/// Implemented via blanket impls over [`SampleUniform`] (as the real
/// `rand` does) so type inference can flow *through* the range — e.g.
/// `let d: i64 = x + rng.gen_range(60..360)` unifies the untyped
/// literals with `i64` instead of defaulting to `i32`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Element types that uniform ranges can be built over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_between(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut dyn RngCore);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut dyn RngCore) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let k = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
