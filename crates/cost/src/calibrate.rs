//! Calibration of the system variables `p` and `q` (§6.2, Fig. 7(b)).
//!
//! The paper: "We compute p and q by studying an output controllable
//! self-join program over a synthetic data set." We do the same: run a
//! sweep of self-equi-joins whose output volume is analytically
//! controlled (via the distinct-key count), observe the engine's
//! simulated executions, and fit the constants of the `p`/`q` families
//! by least squares on a log grid. The *families* (log-growth spill
//! passes, log-fanout connection service) are system knowledge; the
//! constants are learned from observation — the model never reads the
//! engine's `HardwareProfile` spill/connection internals.

use mwtj_datagen::SyntheticGen;
use mwtj_join::{IntermediateShape, PairJob, PairStrategy};
use mwtj_mapreduce::{ClusterConfig, Dfs, Engine, InputSpec, JobMetrics};
use mwtj_query::{QueryBuilder, ThetaOp};
use mwtj_storage::Schema;

/// Fitted `p` and `q` parameter sets.
#[derive(Debug, Clone)]
pub struct CalibratedParams {
    /// Base spill cost, seconds per byte (`p0`).
    pub p0: f64,
    /// Volume at which spill passes start multiplying, bytes (`v0`).
    pub v0: f64,
    /// Base connection service cost, seconds (`q0`).
    pub q0: f64,
    /// Fan-out growth coefficient for `q`.
    pub q_fanout: f64,
    /// Volume growth coefficient for `q`.
    pub q_volume: f64,
    /// Observations the fit was made from: `(per-task output bytes,
    /// observed seconds-per-byte p̂, observed per-connection seconds
    /// q̂)` — the points of Fig. 7(b).
    pub observations: Vec<(f64, f64, f64)>,
}

impl Default for CalibratedParams {
    /// Uncalibrated defaults: plausible magnitudes for the paper's
    /// hardware; tests that need exact agreement run the calibrator.
    fn default() -> Self {
        CalibratedParams {
            p0: 1.0 / 14.69e6,
            v0: 512.0 * 1024.0 * 0.9,
            q0: 5e-6,
            q_fanout: 0.25,
            q_volume: 0.05,
            observations: Vec::new(),
        }
    }
}

impl CalibratedParams {
    /// The spill variable `p` (seconds per byte) at a per-task output
    /// volume.
    pub fn p(&self, task_output_bytes: f64) -> f64 {
        let passes = if task_output_bytes <= self.v0 {
            1.0
        } else {
            1.0 + (task_output_bytes / self.v0).log2().max(0.0)
        };
        self.p0 * passes
    }

    /// The connection variable `q` (seconds per connection) for a map
    /// task serving `n` reducers at a per-task output volume.
    pub fn q(&self, n: u32, task_output_bytes: f64) -> f64 {
        let vol_factor = 1.0 + (task_output_bytes / 1e6).max(0.0).sqrt() * self.q_volume;
        self.q0 * (1.0 + (n as f64).ln().max(0.0) * self.q_fanout) * vol_factor
    }
}

/// Runs the calibration sweep and produces [`CalibratedParams`].
pub struct Calibrator {
    /// Cluster to calibrate against.
    pub config: ClusterConfig,
    /// Input rows per calibration run.
    pub rows: usize,
    /// Distinct-key counts swept (each sets an output volume).
    pub key_counts: Vec<usize>,
    /// Reducer counts swept (to expose `q`'s fan-out term).
    pub reducer_counts: Vec<u32>,
}

impl Calibrator {
    /// A default sweep sized for sub-second calibration.
    pub fn quick(config: ClusterConfig) -> Self {
        Calibrator {
            config,
            rows: 4_000,
            key_counts: vec![4_000, 1_000, 250, 60],
            reducer_counts: vec![2, 8, 32],
        }
    }

    /// Run one observed self-join and return its metrics.
    fn observe(&self, keys: usize, reducers: u32) -> JobMetrics {
        let gen = SyntheticGen::default();
        let rel = gen.uniform_keys("cal", self.rows, keys);
        let dfs = Dfs::new();
        dfs.put_relation("cal", &rel, &self.config);
        let schema_l = clone_named(rel.schema(), "l");
        let schema_r = clone_named(rel.schema(), "r");
        let q = QueryBuilder::new("calib")
            .relation(schema_l)
            .relation(schema_r)
            .join("l", "k", ThetaOp::Eq, "r", "k")
            .build()
            .expect("calibration query");
        let compiled = q.compile().expect("compile");
        let preds: Vec<_> = compiled
            .per_condition
            .iter()
            .flat_map(|c| c.iter().copied())
            .collect();
        let job = PairJob::new(
            format!("cal_k{keys}_n{reducers}"),
            &q,
            IntermediateShape::base(&q, 0),
            IntermediateShape::base(&q, 1),
            preds,
            PairStrategy::EquiHash,
            (rel.len() as u64, rel.len() as u64),
            reducers,
        );
        let engine = Engine::new(self.config.clone(), dfs);
        engine
            .run(
                &job,
                &[InputSpec::new("cal", 0), InputSpec::new("cal", 1)],
                self.config.processing_units,
                job.reducers(),
                None,
            )
            .metrics
    }

    /// Run the sweep and fit.
    pub fn calibrate(&self) -> CalibratedParams {
        let mut obs = Vec::new();
        for &keys in &self.key_counts {
            for &n in &self.reducer_counts {
                let m = self.observe(keys, n);
                // Invert the engine's accounting to observations:
                //   sim_map_end ≈ waves · (read + cpu + p̂·out_task)
                //   shuffle gap ≈ c2·out_task/n + q̂·n
                let mt = m.map_tasks.max(1) as f64;
                let units = m.units.max(1) as f64;
                let waves = (mt / units).ceil().max(1.0);
                let out_task = m.map_output_bytes as f64 / mt;
                let read = m.input_bytes as f64 / mt / self.config.hardware.disk_read_bps;
                let per_task = m.sim_map_end_secs / waves;
                let spill_secs = (per_task - read).max(1e-12);
                // cpu-per-record is small; fold it into p̂ like the
                // paper folds everything disk-ish into p.
                let p_hat = spill_secs / out_task.max(1.0);
                let gap = (m.sim_shuffle_end_secs - m.sim_map_end_secs).max(0.0);
                let net = self.config.hardware.c2() * out_task / m.reduce_tasks.max(1) as f64;
                let q_hat = ((gap - net).max(1e-9)) / m.reduce_tasks.max(1) as f64;
                obs.push((out_task, p_hat, q_hat, m.reduce_tasks));
            }
        }
        self.fit(obs)
    }

    /// Least-squares fit of the family constants on the observations.
    fn fit(&self, obs: Vec<(f64, f64, f64, u32)>) -> CalibratedParams {
        let mut best = CalibratedParams::default();
        let mut best_err = f64::INFINITY;
        // Grid-search p0 × v0 against observed p̂ (log-space residuals),
        // then fit q0 given q_fanout/q_volume grid.
        let p_floor = obs
            .iter()
            .map(|o| o.1)
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        for p0_mult in [0.5, 0.75, 1.0, 1.25, 1.5] {
            let p0 = p_floor * p0_mult;
            for v0 in [64e3, 128e3, 256e3, 460e3, 512e3, 1e6] {
                for q_fanout in [0.0, 0.1, 0.25, 0.5] {
                    for q_volume in [0.0, 0.05, 0.1] {
                        let cand = CalibratedParams {
                            p0,
                            v0,
                            q0: 1.0,
                            q_fanout,
                            q_volume,
                            observations: Vec::new(),
                        };
                        // Optimal q0 in closed form: scale factor
                        // minimizing Σ(q0·f_i − q̂_i)².
                        let (mut num, mut den) = (0.0, 0.0);
                        for &(v, _, q_hat, n) in &obs {
                            let f = cand.q(n, v); // with q0 = 1
                            num += f * q_hat;
                            den += f * f;
                        }
                        let q0 = if den > 0.0 { num / den } else { 1e-3 };
                        let mut err = 0.0;
                        for &(v, p_hat, q_hat, n) in &obs {
                            let pp = cand.p(v);
                            let qq = q0 * cand.q(n, v);
                            err += ((pp / p_hat).ln()).powi(2)
                                + ((qq / q_hat.max(1e-12)).max(1e-12).ln()).powi(2);
                        }
                        if err < best_err {
                            best_err = err;
                            best = CalibratedParams {
                                p0,
                                v0,
                                q0,
                                q_fanout,
                                q_volume,
                                observations: Vec::new(),
                            };
                        }
                    }
                }
            }
        }
        best.observations = obs.into_iter().map(|(v, p, q, _)| (v, p, q)).collect();
        best
    }
}

fn clone_named(schema: &Schema, name: &str) -> Schema {
    Schema::new(name, schema.fields().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_and_q_families_are_monotone() {
        let c = CalibratedParams::default();
        assert!(c.p(1e8) > c.p(1e3));
        assert!(c.q(64, 1e6) > c.q(2, 1e6));
        assert!(c.q(8, 1e9) >= c.q(8, 1e3));
    }

    #[test]
    fn calibration_recovers_plausible_constants() {
        let cal = Calibrator::quick(ClusterConfig::with_units(16));
        let fitted = cal.calibrate();
        // p0 should land within an order of magnitude of the inverse
        // write rate it is standing in for.
        let truth = 1.0 / 14.69e6;
        assert!(
            fitted.p0 > truth / 10.0 && fitted.p0 < truth * 10.0,
            "p0 = {} vs ~{truth}",
            fitted.p0
        );
        assert!(fitted.q0 > 0.0);
        assert!(!fitted.observations.is_empty());
    }

    #[test]
    fn fitted_params_predict_observations() {
        let cal = Calibrator::quick(ClusterConfig::with_units(16));
        let fitted = cal.calibrate();
        // Geometric-mean relative error of p across observations should
        // be modest (the family matches the engine's by construction).
        let mut log_err = 0.0;
        for &(v, p_hat, _) in &fitted.observations {
            log_err += (fitted.p(v) / p_hat).ln().abs();
        }
        log_err /= fitted.observations.len() as f64;
        assert!(log_err < 1.0, "avg |log error| = {log_err}");
    }
}
