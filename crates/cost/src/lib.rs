//! # mwtj-cost
//!
//! The paper's §4 cost model, split the way the paper splits it:
//!
//! * [`model`] — Equations 1–6: predicted execution time `T` of a
//!   single MRJ from input size, map-task count, output ratios α and β,
//!   reducer count `n`, available units, and the calibrated system
//!   variables `p` (spill) and `q` (connection service).
//! * [`calibrate`] — §6.2's methodology: run an output-controllable
//!   self-join sweep, observe execution, and fit the constants of the
//!   `p`/`q` families (Fig. 7(b)) so the model predicts *without*
//!   peeking at the engine's internals.
//! * [`kr`] — Equation 10: pick the reducer count `k_R` for a chain
//!   theta-join by minimising `Δ = λ·copy-cost + (1−λ)·work-per-reducer`
//!   with the paper's λ = 0.4, using the closed-form Hilbert
//!   replication `k_R^((d−1)/d)` per relation.
//! * [`group`] — §4.2: estimated makespan `C(T)` of a *set* of MRJs on
//!   `k_P` processing units — greedy malleable-task allotment standing
//!   in for Jansen's AFPTAS \[19\], exactly as the paper "adopts the
//!   methodology".
//! * [`estimate`] — statistics → model inputs: per-condition theta
//!   selectivities from sampled histograms, chain-job shuffle volumes
//!   from partition scores, output cardinalities under independence.

#![warn(missing_docs)]

pub mod calibrate;
pub mod estimate;
pub mod group;
pub mod kr;
pub mod model;

pub use calibrate::{CalibratedParams, Calibrator};
pub use estimate::JobEstimate;
pub use group::{schedule_malleable, MalleableJob, Schedule};
pub use kr::{choose_k_r, hilbert_replication_factor, KrChoice, LAMBDA};
pub use model::{CostModel, PredictedTime};
