//! §4.2: estimated makespan of a group of MRJs on `k_P` processing
//! units — scheduling independent malleable tasks.
//!
//! The paper adopts Jansen's AFPTAS \[19\] "methodology"; we implement
//! the standard practical counterpart: greedy allotment + LPT shelf
//! packing, which is what the (1+ε) schemes round to at the sizes the
//! paper schedules (|T| is single-digit). For |T| ≤ k_P the greedy
//! water-filling allotment is provably within 2× of optimal for
//! non-increasing speedup profiles, and exact when profiles are convex
//! in 1/units — which Eq. 6 profiles are to first order.

/// One malleable job: its predicted duration at every allotment
/// `1..=k_max` units.
#[derive(Debug, Clone)]
pub struct MalleableJob {
    /// Job label (for plan traces).
    pub name: String,
    /// `durations[u-1]` = predicted seconds with `u` units. Must be
    /// non-increasing (more units never hurt; enforced at construction
    /// by monotone envelope).
    pub durations: Vec<f64>,
}

impl MalleableJob {
    /// Build from a raw profile, enforcing the non-increasing envelope.
    pub fn new(name: impl Into<String>, mut durations: Vec<f64>) -> Self {
        assert!(!durations.is_empty());
        for i in 1..durations.len() {
            if durations[i] > durations[i - 1] {
                durations[i] = durations[i - 1];
            }
        }
        MalleableJob {
            name: name.into(),
            durations,
        }
    }

    /// Duration at `units` (clamped to the profile's range).
    pub fn at(&self, units: u32) -> f64 {
        let i = (units.max(1) as usize).min(self.durations.len()) - 1;
        self.durations[i]
    }

    /// Maximum useful allotment.
    pub fn max_units(&self) -> u32 {
        self.durations.len() as u32
    }
}

/// A computed schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Unit allotment per job, parallel to the input slice.
    pub allotments: Vec<u32>,
    /// Shelf assignment per job (jobs on the same shelf run
    /// concurrently; shelves run in sequence).
    pub shelves: Vec<usize>,
    /// Predicted duration of each shelf.
    pub shelf_secs: Vec<f64>,
    /// Predicted total makespan.
    pub makespan: f64,
}

/// Schedule `jobs` on `k_p` units: for every concurrency width
/// `w ∈ 1..=min(|jobs|, k_p)` build the candidate schedule that runs
/// `w` jobs at a time with `k_p/w` units each (LPT-packed into
/// shelves), then keep the best. `w = 1` is serial-at-full-width,
/// `w = |jobs|` is all-parallel; sweeping `w` is the practical
/// counterpart of the dual-approximation step in the (1+ε) schemes for
/// malleable tasks the paper cites \[19\].
pub fn schedule_malleable(jobs: &[MalleableJob], k_p: u32) -> Schedule {
    assert!(k_p >= 1);
    assert!(!jobs.is_empty());
    let n = jobs.len();
    let mut best: Option<Schedule> = None;
    for w in 1..=(n as u32).min(k_p) {
        let cand = schedule_for_width(jobs, k_p, w);
        if best.as_ref().is_none_or(|b| cand.makespan < b.makespan) {
            best = Some(cand);
        }
    }
    best.expect("at least one width candidate")
}

/// Build the width-`w` candidate: LPT order, shelves of at most `w`
/// jobs, units split evenly within a shelf (capped by each job's
/// useful maximum, spare re-granted greedily to the longest job).
fn schedule_for_width(jobs: &[MalleableJob], k_p: u32, w: u32) -> Schedule {
    let n = jobs.len();
    let mut order: Vec<usize> = (0..n).collect();
    // LPT by single-unit duration (a stable proxy for size).
    order.sort_by(|&a, &b| jobs[b].at(1).total_cmp(&jobs[a].at(1)));
    let mut allot = vec![0u32; n];
    let mut shelves = vec![0usize; n];
    let mut shelf_secs = Vec::new();
    for (si, shelf) in order.chunks(w as usize).enumerate() {
        // Even split, then greedy re-grant of spare capacity.
        let base = (k_p / shelf.len() as u32).max(1);
        let mut used = 0u32;
        for &i in shelf {
            allot[i] = base.min(jobs[i].max_units());
            used += allot[i];
            shelves[i] = si;
        }
        let mut spare = k_p.saturating_sub(used);
        while spare > 0 {
            let mut pick: Option<usize> = None;
            let mut worst = -1.0;
            for &i in shelf {
                if allot[i] >= jobs[i].max_units() {
                    continue;
                }
                let d = jobs[i].at(allot[i]);
                if d > worst {
                    worst = d;
                    pick = Some(i);
                }
            }
            match pick {
                Some(i) => allot[i] += 1,
                None => break,
            }
            spare -= 1;
        }
        let dur = shelf
            .iter()
            .map(|&i| jobs[i].at(allot[i]))
            .fold(0.0f64, f64::max);
        shelf_secs.push(dur);
    }
    let makespan = shelf_secs.iter().sum();
    Schedule {
        allotments: allot,
        shelves,
        shelf_secs,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perfectly parallel job: work / units.
    fn linear(name: &str, work: f64, max_units: u32) -> MalleableJob {
        MalleableJob::new(name, (1..=max_units).map(|u| work / u as f64).collect())
    }

    #[test]
    fn envelope_enforced() {
        let j = MalleableJob::new("x", vec![10.0, 12.0, 5.0]);
        assert_eq!(j.at(2), 10.0); // raised value clamped down
        assert_eq!(j.at(3), 5.0);
        assert_eq!(j.at(99), 5.0); // clamps to profile end
    }

    #[test]
    fn single_job_gets_everything_useful() {
        let j = linear("a", 100.0, 16);
        let s = schedule_malleable(&[j], 64);
        assert_eq!(s.allotments, vec![16]); // saturates at its max
        assert!((s.makespan - 100.0 / 16.0).abs() < 1e-9);
    }

    /// The paper's Fig. 4 example: jobs finishing in 5, 7, 9 time units
    /// with 4, 4, 8 reducers run concurrently when ≥16 units exist.
    #[test]
    fn fig4_jobs_run_concurrently_with_enough_units() {
        let mk = |t: f64, u: u32| {
            MalleableJob::new(
                format!("t{t}"),
                (1..=u).map(|x| t * u as f64 / x as f64).collect(),
            )
        };
        let jobs = [mk(5.0, 4), mk(7.0, 4), mk(9.0, 8)];
        let s = schedule_malleable(&jobs, 16);
        assert_eq!(s.shelf_secs.len(), 1, "one shelf: {:?}", s.shelf_secs);
        assert!((s.makespan - 9.0).abs() < 1e-9);
    }

    #[test]
    fn width_sweep_beats_naive_parallel_split() {
        let jobs = [
            linear("a", 80.0, 8),
            linear("b", 80.0, 8),
            linear("c", 80.0, 8),
        ];
        // Perfectly-parallel equal jobs on 8 units: running them one at
        // a time at full width (3 × 10 s) beats the integer 3/3/2 split
        // (max 40 s). The width sweep must find that.
        let s = schedule_malleable(&jobs, 8);
        assert!(
            (s.makespan - 30.0).abs() < 1e-9,
            "makespan {} != 30",
            s.makespan
        );
    }

    #[test]
    fn scarce_units_force_shelves() {
        // 10 unit-width jobs on 3 units: at least ⌈10/3⌉ shelves.
        let jobs: Vec<MalleableJob> = (0..10).map(|i| linear(&format!("s{i}"), 12.0, 1)).collect();
        let s = schedule_malleable(&jobs, 3);
        assert!(s.shelf_secs.len() >= 4, "{:?}", s.shelf_secs);
        assert!((s.makespan - 4.0 * 12.0).abs() < 1e-9);
    }

    #[test]
    fn more_units_never_worse() {
        let jobs = [
            linear("a", 60.0, 32),
            linear("b", 45.0, 32),
            linear("c", 90.0, 32),
            linear("d", 10.0, 32),
        ];
        let mut prev = f64::INFINITY;
        for k in [2u32, 4, 8, 16, 32, 64, 96] {
            let s = schedule_malleable(&jobs, k);
            assert!(
                s.makespan <= prev * 1.0001,
                "k={k}: {} > {prev}",
                s.makespan
            );
            prev = s.makespan;
        }
    }

    #[test]
    fn more_jobs_than_units_still_schedules() {
        let jobs: Vec<MalleableJob> = (0..10).map(|i| linear(&format!("j{i}"), 10.0, 4)).collect();
        let s = schedule_malleable(&jobs, 3);
        // Lower bound: 10 jobs of ≥2.5 s of work on 3 units.
        assert!(s.makespan >= 10.0 * 2.5 / 3.0);
        assert_eq!(s.allotments.iter().filter(|&&a| a == 0).count(), 0);
        for (i, &sh) in s.shelves.iter().enumerate() {
            assert!(sh < s.shelf_secs.len(), "job {i} shelf out of range");
        }
    }
}
