//! Equations 1–6: single-MRJ execution time prediction.

use crate::calibrate::CalibratedParams;
use mwtj_mapreduce::ClusterConfig;

/// Predicted phase times for one MRJ (all in simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedTime {
    /// Per-map-task time `t_M` (Eq. 1).
    pub t_m: f64,
    /// Map phase total `J_M` (Eq. 2).
    pub j_m: f64,
    /// Per-map copy time `t_CP` (Eq. 3).
    pub t_cp: f64,
    /// Copy phase total `J_CP` (Eq. 4).
    pub j_cp: f64,
    /// Reduce phase `J_R` (Eq. 5), driven by the largest reducer input
    /// `S*_r`.
    pub j_r: f64,
    /// Total `T` (Eq. 6, with map/copy overlap).
    pub total: f64,
}

/// Inputs the model needs about a prospective job. Everything here is
/// *estimable before running* (from statistics); nothing comes from the
/// engine.
#[derive(Debug, Clone, Copy)]
pub struct JobShape {
    /// Total input size `S_I` in bytes.
    pub input_bytes: f64,
    /// Number of map tasks `m` (⌈S_I / block⌉ unless known).
    pub map_tasks: u32,
    /// Map output ratio α (shuffle bytes / input bytes).
    pub alpha: f64,
    /// Reduce output ratio β (output bytes / shuffle bytes).
    pub beta: f64,
    /// Number of reduce tasks `n`.
    pub reducers: u32,
    /// Processing units available to the job (map wave width `m'`).
    pub units: u32,
    /// Std-dev of reducer input sizes in bytes (the σ of §4.1's normal
    /// approximation); 0 for perfectly balanced partitions.
    pub sigma_bytes: f64,
    /// Reduce-side CPU seconds (candidate checking), total across
    /// reducers — the paper folds this into `p`; we expose it because
    /// theta-joins are candidate-heavy.
    pub reduce_cpu_secs: f64,
}

/// The cost model: cluster constants + calibrated `p`/`q`.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: ClusterConfig,
    params: CalibratedParams,
}

impl CostModel {
    /// Build from a cluster config and calibration results.
    pub fn new(config: ClusterConfig, params: CalibratedParams) -> Self {
        CostModel { config, params }
    }

    /// The calibrated parameters.
    pub fn params(&self) -> &CalibratedParams {
        &self.params
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Predict the execution time of a job (Equations 1–6).
    pub fn predict(&self, shape: &JobShape) -> PredictedTime {
        let hw = &self.config.hardware;
        let c1 = hw.c1();
        let c2 = hw.c2();
        let m = shape.map_tasks.max(1) as f64;
        let n = shape.reducers.max(1) as f64;
        let units = shape.units.max(1) as f64;
        let s_i = shape.input_bytes.max(0.0);
        let per_task_in = s_i / m;
        let per_task_out = shape.alpha * per_task_in;

        // Eq. 1: t_M = (C1 + p·α) · S_I/m  — read + spill per map task.
        let p = self.params.p(per_task_out);
        let t_m = (c1 + p * shape.alpha) * per_task_in;

        // Eq. 2: J_M = t_M · m/m'  (waves).
        let waves = (m / units).ceil().max(1.0);
        let j_m = t_m * waves;

        // Eq. 3: t_CP = C2·α·S_I/(n·m) + q·n.
        let q = self.params.q(shape.reducers.max(1), per_task_out);
        let t_cp = c2 * per_task_out / n + q * n;

        // Eq. 4: J_CP = m/m' · t_CP.
        let j_cp = waves * t_cp;

        // Eq. 5: S*_r = α·S_I/n + 3σ ; J_R = (p + β·C_w) · S*_r. We price
        // the β (output) term at the replicated DFS *write* rate — the
        // paper folds output cost into β·C1, but intermediates are
        // written through the replication pipeline, which our substrate
        // measures at the TestDFSIO write rate. Candidate-checking CPU
        // is charged on the straggler: per-reducer CPU scales with the
        // *square* of the input skew (group sizes enter candidate counts
        // quadratically in joins).
        let mean_r = (shape.alpha * s_i / n).max(1.0);
        let s_star = shape.alpha * s_i / n + 3.0 * shape.sigma_bytes;
        let skew = (s_star / mean_r).max(1.0);
        let c_w = 1.0 / self.config.hardware.disk_write_bps;
        let reduce_waves = (n / units).ceil().max(1.0);
        let j_r = (p + shape.beta * c_w) * s_star * reduce_waves
            + (shape.reduce_cpu_secs / n) * skew * skew * reduce_waves;

        // Eq. 6: overlap between map and copy — the slower of the two
        // pipelines hides the other's steady state.
        let total = if t_m >= t_cp {
            j_m + t_cp + j_r
        } else {
            t_m + j_cp + j_r
        };
        PredictedTime {
            t_m,
            j_m,
            t_cp,
            j_cp,
            j_r,
            total,
        }
    }

    /// Convenience: predicted total only.
    pub fn predict_total(&self, shape: &JobShape) -> f64 {
        self.predict(shape).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(ClusterConfig::default(), CalibratedParams::default())
    }

    fn base_shape() -> JobShape {
        JobShape {
            input_bytes: 64.0 * 1024.0 * 100.0,
            map_tasks: 100,
            alpha: 1.2,
            beta: 0.1,
            reducers: 8,
            units: 16,
            sigma_bytes: 0.0,
            reduce_cpu_secs: 0.0,
        }
    }

    #[test]
    fn more_input_takes_longer() {
        let m = model();
        let small = m.predict_total(&base_shape());
        let big = m.predict_total(&JobShape {
            input_bytes: base_shape().input_bytes * 10.0,
            map_tasks: 1000,
            ..base_shape()
        });
        assert!(big > small * 5.0, "{big} vs {small}");
    }

    #[test]
    fn fewer_units_never_faster() {
        let m = model();
        let mut prev = f64::INFINITY;
        for units in [1u32, 2, 4, 8, 16, 32] {
            let t = m.predict_total(&JobShape {
                units,
                ..base_shape()
            });
            assert!(t <= prev * 1.0001, "units={units}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn skew_increases_reduce_time() {
        let m = model();
        let balanced = m.predict(&base_shape());
        let skewed = m.predict(&JobShape {
            sigma_bytes: 1e6,
            ..base_shape()
        });
        assert!(skewed.j_r > balanced.j_r);
        assert!(skewed.total > balanced.total);
    }

    /// The paper's observation 1 (§3.1): more reducers is NOT always
    /// faster — the q·n term eventually dominates.
    #[test]
    fn reducer_count_has_interior_optimum() {
        let m = model();
        // A shuffle-heavy job large enough that splitting the reduce
        // input pays at first.
        let t_at = |n: u32| {
            m.predict_total(&JobShape {
                reducers: n,
                units: 1024,
                map_tasks: 1600,
                input_bytes: 100e6,
                alpha: 1.0,
                beta: 0.1,
                sigma_bytes: 0.0,
                reduce_cpu_secs: 0.0,
            })
        };
        let t2 = t_at(2);
        let t16 = t_at(16);
        let t512 = t_at(512);
        let t16384 = t_at(16_384);
        assert!(t16 < t2, "{t16} !< {t2}");
        assert!(t16384 > t512, "q·n should bite: {t16384} !> {t512}");
    }

    #[test]
    fn overlap_picks_dominating_phase() {
        let m = model();
        // Tiny α, few reducers: map-bound, so total ≈ J_M + t_CP + J_R.
        let map_bound = m.predict(&JobShape {
            alpha: 0.01,
            reducers: 2,
            ..base_shape()
        });
        assert!(map_bound.t_m >= map_bound.t_cp);
        assert!((map_bound.total - (map_bound.j_m + map_bound.t_cp + map_bound.j_r)).abs() < 1e-9);
        // Small map output fanned out to very many reducers: the q·n
        // connection service dominates the short map task — copy-bound
        // (the paper's Case 2 in Fig. 3).
        let copy_bound = m.predict(&JobShape {
            alpha: 0.05,
            reducers: 512,
            units: 512,
            ..base_shape()
        });
        assert!(copy_bound.t_cp >= copy_bound.t_m);
        assert!(
            (copy_bound.total - (copy_bound.t_m + copy_bound.j_cp + copy_bound.j_r)).abs() < 1e-9
        );
    }
}
