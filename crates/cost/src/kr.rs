//! Equation 10: choosing the reducer count `k_R` for a chain
//! theta-join.
//!
//! `Δ(k_R) = λ · copy-cost(k_R) + (1−λ) · work-per-reducer(k_R)` with
//! the paper's λ = 0.4 (§5.1 footnote: observed λ ∈ (0.38, 0.46)).
//!
//! The copy cost uses the closed-form Hilbert replication factor: a
//! curve segment of `N/k_R` cells is a compact d-dimensional region, so
//! each of the `k_R` components intersects `≈ (N/k_R)^(1/d)` stripes
//! per axis, giving `Score(k_R) ≈ Σ_i |R_i| · k_R^((d−1)/d)` — the
//! d-dimensional generalisation of 1-Bucket-Theta's `√k_R` duplication.

use mwtj_mapreduce::HardwareProfile;

/// The paper's λ (importance of network copy vs. reducer workload).
pub const LAMBDA: f64 = 0.4;

/// Closed-form per-tuple replication for a Hilbert partition of a
/// `d`-cube into `k_R` segments.
pub fn hilbert_replication_factor(d: usize, k_r: u32) -> f64 {
    (k_r as f64).powf((d as f64 - 1.0) / d as f64)
}

/// Result of the `k_R` search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrChoice {
    /// The chosen reducer count.
    pub k_r: u32,
    /// Δ at the optimum.
    pub delta: f64,
    /// The copy-cost component at the optimum (seconds).
    pub copy_cost: f64,
    /// The work component at the optimum (seconds).
    pub work_cost: f64,
}

/// Choose `k_R ∈ [1, k_max]` minimising Eq. 10 for a chain over
/// relations with the given cardinalities and average encoded row
/// width. Both Δ terms are converted to seconds so λ weighs
/// commensurable quantities: copies at the network byte rate, reducer
/// work at the per-candidate CPU rate.
///
/// `effective_candidates` is the estimated number of combinations the
/// reducers will actually examine across the whole job. The raw
/// hyper-cube volume `Π|R_i|` is an upper bound that early predicate
/// pruning slashes; callers pass the pruned estimate (see
/// [`effective_candidates`]).
pub fn choose_k_r(
    cardinalities: &[u64],
    avg_row_bytes: f64,
    effective_candidates: f64,
    hw: &HardwareProfile,
    k_max: u32,
    lambda: f64,
) -> KrChoice {
    assert!(!cardinalities.is_empty());
    assert!(k_max >= 1);
    let d = cardinalities.len();
    let tuples: f64 = cardinalities.iter().map(|&c| c as f64).sum();
    let mut best = KrChoice {
        k_r: 1,
        delta: f64::INFINITY,
        copy_cost: 0.0,
        work_cost: 0.0,
    };
    // Every copied byte is spilled map-side (≈ the DFS write rate) and
    // crosses the network; replication inflates both, so both belong in
    // the Δ copy term. Copies are produced by map tasks running k_max
    // wide, so their makespan contribution amortises over that width,
    // while reducer work only parallelises k wide — Δ compares
    // *makespan* contributions, which is what the schedule feels.
    let per_copy_byte = (hw.c2() + 1.0 / hw.disk_write_bps) / k_max.max(1) as f64;
    for k in 1..=k_max {
        let score = tuples * hilbert_replication_factor(d, k);
        let copy_cost = score * avg_row_bytes * per_copy_byte;
        let work_cost = effective_candidates / k as f64 * hw.cpu_per_candidate_secs;
        let delta = lambda * copy_cost + (1.0 - lambda) * work_cost;
        if delta < best.delta {
            best = KrChoice {
                k_r: k,
                delta,
                copy_cost,
                work_cost,
            };
        }
    }
    best
}

/// Heuristic estimate of the combinations a chain reducer examines
/// after depth-wise predicate pruning. Two regimes bound it:
///
/// * the first nesting level always enumerates the two largest
///   dimensions' cross product — pruning cannot start before one
///   comparison per pair;
/// * deeper levels are cut by compounding selectivities, modelled as
///   the geometric mean of the full hyper-cube volume and the output
///   cardinality.
pub fn effective_candidates(cardinalities: &[u64], out_rows: f64) -> f64 {
    let cells: f64 = cardinalities.iter().map(|&c| c as f64).product();
    let mut sorted: Vec<f64> = cardinalities.iter().map(|&c| c as f64).collect();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let first_level = sorted[0] * sorted.get(1).copied().unwrap_or(1.0);
    let pruned = (cells * out_rows.max(1.0)).sqrt();
    first_level.max(pruned).min(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_hilbert::SpacePartition;

    #[test]
    fn replication_factor_limits() {
        // d=1: no replication regardless of k.
        assert!((hilbert_replication_factor(1, 64) - 1.0).abs() < 1e-12);
        // d=2: sqrt(k), matching 1-Bucket-Theta.
        assert!((hilbert_replication_factor(2, 16) - 4.0).abs() < 1e-9);
        // d=3: k^(2/3).
        assert!((hilbert_replication_factor(3, 27) - 9.0).abs() < 1e-9);
    }

    /// The closed form should approximate the real partition's measured
    /// score within a small constant factor (segments are not perfect
    /// cubes, but the exponent is right).
    #[test]
    fn closed_form_tracks_measured_score() {
        let cards = [50_000u64, 50_000, 50_000];
        for k in [8u32, 27, 64] {
            let p = SpacePartition::hilbert(&cards, k);
            let measured = p.score();
            let tuples: f64 = cards.iter().map(|&c| c as f64).sum();
            let predicted = tuples * hilbert_replication_factor(3, p.num_components());
            let ratio = measured / predicted;
            assert!(
                (0.3..=3.5).contains(&ratio),
                "k={k}: measured {measured} vs predicted {predicted} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn interior_optimum_exists() {
        let hw = HardwareProfile::default();
        // Small pruned work against heavy per-copy cost (wide rows, few
        // units to amortise over): work pushes k up, copies push it
        // down; the optimum must be interior.
        let cards = [50_000u64, 50_000, 50_000];
        let cand = 5e9; // heavily pruned vs the 1.25e14 cube
        let choice = choose_k_r(&cards, 400.0, cand, &hw, 8_192, LAMBDA);
        assert!(
            choice.k_r > 1 && choice.k_r < 8_192,
            "k_r = {} not interior",
            choice.k_r
        );
        // Δ at the optimum beats the k=1 extreme.
        let k1 = choose_k_r(&cards, 400.0, cand, &hw, 1, LAMBDA);
        assert!(choice.delta <= k1.delta);
    }

    #[test]
    fn tiny_work_prefers_one_reducer() {
        let hw = HardwareProfile::default();
        // Minuscule work: any parallelism just costs copies.
        let choice = choose_k_r(&[10, 10], 1000.0, 100.0, &hw, 64, LAMBDA);
        assert_eq!(choice.k_r, 1);
    }

    #[test]
    fn lambda_shifts_the_optimum() {
        let hw = HardwareProfile::default();
        let cards = [100_000u64, 100_000, 100_000];
        let cand = 1e10;
        // λ→1: only copies matter, k_r collapses; λ→0: only work
        // matters, k_r maxes out.
        let copy_heavy = choose_k_r(&cards, 40.0, cand, &hw, 128, 0.99);
        let work_heavy = choose_k_r(&cards, 40.0, cand, &hw, 128, 0.01);
        assert!(copy_heavy.k_r < work_heavy.k_r);
        assert_eq!(work_heavy.k_r, 128);
    }

    #[test]
    fn effective_candidates_between_output_and_cube() {
        let cards = [1_000u64, 1_000, 1_000];
        let cube = 1e9;
        let e = effective_candidates(&cards, 1e3);
        assert!(e < cube && e > 1e3, "{e}");
        // Never exceeds the cube even for absurd output estimates.
        assert!(effective_candidates(&cards, 1e20) <= cube);
    }
}
