//! Statistics → cost-model inputs.
//!
//! Turns load-time [`RelationStats`] into [`JobShape`]s for candidate
//! MRJs: per-condition theta selectivities from sampled columns, chain
//! shuffle volumes from the Hilbert replication closed form, pairwise
//! shuffle volumes per strategy, and output-cardinality estimates under
//! the usual independence assumption. These estimates weight the edges
//! of `G'_JP` (the `w(e')` of Definition 3).

use crate::kr::hilbert_replication_factor;
use crate::model::JobShape;
use mwtj_mapreduce::ClusterConfig;
use mwtj_query::theta::ThetaOp;
use mwtj_query::MultiwayQuery;
use mwtj_storage::stats::estimate_theta_selectivity;
use mwtj_storage::RelationStats;

/// Estimated size/shape of one candidate MRJ plus its output, so
/// cascades can chain estimates (the output of step *i* is the input of
/// step *i+1*).
#[derive(Debug, Clone)]
pub struct JobEstimate {
    /// The model inputs for this job.
    pub shape: JobShape,
    /// Estimated output rows.
    pub out_rows: f64,
    /// Estimated output bytes.
    pub out_bytes: f64,
}

/// Per-relation inputs to an estimate: cardinality and total bytes
/// (base stats or a previous step's [`JobEstimate`] output).
#[derive(Debug, Clone, Copy)]
pub struct SideStats {
    /// Row count.
    pub rows: f64,
    /// Encoded bytes.
    pub bytes: f64,
}

impl SideStats {
    /// From load-time relation statistics.
    pub fn of(stats: &RelationStats) -> Self {
        SideStats {
            rows: stats.cardinality as f64,
            bytes: stats.bytes as f64,
        }
    }

    /// From a previous estimate's output.
    pub fn from_output(est: &JobEstimate) -> Self {
        SideStats {
            rows: est.out_rows,
            bytes: est.out_bytes,
        }
    }

    fn row_bytes(&self) -> f64 {
        if self.rows <= 0.0 {
            0.0
        } else {
            self.bytes / self.rows
        }
    }
}

/// Estimate the selectivity of condition `edge` of `query` using the
/// relations' sampled column statistics. Conjunctions multiply.
pub fn condition_selectivity(query: &MultiwayQuery, edge: usize, stats: &[&RelationStats]) -> f64 {
    let (_, _, preds) = &query.conditions[edge];
    let mut sel = 1.0;
    for p in preds {
        let li = query
            .relation_index(&p.left.relation)
            .expect("predicate relation");
        let ri = query
            .relation_index(&p.right.relation)
            .expect("predicate relation");
        let ls = stats[li].column(&p.left.column);
        let rs = stats[ri].column(&p.right.column);
        let s = match (ls, rs) {
            (Some(l), Some(r)) if !l.sample.is_empty() && !r.sample.is_empty() => {
                // Shift the left sample by the offsets so the empirical
                // count evaluates (a + lo) op (b + ro).
                let lo = p.left.offset;
                let ro = p.right.offset;
                let shifted: Vec<f64> = l.sample.iter().map(|&x| x + lo - ro).collect();
                estimate_theta_selectivity(&shifted, &r.sample, |ord| p.op.holds(ord))
            }
            // No numeric sample (string columns): fall back to the
            // classic 1/max(distinct) for equality, ½ for inequality.
            _ => default_selectivity(p.op, stats, li, ri, &p.left.column, &p.right.column),
        };
        sel *= s.clamp(0.0, 1.0);
    }
    sel
}

fn default_selectivity(
    op: ThetaOp,
    stats: &[&RelationStats],
    li: usize,
    ri: usize,
    lcol: &str,
    rcol: &str,
) -> f64 {
    let ld = stats[li]
        .column(lcol)
        .map(|c| c.distinct_estimate)
        .unwrap_or(1.0);
    let rd = stats[ri]
        .column(rcol)
        .map(|c| c.distinct_estimate)
        .unwrap_or(1.0);
    let eq = 1.0 / ld.max(rd).max(1.0);
    match op {
        ThetaOp::Eq => eq,
        ThetaOp::Ne => 1.0 - eq,
        _ => 0.5,
    }
}

/// Wire-format overhead per shuffled record (tag + aux), matching
/// `TaggedRecord::wire_bytes`.
const WIRE_OVERHEAD: f64 = 9.0;

/// Estimate a chain theta-join MRJ over `sides` (one per cube
/// dimension) with combined predicate selectivity `selectivity`,
/// `k_r` reducers and `units` processing units.
pub fn chain_job(
    config: &ClusterConfig,
    sides: &[SideStats],
    selectivity: f64,
    k_r: u32,
    units: u32,
) -> JobEstimate {
    let d = sides.len().max(1);
    let input_bytes: f64 = sides.iter().map(|s| s.bytes).sum();
    let repl = hilbert_replication_factor(d, k_r);
    let shuffle_bytes: f64 = sides
        .iter()
        .map(|s| s.rows * repl * (s.row_bytes() + WIRE_OVERHEAD))
        .sum();
    let out_rows = sides.iter().map(|s| s.rows).product::<f64>() * selectivity;
    let out_row_bytes: f64 = sides.iter().map(|s| s.row_bytes()).sum();
    let out_bytes = out_rows * out_row_bytes;
    let candidates: f64 = sides.iter().map(|s| s.rows).product();
    let shape = JobShape {
        input_bytes,
        map_tasks: map_tasks(config, input_bytes),
        alpha: ratio(shuffle_bytes, input_bytes),
        beta: ratio(out_bytes, shuffle_bytes),
        reducers: k_r,
        units,
        // Hilbert components are balanced by construction; allow a
        // small residual imbalance.
        sigma_bytes: 0.05 * shuffle_bytes / k_r.max(1) as f64,
        reduce_cpu_secs: candidates * config.hardware.cpu_per_candidate_secs,
    };
    JobEstimate {
        shape,
        out_rows,
        out_bytes,
    }
}

/// Estimate a hash-partitioned equi-join (or merge) MRJ.
pub fn pair_equi_job(
    config: &ClusterConfig,
    left: SideStats,
    right: SideStats,
    selectivity: f64,
    key_distinct: f64,
    reducers: u32,
    units: u32,
) -> JobEstimate {
    let input_bytes = left.bytes + right.bytes;
    let shuffle_bytes = left.rows * (left.row_bytes() + WIRE_OVERHEAD)
        + right.rows * (right.row_bytes() + WIRE_OVERHEAD);
    let out_rows = left.rows * right.rows * selectivity;
    let out_bytes = out_rows * (left.row_bytes() + right.row_bytes());
    // Per-key candidate work: (l/k)·(r/k) per key, k keys.
    let k = key_distinct.max(1.0);
    let candidates = (left.rows / k) * (right.rows / k) * k;
    // Hash skew: with fewer distinct keys than reducers, some reducers
    // idle while one carries a whole key.
    let mean_in = shuffle_bytes / reducers.max(1) as f64;
    let sigma = if k < reducers as f64 {
        mean_in * (reducers as f64 / k - 1.0).min(3.0)
    } else {
        0.15 * mean_in
    };
    let shape = JobShape {
        input_bytes,
        map_tasks: map_tasks(config, input_bytes),
        alpha: ratio(shuffle_bytes, input_bytes),
        beta: ratio(out_bytes, shuffle_bytes),
        reducers,
        units,
        sigma_bytes: sigma,
        reduce_cpu_secs: candidates * config.hardware.cpu_per_candidate_secs,
    };
    JobEstimate {
        shape,
        out_rows,
        out_bytes,
    }
}

/// Estimate a broadcast (fragment-replicate) theta-join MRJ: the
/// smaller side is copied to every reducer.
pub fn pair_broadcast_job(
    config: &ClusterConfig,
    left: SideStats,
    right: SideStats,
    selectivity: f64,
    reducers: u32,
    units: u32,
) -> JobEstimate {
    let (small, big) = if left.bytes <= right.bytes {
        (left, right)
    } else {
        (right, left)
    };
    let n = reducers.max(1) as f64;
    let input_bytes = left.bytes + right.bytes;
    let shuffle_bytes = small.rows * (small.row_bytes() + WIRE_OVERHEAD) * n
        + big.rows * (big.row_bytes() + WIRE_OVERHEAD);
    let out_rows = left.rows * right.rows * selectivity;
    let out_bytes = out_rows * (left.row_bytes() + right.row_bytes());
    let candidates = left.rows * right.rows; // full cross per partition union
    let shape = JobShape {
        input_bytes,
        map_tasks: map_tasks(config, input_bytes),
        alpha: ratio(shuffle_bytes, input_bytes),
        beta: ratio(out_bytes, shuffle_bytes),
        reducers,
        units,
        sigma_bytes: 0.1 * shuffle_bytes / n,
        reduce_cpu_secs: candidates * config.hardware.cpu_per_candidate_secs,
    };
    JobEstimate {
        shape,
        out_rows,
        out_bytes,
    }
}

/// Estimate a 1-Bucket-Theta pairwise MRJ (√k_R duplication per side).
pub fn pair_onebucket_job(
    config: &ClusterConfig,
    left: SideStats,
    right: SideStats,
    selectivity: f64,
    reducers: u32,
    units: u32,
) -> JobEstimate {
    let root = (reducers.max(1) as f64).sqrt();
    let input_bytes = left.bytes + right.bytes;
    let shuffle_bytes = left.rows * (left.row_bytes() + WIRE_OVERHEAD) * root
        + right.rows * (right.row_bytes() + WIRE_OVERHEAD) * root;
    let out_rows = left.rows * right.rows * selectivity;
    let out_bytes = out_rows * (left.row_bytes() + right.row_bytes());
    let candidates = left.rows * right.rows;
    let shape = JobShape {
        input_bytes,
        map_tasks: map_tasks(config, input_bytes),
        alpha: ratio(shuffle_bytes, input_bytes),
        beta: ratio(out_bytes, shuffle_bytes),
        reducers,
        units,
        sigma_bytes: 0.05 * shuffle_bytes / reducers.max(1) as f64,
        reduce_cpu_secs: candidates * config.hardware.cpu_per_candidate_secs,
    };
    JobEstimate {
        shape,
        out_rows,
        out_bytes,
    }
}

fn map_tasks(config: &ClusterConfig, input_bytes: f64) -> u32 {
    ((input_bytes / config.params.block_bytes as f64).ceil() as u32).max(1)
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_datagen::SyntheticGen;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats_for(n: usize, domain: i64) -> RelationStats {
        let rel = SyntheticGen::default().uniform_numeric("t", n, domain);
        let mut rng = StdRng::seed_from_u64(5);
        RelationStats::collect(&rel, 512, &mut rng)
    }

    #[test]
    fn selectivity_lt_uniform_is_half() {
        let s1 = stats_for(2_000, 1_000);
        let rel = SyntheticGen {
            seed: 9,
            ..Default::default()
        }
        .uniform_numeric("u", 2_000, 1_000);
        let mut rng = StdRng::seed_from_u64(6);
        let s2 = RelationStats::collect(&rel, 512, &mut rng);
        let q = QueryBuilder::new("q")
            .relation(SyntheticGen::schema("t"))
            .relation(SyntheticGen::schema("u"))
            .join("t", "k", ThetaOp::Lt, "u", "k")
            .build()
            .unwrap();
        let sel = condition_selectivity(&q, 0, &[&s1, &s2]);
        assert!((sel - 0.5).abs() < 0.07, "{sel}");
    }

    #[test]
    fn selectivity_conjunction_multiplies() {
        let s1 = stats_for(2_000, 1_000);
        let s2 = stats_for(2_000, 1_000);
        let q = QueryBuilder::new("q")
            .relation(SyntheticGen::schema("t"))
            .relation(SyntheticGen::schema("u"))
            .join("t", "k", ThetaOp::Lt, "u", "k")
            .and_expr(
                mwtj_query::ColExpr::col("t", "v"),
                ThetaOp::Lt,
                mwtj_query::ColExpr::col("u", "v"),
            )
            .build()
            .unwrap();
        let sel = condition_selectivity(&q, 0, &[&s1, &s2]);
        assert!(sel < 0.35, "conjunction should multiply: {sel}");
    }

    #[test]
    fn chain_alpha_grows_with_kr() {
        let cfg = ClusterConfig::default();
        let sides = [
            SideStats {
                rows: 10_000.0,
                bytes: 400_000.0,
            },
            SideStats {
                rows: 10_000.0,
                bytes: 400_000.0,
            },
            SideStats {
                rows: 10_000.0,
                bytes: 400_000.0,
            },
        ];
        let a1 = chain_job(&cfg, &sides, 0.01, 1, 16).shape.alpha;
        let a64 = chain_job(&cfg, &sides, 0.01, 64, 16).shape.alpha;
        assert!(a64 > a1 * 5.0, "{a64} vs {a1}");
    }

    #[test]
    fn broadcast_shuffle_beats_onebucket_only_for_tiny_sides() {
        let cfg = ClusterConfig::default();
        let small = SideStats {
            rows: 100.0,
            bytes: 4_000.0,
        };
        let big = SideStats {
            rows: 100_000.0,
            bytes: 4_000_000.0,
        };
        let even = SideStats {
            rows: 50_000.0,
            bytes: 2_000_000.0,
        };
        // Tiny × huge: broadcast cheaper.
        let b = pair_broadcast_job(&cfg, small, big, 0.1, 16, 16);
        let o = pair_onebucket_job(&cfg, small, big, 0.1, 16, 16);
        assert!(b.shape.alpha < o.shape.alpha);
        // Even × even: 1-bucket cheaper.
        let b2 = pair_broadcast_job(&cfg, even, even, 0.1, 16, 16);
        let o2 = pair_onebucket_job(&cfg, even, even, 0.1, 16, 16);
        assert!(o2.shape.alpha < b2.shape.alpha);
    }

    #[test]
    fn equi_skew_appears_when_keys_scarce() {
        let cfg = ClusterConfig::default();
        let side = SideStats {
            rows: 10_000.0,
            bytes: 400_000.0,
        };
        let skewed = pair_equi_job(&cfg, side, side, 0.001, 4.0, 32, 32);
        let smooth = pair_equi_job(&cfg, side, side, 0.001, 10_000.0, 32, 32);
        assert!(skewed.shape.sigma_bytes > smooth.shape.sigma_bytes * 2.0);
    }

    #[test]
    fn outputs_chain_into_next_step() {
        let cfg = ClusterConfig::default();
        let side = SideStats {
            rows: 1_000.0,
            bytes: 40_000.0,
        };
        let step1 = pair_equi_job(&cfg, side, side, 0.01, 100.0, 8, 8);
        let next = SideStats::from_output(&step1);
        assert!((next.rows - 10_000.0).abs() < 1e-6);
        assert!(next.bytes > 0.0);
    }
}
