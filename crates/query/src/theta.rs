//! Theta operators and atomic join predicates.

use mwtj_storage::{Tuple, Value};
use std::cmp::Ordering;
use std::fmt;

/// The six theta comparison operators of the paper
/// (θ ∈ {<, ≤, =, ≥, >, <>}).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThetaOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≥`
    Ge,
    /// `>`
    Gt,
    /// `≠` (the paper writes `<>`)
    Ne,
}

impl ThetaOp {
    /// All six operators.
    pub const ALL: [ThetaOp; 6] = [
        ThetaOp::Lt,
        ThetaOp::Le,
        ThetaOp::Eq,
        ThetaOp::Ge,
        ThetaOp::Gt,
        ThetaOp::Ne,
    ];

    /// Does the operator hold for the given comparison outcome?
    pub fn holds(&self, ord: Ordering) -> bool {
        match self {
            ThetaOp::Lt => ord == Ordering::Less,
            ThetaOp::Le => ord != Ordering::Greater,
            ThetaOp::Eq => ord == Ordering::Equal,
            ThetaOp::Ge => ord != Ordering::Less,
            ThetaOp::Gt => ord == Ordering::Greater,
            ThetaOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The operator with sides swapped: `a op b ⇔ b op.flip() a`.
    pub fn flip(&self) -> ThetaOp {
        match self {
            ThetaOp::Lt => ThetaOp::Gt,
            ThetaOp::Le => ThetaOp::Ge,
            ThetaOp::Eq => ThetaOp::Eq,
            ThetaOp::Ge => ThetaOp::Le,
            ThetaOp::Gt => ThetaOp::Lt,
            ThetaOp::Ne => ThetaOp::Ne,
        }
    }

    /// True for `=` — the only operator the plain hash-partition
    /// equi-join implementation can serve.
    pub fn is_equality(&self) -> bool {
        matches!(self, ThetaOp::Eq)
    }
}

impl fmt::Display for ThetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThetaOp::Lt => "<",
            ThetaOp::Le => "<=",
            ThetaOp::Eq => "=",
            ThetaOp::Ge => ">=",
            ThetaOp::Gt => ">",
            ThetaOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A `?` positional-parameter slot standing in for a column
/// expression's constant offset: the expression reads `rel.col + ?i`
/// (or `- ?i`). Slots are filled by
/// [`MultiwayQuery::bind_params`](crate::MultiwayQuery::bind_params);
/// a query with unbound slots refuses to compile, so an unbound
/// parameter can never reach execution silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRef {
    /// Zero-based positional index (text order in the SQL).
    pub index: u32,
    /// Whether the bound value is subtracted (`- ?`) instead of added.
    pub negated: bool,
}

impl fmt::Display for ParamRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}?{}", if self.negated { '-' } else { '+' }, self.index)
    }
}

/// A column reference plus an optional constant offset:
/// `relation.column + offset`. The offset expresses the paper's affine
/// predicates (`FI.at + L.l1 < FI'.dt`, `t1.d + 3 > t3.d`) without a
/// full expression tree. The offset position may instead hold a `?`
/// positional [`ParamRef`] slot (prepared statements), mutually
/// exclusive with a non-zero literal offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ColExpr {
    /// Relation name (must match a schema name in the query).
    pub relation: String,
    /// Column name within that relation.
    pub column: String,
    /// Constant added to the numeric view of the column (0 for plain
    /// references; must be 0 when comparing strings).
    pub offset: f64,
    /// Unbound positional parameter occupying the offset position
    /// (`None` for ordinary expressions).
    pub param: Option<ParamRef>,
}

impl ColExpr {
    /// Plain `rel.col` reference.
    pub fn col(relation: impl Into<String>, column: impl Into<String>) -> Self {
        ColExpr {
            relation: relation.into(),
            column: column.into(),
            offset: 0.0,
            param: None,
        }
    }

    /// `rel.col + offset`.
    pub fn col_plus(relation: impl Into<String>, column: impl Into<String>, offset: f64) -> Self {
        ColExpr {
            relation: relation.into(),
            column: column.into(),
            offset,
            param: None,
        }
    }

    /// `rel.col + ?i` (or `- ?i`): the offset is a positional
    /// parameter bound at execute time.
    pub fn col_param(
        relation: impl Into<String>,
        column: impl Into<String>,
        param: ParamRef,
    ) -> Self {
        ColExpr {
            relation: relation.into(),
            column: column.into(),
            offset: 0.0,
            param: Some(param),
        }
    }
}

impl fmt::Display for ColExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.param {
            write!(f, "{}.{}{}", self.relation, self.column, p)
        } else if self.offset == 0.0 {
            write!(f, "{}.{}", self.relation, self.column)
        } else if self.offset > 0.0 {
            write!(f, "{}.{}+{}", self.relation, self.column, self.offset)
        } else {
            write!(f, "{}.{}{}", self.relation, self.column, self.offset)
        }
    }
}

/// An atomic theta predicate between two relations:
/// `left θ right`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left side.
    pub left: ColExpr,
    /// Operator.
    pub op: ThetaOp,
    /// Right side.
    pub right: ColExpr,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(left: ColExpr, op: ThetaOp, right: ColExpr) -> Self {
        Predicate { left, op, right }
    }

    /// Evaluate against two values already projected from the two sides.
    /// NULLs and incomparable types yield `false` (SQL semantics).
    pub fn eval_values(&self, lhs: &Value, rhs: &Value) -> bool {
        eval_theta(lhs, self.left.offset, self.op, rhs, self.right.offset)
    }
}

/// Core theta evaluation: `(lhs + l_off) op (rhs + r_off)`, where offsets
/// apply to the numeric view. String comparisons require zero offsets.
pub fn eval_theta(lhs: &Value, l_off: f64, op: ThetaOp, rhs: &Value, r_off: f64) -> bool {
    if l_off == 0.0 && r_off == 0.0 {
        return lhs.sql_cmp(rhs).is_some_and(|o| op.holds(o));
    }
    match (lhs.as_numeric(), rhs.as_numeric()) {
        (Some(a), Some(b)) => op.holds((a + l_off).total_cmp(&(b + r_off))),
        _ => false,
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A compiled predicate: column names resolved to `(relation index,
/// column index)` so the reducer's innermost loop touches no strings.
#[derive(Debug, Clone, Copy)]
pub struct CompiledPredicate {
    /// Index of the left relation in the query's relation list.
    pub left_rel: usize,
    /// Column index within the left relation.
    pub left_col: usize,
    /// Left constant offset.
    pub left_off: f64,
    /// The operator.
    pub op: ThetaOp,
    /// Index of the right relation.
    pub right_rel: usize,
    /// Column index within the right relation.
    pub right_col: usize,
    /// Right constant offset.
    pub right_off: f64,
}

impl CompiledPredicate {
    /// Evaluate against one tuple per relation (indexed by relation
    /// position in the query).
    #[inline]
    pub fn eval(&self, tuples: &[&Tuple]) -> bool {
        let l = tuples[self.left_rel].get(self.left_col);
        let r = tuples[self.right_rel].get(self.right_col);
        eval_theta(l, self.left_off, self.op, r, self.right_off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_storage::tuple;

    #[test]
    fn operators_hold_correctly() {
        use Ordering::*;
        let table = [
            (ThetaOp::Lt, [true, false, false]),
            (ThetaOp::Le, [true, true, false]),
            (ThetaOp::Eq, [false, true, false]),
            (ThetaOp::Ge, [false, true, true]),
            (ThetaOp::Gt, [false, false, true]),
            (ThetaOp::Ne, [true, false, true]),
        ];
        for (op, expect) in table {
            for (ord, &e) in [Less, Equal, Greater].iter().zip(&expect) {
                assert_eq!(op.holds(*ord), e, "{op} {ord:?}");
            }
        }
    }

    #[test]
    fn flip_is_involutive_and_correct() {
        for op in ThetaOp::ALL {
            assert_eq!(op.flip().flip(), op);
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_eq!(op.holds(ord), op.flip().holds(ord.reverse()));
            }
        }
    }

    #[test]
    fn offsets_apply() {
        // 5 + 3 > 7  -> true ; 5 > 7 -> false
        assert!(eval_theta(
            &Value::Int(5),
            3.0,
            ThetaOp::Gt,
            &Value::Int(7),
            0.0
        ));
        assert!(!eval_theta(
            &Value::Int(5),
            0.0,
            ThetaOp::Gt,
            &Value::Int(7),
            0.0
        ));
    }

    #[test]
    fn nulls_and_strings_fail_closed() {
        assert!(!eval_theta(
            &Value::Null,
            0.0,
            ThetaOp::Eq,
            &Value::Null,
            0.0
        ));
        // String with offset is a type error -> false, not a panic.
        assert!(!eval_theta(
            &Value::from("a"),
            1.0,
            ThetaOp::Lt,
            &Value::from("b"),
            0.0
        ));
        // String without offsets compares fine.
        assert!(eval_theta(
            &Value::from("a"),
            0.0,
            ThetaOp::Lt,
            &Value::from("b"),
            0.0
        ));
    }

    #[test]
    fn compiled_predicate_eval() {
        let p = CompiledPredicate {
            left_rel: 0,
            left_col: 1,
            left_off: 0.0,
            op: ThetaOp::Le,
            right_rel: 1,
            right_col: 0,
            right_off: 0.0,
        };
        let a = tuple![9, 4];
        let b = tuple![5];
        assert!(p.eval(&[&a, &b])); // 4 <= 5
        let b2 = tuple![3];
        assert!(!p.eval(&[&a, &b2]));
    }

    #[test]
    fn display_round() {
        let p = Predicate::new(
            ColExpr::col_plus("t1", "d", 3.0),
            ThetaOp::Gt,
            ColExpr::col("t3", "d"),
        );
        assert_eq!(p.to_string(), "t1.d+3 > t3.d");
    }
}
