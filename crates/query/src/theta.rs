//! Theta operators and atomic join predicates.

use mwtj_storage::{Tuple, Value};
use std::cmp::Ordering;
use std::fmt;

/// The six theta comparison operators of the paper
/// (θ ∈ {<, ≤, =, ≥, >, <>}).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThetaOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≥`
    Ge,
    /// `>`
    Gt,
    /// `≠` (the paper writes `<>`)
    Ne,
}

impl ThetaOp {
    /// All six operators.
    pub const ALL: [ThetaOp; 6] = [
        ThetaOp::Lt,
        ThetaOp::Le,
        ThetaOp::Eq,
        ThetaOp::Ge,
        ThetaOp::Gt,
        ThetaOp::Ne,
    ];

    /// Does the operator hold for the given comparison outcome?
    pub fn holds(&self, ord: Ordering) -> bool {
        match self {
            ThetaOp::Lt => ord == Ordering::Less,
            ThetaOp::Le => ord != Ordering::Greater,
            ThetaOp::Eq => ord == Ordering::Equal,
            ThetaOp::Ge => ord != Ordering::Less,
            ThetaOp::Gt => ord == Ordering::Greater,
            ThetaOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The operator with sides swapped: `a op b ⇔ b op.flip() a`.
    pub fn flip(&self) -> ThetaOp {
        match self {
            ThetaOp::Lt => ThetaOp::Gt,
            ThetaOp::Le => ThetaOp::Ge,
            ThetaOp::Eq => ThetaOp::Eq,
            ThetaOp::Ge => ThetaOp::Le,
            ThetaOp::Gt => ThetaOp::Lt,
            ThetaOp::Ne => ThetaOp::Ne,
        }
    }

    /// True for `=` — the only operator the plain hash-partition
    /// equi-join implementation can serve.
    pub fn is_equality(&self) -> bool {
        matches!(self, ThetaOp::Eq)
    }
}

impl fmt::Display for ThetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThetaOp::Lt => "<",
            ThetaOp::Le => "<=",
            ThetaOp::Eq => "=",
            ThetaOp::Ge => ">=",
            ThetaOp::Gt => ">",
            ThetaOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A `?` positional-parameter slot standing in for a column
/// expression's constant offset: the expression reads `rel.col + ?i`
/// (or `- ?i`). Slots are filled by
/// [`MultiwayQuery::bind_params`](crate::MultiwayQuery::bind_params);
/// a query with unbound slots refuses to compile, so an unbound
/// parameter can never reach execution silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRef {
    /// Zero-based positional index (text order in the SQL).
    pub index: u32,
    /// Whether the bound value is subtracted (`- ?`) instead of added.
    pub negated: bool,
}

impl fmt::Display for ParamRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}?{}", if self.negated { '-' } else { '+' }, self.index)
    }
}

/// A column reference plus an optional constant offset:
/// `relation.column + offset`. The offset expresses the paper's affine
/// predicates (`FI.at + L.l1 < FI'.dt`, `t1.d + 3 > t3.d`) without a
/// full expression tree. The offset position may instead hold a `?`
/// positional [`ParamRef`] slot (prepared statements), mutually
/// exclusive with a non-zero literal offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ColExpr {
    /// Relation name (must match a schema name in the query).
    pub relation: String,
    /// Column name within that relation.
    pub column: String,
    /// Constant added to the numeric view of the column (0 for plain
    /// references; must be 0 when comparing strings).
    pub offset: f64,
    /// Unbound positional parameter occupying the offset position
    /// (`None` for ordinary expressions).
    pub param: Option<ParamRef>,
}

impl ColExpr {
    /// Plain `rel.col` reference.
    pub fn col(relation: impl Into<String>, column: impl Into<String>) -> Self {
        ColExpr {
            relation: relation.into(),
            column: column.into(),
            offset: 0.0,
            param: None,
        }
    }

    /// `rel.col + offset`.
    pub fn col_plus(relation: impl Into<String>, column: impl Into<String>, offset: f64) -> Self {
        ColExpr {
            relation: relation.into(),
            column: column.into(),
            offset,
            param: None,
        }
    }

    /// `rel.col + ?i` (or `- ?i`): the offset is a positional
    /// parameter bound at execute time.
    pub fn col_param(
        relation: impl Into<String>,
        column: impl Into<String>,
        param: ParamRef,
    ) -> Self {
        ColExpr {
            relation: relation.into(),
            column: column.into(),
            offset: 0.0,
            param: Some(param),
        }
    }
}

impl fmt::Display for ColExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.param {
            write!(f, "{}.{}{}", self.relation, self.column, p)
        } else if self.offset == 0.0 {
            write!(f, "{}.{}", self.relation, self.column)
        } else if self.offset > 0.0 {
            write!(f, "{}.{}+{}", self.relation, self.column, self.offset)
        } else {
            write!(f, "{}.{}{}", self.relation, self.column, self.offset)
        }
    }
}

/// An atomic theta predicate between two relations:
/// `left θ right`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left side.
    pub left: ColExpr,
    /// Operator.
    pub op: ThetaOp,
    /// Right side.
    pub right: ColExpr,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(left: ColExpr, op: ThetaOp, right: ColExpr) -> Self {
        Predicate { left, op, right }
    }

    /// Evaluate against two values already projected from the two sides.
    /// NULLs and incomparable types yield `false` (SQL semantics).
    pub fn eval_values(&self, lhs: &Value, rhs: &Value) -> bool {
        eval_theta(lhs, self.left.offset, self.op, rhs, self.right.offset)
    }
}

/// Core theta evaluation: `(lhs + l_off) op (rhs + r_off)`, where offsets
/// apply to the numeric view. String comparisons require zero offsets.
pub fn eval_theta(lhs: &Value, l_off: f64, op: ThetaOp, rhs: &Value, r_off: f64) -> bool {
    if l_off == 0.0 && r_off == 0.0 {
        return lhs.sql_cmp(rhs).is_some_and(|o| op.holds(o));
    }
    match (lhs.as_numeric(), rhs.as_numeric()) {
        (Some(a), Some(b)) => op.holds((a + l_off).total_cmp(&(b + r_off))),
        _ => false,
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// Conservative satisfiability of `(l + l_off) op (r + r_off)` over two
/// value ranges `[lmin, lmax]` × `[rmin, rmax]` (bounds ordered by
/// [`f64::total_cmp`], attained by actual values). Returns `false` only
/// when **no** pair of values in the ranges can satisfy the predicate
/// under [`eval_theta`]'s semantics; `true` means "maybe".
///
/// Zero offsets on both sides use the raw bounds (the `sql_cmp` path:
/// over exactly-representable numerics it coincides with `total_cmp`);
/// finite non-zero offsets shift the bounds (adding a finite constant is
/// monotone under `total_cmp` for non-NaN values). Non-finite offsets
/// disable pruning — `a + inf` collapses ordering in ways a range check
/// cannot track.
fn interval_may_satisfy(
    lmin: f64,
    lmax: f64,
    l_off: f64,
    op: ThetaOp,
    rmin: f64,
    rmax: f64,
    r_off: f64,
) -> bool {
    let (lmin, lmax, rmin, rmax) = if l_off == 0.0 && r_off == 0.0 {
        (lmin, lmax, rmin, rmax)
    } else if l_off.is_finite() && r_off.is_finite() {
        (lmin + l_off, lmax + l_off, rmin + r_off, rmax + r_off)
    } else {
        return true;
    };
    match op {
        ThetaOp::Lt => lmin.total_cmp(&rmax) == Ordering::Less,
        ThetaOp::Le => lmin.total_cmp(&rmax) != Ordering::Greater,
        ThetaOp::Gt => lmax.total_cmp(&rmin) == Ordering::Greater,
        ThetaOp::Ge => lmax.total_cmp(&rmin) != Ordering::Less,
        ThetaOp::Eq => {
            lmin.total_cmp(&rmax) != Ordering::Greater && rmin.total_cmp(&lmax) != Ordering::Greater
        }
        // Unsatisfiable only when both ranges are the same single point.
        ThetaOp::Ne => {
            !(lmin.total_cmp(&lmax) == Ordering::Equal
                && rmin.total_cmp(&rmax) == Ordering::Equal
                && lmin.total_cmp(&rmin) == Ordering::Equal)
        }
    }
}

/// May any (left row, right row) pair drawn from blocks with column
/// zones `l` and `r` satisfy `(left + l_off) op (right + r_off)`?
///
/// `false` is a proof of emptiness (safe to skip the block pair);
/// `true` is merely "cannot rule it out". [`ZoneRange::Empty`] columns
/// hold only NULLs, which never satisfy a theta predicate;
/// [`ZoneRange::Unbounded`] columns never prune.
pub fn zones_may_satisfy(
    l: &mwtj_storage::ColumnZone,
    l_off: f64,
    op: ThetaOp,
    r: &mwtj_storage::ColumnZone,
    r_off: f64,
) -> bool {
    use mwtj_storage::ZoneRange;
    match (&l.range, &r.range) {
        (ZoneRange::Empty, _) | (_, ZoneRange::Empty) => false,
        (ZoneRange::Unbounded, _) | (_, ZoneRange::Unbounded) => true,
        (
            ZoneRange::Range {
                min: lmin,
                max: lmax,
            },
            ZoneRange::Range {
                min: rmin,
                max: rmax,
            },
        ) => interval_may_satisfy(*lmin, *lmax, l_off, op, *rmin, *rmax, r_off),
    }
}

/// May a single left value `v` satisfy `(v + v_off) op (right + z_off)`
/// against any right value from a block with column zone `z`? Used for
/// row-level skipping; for right-side rows call with `op.flip()` and
/// swapped offsets (`a op b ⇔ b flip(op) a`).
pub fn value_may_satisfy(
    v: &Value,
    v_off: f64,
    op: ThetaOp,
    z: &mwtj_storage::ColumnZone,
    z_off: f64,
) -> bool {
    use mwtj_storage::ZoneRange;
    let point = match v {
        // NULL never satisfies a theta predicate.
        Value::Null => return false,
        Value::Int(i) => {
            if i.unsigned_abs() > (1u64 << 53) {
                // Not exactly representable — never prune.
                return !matches!(z.range, ZoneRange::Empty);
            }
            *i as f64
        }
        Value::Double(d) => {
            if d.is_nan() {
                return !matches!(z.range, ZoneRange::Empty);
            }
            *d
        }
        // Strings only ever match Unbounded zones (ranged zones hold
        // exclusively numerics, which sql_cmp never matches to strings,
        // and offsets reject strings outright).
        Value::Str(_) => {
            return matches!(z.range, ZoneRange::Unbounded) && v_off == 0.0 && z_off == 0.0
        }
    };
    match &z.range {
        ZoneRange::Empty => false,
        ZoneRange::Unbounded => true,
        ZoneRange::Range { min, max } => {
            interval_may_satisfy(point, point, v_off, op, *min, *max, z_off)
        }
    }
}

/// A compiled predicate: column names resolved to `(relation index,
/// column index)` so the reducer's innermost loop touches no strings.
#[derive(Debug, Clone, Copy)]
pub struct CompiledPredicate {
    /// Index of the left relation in the query's relation list.
    pub left_rel: usize,
    /// Column index within the left relation.
    pub left_col: usize,
    /// Left constant offset.
    pub left_off: f64,
    /// The operator.
    pub op: ThetaOp,
    /// Index of the right relation.
    pub right_rel: usize,
    /// Column index within the right relation.
    pub right_col: usize,
    /// Right constant offset.
    pub right_off: f64,
}

impl CompiledPredicate {
    /// Evaluate against one tuple per relation (indexed by relation
    /// position in the query).
    #[inline]
    pub fn eval(&self, tuples: &[&Tuple]) -> bool {
        let l = tuples[self.left_rel].get(self.left_col);
        let r = tuples[self.right_rel].get(self.right_col);
        eval_theta(l, self.left_off, self.op, r, self.right_off)
    }
}

/// Typed key vectors for the two sides of one vectorized predicate.
#[derive(Debug)]
enum TypedKeys {
    /// Both sides all-integer (zero offsets): exact `i64` comparison,
    /// any magnitude — identical to `sql_cmp`'s Int/Int arm.
    I64(Vec<i64>, Vec<i64>),
    /// Numeric `f64` view (post-offset, or a mixed Int/Double class
    /// proven exact): compared with `total_cmp`, identical to
    /// [`eval_theta`]'s numeric paths.
    F64(Vec<f64>, Vec<f64>),
}

/// A theta predicate compiled against two *column vectors*: both sides
/// are classified and projected into typed key vectors once, and pair
/// evaluation then reads `&[i64]`/`&[f64]` slices instead of walking
/// tuple structs. [`TypedPred::prepare`] refuses (returns `None`) any
/// value mix whose vectorized comparison could diverge from
/// [`eval_theta`] — strings under zero offsets, and Int/Int pairings
/// beyond ±2⁵³ that would collapse in an `f64` key — so `holds` is
/// **bit-identical** to per-pair `eval_theta` whenever it runs.
#[derive(Debug)]
pub struct TypedPred {
    op: ThetaOp,
    keys: TypedKeys,
    /// Rows whose value cannot satisfy any theta (NULLs; strings under
    /// offsets). `None` = every row valid.
    l_valid: Option<Vec<bool>>,
    r_valid: Option<Vec<bool>>,
}

impl TypedPred {
    /// Classify and project the two sides. `None` means "evaluate this
    /// predicate per pair via [`eval_theta`]" — never wrong, only
    /// slower.
    pub fn prepare(
        l_vals: &[&Value],
        l_off: f64,
        op: ThetaOp,
        r_vals: &[&Value],
        r_off: f64,
    ) -> Option<TypedPred> {
        const EXACT: u64 = 1u64 << 53;
        if l_off != 0.0 || r_off != 0.0 {
            // Offset path: eval_theta takes the f64 numeric view and
            // adds the offset — any value mix vectorizes, with
            // strings/NULLs marked invalid.
            let project = |vals: &[&Value], off: f64| {
                let mut keys = Vec::with_capacity(vals.len());
                let mut valid = Vec::with_capacity(vals.len());
                let mut all = true;
                for v in vals {
                    match v.as_numeric() {
                        Some(x) => {
                            keys.push(x + off);
                            valid.push(true);
                        }
                        None => {
                            keys.push(0.0);
                            valid.push(false);
                            all = false;
                        }
                    }
                }
                (keys, if all { None } else { Some(valid) })
            };
            let (lk, lv) = project(l_vals, l_off);
            let (rk, rv) = project(r_vals, r_off);
            return Some(TypedPred {
                op,
                keys: TypedKeys::F64(lk, rk),
                l_valid: lv,
                r_valid: rv,
            });
        }
        // Zero offsets: the sql_cmp path. Classify both sides jointly.
        #[derive(Default)]
        struct Flags {
            has_int: bool,
            has_double: bool,
            has_str: bool,
            has_null: bool,
            any_big: bool,
        }
        let scan = |vals: &[&Value]| {
            let mut f = Flags::default();
            for v in vals {
                match v {
                    Value::Int(x) => {
                        f.has_int = true;
                        if x.unsigned_abs() > EXACT {
                            f.any_big = true;
                        }
                    }
                    Value::Double(_) => f.has_double = true,
                    Value::Str(_) => f.has_str = true,
                    Value::Null => f.has_null = true,
                }
            }
            f
        };
        let lf = scan(l_vals);
        let rf = scan(r_vals);
        if lf.has_str || rf.has_str {
            return None;
        }
        let valid_mask = |vals: &[&Value]| -> Option<Vec<bool>> {
            Some(vals.iter().map(|v| !v.is_null()).collect())
        };
        if !lf.has_double && !rf.has_double {
            // All-integer: exact i64 keys, no magnitude limit.
            let ints = |vals: &[&Value]| vals.iter().map(|v| v.as_int().unwrap_or(0)).collect();
            return Some(TypedPred {
                op,
                keys: TypedKeys::I64(ints(l_vals), ints(r_vals)),
                l_valid: lf.has_null.then(|| valid_mask(l_vals)).flatten(),
                r_valid: rf.has_null.then(|| valid_mask(r_vals)).flatten(),
            });
        }
        // Mixed numerics: an f64 key is exact for Int/Double pairings
        // (sql_cmp itself converts), but an Int/Int pairing beyond ±2⁵³
        // needs exact i64 comparison — refuse when both sides carry
        // ints and either side's ints exceed the exact range.
        if lf.has_int && rf.has_int && (lf.any_big || rf.any_big) {
            return None;
        }
        let nums = |vals: &[&Value]| vals.iter().map(|v| v.as_numeric().unwrap_or(0.0)).collect();
        Some(TypedPred {
            op,
            keys: TypedKeys::F64(nums(l_vals), nums(r_vals)),
            l_valid: lf.has_null.then(|| valid_mask(l_vals)).flatten(),
            r_valid: rf.has_null.then(|| valid_mask(r_vals)).flatten(),
        })
    }

    /// Does the predicate hold for pair `(li, ri)`? Bit-identical to
    /// `eval_theta` over the original values.
    #[inline]
    pub fn holds(&self, li: usize, ri: usize) -> bool {
        if let Some(v) = &self.l_valid {
            if !v[li] {
                return false;
            }
        }
        if let Some(v) = &self.r_valid {
            if !v[ri] {
                return false;
            }
        }
        match &self.keys {
            TypedKeys::I64(l, r) => self.op.holds(l[li].cmp(&r[ri])),
            TypedKeys::F64(l, r) => self.op.holds(l[li].total_cmp(&r[ri])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_storage::tuple;

    #[test]
    fn operators_hold_correctly() {
        use Ordering::*;
        let table = [
            (ThetaOp::Lt, [true, false, false]),
            (ThetaOp::Le, [true, true, false]),
            (ThetaOp::Eq, [false, true, false]),
            (ThetaOp::Ge, [false, true, true]),
            (ThetaOp::Gt, [false, false, true]),
            (ThetaOp::Ne, [true, false, true]),
        ];
        for (op, expect) in table {
            for (ord, &e) in [Less, Equal, Greater].iter().zip(&expect) {
                assert_eq!(op.holds(*ord), e, "{op} {ord:?}");
            }
        }
    }

    #[test]
    fn flip_is_involutive_and_correct() {
        for op in ThetaOp::ALL {
            assert_eq!(op.flip().flip(), op);
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_eq!(op.holds(ord), op.flip().holds(ord.reverse()));
            }
        }
    }

    #[test]
    fn offsets_apply() {
        // 5 + 3 > 7  -> true ; 5 > 7 -> false
        assert!(eval_theta(
            &Value::Int(5),
            3.0,
            ThetaOp::Gt,
            &Value::Int(7),
            0.0
        ));
        assert!(!eval_theta(
            &Value::Int(5),
            0.0,
            ThetaOp::Gt,
            &Value::Int(7),
            0.0
        ));
    }

    #[test]
    fn nulls_and_strings_fail_closed() {
        assert!(!eval_theta(
            &Value::Null,
            0.0,
            ThetaOp::Eq,
            &Value::Null,
            0.0
        ));
        // String with offset is a type error -> false, not a panic.
        assert!(!eval_theta(
            &Value::from("a"),
            1.0,
            ThetaOp::Lt,
            &Value::from("b"),
            0.0
        ));
        // String without offsets compares fine.
        assert!(eval_theta(
            &Value::from("a"),
            0.0,
            ThetaOp::Lt,
            &Value::from("b"),
            0.0
        ));
    }

    #[test]
    fn compiled_predicate_eval() {
        let p = CompiledPredicate {
            left_rel: 0,
            left_col: 1,
            left_off: 0.0,
            op: ThetaOp::Le,
            right_rel: 1,
            right_col: 0,
            right_off: 0.0,
        };
        let a = tuple![9, 4];
        let b = tuple![5];
        assert!(p.eval(&[&a, &b])); // 4 <= 5
        let b2 = tuple![3];
        assert!(!p.eval(&[&a, &b2]));
    }

    #[test]
    fn interval_satisfiability_matches_exhaustive_eval() {
        use mwtj_storage::{BlockZones, Tuple};
        // Small domains; brute-force: zones_may_satisfy must be true
        // whenever any value pair satisfies the predicate.
        let domain: Vec<i64> = vec![-3, -1, 0, 2, 5];
        let offs = [0.0, 0.0, 1.5, -2.0];
        for (lo, hi) in [(0usize, 2usize), (1, 3), (2, 4), (0, 4), (3, 3)] {
            for (rlo, rhi) in [(0usize, 1usize), (2, 4), (1, 3), (4, 4)] {
                let lrows: Vec<Tuple> = domain[lo..=hi].iter().map(|&v| tuple![v]).collect();
                let rrows: Vec<Tuple> = domain[rlo..=rhi].iter().map(|&v| tuple![v]).collect();
                let lz = BlockZones::collect(&lrows, 1);
                let rz = BlockZones::collect(&rrows, 1);
                for op in ThetaOp::ALL {
                    for w in offs.chunks(2) {
                        let (l_off, r_off) = (w[0], w[1]);
                        let any = lrows.iter().any(|l| {
                            rrows
                                .iter()
                                .any(|r| eval_theta(l.get(0), l_off, op, r.get(0), r_off))
                        });
                        let may = zones_may_satisfy(lz.column(0), l_off, op, rz.column(0), r_off);
                        assert!(
                            may || !any,
                            "unsound prune: {op} offs ({l_off},{r_off}) \
                             L={:?} R={:?}",
                            &domain[lo..=hi],
                            &domain[rlo..=rhi]
                        );
                        // Rows: every satisfied left value must survive
                        // the row-level check, and right rows the
                        // flipped one.
                        for l in &lrows {
                            let row_any = rrows
                                .iter()
                                .any(|r| eval_theta(l.get(0), l_off, op, r.get(0), r_off));
                            let row_may =
                                value_may_satisfy(l.get(0), l_off, op, rz.column(0), r_off);
                            assert!(row_may || !row_any, "unsound left-row prune");
                        }
                        for r in &rrows {
                            let row_any = lrows
                                .iter()
                                .any(|l| eval_theta(l.get(0), l_off, op, r.get(0), r_off));
                            let row_may =
                                value_may_satisfy(r.get(0), r_off, op.flip(), lz.column(0), l_off);
                            assert!(row_may || !row_any, "unsound right-row prune");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn disjoint_ranges_prune_equality_and_bands() {
        use mwtj_storage::{ColumnZone, ZoneRange};
        let z = |min: f64, max: f64| ColumnZone {
            range: ZoneRange::Range { min, max },
            nulls: 0,
        };
        // [0,10] vs [20,30]
        assert!(!zones_may_satisfy(
            &z(0.0, 10.0),
            0.0,
            ThetaOp::Eq,
            &z(20.0, 30.0),
            0.0
        ));
        assert!(!zones_may_satisfy(
            &z(0.0, 10.0),
            0.0,
            ThetaOp::Gt,
            &z(20.0, 30.0),
            0.0
        ));
        assert!(zones_may_satisfy(
            &z(0.0, 10.0),
            0.0,
            ThetaOp::Lt,
            &z(20.0, 30.0),
            0.0
        ));
        // A +15 left offset bridges the gap for equality.
        assert!(zones_may_satisfy(
            &z(0.0, 10.0),
            15.0,
            ThetaOp::Eq,
            &z(20.0, 30.0),
            0.0
        ));
        // Ne prunes only point-vs-same-point.
        assert!(!zones_may_satisfy(
            &z(5.0, 5.0),
            0.0,
            ThetaOp::Ne,
            &z(5.0, 5.0),
            0.0
        ));
        assert!(zones_may_satisfy(
            &z(5.0, 5.0),
            0.0,
            ThetaOp::Ne,
            &z(5.0, 6.0),
            0.0
        ));
    }

    #[test]
    fn empty_and_unbounded_zones() {
        use mwtj_storage::{ColumnZone, ZoneRange};
        let empty = ColumnZone {
            range: ZoneRange::Empty,
            nulls: 3,
        };
        let unb = ColumnZone {
            range: ZoneRange::Unbounded,
            nulls: 0,
        };
        let rng = ColumnZone {
            range: ZoneRange::Range { min: 0.0, max: 1.0 },
            nulls: 0,
        };
        for op in ThetaOp::ALL {
            assert!(!zones_may_satisfy(&empty, 0.0, op, &rng, 0.0));
            assert!(!zones_may_satisfy(&rng, 0.0, op, &empty, 0.0));
            assert!(zones_may_satisfy(&unb, 0.0, op, &rng, 0.0));
            assert!(!value_may_satisfy(&Value::Null, 0.0, op, &unb, 0.0));
            assert!(!value_may_satisfy(&Value::Int(0), 0.0, op, &empty, 0.0));
        }
        // Strings: only unbounded zones can hold matching strings.
        assert!(value_may_satisfy(
            &Value::from("x"),
            0.0,
            ThetaOp::Eq,
            &unb,
            0.0
        ));
        assert!(!value_may_satisfy(
            &Value::from("x"),
            0.0,
            ThetaOp::Eq,
            &rng,
            0.0
        ));
        // Non-finite offsets never prune ranged pairs.
        assert!(zones_may_satisfy(
            &rng,
            f64::INFINITY,
            ThetaOp::Eq,
            &rng,
            0.0
        ));
    }

    #[test]
    fn typed_pred_agrees_with_eval_theta() {
        let big = (1i64 << 53) + 1;
        let domain = vec![
            Value::Int(3),
            Value::Int(-7),
            Value::Int(big),
            Value::Int(i64::MIN),
            Value::Double(2.5),
            Value::Double(-0.0),
            Value::Double(0.0),
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
            Value::Null,
            Value::from("apple"),
        ];
        // Slices of the domain give different side classes (all-int,
        // mixed numeric, with/without NULLs and strings).
        let sides: Vec<Vec<&Value>> = vec![
            domain[0..2].iter().collect(), // small ints
            domain[0..4].iter().collect(), // ints incl. big
            domain[4..9].iter().collect(), // doubles
            domain[0..9].iter().collect(), // mixed numerics
            domain.iter().collect(),       // everything
            vec![&domain[9]],              // only NULL
            vec![],                        // empty
        ];
        let mut vectorized = 0;
        for l in &sides {
            for r in &sides {
                for op in ThetaOp::ALL {
                    for (lo, ro) in [(0.0, 0.0), (1.5, 0.0), (0.0, -2.0)] {
                        let Some(tp) = TypedPred::prepare(l, lo, op, r, ro) else {
                            continue;
                        };
                        vectorized += 1;
                        for (li, lv) in l.iter().enumerate() {
                            for (ri, rv) in r.iter().enumerate() {
                                assert_eq!(
                                    tp.holds(li, ri),
                                    eval_theta(lv, lo, op, rv, ro),
                                    "{lv} {op} {rv} offs ({lo},{ro})"
                                );
                            }
                        }
                    }
                }
            }
        }
        assert!(
            vectorized > 100,
            "vectorization barely engaged: {vectorized}"
        );
        // The unsound classes must be refused: strings at zero offset,
        // and big-int × double mixes where Int/Int pairs collapse.
        let strs: Vec<&Value> = vec![&domain[10]];
        assert!(TypedPred::prepare(&strs, 0.0, ThetaOp::Lt, &strs, 0.0).is_none());
        let big_mix: Vec<&Value> = vec![&domain[2], &domain[4]];
        assert!(TypedPred::prepare(&big_mix, 0.0, ThetaOp::Lt, &big_mix, 0.0).is_none());
    }

    #[test]
    fn display_round() {
        let p = Predicate::new(
            ColExpr::col_plus("t1", "d", 3.0),
            ThetaOp::Gt,
            ColExpr::col("t3", "d"),
        );
        assert_eq!(p.to_string(), "t1.d+3 > t3.d");
    }
}
