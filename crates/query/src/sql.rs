//! A SQL-subset parser for N-join queries.
//!
//! The paper presents its benchmark workload "in a SQL-like style"
//! (§6.3.1); this module parses exactly that dialect into a
//! [`MultiwayQuery`]:
//!
//! ```sql
//! SELECT t3.id, t1.bt
//! FROM table t1, table t2, table t3
//! WHERE t1.bt <= t2.bt AND t1.l >= t2.l
//!   AND t2.bsc = t3.bsc AND t2.d = t3.d
//!   AND t1.d + 3 > t3.d
//! ```
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT cols FROM rels WHERE conj
//! cols    := '*' | colref (',' colref)*
//! rels    := rel (',' rel)*
//! rel     := ident [ident]          -- "base alias" or just "alias"
//! conj    := cmp (AND cmp)*
//! cmp     := operand op operand
//! operand := colref [('+'|'-') (number | '?')]
//! colref  := ident '.' ident
//! op      := '<' | '<=' | '=' | '>=' | '>' | '!=' | '<>'
//! ```
//!
//! A `?` in the offset position is a *positional parameter* (prepared
//! statements): slots number left to right in text order, and the
//! resulting [`ParsedQuery`] is a template whose [`ParsedQuery::bind`]
//! produces an executable query per parameter vector.
//!
//! Every comparison must reference two *different* relations (join
//! predicates only — single-relation filters are outside the paper's
//! scope). Consecutive predicates over the same relation pair are
//! folded onto one join-graph edge, matching how the paper counts its
//! θ functions.

use crate::query::{MultiwayQuery, QueryBuilder};
use crate::theta::{ColExpr, ParamRef, ThetaOp};
use mwtj_storage::{Error, Result, Schema};

/// The first stage of the query lifecycle: a parsed SQL query (possibly
/// a `?`-parameterised template) plus the `FROM`-clause bookkeeping an
/// engine needs to wire instances to catalog entries.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The query, built against the instance aliases. When
    /// [`ParsedQuery::param_count`] is non-zero this is a *template*
    /// with unbound `?` slots — [`ParsedQuery::bind`] before executing.
    pub query: MultiwayQuery,
    /// `(alias, base)` per FROM entry, in clause order. For a bare
    /// `FROM calls` entry both are `"calls"`.
    pub instances: Vec<(String, String)>,
}

/// Former name of [`ParsedQuery`] (kept for source compatibility).
pub type ParsedSql = ParsedQuery;

impl ParsedQuery {
    /// Number of `?` positional parameters in the template (`0` for an
    /// ordinary query).
    pub fn param_count(&self) -> usize {
        self.query.param_count()
    }

    /// Bind the template's positional parameters, producing an
    /// executable [`ParsedQuery`] (errors on a count mismatch). A
    /// parameterless query binds with `&[]` and comes back unchanged.
    pub fn bind(&self, params: &[f64]) -> Result<ParsedQuery> {
        Ok(ParsedQuery {
            query: self.query.bind_params(params)?,
            instances: self.instances.clone(),
        })
    }

    /// Rewrite every FROM-clause instance to a *namespaced* internal
    /// name `{prefix}{alias}`, so concurrent queries can bind the same
    /// public alias to different bases without colliding in a shared
    /// catalog. Conditions and projections reference relations by
    /// index, so only the per-instance schema names change.
    ///
    /// Returns the rewritten query plus the `(internal, public)`
    /// rename pairs callers use to restore public names on output.
    pub fn namespaced(&self, prefix: &str) -> (ParsedQuery, Vec<(String, String)>) {
        let renames: Vec<(String, String)> = self
            .instances
            .iter()
            .map(|(alias, _)| (format!("{prefix}{alias}"), alias.clone()))
            .collect();
        let mut query = self.query.clone();
        for (schema, (internal, _)) in query.schemas.iter_mut().zip(&renames) {
            *schema = Schema::new(internal.clone(), schema.fields().to_vec());
        }
        // Predicates name relations by alias; rewrite them to match.
        let to_internal: std::collections::HashMap<&str, &str> = renames
            .iter()
            .map(|(internal, public)| (public.as_str(), internal.as_str()))
            .collect();
        for (_, _, preds) in &mut query.conditions {
            for p in preds {
                for side in [&mut p.left, &mut p.right] {
                    if let Some(internal) = to_internal.get(side.relation.as_str()) {
                        side.relation = (*internal).to_string();
                    }
                }
            }
        }
        let instances = self
            .instances
            .iter()
            .zip(&renames)
            .map(|((_, base), (internal, _))| (internal.clone(), base.clone()))
            .collect();
        (ParsedQuery { query, instances }, renames)
    }
}

/// Parse `sql` into a query. `schema_of` resolves a FROM-clause base
/// table name to its schema; each relation instance gets the schema's
/// columns under its alias.
pub fn parse_query(
    name: &str,
    sql: &str,
    schema_of: &dyn Fn(&str) -> Option<Schema>,
) -> Result<MultiwayQuery> {
    parse_sql(name, sql, schema_of).map(|p| p.query)
}

/// Like [`parse_query`], but also reports which base table each
/// FROM-clause instance refers to, so callers can register aliases.
pub fn parse_sql(
    name: &str,
    sql: &str,
    schema_of: &dyn Fn(&str) -> Option<Schema>,
) -> Result<ParsedQuery> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        sql,
        params: 0,
    };
    p.parse(name, schema_of)
}

/// A parsed SQL statement: a plain query, or an `EXPLAIN [ANALYZE]`
/// wrapper around one.
#[derive(Debug, Clone)]
pub enum Statement {
    /// An executable query.
    Select(ParsedQuery),
    /// `EXPLAIN <query>` (report the plan without executing) or
    /// `EXPLAIN ANALYZE <query>` (execute and report the profile).
    Explain {
        /// True for `EXPLAIN ANALYZE`.
        analyze: bool,
        /// The wrapped query.
        query: ParsedQuery,
    },
}

/// Parse a statement: an optional `EXPLAIN [ANALYZE]` prefix followed
/// by the [`parse_sql`] query grammar. `EXPLAIN` and `ANALYZE` are
/// keywords, so they cannot be used as table or alias names.
pub fn parse_statement(
    name: &str,
    sql: &str,
    schema_of: &dyn Fn(&str) -> Option<Schema>,
) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        sql,
        params: 0,
    };
    if matches!(p.peek(), Some(Tok::Keyword(Kw::Explain))) {
        p.next();
        let analyze = if matches!(p.peek(), Some(Tok::Keyword(Kw::Analyze))) {
            p.next();
            true
        } else {
            false
        };
        Ok(Statement::Explain {
            analyze,
            query: p.parse(name, schema_of)?,
        })
    } else {
        Ok(Statement::Select(p.parse(name, schema_of)?))
    }
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Question,
    Op(ThetaOp),
    Keyword(Kw),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kw {
    Select,
    From,
    Where,
    And,
    Explain,
    Analyze,
}

fn tokenize(sql: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = sql.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                out.push(Tok::Comma);
                chars.next();
            }
            '.' => {
                // Disambiguate "t1.id" (dot) from "0.5" (number) by the
                // previous token: after an ident it's a field access.
                if matches!(out.last(), Some(Tok::Ident(_))) {
                    out.push(Tok::Dot);
                    chars.next();
                } else {
                    out.push(lex_number(&mut chars, sql, i)?);
                }
            }
            '*' => {
                out.push(Tok::Star);
                chars.next();
            }
            '?' => {
                out.push(Tok::Question);
                chars.next();
            }
            '+' => {
                out.push(Tok::Plus);
                chars.next();
            }
            '-' => {
                out.push(Tok::Minus);
                chars.next();
            }
            '<' | '>' | '=' | '!' => {
                chars.next();
                let second = chars.peek().map(|&(_, c2)| c2);
                let op = match (c, second) {
                    ('<', Some('=')) => {
                        chars.next();
                        ThetaOp::Le
                    }
                    ('<', Some('>')) => {
                        chars.next();
                        ThetaOp::Ne
                    }
                    ('<', _) => ThetaOp::Lt,
                    ('>', Some('=')) => {
                        chars.next();
                        ThetaOp::Ge
                    }
                    ('>', _) => ThetaOp::Gt,
                    ('=', _) => ThetaOp::Eq,
                    ('!', Some('=')) => {
                        chars.next();
                        ThetaOp::Ne
                    }
                    _ => {
                        return Err(Error::TypeError {
                            detail: format!("stray `{c}` at byte {i} of SQL"),
                        })
                    }
                };
                out.push(Tok::Op(op));
            }
            c if c.is_ascii_digit() => {
                out.push(lex_number(&mut chars, sql, i)?);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        word.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kw = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Some(Kw::Select),
                    "FROM" => Some(Kw::From),
                    "WHERE" => Some(Kw::Where),
                    "AND" => Some(Kw::And),
                    "EXPLAIN" => Some(Kw::Explain),
                    "ANALYZE" => Some(Kw::Analyze),
                    _ => None,
                };
                out.push(match kw {
                    Some(k) => Tok::Keyword(k),
                    None => Tok::Ident(word),
                });
            }
            other => {
                return Err(Error::TypeError {
                    detail: format!("unexpected character `{other}` at byte {i} of SQL"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    sql: &str,
    start: usize,
) -> Result<Tok> {
    let mut end = start;
    while let Some(&(j, c2)) = chars.peek() {
        if c2.is_ascii_digit() || c2 == '.' {
            end = j + c2.len_utf8();
            chars.next();
        } else {
            break;
        }
    }
    sql[start..end]
        .parse::<f64>()
        .map(Tok::Number)
        .map_err(|e| Error::TypeError {
            detail: format!("bad number `{}`: {e}", &sql[start..end]),
        })
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    sql: &'a str,
    /// Next `?` positional-parameter slot (text order).
    params: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<()> {
        match self.next() {
            Some(Tok::Keyword(k)) if k == kw => Ok(()),
            other => Err(self.err(&format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(&format!("expected identifier, found {other:?}"))),
        }
    }

    fn err(&self, detail: &str) -> Error {
        Error::TypeError {
            detail: format!("SQL parse error: {detail} (query: `{}`)", self.sql),
        }
    }

    fn parse(
        &mut self,
        name: &str,
        schema_of: &dyn Fn(&str) -> Option<Schema>,
    ) -> Result<ParsedQuery> {
        self.expect_kw(Kw::Select)?;
        // Projection list (resolved after FROM).
        let mut proj: Vec<(String, String)> = Vec::new();
        let mut star = false;
        if matches!(self.peek(), Some(Tok::Star)) {
            self.next();
            star = true;
        } else {
            loop {
                let rel = self.expect_ident()?;
                match self.next() {
                    Some(Tok::Dot) => {}
                    other => return Err(self.err(&format!("expected `.`, found {other:?}"))),
                }
                let col = self.expect_ident()?;
                proj.push((rel, col));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
        }

        self.expect_kw(Kw::From)?;
        let mut builder = QueryBuilder::new(name);
        let mut instances: Vec<(String, String)> = Vec::new();
        loop {
            let mut first = self.expect_ident()?;
            // A dotted qualified name (`sys.queries`) folds into one
            // base name. Its *default* alias is the part after the dot
            // (`queries`), because a dotted alias could never be named
            // in a column reference (`rel.col` grammar).
            let mut default_alias = first.clone();
            if matches!(self.peek(), Some(Tok::Dot)) {
                self.next();
                let part = self.expect_ident()?;
                default_alias = part.clone();
                first = format!("{first}.{part}");
            }
            // "base alias" or bare "alias" (alias doubles as base).
            let (base, alias) = match self.peek() {
                Some(Tok::Ident(_)) => {
                    let alias = self.expect_ident()?;
                    (first, alias)
                }
                _ => (first, default_alias),
            };
            let schema =
                schema_of(&base).ok_or_else(|| Error::UnknownRelation { name: base.clone() })?;
            builder = builder.relation(Schema::new(&alias, schema.fields().to_vec()));
            instances.push((alias, base));
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.next();
            } else {
                break;
            }
        }

        self.expect_kw(Kw::Where)?;
        loop {
            let left = self.parse_operand()?;
            let op = match self.next() {
                Some(Tok::Op(op)) => op,
                other => return Err(self.err(&format!("expected operator, found {other:?}"))),
            };
            let right = self.parse_operand()?;
            // Fold consecutive predicates over the same pair onto one
            // edge: try and_expr first, fall back to a new edge.
            let folded = builder.clone().and_expr(left.clone(), op, right.clone());
            builder = if folded.clone().build().is_ok() {
                folded
            } else {
                builder.join_expr(left, op, right)
            };
            if matches!(self.peek(), Some(Tok::Keyword(Kw::And))) {
                self.next();
            } else {
                break;
            }
        }
        if self.pos != self.tokens.len() {
            return Err(self.err(&format!(
                "trailing tokens after WHERE clause: {:?}",
                &self.tokens[self.pos..]
            )));
        }

        if !star {
            for (rel, col) in proj {
                builder = builder.project(&rel, &col);
            }
        }
        Ok(ParsedQuery {
            query: builder.build()?,
            instances,
        })
    }

    /// `colref [('+'|'-') (number | '?')]`
    fn parse_operand(&mut self) -> Result<ColExpr> {
        let rel = self.expect_ident()?;
        match self.next() {
            Some(Tok::Dot) => {}
            other => return Err(self.err(&format!("expected `.`, found {other:?}"))),
        }
        let col = self.expect_ident()?;
        let negated = match self.peek() {
            Some(Tok::Plus) => false,
            Some(Tok::Minus) => true,
            _ => return Ok(ColExpr::col(rel, col)),
        };
        self.next();
        if matches!(self.peek(), Some(Tok::Question)) {
            self.next();
            let index = self.params;
            self.params += 1;
            return Ok(ColExpr::col_param(rel, col, ParamRef { index, negated }));
        }
        let n = self.expect_number()?;
        Ok(ColExpr::col_plus(rel, col, if negated { -n } else { n }))
    }

    fn expect_number(&mut self) -> Result<f64> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            other => Err(self.err(&format!("expected number, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_storage::DataType;

    fn calls_schema() -> Schema {
        Schema::from_pairs(
            "table",
            &[
                ("id", DataType::Int),
                ("d", DataType::Int),
                ("bt", DataType::Int),
                ("l", DataType::Int),
                ("bsc", DataType::Int),
            ],
        )
    }

    fn resolver() -> impl Fn(&str) -> Option<Schema> {
        |name: &str| {
            if name == "table" {
                Some(calls_schema())
            } else {
                None
            }
        }
    }

    #[test]
    fn parses_dotted_relation_names() {
        let sys_resolver = |name: &str| {
            if name == "sys.queries" {
                Some(Schema::from_pairs(
                    "sys.queries",
                    &[("trace_id", DataType::Int), ("sim_ms", DataType::Double)],
                ))
            } else {
                None
            }
        };
        // Explicit aliases: a sys-catalog self band-join.
        let p = parse_sql(
            "q",
            "SELECT a.trace_id FROM sys.queries a, sys.queries b \
             WHERE a.sim_ms < b.sim_ms AND a.sim_ms + 10 > b.sim_ms",
            &sys_resolver,
        )
        .unwrap();
        assert_eq!(p.query.num_relations(), 2);
        assert_eq!(
            p.instances,
            vec![
                ("a".to_string(), "sys.queries".to_string()),
                ("b".to_string(), "sys.queries".to_string()),
            ]
        );
        // Bare dotted name: the default alias is the part after the
        // dot, so column references use `queries.…`.
        let p = parse_sql(
            "q",
            "SELECT queries.trace_id FROM sys.queries, sys.queries b \
             WHERE queries.sim_ms < b.sim_ms",
            &sys_resolver,
        )
        .unwrap();
        assert_eq!(
            p.instances,
            vec![
                ("queries".to_string(), "sys.queries".to_string()),
                ("b".to_string(), "sys.queries".to_string()),
            ]
        );
        // Unknown dotted names are typed errors, not panics.
        let err = parse_query(
            "q",
            "SELECT a.x FROM sys.nope a WHERE a.x < a.x",
            &sys_resolver,
        );
        assert!(matches!(err, Err(Error::UnknownRelation { .. })));
    }

    /// The paper's Q1, verbatim from §6.3.1.
    #[test]
    fn parses_paper_q1() {
        let sql = "SELECT t3.id FROM table t1, table t2, table t3 WHERE \
                   t1.bt <= t2.bt AND t1.l >= t2.l AND t2.bsc = t3.bsc AND t2.d = t3.d";
        let q = parse_query("Q1", sql, &resolver()).unwrap();
        assert_eq!(q.num_relations(), 3);
        // bt and l predicates fold onto the t1-t2 edge; bsc and d onto
        // t2-t3: two edges, four atoms.
        let atoms: usize = q.conditions.iter().map(|(_, _, p)| p.len()).sum();
        assert_eq!(atoms, 4);
        assert_eq!(q.projection.len(), 1);
        assert!(q.join_graph().is_connected());
    }

    /// The paper's Q3 with its `t1.d + 3 > t3.d` offset predicate.
    #[test]
    fn parses_offset_predicates() {
        let sql = "SELECT t1.id FROM table t1, table t2, table t3, table t4 WHERE \
                   t1.d < t2.d AND t2.d < t3.d AND t1.d + 3 > t3.d AND t1.bsc = t4.bsc";
        let q = parse_query("Q3", sql, &resolver()).unwrap();
        assert_eq!(q.num_relations(), 4);
        let has_offset = q
            .conditions
            .iter()
            .flat_map(|(_, _, p)| p)
            .any(|p| p.left.offset == 3.0);
        assert!(has_offset);
    }

    #[test]
    fn parses_all_operators() {
        for (txt, op) in [
            ("<", ThetaOp::Lt),
            ("<=", ThetaOp::Le),
            ("=", ThetaOp::Eq),
            (">=", ThetaOp::Ge),
            (">", ThetaOp::Gt),
            ("!=", ThetaOp::Ne),
            ("<>", ThetaOp::Ne),
        ] {
            let sql = format!("SELECT * FROM table a, table b WHERE a.d {txt} b.d");
            let q = parse_query("q", &sql, &resolver()).unwrap();
            assert_eq!(q.conditions[0].2[0].op, op, "{txt}");
        }
    }

    #[test]
    fn star_means_no_projection() {
        let sql = "SELECT * FROM table a, table b WHERE a.d < b.d";
        let q = parse_query("q", sql, &resolver()).unwrap();
        assert!(q.projection.is_empty());
    }

    #[test]
    fn negative_offsets() {
        let sql = "SELECT * FROM table a, table b WHERE a.d - 2 < b.d";
        let q = parse_query("q", sql, &resolver()).unwrap();
        assert_eq!(q.conditions[0].2[0].left.offset, -2.0);
    }

    #[test]
    fn keywords_case_insensitive() {
        let sql = "select a.id from table a, table b where a.d < b.d";
        assert!(parse_query("q", sql, &resolver()).is_ok());
    }

    #[test]
    fn parse_statement_handles_explain_prefixes() {
        let body = "SELECT a.id FROM table a, table b WHERE a.d < b.d";
        match parse_statement("q", body, &resolver()).unwrap() {
            Statement::Select(p) => assert_eq!(p.query.num_relations(), 2),
            other => panic!("expected Select, got {other:?}"),
        }
        match parse_statement("q", &format!("EXPLAIN {body}"), &resolver()).unwrap() {
            Statement::Explain { analyze, query } => {
                assert!(!analyze);
                assert_eq!(query.query.num_relations(), 2);
            }
            other => panic!("expected Explain, got {other:?}"),
        }
        match parse_statement("q", &format!("explain analyze {body}"), &resolver()).unwrap() {
            Statement::Explain { analyze, .. } => assert!(analyze),
            other => panic!("expected Explain, got {other:?}"),
        }
        // A bare EXPLAIN with no query is an error, not a panic.
        assert!(parse_statement("q", "EXPLAIN", &resolver()).is_err());
        assert!(parse_statement("q", "EXPLAIN ANALYZE", &resolver()).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let bad = [
            "FROM table a WHERE a.d < a.d",                    // missing SELECT
            "SELECT * FROM table a, table b",                  // missing WHERE
            "SELECT * FROM nope a, table b WHERE a.d < b.d",   // unknown base
            "SELECT * FROM table a, table b WHERE a.zz < b.d", // unknown column
            "SELECT * FROM table a, table b WHERE a.d ?? b.d", // bad operator
            "SELECT * FROM table a, table b WHERE a.d < b.d extra", // trailing
        ];
        for sql in bad {
            assert!(parse_query("q", sql, &resolver()).is_err(), "{sql}");
        }
    }

    #[test]
    fn namespaced_rewrites_instances_and_keeps_semantics() {
        let sql = "SELECT t2.id FROM table t1, table t2 WHERE t1.bt <= t2.bt";
        let parsed = parse_sql("q", sql, &resolver()).unwrap();
        let (ns, renames) = parsed.namespaced("__q7_");
        assert_eq!(
            renames,
            vec![
                ("__q7_t1".to_string(), "t1".to_string()),
                ("__q7_t2".to_string(), "t2".to_string()),
            ]
        );
        assert_eq!(ns.query.schemas[0].name(), "__q7_t1");
        assert_eq!(ns.query.schemas[1].name(), "__q7_t2");
        assert_eq!(
            ns.instances,
            vec![
                ("__q7_t1".to_string(), "table".to_string()),
                ("__q7_t2".to_string(), "table".to_string()),
            ]
        );
        // Edge indices and the index-based projection are untouched;
        // predicate relation names follow the rewrite.
        assert_eq!(ns.query.conditions[0].0, parsed.query.conditions[0].0);
        assert_eq!(ns.query.conditions[0].1, parsed.query.conditions[0].1);
        assert_eq!(ns.query.conditions[0].2[0].left.relation, "__q7_t1");
        assert_eq!(ns.query.projection, parsed.query.projection);
        assert!(ns.query.compile().is_ok());
        // The original is unchanged.
        assert_eq!(parsed.query.schemas[0].name(), "t1");
    }

    #[test]
    fn positional_parameters_parse_bind_and_refuse_misuse() {
        let sql = "SELECT t1.id FROM table t1, table t2 WHERE \
                   t1.d + ? < t2.d AND t1.bt - ? >= t2.bt";
        let parsed = parse_sql("q", sql, &resolver()).unwrap();
        assert_eq!(parsed.param_count(), 2);
        // Slots number left to right; `- ?` negates the bound value.
        let p0 = &parsed.query.conditions[0].2[0].left;
        assert_eq!(p0.param.map(|p| (p.index, p.negated)), Some((0, false)));
        let p1 = &parsed.query.conditions[0].2[1].left;
        assert_eq!(p1.param.map(|p| (p.index, p.negated)), Some((1, true)));
        // The template's Display names the slots (shape keys rely on
        // it) and the template refuses to compile unbound.
        assert!(
            parsed.query.to_string().contains("t1.d+?0"),
            "{}",
            parsed.query
        );
        assert!(parsed.query.compile().is_err());
        // Binding produces literal offsets and an executable query.
        let bound = parsed.bind(&[3.0, 2.0]).unwrap();
        assert_eq!(bound.query.conditions[0].2[0].left.offset, 3.0);
        assert_eq!(bound.query.conditions[0].2[1].left.offset, -2.0);
        assert_eq!(bound.param_count(), 0);
        assert!(bound.query.compile().is_ok());
        // Arity mismatches are errors.
        assert!(parsed.bind(&[1.0]).is_err());
        assert!(parsed.bind(&[1.0, 2.0, 3.0]).is_err());
        // A `?` anywhere but the offset position is rejected.
        assert!(parse_sql(
            "q",
            "SELECT ? FROM table a, table b WHERE a.d < b.d",
            &resolver()
        )
        .is_err());
        assert!(parse_sql(
            "q",
            "SELECT * FROM table a, table b WHERE ? < b.d",
            &resolver()
        )
        .is_err());
    }

    #[test]
    fn parsed_query_is_executable_shape() {
        // End-to-end sanity: compile succeeds and edges reference real
        // columns.
        let sql = "SELECT t2.id FROM table t1, table t2 WHERE t1.bt <= t2.bt AND t1.l >= t2.l";
        let q = parse_query("q", sql, &resolver()).unwrap();
        assert!(q.compile().is_ok());
        assert_eq!(q.num_conditions(), 1); // folded onto one edge
        assert_eq!(q.conditions[0].2.len(), 2);
    }
}
