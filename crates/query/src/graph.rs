//! The join graph `G_J` (Definition 1) and no-edge-repeating path
//! enumeration (Definition 2).
//!
//! `G_J` is a labeled multigraph: one vertex per relation, one edge per
//! join condition (a condition may carry several atomic predicates
//! between the same pair of relations — e.g. benchmark query Q1 joins
//! `t2` and `t3` on `bsc` *and* `d`; those are separate θ functions and
//! therefore separate edges, exactly as Fig. 1 of the paper draws
//! parallel edges).
//!
//! Every *no-edge-repeating path* is a candidate single-MRJ chain join;
//! [`JoinGraph::enumerate_paths`] produces them in increasing hop count,
//! which is the traversal order Algorithm 2 of the paper needs.

use crate::theta::Predicate;
use std::collections::BTreeSet;
use std::fmt;

/// One edge of `G_J`: a θ condition between two relations.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// Edge id (`θ_i` in the paper), dense from 0.
    pub id: usize,
    /// Endpoint vertex (relation) indices. `u < v` is *not* required;
    /// the graph is undirected.
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// The atomic predicates conjoined on this edge. All reference only
    /// the two endpoint relations.
    pub predicates: Vec<Predicate>,
}

impl JoinEdge {
    /// The endpoint other than `w`.
    ///
    /// # Panics
    /// Panics if `w` is not an endpoint.
    pub fn other(&self, w: usize) -> usize {
        if w == self.u {
            self.v
        } else if w == self.v {
            self.u
        } else {
            panic!("vertex {w} is not an endpoint of edge {}", self.id)
        }
    }
}

/// A no-edge-repeating path: the ordered edges traversed and the vertex
/// sequence they induce. Paths are the MRJ candidates of the paper; the
/// vertex sequence (with repeats allowed — only *edges* must be unique)
/// is the chain the Hilbert partitioner works over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPath {
    /// Edge ids in traversal order.
    pub edges: Vec<usize>,
    /// Vertices in traversal order; `vertices.len() == edges.len() + 1`.
    pub vertices: Vec<usize>,
}

impl JoinPath {
    /// Endpoints `(first, last)`.
    pub fn endpoints(&self) -> (usize, usize) {
        (
            *self.vertices.first().expect("path has vertices"),
            *self.vertices.last().expect("path has vertices"),
        )
    }

    /// Number of hops (edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The set of *distinct* relations on the path, sorted.
    pub fn distinct_vertices(&self) -> Vec<usize> {
        let s: BTreeSet<usize> = self.vertices.iter().copied().collect();
        s.into_iter().collect()
    }

    /// Edge-id set as a bitmask (panics if an edge id ≥ 64; the paper's
    /// graphs have single-digit edge counts).
    pub fn edge_mask(&self) -> u64 {
        let mut m = 0u64;
        for &e in &self.edges {
            assert!(e < 64, "edge id {e} too large for bitmask");
            m |= 1 << e;
        }
        m
    }
}

impl fmt::Display for JoinPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "θ{e}")?;
        }
        write!(f, "}}")
    }
}

/// The join graph `G_J` of an N-join query.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Relation names, indexed by vertex id.
    pub relations: Vec<String>,
    /// The condition edges.
    pub edges: Vec<JoinEdge>,
}

impl JoinGraph {
    /// Build a graph over `relations`; edges are added with
    /// [`JoinGraph::add_edge`].
    pub fn new(relations: Vec<String>) -> Self {
        JoinGraph {
            relations,
            edges: Vec::new(),
        }
    }

    /// Add a condition edge between vertices `u` and `v`; returns its id.
    pub fn add_edge(&mut self, u: usize, v: usize, predicates: Vec<Predicate>) -> usize {
        assert!(u < self.relations.len() && v < self.relations.len());
        assert_ne!(u, v, "self-joins must use two relation instances");
        let id = self.edges.len();
        self.edges.push(JoinEdge {
            id,
            u,
            v,
            predicates,
        });
        id
    }

    /// Vertex id of a relation name.
    pub fn vertex_of(&self, relation: &str) -> Option<usize> {
        self.relations.iter().position(|r| r == relation)
    }

    /// Adjacency: `(edge id, other endpoint)` pairs per vertex.
    pub fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); self.relations.len()];
        for e in &self.edges {
            adj[e.u].push((e.id, e.v));
            adj[e.v].push((e.id, e.u));
        }
        adj
    }

    /// Is the graph connected (ignoring isolated vertices it is required
    /// to be, per Definition 1)?
    pub fn is_connected(&self) -> bool {
        if self.relations.is_empty() {
            return true;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.relations.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &(_, w) in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen.iter().all(|&s| s)
    }

    /// Enumerate all no-edge-repeating paths of length 1..=`max_hops`,
    /// in increasing length. Each undirected path is reported once
    /// (the traversal starting from the lexicographically smaller
    /// (endpoint, edge sequence) representative).
    ///
    /// This is the exhaustive enumeration whose full closure is
    /// #P-complete (Theorem 1); callers bound it with `max_hops` and a
    /// result cap, and Algorithm 2's pruning (in `mwtj-planner`) keeps
    /// only useful paths.
    pub fn enumerate_paths(&self, max_hops: usize, cap: usize) -> Vec<JoinPath> {
        let adj = self.adjacency();
        let mut out: Vec<JoinPath> = Vec::new();
        let mut seen_masks: BTreeSet<(u64, usize, usize)> = BTreeSet::new();

        // Iterative DFS from every start vertex; paths are identified by
        // (edge set, endpoint pair) — two traversals of the same edge set
        // between the same endpoints are one MRJ candidate (the paper
        // only cares which θs are covered, "any E(GJP) would be
        // sufficient").
        for start in 0..self.relations.len() {
            let mut stack: Vec<(usize, u64, Vec<usize>, Vec<usize>)> =
                vec![(start, 0u64, Vec::new(), vec![start])];
            while let Some((at, mask, epath, vpath)) = stack.pop() {
                if out.len() >= cap {
                    return out;
                }
                if epath.len() >= max_hops {
                    continue;
                }
                for &(eid, to) in &adj[at] {
                    if mask & (1 << eid) != 0 {
                        continue;
                    }
                    let nmask = mask | (1 << eid);
                    let mut nep = epath.clone();
                    nep.push(eid);
                    let mut nvp = vpath.clone();
                    nvp.push(to);
                    let (a, b) = (start.min(to), start.max(to));
                    if seen_masks.insert((nmask, a, b)) {
                        out.push(JoinPath {
                            edges: nep.clone(),
                            vertices: nvp.clone(),
                        });
                    }
                    stack.push((to, nmask, nep, nvp));
                }
            }
        }
        out.sort_by_key(|p| (p.len(), p.edges.clone()));
        out.truncate(cap);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 graph: R1..R5 with
    /// θ1,θ2 ∈ R1–R2 region… precisely: θ1(R1,R2), θ2(R2,R3), θ3(R1,R3),
    /// θ4(R3,R4), θ5(R3,R5), θ6(R4,R5).
    fn fig1() -> JoinGraph {
        let mut g = JoinGraph::new((1..=5).map(|i| format!("R{i}")).collect::<Vec<_>>());
        g.add_edge(0, 1, vec![]); // θ0 : R1-R2   (paper's θ1)
        g.add_edge(1, 2, vec![]); // θ1 : R2-R3   (paper's θ2)
        g.add_edge(0, 2, vec![]); // θ2 : R1-R3   (paper's θ3)
        g.add_edge(2, 3, vec![]); // θ3 : R3-R4   (paper's θ4)
        g.add_edge(2, 4, vec![]); // θ4 : R3-R5   (paper's θ5)
        g.add_edge(3, 4, vec![]); // θ5 : R4-R5   (paper's θ6)
        g
    }

    #[test]
    fn connectivity() {
        assert!(fig1().is_connected());
        let mut g = JoinGraph::new(vec!["a".into(), "b".into(), "c".into()]);
        g.add_edge(0, 1, vec![]);
        assert!(!g.is_connected());
    }

    #[test]
    fn single_hop_paths_are_edges() {
        let g = fig1();
        let paths = g.enumerate_paths(1, usize::MAX);
        assert_eq!(paths.len(), g.edges.len());
        for p in &paths {
            assert_eq!(p.len(), 1);
        }
    }

    #[test]
    fn paths_never_repeat_edges() {
        let g = fig1();
        for p in g.enumerate_paths(6, usize::MAX) {
            let set: BTreeSet<usize> = p.edges.iter().copied().collect();
            assert_eq!(set.len(), p.edges.len(), "path {:?} repeats an edge", p);
            // vertex sequence consistent with edges
            for (i, &e) in p.edges.iter().enumerate() {
                let edge = &g.edges[e];
                let (a, b) = (p.vertices[i], p.vertices[i + 1]);
                assert!(
                    (edge.u == a && edge.v == b) || (edge.u == b && edge.v == a),
                    "edge {e} does not connect {a},{b}"
                );
            }
        }
    }

    #[test]
    fn fig1_has_eulerian_paths() {
        // Fig. 1's graph has an Eulerian circuit (all vertices even
        // degree): R1(2) R2(2) R3(4) R4(2) R5(2). So some length-6
        // no-edge-repeating path covers all edges.
        let g = fig1();
        let paths = g.enumerate_paths(6, usize::MAX);
        assert!(
            paths.iter().any(|p| p.len() == 6),
            "Eulerian circuit missing"
        );
    }

    #[test]
    fn paper_example_path_r1_r2() {
        // The paper's Fig. 1 matrix lists {θ3,θ4,θ6,θ5,θ2} (our ids
        // {2,3,5,4,1}) as a 5-hop R1→R2 path.
        let g = fig1();
        let paths = g.enumerate_paths(5, usize::MAX);
        let want: BTreeSet<usize> = [2, 3, 5, 4, 1].into_iter().collect();
        assert!(
            paths.iter().any(|p| {
                let (a, b) = p.endpoints();
                let set: BTreeSet<usize> = p.edges.iter().copied().collect();
                ((a, b) == (0, 1) || (a, b) == (1, 0)) && set == want
            }),
            "missing the paper's 5-hop R1-R2 path"
        );
    }

    #[test]
    fn cap_is_respected() {
        let g = fig1();
        let paths = g.enumerate_paths(6, 5);
        assert_eq!(paths.len(), 5);
    }

    #[test]
    fn edge_mask_and_other() {
        let g = fig1();
        let e = &g.edges[3];
        assert_eq!(e.other(2), 3);
        assert_eq!(e.other(3), 2);
        let p = JoinPath {
            edges: vec![0, 2],
            vertices: vec![1, 0, 2],
        };
        assert_eq!(p.edge_mask(), 0b101);
        assert_eq!(p.distinct_vertices(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_off_edge() {
        fig1().edges[0].other(4);
    }
}
