//! The N-join query object and compiled predicate evaluation.

use crate::graph::JoinGraph;
use crate::theta::{ColExpr, CompiledPredicate, Predicate, ThetaOp};
use mwtj_storage::{Error, Result, Schema, Tuple};
use std::fmt;

/// A multi-way theta-join query: a set of relations (schemas), a set of
/// join conditions, and an optional projection over the concatenated
/// output row.
#[derive(Debug, Clone)]
pub struct MultiwayQuery {
    /// Relation schemas, in query order. Relation *instances*: a
    /// self-join registers the same base table twice under different
    /// names (`t1`, `t2`, …), exactly as the benchmark queries do.
    pub schemas: Vec<Schema>,
    /// The join conditions, each `(u, v, predicates)` by relation index.
    pub conditions: Vec<(usize, usize, Vec<Predicate>)>,
    /// Output columns as `(relation index, column index)` pairs; empty
    /// means "all columns of all relations".
    pub projection: Vec<(usize, usize)>,
    /// Query name, for reporting.
    pub name: String,
}

impl MultiwayQuery {
    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.schemas.len()
    }

    /// Number of join conditions (θ functions / edges of `G_J`).
    pub fn num_conditions(&self) -> usize {
        self.conditions.len()
    }

    /// Relation index by name.
    pub fn relation_index(&self, name: &str) -> Result<usize> {
        self.schemas
            .iter()
            .position(|s| s.name() == name)
            .ok_or_else(|| Error::UnknownColumn {
                column: "<relation>".into(),
                schema: name.into(),
            })
    }

    /// The join graph `G_J` of this query.
    pub fn join_graph(&self) -> JoinGraph {
        let mut g = JoinGraph::new(self.schemas.iter().map(|s| s.name().to_string()).collect());
        for (u, v, preds) in &self.conditions {
            g.add_edge(*u, *v, preds.clone());
        }
        g
    }

    /// Number of distinct `?` positional parameters this query's
    /// predicates reference (the highest slot index + 1; `0` for an
    /// ordinary, fully-literal query).
    pub fn param_count(&self) -> usize {
        self.conditions
            .iter()
            .flat_map(|(_, _, preds)| preds)
            .flat_map(|p| [&p.left, &p.right])
            .filter_map(|side| side.param)
            .map(|slot| slot.index as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Bind every `?` positional parameter to its value, producing an
    /// executable query (slot `i` takes `params[i]`, negated slots
    /// subtract). The parameter count must match exactly.
    pub fn bind_params(&self, params: &[f64]) -> Result<MultiwayQuery> {
        let expected = self.param_count();
        if params.len() != expected {
            return Err(Error::TypeError {
                detail: format!(
                    "query `{}` takes {expected} parameter(s), got {}",
                    self.name,
                    params.len()
                ),
            });
        }
        let mut bound = self.clone();
        for (_, _, preds) in &mut bound.conditions {
            for p in preds {
                for side in [&mut p.left, &mut p.right] {
                    if let Some(slot) = side.param.take() {
                        let v = params[slot.index as usize];
                        side.offset = if slot.negated { -v } else { v };
                    }
                }
            }
        }
        Ok(bound)
    }

    /// Compile every condition's predicates to index form.
    pub fn compile(&self) -> Result<CompiledConditions> {
        let mut per_condition = Vec::with_capacity(self.conditions.len());
        for (u, v, preds) in &self.conditions {
            let mut compiled = Vec::with_capacity(preds.len());
            for p in preds {
                compiled.push(self.compile_predicate(p)?);
                // Sanity: predicate endpoints must be the condition's.
                let lr = self.relation_index(&p.left.relation)?;
                let rr = self.relation_index(&p.right.relation)?;
                if !((lr == *u && rr == *v) || (lr == *v && rr == *u)) {
                    return Err(Error::SchemaMismatch {
                        detail: format!("predicate `{p}` does not join relations {u} and {v}"),
                    });
                }
            }
            per_condition.push(compiled);
        }
        Ok(CompiledConditions { per_condition })
    }

    fn compile_predicate(&self, p: &Predicate) -> Result<CompiledPredicate> {
        for side in [&p.left, &p.right] {
            if let Some(slot) = side.param {
                return Err(Error::TypeError {
                    detail: format!(
                        "unbound positional parameter ?{} in `{p}`; bind parameters \
                         (bind_params) before compiling or executing",
                        slot.index
                    ),
                });
            }
        }
        let left_rel = self.relation_index(&p.left.relation)?;
        let right_rel = self.relation_index(&p.right.relation)?;
        Ok(CompiledPredicate {
            left_rel,
            left_col: self.schemas[left_rel].index_of(&p.left.column)?,
            left_off: p.left.offset,
            op: p.op,
            right_rel,
            right_col: self.schemas[right_rel].index_of(&p.right.column)?,
            right_off: p.right.offset,
        })
    }

    /// Output schema: projection applied to the concatenation of all
    /// relation schemas.
    pub fn output_schema(&self) -> Schema {
        let parts: Vec<&Schema> = self.schemas.iter().collect();
        let full = Schema::concat(format!("{}_out", self.name), &parts);
        if self.projection.is_empty() {
            return full;
        }
        let mut fields = Vec::with_capacity(self.projection.len());
        for &(r, c) in &self.projection {
            let f = &self.schemas[r].fields()[c];
            fields.push(mwtj_storage::Field::new(
                format!("{}.{}", self.schemas[r].name(), f.name),
                f.data_type,
            ));
        }
        Schema::new(format!("{}_out", self.name), fields)
    }

    /// Apply the projection to one tuple per relation, producing the
    /// output row.
    pub fn project(&self, tuples: &[&Tuple]) -> Tuple {
        if self.projection.is_empty() {
            return Tuple::concat_all(tuples);
        }
        Tuple::new(
            self.projection
                .iter()
                .map(|&(r, c)| tuples[r].get(c).clone())
                .collect(),
        )
    }
}

impl fmt::Display for MultiwayQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, s) in self.schemas.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}", s.name())?;
        }
        write!(f, " ON ")?;
        let mut first = true;
        for (_, _, preds) in &self.conditions {
            for p in preds {
                if !first {
                    write!(f, " AND ")?;
                }
                first = false;
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

/// All conditions compiled to index form. `per_condition[i]` holds the
/// conjunction for condition/edge `i`; an MRJ covering edges `E` must
/// check exactly `⋃_{i∈E} per_condition[i]`.
#[derive(Debug, Clone)]
pub struct CompiledConditions {
    /// Compiled predicates per condition edge.
    pub per_condition: Vec<Vec<CompiledPredicate>>,
}

impl CompiledConditions {
    /// Evaluate the conjunction of the conditions in `edges` against one
    /// tuple per relation.
    #[inline]
    pub fn eval_edges(&self, edges: &[usize], tuples: &[&Tuple]) -> bool {
        edges
            .iter()
            .all(|&e| self.per_condition[e].iter().all(|p| p.eval(tuples)))
    }

    /// Evaluate *all* conditions (the full query).
    #[inline]
    pub fn eval_all(&self, tuples: &[&Tuple]) -> bool {
        self.per_condition
            .iter()
            .all(|c| c.iter().all(|p| p.eval(tuples)))
    }
}

/// Fluent builder for [`MultiwayQuery`].
///
/// ```
/// use mwtj_query::{QueryBuilder, ThetaOp};
/// use mwtj_storage::{DataType, Schema};
///
/// let calls = Schema::from_pairs("t1", &[("id", DataType::Int), ("bt", DataType::Int)]);
/// let calls2 = Schema::from_pairs("t2", &[("id", DataType::Int), ("bt", DataType::Int)]);
/// let q = QueryBuilder::new("q")
///     .relation(calls)
///     .relation(calls2)
///     .join("t1", "bt", ThetaOp::Le, "t2", "bt")
///     .project("t2", "id")
///     .build()
///     .unwrap();
/// assert_eq!(q.num_conditions(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    name: String,
    schemas: Vec<Schema>,
    conditions: Vec<(usize, usize, Vec<Predicate>)>,
    projection: Vec<(String, String)>,
    error: Option<Error>,
}

impl QueryBuilder {
    /// Start building a query called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            schemas: Vec::new(),
            conditions: Vec::new(),
            projection: Vec::new(),
            error: None,
        }
    }

    /// Register a relation instance. Order matters: it fixes the chain
    /// dimension order used by the Hilbert partitioner.
    pub fn relation(mut self, schema: Schema) -> Self {
        self.schemas.push(schema);
        self
    }

    fn rel_idx(&mut self, name: &str) -> Option<usize> {
        match self.schemas.iter().position(|s| s.name() == name) {
            Some(i) => Some(i),
            None => {
                self.error = Some(Error::UnknownColumn {
                    column: "<relation>".into(),
                    schema: name.into(),
                });
                None
            }
        }
    }

    /// Add a join condition edge `l.lcol θ r.rcol`.
    pub fn join(self, l: &str, lcol: &str, op: ThetaOp, r: &str, rcol: &str) -> Self {
        self.join_expr(ColExpr::col(l, lcol), op, ColExpr::col(r, rcol))
    }

    /// Add a join condition edge with explicit column expressions
    /// (offsets allowed).
    pub fn join_expr(mut self, left: ColExpr, op: ThetaOp, right: ColExpr) -> Self {
        let (Some(u), Some(v)) = (
            self.rel_idx(&left.relation.clone()),
            self.rel_idx(&right.relation.clone()),
        ) else {
            return self;
        };
        if u == v {
            // Same instance on both sides would later break the join
            // graph invariant (self-joins need two instances); reject
            // at build time instead of panicking downstream.
            self.error = Some(Error::TypeError {
                detail: format!(
                    "both sides of a join predicate reference `{}`; self-joins need two \
                     relation instances",
                    left.relation
                ),
            });
            return self;
        }
        self.conditions
            .push((u, v, vec![Predicate::new(left, op, right)]));
        self
    }

    /// Add an extra predicate to the *most recently added* condition
    /// edge (conjunction on the same edge, e.g. `t2.bsc=t3.bsc AND
    /// t2.d=t3.d` as one θ function).
    pub fn and_expr(mut self, left: ColExpr, op: ThetaOp, right: ColExpr) -> Self {
        let (Some(lu), Some(lv)) = (
            self.rel_idx(&left.relation.clone()),
            self.rel_idx(&right.relation.clone()),
        ) else {
            return self;
        };
        match self.conditions.last_mut() {
            Some((u, v, preds)) if (lu == *u && lv == *v) || (lu == *v && lv == *u) => {
                preds.push(Predicate::new(left, op, right));
            }
            _ => {
                self.error = Some(Error::SchemaMismatch {
                    detail: "and_expr endpoints differ from previous join".into(),
                });
            }
        }
        self
    }

    /// Append an output column.
    pub fn project(mut self, rel: &str, col: &str) -> Self {
        self.projection.push((rel.into(), col.into()));
        self
    }

    /// Finish, validating every reference.
    pub fn build(self) -> Result<MultiwayQuery> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut projection = Vec::with_capacity(self.projection.len());
        let q = MultiwayQuery {
            schemas: self.schemas,
            conditions: self.conditions,
            projection: Vec::new(),
            name: self.name,
        };
        for (rel, col) in &self.projection {
            let r = q.relation_index(rel)?;
            let c = q.schemas[r].index_of(col)?;
            projection.push((r, c));
        }
        let q = MultiwayQuery { projection, ..q };
        // Compile once to validate all predicates. A template with `?`
        // slots validates with the slots bound to 0 — real binding
        // happens at execute time.
        if q.param_count() == 0 {
            q.compile()?;
        } else {
            q.bind_params(&vec![0.0; q.param_count()])?.compile()?;
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_storage::{tuple, DataType};

    fn calls(name: &str) -> Schema {
        Schema::from_pairs(
            name,
            &[
                ("id", DataType::Int),
                ("d", DataType::Int),
                ("bt", DataType::Int),
                ("l", DataType::Int),
                ("bsc", DataType::Int),
            ],
        )
    }

    /// Benchmark query Q1 from §6.3.1.
    fn q1() -> MultiwayQuery {
        QueryBuilder::new("Q1")
            .relation(calls("t1"))
            .relation(calls("t2"))
            .relation(calls("t3"))
            .join("t1", "bt", ThetaOp::Le, "t2", "bt")
            .join("t1", "l", ThetaOp::Ge, "t2", "l")
            .join("t2", "bsc", ThetaOp::Eq, "t3", "bsc")
            .and_expr(
                ColExpr::col("t2", "d"),
                ThetaOp::Eq,
                ColExpr::col("t3", "d"),
            )
            .project("t3", "id")
            .build()
            .unwrap()
    }

    #[test]
    fn q1_shape() {
        let q = q1();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.num_conditions(), 3);
        let g = q.join_graph();
        assert!(g.is_connected());
        assert_eq!(g.edges[2].predicates.len(), 2);
    }

    #[test]
    fn compiled_eval_all() {
        let q = q1();
        let cc = q.compile().unwrap();
        // t1.bt<=t2.bt, t1.l>=t2.l, t2.bsc=t3.bsc, t2.d=t3.d
        let t1 = tuple![1, 10, 100, 50, 7];
        let t2 = tuple![2, 10, 120, 40, 7];
        let t3 = tuple![3, 10, 130, 30, 7];
        assert!(cc.eval_all(&[&t1, &t2, &t3]));
        let t3bad = tuple![3, 11, 130, 30, 7]; // d mismatch
        assert!(!cc.eval_all(&[&t1, &t2, &t3bad]));
        // subsets of edges
        assert!(cc.eval_edges(&[0, 1], &[&t1, &t2, &t3bad]));
        assert!(!cc.eval_edges(&[2], &[&t1, &t2, &t3bad]));
    }

    #[test]
    fn projection_and_output_schema() {
        let q = q1();
        let out = q.output_schema();
        assert_eq!(out.arity(), 1);
        assert_eq!(out.fields()[0].name, "t3.id");
        let t1 = tuple![1, 10, 100, 50, 7];
        let t2 = tuple![2, 10, 120, 40, 7];
        let t3 = tuple![3, 10, 130, 30, 7];
        assert_eq!(q.project(&[&t1, &t2, &t3]), tuple![3]);
    }

    #[test]
    fn empty_projection_concats_everything() {
        let q = QueryBuilder::new("q")
            .relation(calls("a"))
            .relation(calls("b"))
            .join("a", "bt", ThetaOp::Lt, "b", "bt")
            .build()
            .unwrap();
        assert_eq!(q.output_schema().arity(), 10);
    }

    #[test]
    fn builder_rejects_unknown_names() {
        assert!(QueryBuilder::new("q")
            .relation(calls("a"))
            .join("a", "bt", ThetaOp::Lt, "zz", "bt")
            .build()
            .is_err());
        assert!(QueryBuilder::new("q")
            .relation(calls("a"))
            .relation(calls("b"))
            .join("a", "nope", ThetaOp::Lt, "b", "bt")
            .build()
            .is_err());
        assert!(QueryBuilder::new("q")
            .relation(calls("a"))
            .relation(calls("b"))
            .join("a", "bt", ThetaOp::Lt, "b", "bt")
            .project("a", "nope")
            .build()
            .is_err());
    }

    #[test]
    fn display_mentions_predicates() {
        let s = q1().to_string();
        assert!(s.contains("t1.bt <= t2.bt"), "{s}");
        assert!(s.contains("⋈"));
    }
}
