//! # mwtj-query
//!
//! Query representation for multi-way theta-joins ("N-join queries" in
//! the paper's terminology, §3.1):
//!
//! * [`theta`] — the six theta operators `{<, ≤, =, ≥, >, ≠}`, column
//!   expressions with constant offsets (needed for predicates like
//!   `t1.d + 3 > t3.d` from benchmark query Q3), and atomic predicates.
//! * [`graph`] — the join graph `G_J` (Definition 1): relations as
//!   vertices, conditions as labeled multigraph edges; plus
//!   no-edge-repeating path enumeration (Definition 2), the raw material
//!   of the join-path graph `G_JP`.
//! * [`query`] — [`query::MultiwayQuery`]: relations + conditions +
//!   projection, with compiled predicate evaluation against candidate
//!   tuple combinations.
//! * [`sql`] — a parser for the SQL-like dialect the paper states its
//!   benchmark queries in (§6.3.1).

#![warn(missing_docs)]

pub mod graph;
pub mod query;
pub mod sql;
pub mod theta;

pub use graph::{JoinEdge, JoinGraph, JoinPath};
pub use query::{CompiledConditions, MultiwayQuery, QueryBuilder};
pub use sql::{parse_query, parse_sql, parse_statement, ParsedQuery, ParsedSql, Statement};
pub use theta::{ColExpr, ParamRef, Predicate, ThetaOp, TypedPred};
