//! Streamed query results: bounded row-batch delivery from the final
//! join to the caller.
//!
//! [`Engine::run_streamed`] (and [`Session::stream`]) executes a query
//! exactly like [`Engine::run`] — same admission control, same plan,
//! bit-identical simulated cost metrics — but delivers the final output
//! as an ordered sequence of bounded [`RowBatch`]es through a
//! [`QueryStream`] instead of one materialised `Relation`:
//!
//! * **schema first** — the output schema is known before the first
//!   row; a serving layer can emit its header frame immediately;
//! * **bounded memory** — batches flow through a bounded channel with
//!   backpressure, so the peak number of resident output rows is
//!   `batch_rows × (channel depth + 2)` regardless of result size
//!   (one batch being built, one blocked in `send`, `depth` queued);
//! * **terminal [`StreamEnd`]** — after the last batch the stream
//!   yields the run's full metrics (plan, simulated seconds, per-job
//!   accounting, admission ticket);
//! * **RAII cancellation** — the admission ticket is held until the
//!   stream is drained or dropped; dropping a [`QueryStream`] mid-way
//!   cancels the worker (its next batch send fails), releases the
//!   ticket, and cleans up the run's namespaced DFS files.
//!
//! Only the *terminal* job streams. Intermediate stages still
//! materialise to the simulated DFS — the paper's Eq. 2–4 phase
//! costs are computed from the same byte counts either way.

use crate::engine::{apply_renames, augment_query, rename_schema, sorted_renames, Engine, Session};
use crate::error::EngineError;
use crate::options::RunOptions;
use crate::prepare::Prepared;
use mwtj_mapreduce::{BatchSink, ExecError, JobMetrics, RowBatch, SinkSpec};
use mwtj_query::{MultiwayQuery, ParsedQuery};
use mwtj_storage::{Relation, Schema};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

/// Knobs for one streamed run.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Rows per [`RowBatch`] (≥ 1). Smaller batches lower
    /// time-to-first-row and peak memory; larger batches lower
    /// per-batch overhead.
    pub batch_rows: usize,
    /// Bounded-channel depth in batches (≥ 1) — the backpressure
    /// window between the executing worker and the consumer.
    pub channel_depth: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            batch_rows: 1024,
            channel_depth: 4,
        }
    }
}

impl StreamOptions {
    /// Defaults: 1024-row batches, depth-4 channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the rows-per-batch bound.
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }

    /// Set the bounded-channel depth.
    pub fn channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth.max(1);
        self
    }
}

/// Terminal frame of a [`QueryStream`]: everything a [`QueryRun`]
/// reports except the (already delivered) rows.
///
/// [`QueryRun`]: mwtj_planner::QueryRun
#[derive(Debug, Clone)]
pub struct StreamEnd {
    /// Total rows delivered across all batches.
    pub rows: u64,
    /// Number of batches delivered.
    pub batches: u64,
    /// Human-readable plan description.
    pub plan: String,
    /// Planner's predicted makespan (simulated seconds).
    pub predicted_secs: f64,
    /// Achieved simulated makespan — bit-identical to the buffered
    /// [`Engine::run`] of the same query.
    pub sim_secs: f64,
    /// Host wall-clock seconds for the run.
    pub real_secs: f64,
    /// Per-job metrics in execution order.
    pub jobs: Vec<JobMetrics>,
    /// Admission ticket the run executed under.
    pub ticket: u64,
    /// Processing units the run was granted.
    pub granted_units: u32,
    /// Trace id of the run (correlates stream frames with metrics
    /// scrapes and slow-query log lines).
    pub trace_id: u64,
}

enum StreamMsg {
    Batch(RowBatch),
    End(Box<Result<StreamEnd, EngineError>>),
}

/// Worker-side sink: pushes batches into the bounded channel (blocking
/// for backpressure) and keeps the resident-row accounting the
/// bounded-memory guarantee is asserted on.
struct ChannelSink {
    tx: SyncSender<StreamMsg>,
    /// Rows currently in the channel or blocked in `send` (decremented
    /// by the consumer on receive).
    resident: Arc<AtomicUsize>,
    /// High-water mark of `resident`.
    peak: Arc<AtomicUsize>,
    rows: AtomicU64,
    batches: AtomicU64,
}

impl BatchSink for ChannelSink {
    fn send(&self, batch: RowBatch) -> bool {
        let n = batch.rows.len();
        let now = self.resident.fetch_add(n, Ordering::SeqCst) + n;
        self.peak.fetch_max(now, Ordering::SeqCst);
        match self.tx.send(StreamMsg::Batch(batch)) {
            Ok(()) => {
                self.rows.fetch_add(n as u64, Ordering::Relaxed);
                self.batches.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                // Receiver gone: roll back the accounting and tell the
                // producer to cancel.
                self.resident.fetch_sub(n, Ordering::SeqCst);
                false
            }
        }
    }
}

/// A live streamed query: schema first, then ordered [`RowBatch`]es,
/// then a [`StreamEnd`] with the run's metrics.
///
/// Iterate with [`QueryStream::next_batch`] (or the [`Iterator`] impl);
/// after it returns `Ok(None)`, [`QueryStream::end`] holds the terminal
/// metrics. Dropping the stream mid-way cancels the run: the worker's
/// next batch send fails, the run aborts with a `Cancelled` error, its
/// namespaced DFS intermediates are removed, and the admission ticket
/// is released (the drop blocks until the worker has fully unwound, so
/// cancellation is deterministic).
pub struct QueryStream {
    schema: Schema,
    rx: Option<Receiver<StreamMsg>>,
    worker: Option<std::thread::JoinHandle<()>>,
    resident: Arc<AtomicUsize>,
    peak: Arc<AtomicUsize>,
    end: Option<StreamEnd>,
    failed: bool,
}

impl QueryStream {
    /// The output schema (known before any row is produced — the
    /// "schema frame" of a serving protocol).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The next batch: `Ok(Some(batch))` while rows flow, `Ok(None)`
    /// once the stream ended cleanly (then [`QueryStream::end`] is
    /// populated), or the run's error.
    pub fn next_batch(&mut self) -> Result<Option<RowBatch>, EngineError> {
        if self.end.is_some() || self.failed {
            return Ok(None);
        }
        let Some(rx) = self.rx.as_ref() else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(StreamMsg::Batch(batch)) => {
                self.resident.fetch_sub(batch.rows.len(), Ordering::SeqCst);
                Ok(Some(batch))
            }
            Ok(StreamMsg::End(result)) => {
                self.join_worker();
                match *result {
                    Ok(end) => {
                        self.end = Some(end);
                        Ok(None)
                    }
                    Err(e) => {
                        self.failed = true;
                        Err(e)
                    }
                }
            }
            Err(_) => {
                self.failed = true;
                self.join_worker();
                Err(EngineError::Exec(ExecError::BadRequest {
                    detail: "internal: stream worker vanished without an end frame".into(),
                }))
            }
        }
    }

    /// Terminal metrics, available once [`QueryStream::next_batch`]
    /// has returned `Ok(None)`.
    pub fn end(&self) -> Option<&StreamEnd> {
        self.end.as_ref()
    }

    /// High-water mark of rows resident in the delivery channel
    /// (excludes the single in-construction batch on the worker and
    /// the single batch handed to the consumer — each bounded by
    /// `batch_rows` on its own).
    pub fn peak_resident_rows(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }

    /// Drain any remaining batches (discarding rows) and return the
    /// terminal metrics.
    pub fn finish(mut self) -> Result<StreamEnd, EngineError> {
        while self.next_batch()?.is_some() {}
        self.end.take().ok_or_else(|| {
            EngineError::Exec(ExecError::BadRequest {
                detail: "internal: stream ended without terminal metrics".into(),
            })
        })
    }

    /// Drain the stream into one `Relation` (tests and small results;
    /// defeats the memory bound by construction) plus the terminal
    /// metrics.
    pub fn collect_rows(mut self) -> Result<(Relation, StreamEnd), EngineError> {
        let mut rows = Vec::new();
        while let Some(batch) = self.next_batch()? {
            rows.extend(batch.rows);
        }
        let end = self.end.take().ok_or_else(|| {
            EngineError::Exec(ExecError::BadRequest {
                detail: "internal: stream ended without terminal metrics".into(),
            })
        })?;
        Ok((
            Relation::from_rows_unchecked(self.schema.clone(), rows),
            end,
        ))
    }

    fn join_worker(&mut self) {
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Iterator for QueryStream {
    type Item = Result<RowBatch, EngineError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_batch().transpose()
    }
}

impl Drop for QueryStream {
    fn drop(&mut self) {
        // Receiver first: an executing worker blocked in `send` must
        // see the channel closed, or the join would deadlock.
        drop(self.rx.take());
        self.join_worker();
    }
}

impl std::fmt::Debug for QueryStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryStream")
            .field("schema", &self.schema.name())
            .field("ended", &self.end.is_some())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Execute `query` under `opts`, streaming the result as bounded
    /// row batches — admission, planning and the simulated cost
    /// metrics are identical to [`Engine::run`]; only delivery (and
    /// host-side peak memory) changes. Admission errors surface
    /// synchronously; execution errors arrive through the stream.
    pub fn run_streamed(
        &self,
        query: &MultiwayQuery,
        opts: &RunOptions,
        stream_opts: &StreamOptions,
    ) -> Result<QueryStream, EngineError> {
        let q = augment_query(query);
        self.stream_admitted(
            q.clone(),
            q,
            opts,
            stream_opts,
            Vec::new(),
            Vec::new(),
            None,
        )
    }

    /// Parse and execute a SQL query end-to-end as a stream (the
    /// streaming analogue of [`Engine::run_sql_with`]): per-query alias
    /// namespaces are registered up front and unloaded when the run
    /// finishes — or when the stream is dropped mid-way. Like
    /// [`Engine::run_sql_with`], the plan comes from the shared plan
    /// cache, so a repeated streamed query skips planning too.
    pub fn run_sql_streamed(
        &self,
        name: &str,
        sql: &str,
        opts: &RunOptions,
        stream_opts: &StreamOptions,
    ) -> Result<QueryStream, EngineError> {
        let parsed = self.parse_sql(name, sql)?;
        self.stream_parsed(&parsed, &[], None, opts, stream_opts)
    }

    /// Execute a prepared statement as a stream — the streaming
    /// analogue of [`Engine::execute`], off the same prepared handle
    /// and shared plan-cache entry (schema frame first, bounded
    /// batches, terminal metrics, RAII cancellation).
    pub fn execute_streamed(
        &self,
        prepared: &Prepared,
        params: &[f64],
        opts: &RunOptions,
        stream_opts: &StreamOptions,
    ) -> Result<QueryStream, EngineError> {
        let (parsed, shape) = self.current_parse(prepared)?;
        self.stream_parsed(&parsed, params, Some(&shape), opts, stream_opts)
    }

    /// Namespace, bind and stream one parsed template; `shape`
    /// overrides the plan-cache key for prepared statements. Planning
    /// uses the template (param slots intact — one plan per template),
    /// execution the bound query.
    fn stream_parsed(
        &self,
        parsed: &ParsedQuery,
        params: &[f64],
        shape: Option<&str>,
        opts: &RunOptions,
        stream_opts: &StreamOptions,
    ) -> Result<QueryStream, EngineError> {
        let (ns, renames) = self.namespace_instances(parsed);
        let bound = ns.bind(params)?;
        let cleanup: Vec<String> = ns.instances.iter().map(|(i, _)| i.clone()).collect();
        let admitted = self.register_instances(&ns).and_then(|()| {
            self.stream_admitted(
                augment_query(&ns.query),
                augment_query(&bound.query),
                opts,
                stream_opts,
                renames,
                cleanup.clone(),
                shape,
            )
        });
        match admitted {
            Ok(stream) => Ok(stream),
            Err(e) => {
                // Never admitted: the worker that would normally
                // unload the namespace does not exist.
                for instance in &cleanup {
                    self.unload_quiet(instance);
                }
                Err(e)
            }
        }
    }

    /// Admit a query (planned from `q_plan`, the augmented template)
    /// and spawn the execution worker — running the augmented bound
    /// `q_exec` — wired to a fresh bounded channel. `renames` map
    /// internal instance names back to public aliases on the schema
    /// and end metrics; `cleanup` instances are unloaded when the
    /// worker finishes for any reason; `shape` overrides the
    /// plan-cache key (prepared statements).
    #[allow(clippy::too_many_arguments)]
    fn stream_admitted(
        &self,
        q_plan: MultiwayQuery,
        q_exec: MultiwayQuery,
        opts: &RunOptions,
        stream_opts: &StreamOptions,
        renames: Vec<(String, String)>,
        cleanup: Vec<String>,
        shape: Option<&str>,
    ) -> Result<QueryStream, EngineError> {
        if opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let admitted = self.admit_for(&q_plan, opts, shape)?;
        let q = q_exec;
        let sorted = sorted_renames(&renames);
        // `augment_query` always materialises a projection, so the
        // output schema is known before execution — schema-first.
        let schema = rename_schema(&q.output_schema(), &sorted);
        let resident = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = sync_channel(stream_opts.channel_depth.max(1));
        let sink = Arc::new(ChannelSink {
            tx: tx.clone(),
            resident: Arc::clone(&resident),
            peak: Arc::clone(&peak),
            rows: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let spec = SinkSpec::new(
            Arc::clone(&sink) as Arc<dyn BatchSink>,
            stream_opts.batch_rows,
        );
        let engine = self.clone();
        let opts = opts.clone();
        let worker = std::thread::Builder::new()
            .name("mwtj-stream".into())
            .spawn(move || {
                let result = engine.execute_admitted(&admitted, &q, &opts, Some(spec));
                // Release the reservation before the unload sweep and
                // before announcing the end: unloads can block on a DFS
                // namespace lock, and a failed run must not sit on its
                // processing units while tidying up — a consumer that
                // has seen StreamEnd must observe the units returned.
                drop(admitted);
                for instance in &cleanup {
                    engine.unload_quiet(instance);
                }
                let end = result.map(|run| StreamEnd {
                    rows: sink.rows.load(Ordering::Relaxed),
                    batches: sink.batches.load(Ordering::Relaxed),
                    plan: apply_renames(&run.plan, &sorted),
                    predicted_secs: run.predicted_secs,
                    sim_secs: run.sim_secs,
                    real_secs: run.real_secs,
                    jobs: run
                        .jobs
                        .into_iter()
                        .map(|mut m| {
                            m.name = apply_renames(&m.name, &sorted);
                            m
                        })
                        .collect(),
                    ticket: run.ticket,
                    granted_units: run.granted_units,
                    trace_id: run.trace_id,
                });
                let _ = tx.send(StreamMsg::End(Box::new(end)));
            })
            .expect("spawn stream worker");
        Ok(QueryStream {
            schema,
            rx: Some(rx),
            worker: Some(worker),
            resident,
            peak,
            end: None,
            failed: false,
        })
    }
}

impl Session {
    /// Stream `query` under the session's default options and default
    /// [`StreamOptions`].
    pub fn stream(&self, query: &MultiwayQuery) -> Result<QueryStream, EngineError> {
        self.engine()
            .run_streamed(query, self.options(), &StreamOptions::default())
    }

    /// Stream a SQL query under the session's default options.
    pub fn stream_sql(&self, sql: &str) -> Result<QueryStream, EngineError> {
        self.engine()
            .run_sql_streamed("sql", sql, self.options(), &StreamOptions::default())
    }

    /// Stream a prepared statement under the session's default options
    /// and default [`StreamOptions`].
    pub fn stream_execute(
        &self,
        prepared: &Prepared,
        params: &[f64],
    ) -> Result<QueryStream, EngineError> {
        self.engine()
            .execute_streamed(prepared, params, self.options(), &StreamOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Relation, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
                .collect(),
        )
    }

    fn engine_and_query() -> (Engine, MultiwayQuery) {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 80, 1, 25);
        let s = random_rel("s", 70, 2, 25);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Le, "s", "a")
            .build()
            .unwrap();
        (engine, q)
    }

    #[test]
    fn streamed_batches_concatenate_to_run_output() {
        let (engine, q) = engine_and_query();
        let run = engine.run(&q, &RunOptions::default()).unwrap();
        let stream = engine
            .run_streamed(
                &q,
                &RunOptions::default(),
                &StreamOptions::new().batch_rows(13).channel_depth(2),
            )
            .unwrap();
        assert_eq!(stream.schema(), run.output.schema());
        let (rel, end) = stream.collect_rows().unwrap();
        assert_eq!(rel.rows(), run.output.rows(), "row-for-row identical");
        assert_eq!(end.rows as usize, run.output.len());
        assert!(end.batches >= 1);
        assert_eq!(end.sim_secs, run.sim_secs, "simulated clock unchanged");
        assert_eq!(end.granted_units, run.granted_units);
        assert!(end.ticket > 0 && end.ticket != run.ticket);
        // Ticket released after the stream ended.
        assert_eq!(engine.scheduler().stats().in_flight_units, 0);
    }

    #[test]
    fn batches_respect_the_size_bound() {
        let (engine, q) = engine_and_query();
        let mut stream = engine
            .run_streamed(
                &q,
                &RunOptions::default(),
                &StreamOptions::new().batch_rows(7),
            )
            .unwrap();
        let mut total = 0u64;
        while let Some(batch) = stream.next_batch().unwrap() {
            assert!(batch.rows.len() <= 7, "batch of {}", batch.rows.len());
            assert!(!batch.is_empty());
            total += batch.rows.len() as u64;
        }
        assert_eq!(stream.end().unwrap().rows, total);
    }

    #[test]
    fn dropping_mid_stream_releases_ticket_and_dfs() {
        let (engine, q) = engine_and_query();
        let mut stream = engine
            .run_streamed(
                &q,
                &RunOptions::default(),
                &StreamOptions::new().batch_rows(1).channel_depth(1),
            )
            .unwrap();
        // Take one batch, then walk away.
        let first = stream.next_batch().unwrap();
        assert!(first.is_some());
        drop(stream); // joins the worker: cancellation is deterministic
        assert_eq!(engine.scheduler().stats().in_flight_units, 0);
        assert!(
            engine
                .cluster()
                .dfs()
                .list()
                .iter()
                .all(|f| !f.starts_with("__run")),
            "cancelled run leaked intermediates: {:?}",
            engine.cluster().dfs().list()
        );
    }

    #[test]
    fn streamed_admission_errors_are_synchronous() {
        let (engine, q) = engine_and_query();
        engine.scheduler().shutdown();
        match engine.run_streamed(&q, &RunOptions::default(), &StreamOptions::default()) {
            Err(EngineError::Admission(_)) => {}
            other => panic!("expected Admission error, got {other:?}"),
        }
    }
}
