//! `EXPLAIN` / `EXPLAIN ANALYZE`: inspect a query's chosen plan and
//! Eq. 2 admission estimate without executing it, or execute it and
//! render the full lifecycle profile.
//!
//! Plain `EXPLAIN` goes through the same machinery an execution would
//! — per-run alias namespace, statistics snapshot, the shared
//! epoch-verified plan cache — but stops before admission: no ticket
//! is taken, no job runs, and the scheduler never sees the query.
//! `EXPLAIN ANALYZE` executes normally (admission control included)
//! with tracing forced on, then reports the per-stage profile tree
//! next to the plan.

use crate::engine::{augment_query, query_shape, restore_public_names, Engine, Session};
use crate::error::EngineError;
use crate::options::{Method, RunOptions};
use mwtj_obs::next_trace_id;
use mwtj_planner::QueryRun;
use mwtj_query::Statement;
use mwtj_storage::RelationStats;

/// What `EXPLAIN [ANALYZE]` reports for one statement.
#[derive(Debug)]
pub struct ExplainReport {
    /// Process-unique trace id (the analyzed run's own id when
    /// `analyze` is set).
    pub trace_id: u64,
    /// Whether the statement was executed (`EXPLAIN ANALYZE`).
    pub analyze: bool,
    /// The method the plan was made for.
    pub method: Method,
    /// Human-readable plan description (public alias names).
    pub plan: String,
    /// Planner-predicted makespan in simulated seconds (0 for the
    /// k_P-unaware baselines, which carry no estimate).
    pub predicted_secs: f64,
    /// Units admission would request — the Eq. 2 estimate after the
    /// zone-map skip discount (the full `k_P` for baselines).
    pub requested_units: u32,
    /// The cluster's `k_P` budget the request is served from.
    pub k_p: u32,
    /// Whether the plan came from the shared plan cache (`None` for
    /// baselines, which plan nothing).
    pub cache_hit: Option<bool>,
    /// The executed run, when `analyze` is set. Its `profile` carries
    /// the per-stage tree [`ExplainReport::render`] prints.
    pub analyzed: Option<QueryRun>,
}

impl ExplainReport {
    /// Render the report as stable `key: value` lines followed by the
    /// profile tree for `EXPLAIN ANALYZE` — the text body the server's
    /// `explain` verb answers with.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("plan: {}\n", self.plan));
        out.push_str(&format!("method: {}\n", self.method));
        out.push_str(&format!("predicted_secs: {:.6}\n", self.predicted_secs));
        out.push_str(&format!(
            "units: requested={} k_p={}\n",
            self.requested_units, self.k_p
        ));
        match self.cache_hit {
            Some(hit) => out.push_str(&format!("cache: {}\n", if hit { "hit" } else { "miss" })),
            None => out.push_str("cache: none\n"),
        }
        match &self.analyzed {
            Some(run) => {
                out.push_str(&format!(
                    "rows: {} sim_secs={:.6} granted_units={}\n",
                    run.output.len(),
                    run.sim_secs,
                    run.granted_units
                ));
                match run.profile() {
                    Some(profile) => out.push_str(&profile.render()),
                    None => out.push_str(&format!("trace={}\n", self.trace_id)),
                }
            }
            None => out.push_str(&format!("trace={}\n", self.trace_id)),
        }
        out
    }
}

impl Engine {
    /// Explain a statement. Accepts `EXPLAIN <query>`,
    /// `EXPLAIN ANALYZE <query>`, or a bare query (treated as plain
    /// `EXPLAIN`). Plain `EXPLAIN` plans through the shared plan cache
    /// without taking an admission ticket or executing anything;
    /// `EXPLAIN ANALYZE` executes normally with tracing forced on.
    ///
    /// `?`-parameterised templates cannot be explained (there is no
    /// binding to price); they fail with a typed error.
    pub fn explain_sql(
        &self,
        name: &str,
        sql: &str,
        opts: &RunOptions,
    ) -> Result<ExplainReport, EngineError> {
        let stmt = self.parse_statement(name, sql)?;
        let (analyze, parsed) = match stmt {
            Statement::Explain { analyze, query } => (analyze, query),
            Statement::Select(query) => (false, query),
        };
        if analyze {
            self.explain_analyze(&parsed, opts)
        } else {
            self.explain_plan(&parsed, opts)
        }
    }

    /// `EXPLAIN ANALYZE`: execute with tracing forced on and wrap the
    /// finished run.
    fn explain_analyze(
        &self,
        parsed: &mwtj_query::ParsedQuery,
        opts: &RunOptions,
    ) -> Result<ExplainReport, EngineError> {
        let run_opts = opts.clone().tracing(true);
        if run_opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let (ns, renames) = self.namespace_instances(parsed);
        let bound = ns.bind(&[])?;
        let result = self.register_instances(&ns).and_then(|()| {
            let q = augment_query(&bound.query);
            let admitted = self.admit_for(&q, &run_opts, None)?;
            self.execute_admitted(&admitted, &q, &run_opts, None)
        });
        for (internal, _) in &ns.instances {
            self.unload_quiet(internal);
        }
        let run = restore_public_names(result?, &renames);
        Ok(ExplainReport {
            trace_id: run.trace_id,
            analyze: true,
            method: run_opts.get_method(),
            plan: run.plan.clone(),
            predicted_secs: run.predicted_secs,
            requested_units: run.granted_units,
            k_p: self.cluster().config().processing_units,
            cache_hit: None,
            analyzed: Some(run),
        })
    }

    /// Plain `EXPLAIN`: plan through the shared cache (so it reports
    /// exactly the artifact an execution would run) without admission
    /// or execution.
    fn explain_plan(
        &self,
        parsed: &mwtj_query::ParsedQuery,
        opts: &RunOptions,
    ) -> Result<ExplainReport, EngineError> {
        if opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let (ns, renames) = self.namespace_instances(parsed);
        let bound = ns.bind(&[])?;
        let trace_id = next_trace_id();
        let k_p = self.cluster().config().processing_units;
        let method = opts.get_method();
        let report = self.register_instances(&ns).and_then(|()| {
            let q = augment_query(&bound.query);
            match method {
                Method::Ours | Method::OursGrid => {
                    let planner = self.planner();
                    let (owned_stats, bases, epoch) = self.snapshot_stats(&q)?;
                    let stats: Vec<&RelationStats> = owned_stats.iter().collect();
                    // `sys.*` queries bypass the plan cache in both
                    // directions, mirroring admission: the plan prices
                    // a per-query snapshot no later run will see.
                    let sys_query = bases.iter().any(|b| crate::sys::is_sys(b));
                    let key_prefix = format!("{}|{}", query_shape(&q), bases.join(","));
                    let (plan, cache_hit) = if sys_query {
                        (
                            std::sync::Arc::new(planner.plan_query(&q, &stats, k_p)?),
                            None,
                        )
                    } else {
                        self.plan_for(&planner, &q, &stats, &key_prefix, k_p, epoch, false)
                            .map(|(plan, hit)| (plan, Some(hit)))?
                    };
                    let requested = if sys_query {
                        0
                    } else if opts.skipping_enabled() {
                        self.discounted_units(&key_prefix, plan.units, epoch)
                    } else {
                        plan.units
                    };
                    let n_shelves = plan
                        .schedule
                        .shelves
                        .iter()
                        .copied()
                        .max()
                        .map_or(0, |m| m + 1);
                    Ok(ExplainReport {
                        trace_id,
                        analyze: false,
                        method,
                        plan: format!(
                            "ours: {} chain MRJ(s) {:?}, {} shelf(s), allotments {:?}",
                            plan.chosen.len(),
                            plan.schedule.chosen_masks,
                            n_shelves,
                            plan.schedule.allotments
                        ),
                        predicted_secs: plan.predicted_secs(),
                        requested_units: requested,
                        k_p,
                        cache_hit,
                        analyzed: None,
                    })
                }
                Method::YSmart | Method::Hive | Method::Pig => Ok(ExplainReport {
                    trace_id,
                    analyze: false,
                    method,
                    plan: format!("{method}: k_P-unaware cascade (plans at execution)"),
                    predicted_secs: 0.0,
                    requested_units: k_p,
                    k_p,
                    cache_hit: None,
                    analyzed: None,
                }),
            }
        });
        for (internal, _) in &ns.instances {
            self.unload_quiet(internal);
        }
        let mut report = report?;
        let sorted = crate::engine::sorted_renames(&renames);
        report.plan = crate::engine::apply_renames(&report.plan, &sorted);
        Ok(report)
    }
}

impl Session {
    /// Explain a statement under the session's default options.
    pub fn explain(&self, sql: &str) -> Result<ExplainReport, EngineError> {
        self.engine().explain_sql("sql", sql, self.options())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_storage::{tuple, DataType, Relation, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn demo_engine() -> Engine {
        let engine = Engine::with_units(8);
        let mut rng = StdRng::seed_from_u64(7);
        for (name, n) in [("r", 60usize), ("s", 50)] {
            let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
            let rel = Relation::from_rows_unchecked(
                schema,
                (0..n)
                    .map(|_| tuple![rng.gen_range(0..20i64), rng.gen_range(0..20i64)])
                    .collect(),
            );
            let _ = engine.load_relation(&rel);
        }
        engine
    }

    const SQL: &str = "SELECT t1.a FROM r t1, s t2 WHERE t1.a <= t2.a";

    #[test]
    fn plain_explain_plans_without_executing() {
        let engine = demo_engine();
        let opts = RunOptions::default();
        let report = engine
            .explain_sql("q", &format!("EXPLAIN {SQL}"), &opts)
            .unwrap();
        assert!(!report.analyze);
        assert!(report.analyzed.is_none());
        assert_eq!(report.cache_hit, Some(false), "cold cache");
        assert!(report.plan.starts_with("ours:"), "{}", report.plan);
        assert!(!report.plan.contains("__q"), "{}", report.plan);
        assert!(report.predicted_secs > 0.0);
        assert!(report.requested_units >= 1 && report.requested_units <= report.k_p);
        // No admission happened, nothing executed.
        assert_eq!(engine.scheduler().stats().admitted, 0);
        // The plan it cached is the one a run would use: a subsequent
        // EXPLAIN hits.
        let warm = engine
            .explain_sql("q", &format!("EXPLAIN {SQL}"), &opts)
            .unwrap();
        assert_eq!(warm.cache_hit, Some(true));
        // A bare query (no EXPLAIN keyword) is treated as EXPLAIN.
        let bare = engine.explain_sql("q", SQL, &opts).unwrap();
        assert!(!bare.analyze);
        let text = bare.render();
        assert!(text.contains("plan: ours:"), "{text}");
        assert!(text.contains("cache: hit"), "{text}");
        assert!(text.contains("trace="), "{text}");
        // Internal instances were cleaned up.
        assert!(engine.relation("t1").is_none());
    }

    #[test]
    fn explain_analyze_executes_and_profiles() {
        let engine = demo_engine();
        let report = engine
            .explain_sql(
                "q",
                &format!("EXPLAIN ANALYZE {SQL}"),
                &RunOptions::default(),
            )
            .unwrap();
        assert!(report.analyze);
        let run = report.analyzed.as_ref().unwrap();
        assert!(!run.output.is_empty());
        assert_eq!(run.trace_id, report.trace_id);
        let profile = run.profile().expect("analyze forces tracing");
        assert_eq!(profile.trace_id, report.trace_id);
        for stage in ["plan", "admission", "execute", "job0/map"] {
            assert!(profile.find(stage).is_some(), "missing stage {stage}");
        }
        let text = report.render();
        assert!(text.contains("rows:"), "{text}");
        assert!(text.contains("execute"), "{text}");
        assert!(!text.contains("__q"), "internal names leaked: {text}");
        assert_eq!(engine.scheduler().stats().admitted, 1);
    }

    #[test]
    fn explain_analyze_overrides_notrace() {
        let engine = demo_engine();
        let report = engine
            .explain_sql(
                "q",
                &format!("EXPLAIN ANALYZE {SQL}"),
                &RunOptions::default().tracing(false),
            )
            .unwrap();
        assert!(
            report.analyzed.as_ref().unwrap().profile().is_some(),
            "EXPLAIN ANALYZE must profile even under +notrace"
        );
    }

    #[test]
    fn explain_baseline_reports_cascade() {
        let engine = demo_engine();
        let report = engine
            .explain_sql(
                "q",
                &format!("EXPLAIN {SQL}"),
                &RunOptions::from(Method::Hive),
            )
            .unwrap();
        assert_eq!(report.cache_hit, None);
        assert_eq!(report.requested_units, report.k_p);
        assert!(report.plan.contains("hive"), "{}", report.plan);
    }
}
