//! Prepared statements: parse once, plan once, execute many times.
//!
//! The query lifecycle has three separately-ownable stages — **parse**
//! ([`Engine::prepare_sql`] → [`Prepared`], a reusable
//! [`ParsedQuery`] template with `?` positional parameters), **plan**
//! (the engine's shared plan cache of `Arc`-shared
//! [`QueryPlan`](mwtj_planner::QueryPlan) artifacts, keyed by
//! namespace-stripped query shape × base bindings × planning `k` and
//! invalidated by the statistics epoch), and **execute**
//! ([`Engine::execute`] / [`Engine::execute_streamed`]). Ad-hoc
//! [`Engine::run_sql`] is the same three stages composed per call, so
//! prepared and ad-hoc runs of one query text share a single plan
//! entry and are bit-identical in rows *and* simulated Eq. 2–4
//! metrics.
//!
//! Lifecycle guarantees:
//!
//! * **Reuse across executions and sessions** — [`Prepared`] is a
//!   cheap `Clone` (`Arc`-shared); any number of sessions can execute
//!   one handle concurrently. Executions after the first skip parsing
//!   (the handle holds the template) and planning (plan-cache hit,
//!   observable via [`Engine::stats_snapshot`]).
//! * **Never a stale plan** — every plan-cache entry carries the
//!   statistics epoch it was planned under, verified at admission
//!   time: a relation reload (or recalibration) between prepare and
//!   execute bumps the epoch, so the execution replans against fresh
//!   statistics. The parse itself re-binds lazily too: if the epoch
//!   moved since the statement was prepared, the SQL is re-parsed
//!   against the current catalog before binding parameters.
//! * **Degradation-aware** — when admission degrades a grant to a
//!   smaller `k`, the reduced-`k` replan is cached per `k` beside the
//!   full plan, so repeatedly degraded executions of one statement
//!   also skip planning.
//! * **Parameter binding** — `?` slots bind per execution
//!   ([`ParsedQuery::bind`]); the plan is keyed by the *template*
//!   shape and planned from the template itself (param slots
//!   disqualify binding-sensitive operators like the equi-hash pair
//!   join at candidate time), so one plan artifact is valid for — and
//!   shared by — every parameter vector. Any binding produces exactly
//!   the query's correct rows; plan choice affects cost, never
//!   results.

use crate::engine::{augment_query, query_shape, restore_public_names, Engine, Session};
use crate::error::EngineError;
use crate::options::RunOptions;
use mwtj_obs::Span;
use mwtj_planner::QueryRun;
use mwtj_query::ParsedQuery;
use parking_lot::RwLock;
use std::sync::Arc;

/// A prepared statement: the parse stage's reusable product, bound to
/// the SQL text it was prepared from. Cheap to clone — all clones
/// share one template — and safe to execute from many sessions
/// concurrently.
///
/// Obtain one with [`Engine::prepare_sql`] (or [`Session::prepare`]);
/// run it with [`Engine::execute`], [`Engine::execute_streamed`],
/// [`Session::execute`].
#[derive(Clone)]
pub struct Prepared {
    inner: Arc<PreparedInner>,
}

struct PreparedInner {
    name: String,
    sql: String,
    state: RwLock<PreparedState>,
}

/// The epoch-stamped parse. Re-parsed lazily when the engine's
/// statistics epoch moves (a reload may have changed a base schema)
/// or when the statement is executed on a *different* engine than it
/// was last bound against (epochs of unrelated engines coincide
/// trivially — both start at 0 — so identity is tracked explicitly).
struct PreparedState {
    /// Identity of the engine the parse was bound against
    /// (process-unique, never reused).
    engine: u64,
    epoch: u64,
    parsed: ParsedQuery,
    /// The template's namespace-stripped shape (with `?` slots) — the
    /// plan-cache key prefix every execution of this statement shares.
    shape: String,
}

impl Prepared {
    /// The query name the statement was prepared under.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The SQL text the statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.inner.sql
    }

    /// Number of `?` positional parameters an execution must bind.
    pub fn param_count(&self) -> usize {
        self.inner.state.read().parsed.param_count()
    }
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("name", &self.inner.name)
            .field("sql", &self.inner.sql)
            .field("params", &self.param_count())
            .finish()
    }
}

impl Engine {
    /// Parse and alias-bind `sql` into a reusable [`Prepared`]
    /// statement (the first lifecycle stage) without planning or
    /// executing anything. `?` placeholders in predicate-offset
    /// position become positional parameters bound per
    /// [`Engine::execute`].
    pub fn prepare_sql(&self, name: &str, sql: &str) -> Result<Prepared, EngineError> {
        let parsed = self.parse_sql(name, sql)?;
        let shape = query_shape(&parsed.query);
        Ok(Prepared {
            inner: Arc::new(PreparedInner {
                name: name.to_string(),
                sql: sql.to_string(),
                state: RwLock::new(PreparedState {
                    engine: self.engine_id(),
                    epoch: self.stats_epoch(),
                    parsed,
                    shape,
                }),
            }),
        })
    }

    /// The statement's current parse and shape, re-parsed against the
    /// live catalog when the statistics epoch moved since the template
    /// was last bound (a reload may have changed a base schema, and a
    /// statement prepared on another engine must bind to *this*
    /// engine's catalog).
    pub(crate) fn current_parse(
        &self,
        prepared: &Prepared,
    ) -> Result<(ParsedQuery, String), EngineError> {
        let epoch = self.stats_epoch();
        let engine = self.engine_id();
        {
            let state = prepared.inner.state.read();
            if state.engine == engine && state.epoch == epoch {
                return Ok((state.parsed.clone(), state.shape.clone()));
            }
        }
        let parsed = self.parse_sql(&prepared.inner.name, &prepared.inner.sql)?;
        let shape = query_shape(&parsed.query);
        let mut state = prepared.inner.state.write();
        state.engine = engine;
        state.epoch = epoch;
        state.parsed = parsed.clone();
        state.shape = shape.clone();
        Ok((parsed, shape))
    }

    /// Execute a prepared statement with `params` bound to its `?`
    /// slots (pass `&[]` for a parameterless statement), under `opts`.
    ///
    /// The execution binds the statement's alias instances in a fresh
    /// per-run namespace (concurrent executions of one handle never
    /// collide), reserves its `k_P` slice through admission control
    /// sized by the cached plan artifact, and executes that artifact —
    /// re-planning only when the statistics epoch moved or the grant
    /// was degraded to a smaller `k` (then cached per `k`). Results and
    /// simulated Eq. 2–4 metrics are bit-identical to an ad-hoc
    /// [`Engine::run_sql`] of the same effective text.
    pub fn execute(
        &self,
        prepared: &Prepared,
        params: &[f64],
        opts: &RunOptions,
    ) -> Result<QueryRun, EngineError> {
        if opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let parse_span = Span::enter("parse");
        let (parsed, shape) = self.current_parse(prepared)?;
        let parse_record = parse_span.finish();
        let (ns, renames) = self.namespace_instances(&parsed);
        // Bind before registering, so an arity mismatch costs nothing.
        let bound = ns.bind(params)?;
        let result = self.register_instances(&ns).and_then(|()| {
            // Admission plans from the *template* (param slots intact):
            // one plan artifact under the template's cache key, valid
            // for every binding — slots disqualify binding-sensitive
            // operators at candidate time. Execution runs the bound
            // query through that artifact.
            let q_plan = augment_query(&ns.query);
            let q_exec = augment_query(&bound.query);
            let mut admitted = self.admit_for(&q_plan, opts, Some(&shape))?;
            if opts.tracing_enabled() {
                admitted.spans.insert(0, parse_record);
            }
            self.execute_admitted(&admitted, &q_exec, opts, None)
        });
        for (internal, _) in &ns.instances {
            self.unload_quiet(internal);
        }
        Ok(restore_public_names(result?, &renames))
    }
}

impl Session {
    /// Prepare a SQL statement on the session's engine (named "sql",
    /// like [`Session::run_sql`]).
    pub fn prepare(&self, sql: &str) -> Result<Prepared, EngineError> {
        self.engine().prepare_sql("sql", sql)
    }

    /// Execute a prepared statement under the session's default
    /// options.
    pub fn execute(&self, prepared: &Prepared, params: &[f64]) -> Result<QueryRun, EngineError> {
        self.engine().execute(prepared, params, self.options())
    }
}
