//! Admission-controlled scheduling of concurrent queries against the
//! shared `k_P` unit budget.
//!
//! The paper's cost model (Eq. 2–4) prices every plan against a fixed
//! cluster of `k_P` processing units, and the malleable scheduler
//! (§5.3) packs one query's jobs into that budget. A serving system
//! runs *many* queries at once, so the budget must be shared: the
//! [`Scheduler`] hands each query a reservation — a `k_P` slice sized
//! from the planner's cost estimate — and guarantees the aggregate of
//! in-flight reservations never exceeds `k_P`.
//!
//! When the cluster is oversubscribed an arriving query either
//! *degrades* (accepts the units currently free and replans at that
//! smaller `k`, if the free slice is at least [`AdmissionPolicy::
//! degrade_floor`] of what it wanted) or *queues* until enough units
//! free up. Reservations are RAII [`Ticket`]s: dropping one returns
//! its units and wakes the queue.
//!
//! Waiters are woken **shortest-job-first**: each admission carries the
//! planner's predicted makespan ([`Scheduler::admit_with_cost`]), and
//! freed units go to the cheapest eligible waiter (ties broken by
//! arrival order) rather than whoever wins the condvar race — a short
//! query overtakes a queued long one, cutting mean latency. The order
//! is work-conserving within the budget: a waiter whose floor exceeds
//! the free slice never blocks a later waiter that fits.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a query could not be admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The scheduler was shut down (server draining); queued and new
    /// queries are refused so the process can exit.
    ShuttingDown,
    /// The admission queue is at its configured depth limit; the
    /// caller should back off and retry.
    QueueFull {
        /// Queries already waiting.
        depth: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The query's real-time deadline passed while it was still
    /// waiting in the admission queue — it was refused without ever
    /// holding units.
    DeadlineExceeded,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::ShuttingDown => {
                write!(f, "admission refused: scheduler is shutting down")
            }
            AdmissionError::QueueFull { depth, limit } => {
                write!(
                    f,
                    "admission refused: queue full ({depth} waiting, limit {limit})"
                )
            }
            AdmissionError::DeadlineExceeded => {
                write!(f, "admission refused: deadline exceeded while queued")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Knobs governing how oversubscription is resolved.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Smallest fraction of its desired units a query will accept as a
    /// degraded grant (`0.0` = take any free unit, `1.0` = never
    /// degrade, always queue for the full ask). Default `0.5`.
    pub degrade_floor: f64,
    /// Maximum queries allowed to wait in the admission queue before
    /// new arrivals are refused with [`AdmissionError::QueueFull`].
    /// `None` = unbounded (library default; servers should bound it).
    pub max_queue: Option<usize>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            degrade_floor: 0.5,
            max_queue: None,
        }
    }
}

/// A snapshot of the scheduler's counters (all monotonic except
/// `in_flight_units` and `queued_now`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// The shared budget `k_P`.
    pub budget: u32,
    /// Units currently reserved by running queries.
    pub in_flight_units: u32,
    /// The largest `in_flight_units` ever observed — the invariant
    /// `peak_in_flight_units <= budget` is what admission control
    /// guarantees.
    pub peak_in_flight_units: u32,
    /// Queries currently waiting for units.
    pub queued_now: u32,
    /// Total queries admitted.
    pub admitted: u64,
    /// Admissions granted fewer units than desired (degraded replans).
    pub degraded: u64,
    /// Admissions that had to wait for units before being granted.
    pub queued: u64,
    /// Arrivals refused because the queue was at its depth limit
    /// (overload shedding) or their deadline passed while queued.
    pub shed: u64,
}

/// One queued admission: its SJF ordering key (predicted cost, then
/// arrival) and the smallest grant it would accept.
struct Waiter {
    seq: u64,
    cost: f64,
    floor: u32,
}

impl Waiter {
    /// Strict SJF ordering: cheaper predicted makespan first, arrival
    /// order among equals (`total_cmp` keeps NaN-free totality; unknown
    /// costs are `INFINITY` and go last).
    fn before(&self, cost: f64, seq: u64) -> bool {
        match self.cost.total_cmp(&cost) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < seq,
        }
    }
}

struct State {
    in_flight: u32,
    peak: u32,
    queued_now: u32,
    admitted: u64,
    degraded: u64,
    queued: u64,
    shed: u64,
    shutdown: bool,
    /// Waiting admissions (unordered; scans are O(queue), and queues
    /// are bounded-small in practice).
    waiting: Vec<Waiter>,
    /// Arrival stamp for SJF tie-breaks.
    next_seq: u64,
}

struct Inner {
    budget: u32,
    policy: AdmissionPolicy,
    state: Mutex<State>,
    cv: Condvar,
    next_ticket: AtomicU64,
}

/// The admission controller: a shared `k_P` unit budget that concurrent
/// queries reserve slices of. Cheap to clone (all clones share state).
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<Inner>,
}

impl Scheduler {
    /// A scheduler over a budget of `k_P` units with `policy`.
    pub fn with_policy(budget: u32, policy: AdmissionPolicy) -> Self {
        Scheduler {
            inner: Arc::new(Inner {
                budget: budget.max(1),
                policy,
                state: Mutex::new(State {
                    in_flight: 0,
                    peak: 0,
                    queued_now: 0,
                    admitted: 0,
                    degraded: 0,
                    queued: 0,
                    shed: 0,
                    shutdown: false,
                    waiting: Vec::new(),
                    next_seq: 0,
                }),
                cv: Condvar::new(),
                next_ticket: AtomicU64::new(1),
            }),
        }
    }

    /// A scheduler over a budget of `k_P` units with the default
    /// [`AdmissionPolicy`].
    pub fn new(budget: u32) -> Self {
        Self::with_policy(budget, AdmissionPolicy::default())
    }

    /// The shared budget `k_P`.
    pub fn budget(&self) -> u32 {
        self.inner.budget
    }

    /// An admission-exempt zero-unit ticket: a fresh ticket id with no
    /// budget reservation and no queueing, for introspection queries
    /// over the `sys.*` catalog — they must run even while the budget
    /// is exhausted, the queue is full, or the scheduler is shutting
    /// down. The ticket holds nothing, so its drop releases nothing,
    /// and it never counts in the admitted/degraded/queued/shed
    /// statistics.
    pub fn exempt(&self) -> Ticket {
        Ticket {
            scheduler: Arc::clone(&self.inner),
            id: self.inner.next_ticket.fetch_add(1, Ordering::Relaxed),
            desired: 0,
            granted: 0,
            queued: false,
            trace_id: 0,
        }
    }

    /// Reserve a slice of the budget for a query that wants `desired`
    /// units (clamped to `[1, k_P]`), with no cost estimate — the query
    /// is treated as infinitely long for shortest-job-first ordering
    /// and so yields to every cost-estimated waiter. Prefer
    /// [`Scheduler::admit_with_cost`] when a predicted makespan is
    /// available.
    pub fn admit(&self, desired: u32) -> Result<Ticket, AdmissionError> {
        self.admit_with_cost(desired, f64::INFINITY)
    }

    /// Reserve a slice of the budget for a query that wants `desired`
    /// units (clamped to `[1, k_P]`) and has a predicted makespan of
    /// `predicted_secs` (the planner's Eq. 2 estimate). Returns
    /// immediately when enough units are free and no cheaper waiter
    /// could use them, returns a *degraded* (smaller) grant when the
    /// free slice clears the policy floor, and otherwise queues until
    /// running queries release units — wakeups are ordered
    /// shortest-predicted-makespan-first (arrival order among equals),
    /// so a short query overtakes a queued long one.
    ///
    /// The returned [`Ticket`] releases its units on drop.
    pub fn admit_with_cost(
        &self,
        desired: u32,
        predicted_secs: f64,
    ) -> Result<Ticket, AdmissionError> {
        self.admit_with_cost_until(desired, predicted_secs, None)
    }

    /// Like [`Scheduler::admit_with_cost`], but the wait is bounded by
    /// an optional real-time `deadline`: a query still queued when its
    /// deadline passes is refused with
    /// [`AdmissionError::DeadlineExceeded`] instead of parking forever
    /// — it never held units, so nothing is leaked.
    pub fn admit_with_cost_until(
        &self,
        desired: u32,
        predicted_secs: f64,
        deadline: Option<std::time::Instant>,
    ) -> Result<Ticket, AdmissionError> {
        let desired = desired.clamp(1, self.inner.budget);
        let floor =
            ((desired as f64 * self.inner.policy.degrade_floor).ceil() as u32).clamp(1, desired);
        let cost = if predicted_secs.is_nan() {
            f64::INFINITY
        } else {
            predicted_secs
        };
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = state.next_seq;
        state.next_seq += 1;
        let mut waited = false;
        let unqueue = |state: &mut State, seq: u64| {
            if let Some(i) = state.waiting.iter().position(|w| w.seq == seq) {
                state.waiting.swap_remove(i);
            }
            state.queued_now -= 1;
        };
        loop {
            if state.shutdown {
                if waited {
                    unqueue(&mut state, seq);
                }
                return Err(AdmissionError::ShuttingDown);
            }
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    if waited {
                        unqueue(&mut state, seq);
                    }
                    state.shed += 1;
                    return Err(AdmissionError::DeadlineExceeded);
                }
            }
            let free = self.inner.budget - state.in_flight;
            let granted = if free >= desired {
                desired
            } else if free >= floor {
                free
            } else {
                0
            };
            // SJF: stand down while a cheaper waiter could use the free
            // units. A cheaper waiter whose floor exceeds `free` does
            // not block us (work conservation within the budget).
            let preempted = state
                .waiting
                .iter()
                .any(|w| w.seq != seq && w.floor <= free && w.before(cost, seq));
            if granted > 0 && !preempted {
                if waited {
                    unqueue(&mut state, seq);
                }
                state.in_flight += granted;
                state.peak = state.peak.max(state.in_flight);
                state.admitted += 1;
                if granted < desired {
                    state.degraded += 1;
                }
                // Leftover units may still fit a (costlier) waiter this
                // same release round; let them re-evaluate.
                if !state.waiting.is_empty() {
                    self.inner.cv.notify_all();
                }
                return Ok(Ticket {
                    scheduler: Arc::clone(&self.inner),
                    id: self.inner.next_ticket.fetch_add(1, Ordering::Relaxed),
                    desired,
                    granted,
                    queued: waited,
                    trace_id: 0,
                });
            }
            if !waited {
                if let Some(limit) = self.inner.policy.max_queue {
                    if state.queued_now as usize >= limit {
                        state.shed += 1;
                        return Err(AdmissionError::QueueFull {
                            depth: state.queued_now as usize,
                            limit,
                        });
                    }
                }
                waited = true;
                state.waiting.push(Waiter { seq, cost, floor });
                state.queued_now += 1;
                state.queued += 1;
            }
            state = match deadline {
                None => self.inner.cv.wait(state).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let timeout = d.saturating_duration_since(std::time::Instant::now());
                    self.inner
                        .cv
                        .wait_timeout(state, timeout)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }

    /// Refuse all queued and future admissions (server drain). Queries
    /// already holding tickets run to completion.
    pub fn shutdown(&self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        self.inner.cv.notify_all();
    }

    /// Whether [`Scheduler::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        SchedulerStats {
            budget: self.inner.budget,
            in_flight_units: state.in_flight,
            peak_in_flight_units: state.peak,
            queued_now: state.queued_now,
            admitted: state.admitted,
            degraded: state.degraded,
            queued: state.queued,
            shed: state.shed,
        }
    }
}

/// A live unit reservation. Dropping it returns the units to the
/// budget and wakes queued queries.
pub struct Ticket {
    scheduler: Arc<Inner>,
    id: u64,
    desired: u32,
    granted: u32,
    queued: bool,
    trace_id: u64,
}

impl Ticket {
    /// Unique id of this admission (stamped onto job metrics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Units the query asked for (its full-`k_P` plan's slice).
    pub fn desired(&self) -> u32 {
        self.desired
    }

    /// Units actually granted (≤ desired).
    pub fn granted(&self) -> u32 {
        self.granted
    }

    /// Whether the grant is smaller than the ask (the query must
    /// replan at `granted()` units).
    pub fn degraded(&self) -> bool {
        self.granted < self.desired
    }

    /// Whether the query had to wait in the admission queue.
    pub fn queued(&self) -> bool {
        self.queued
    }

    /// Trace id of the query run this admission belongs to (0 until
    /// [`Ticket::set_trace_id`] stamps it).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Stamp the owning run's trace id onto this admission (the engine
    /// does this right after generating the id; observation-only).
    pub fn set_trace_id(&mut self, trace_id: u64) {
        self.trace_id = trace_id;
    }
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("id", &self.id)
            .field("desired", &self.desired)
            .field("granted", &self.granted)
            .field("queued", &self.queued)
            .field("trace_id", &self.trace_id)
            .finish()
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let mut state = self
            .scheduler
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        state.in_flight -= self.granted;
        drop(state);
        self.scheduler.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn exempt_tickets_hold_no_units_even_when_exhausted() {
        let s = Scheduler::new(4);
        let t = s.admit(4).unwrap();
        assert_eq!(s.stats().in_flight_units, 4);
        // Budget fully consumed: an exempt ticket still issues
        // immediately, holds nothing, and is not degraded.
        let e = s.exempt();
        assert_eq!(e.granted(), 0);
        assert!(!e.degraded() && !e.queued());
        assert_ne!(e.id(), 0);
        assert_eq!(s.stats().in_flight_units, 4);
        let admitted_before = s.stats().admitted;
        drop(e);
        assert_eq!(s.stats().in_flight_units, 4, "exempt drop releases nothing");
        assert_eq!(s.stats().admitted, admitted_before);
        drop(t);
        // Exempt tickets also survive shutdown.
        s.shutdown();
        let e = s.exempt();
        assert_eq!(e.granted(), 0);
    }

    #[test]
    fn grants_full_ask_when_free() {
        let s = Scheduler::new(16);
        let t = s.admit(8).unwrap();
        assert_eq!(t.granted(), 8);
        assert!(!t.degraded() && !t.queued());
        assert_eq!(s.stats().in_flight_units, 8);
        drop(t);
        assert_eq!(s.stats().in_flight_units, 0);
        assert_eq!(s.stats().peak_in_flight_units, 8);
    }

    #[test]
    fn clamps_oversized_asks_to_budget() {
        let s = Scheduler::new(4);
        let t = s.admit(100).unwrap();
        assert_eq!(t.granted(), 4);
        assert!(!t.degraded(), "a clamped ask is not a degraded grant");
    }

    #[test]
    fn degrades_to_free_slice_above_floor() {
        let s = Scheduler::new(16);
        let _hold = s.admit(10).unwrap(); // 6 free
        let t = s.admit(8).unwrap(); // floor = 4 <= 6 -> degraded grant
        assert_eq!(t.granted(), 6);
        assert!(t.degraded());
        assert_eq!(s.stats().degraded, 1);
        assert_eq!(s.stats().in_flight_units, 16);
    }

    #[test]
    fn queues_below_floor_and_wakes_on_release() {
        let s = Scheduler::new(8);
        let hold = s.admit(7).unwrap(); // 1 free, floor for 8 is 4
        let s2 = s.clone();
        let peak_seen = Arc::new(AtomicU32::new(0));
        let p2 = Arc::clone(&peak_seen);
        let waiter = std::thread::spawn(move || {
            let t = s2.admit(8).unwrap();
            p2.store(t.granted(), Ordering::SeqCst);
            assert!(t.queued());
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.stats().queued_now, 1, "waiter must be queued");
        drop(hold);
        waiter.join().unwrap();
        assert_eq!(peak_seen.load(Ordering::SeqCst), 8);
        let st = s.stats();
        assert!(st.peak_in_flight_units <= st.budget);
        assert_eq!(st.queued, 1);
    }

    #[test]
    fn never_degrades_with_floor_one() {
        let s = Scheduler::with_policy(
            8,
            AdmissionPolicy {
                degrade_floor: 1.0,
                max_queue: None,
            },
        );
        let hold = s.admit(5).unwrap();
        // 3 free but floor = desired = 4: must queue, not degrade.
        let s2 = s.clone();
        let waiter = std::thread::spawn(move || s2.admit(4).unwrap().granted());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.stats().queued_now, 1);
        drop(hold);
        assert_eq!(waiter.join().unwrap(), 4);
        assert_eq!(s.stats().degraded, 0);
    }

    #[test]
    fn bounded_queue_refuses_excess() {
        let s = Scheduler::with_policy(
            4,
            AdmissionPolicy {
                degrade_floor: 1.0,
                max_queue: Some(1),
            },
        );
        let _hold = s.admit(4).unwrap();
        let s2 = s.clone();
        let _waiter = std::thread::spawn(move || {
            // Fills the one queue slot, then blocks until shutdown.
            let _ = s2.admit(4);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            s.admit(4).unwrap_err(),
            AdmissionError::QueueFull { depth: 1, limit: 1 }
        );
        assert_eq!(s.stats().shed, 1, "queue-full refusals count as shed");
        s.shutdown();
    }

    #[test]
    fn queued_admission_is_refused_at_its_deadline() {
        let s = Scheduler::new(4);
        let hold = s.admit(4).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_millis(60);
        let s2 = s.clone();
        let waiter = std::thread::spawn(move || s2.admit_with_cost_until(4, 1.0, Some(deadline)));
        assert_eq!(
            waiter.join().unwrap().unwrap_err(),
            AdmissionError::DeadlineExceeded
        );
        let st = s.stats();
        assert_eq!(st.shed, 1);
        assert_eq!(st.queued_now, 0, "deadline refusal must leave the queue");
        // Budget untouched: the refused query never held units.
        drop(hold);
        assert_eq!(s.stats().in_flight_units, 0);
        assert_eq!(s.admit(4).unwrap().granted(), 4);
    }

    #[test]
    fn live_deadline_admits_normally() {
        let s = Scheduler::new(4);
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        let t = s.admit_with_cost_until(4, 1.0, Some(deadline)).unwrap();
        assert_eq!(t.granted(), 4);
        assert_eq!(s.stats().shed, 0);
    }

    #[test]
    fn shutdown_drains_queue_with_typed_error() {
        let s = Scheduler::new(2);
        let _hold = s.admit(2).unwrap();
        let s2 = s.clone();
        let waiter = std::thread::spawn(move || s2.admit(2));
        std::thread::sleep(Duration::from_millis(50));
        s.shutdown();
        assert_eq!(
            waiter.join().unwrap().unwrap_err(),
            AdmissionError::ShuttingDown
        );
        assert_eq!(s.admit(1).unwrap_err(), AdmissionError::ShuttingDown);
        assert!(s.is_shutting_down());
    }

    #[test]
    fn short_query_overtakes_queued_long_one() {
        let s = Scheduler::new(4);
        let hold = s.admit(4).unwrap();
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        // Queue a long query first…
        let (s2, o2) = (s.clone(), Arc::clone(&order));
        let long = std::thread::spawn(move || {
            let t = s2.admit_with_cost(4, 500.0).unwrap();
            o2.lock().unwrap().push("long");
            drop(t);
        });
        while s.stats().queued_now < 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // …then a short one behind it.
        let (s3, o3) = (s.clone(), Arc::clone(&order));
        let short = std::thread::spawn(move || {
            let t = s3.admit_with_cost(4, 1.0).unwrap();
            o3.lock().unwrap().push("short");
            drop(t);
        });
        while s.stats().queued_now < 2 {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(hold);
        long.join().unwrap();
        short.join().unwrap();
        assert_eq!(
            *order.lock().unwrap(),
            vec!["short", "long"],
            "wakeups must be shortest-predicted-makespan-first"
        );
        let st = s.stats();
        assert_eq!(st.queued, 2);
        assert!(st.peak_in_flight_units <= st.budget);
    }

    #[test]
    fn sjf_is_work_conserving_within_the_budget() {
        // A cheap waiter whose floor exceeds the free slice must not
        // block a costlier waiter that fits.
        let s = Scheduler::with_policy(
            8,
            AdmissionPolicy {
                degrade_floor: 1.0,
                max_queue: None,
            },
        );
        let hold_half = s.admit(4).unwrap(); // 4 free
        let hold_rest = s.admit(4).unwrap(); // 0 free
        let (s2,) = (s.clone(),);
        let big_cheap = std::thread::spawn(move || s2.admit_with_cost(8, 1.0).unwrap().granted());
        while s.stats().queued_now < 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let (s3,) = (s.clone(),);
        let small_costly =
            std::thread::spawn(move || s3.admit_with_cost(4, 100.0).unwrap().granted());
        while s.stats().queued_now < 2 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Free 4 units: big_cheap (floor 8) cannot run, small_costly
        // (floor 4) must.
        drop(hold_half);
        assert_eq!(small_costly.join().unwrap(), 4);
        // Free the rest: big_cheap still waits for small_costly? No —
        // small_costly returned its units on drop already (granted()
        // consumed the ticket), so big_cheap gets its full 8.
        drop(hold_rest);
        assert_eq!(big_cheap.join().unwrap(), 8);
    }

    #[test]
    fn aggregate_reservations_never_exceed_budget_under_stress() {
        let s = Scheduler::new(12);
        let mut handles = Vec::new();
        for i in 0..32u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..20 {
                    let t = s.admit(1 + (i * 7 + j) % 12).unwrap();
                    assert!(t.granted() >= 1);
                    std::thread::yield_now();
                    drop(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let st = s.stats();
        assert_eq!(st.in_flight_units, 0);
        assert!(st.peak_in_flight_units <= st.budget);
        assert_eq!(st.admitted, 32 * 20);
    }
}
