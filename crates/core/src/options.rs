//! Per-run configuration: the evaluation [`Method`] and the
//! [`RunOptions`] builder unifying everything that used to be scattered
//! across `Method` variants, ad-hoc planner entry points, engine-level
//! fault plans and calibration calls.

use mwtj_hilbert::PartitionStrategy;
use mwtj_mapreduce::FaultPlan;
use mwtj_planner::ExecOptions;
use std::fmt;
use std::str::FromStr;

/// How to evaluate a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// The paper's method: `G'_JP` + set cover + Hilbert chain MRJs +
    /// `k_P`-aware malleable scheduling.
    #[default]
    Ours,
    /// Ablation: the paper's planner but grid (block) partitioning
    /// instead of the Hilbert curve. Equivalent to `Ours` with
    /// [`RunOptions::partition`] set to [`PartitionStrategy::Grid`].
    OursGrid,
    /// YSmart-style baseline.
    YSmart,
    /// Hive-style baseline.
    Hive,
    /// Pig-style baseline.
    Pig,
}

impl Method {
    /// All methods, in the order the paper's figures list them.
    pub const ALL: [Method; 5] = [
        Method::Ours,
        Method::OursGrid,
        Method::YSmart,
        Method::Hive,
        Method::Pig,
    ];

    /// The stable lowercase name `Display` prints — also the value of
    /// the `method` label on per-method metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Ours => "ours",
            Method::OursGrid => "ours-grid",
            Method::YSmart => "ysmart",
            Method::Hive => "hive",
            Method::Pig => "pig",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = String;

    /// Parse a method name as printed by `Display` (case-insensitive;
    /// `ours_grid` and `oursgrid` are accepted for `ours-grid`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ours" => Ok(Method::Ours),
            "ours-grid" | "ours_grid" | "oursgrid" => Ok(Method::OursGrid),
            "ysmart" => Ok(Method::YSmart),
            "hive" => Ok(Method::Hive),
            "pig" => Ok(Method::Pig),
            other => Err(format!(
                "unknown method `{other}` (expected ours, ours-grid, ysmart, hive or pig)"
            )),
        }
    }
}

/// Builder for one query run.
///
/// Defaults to the paper's method with Hilbert partitioning, no fault
/// injection and no calibration:
///
/// ```
/// use mwtj_core::{Method, RunOptions};
/// use mwtj_hilbert::PartitionStrategy;
///
/// let opts = RunOptions::new()
///     .method(Method::Ours)
///     .partition(PartitionStrategy::Grid);
/// assert_eq!(opts.to_string(), "ours:grid");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    method: Method,
    partition: Option<PartitionStrategy>,
    faults: Option<FaultPlan>,
    calibrate: bool,
    skipping: bool,
    deadline_ms: Option<u64>,
    tracing: bool,
    slow_ms: Option<u64>,
}

impl Default for RunOptions {
    /// [`Method::Ours`], Hilbert partitioning, no faults, no
    /// calibration, zone-map skipping **on**, tracing **on**.
    fn default() -> Self {
        RunOptions {
            method: Method::default(),
            partition: None,
            faults: None,
            calibrate: false,
            skipping: true,
            deadline_ms: None,
            tracing: true,
            slow_ms: None,
        }
    }
}

impl RunOptions {
    /// Defaults: [`Method::Ours`], Hilbert partitioning, no faults,
    /// no calibration, zone-map skipping on.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Set the evaluation method.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Override the space-partition strategy for chain MRJs (only
    /// meaningful for [`Method::Ours`]; [`Method::OursGrid`] is
    /// shorthand for `method(Ours).partition(Grid)`).
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = Some(strategy);
        self
    }

    /// Inject task failures for this run only (results are unaffected;
    /// the simulated clock pays for the reruns).
    pub fn fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Ensure the engine's cost model has been calibrated (the §6.2
    /// sweep) before planning this run. The sweep runs at most once per
    /// engine; later runs reuse the fitted parameters.
    pub fn calibrated(mut self, yes: bool) -> Self {
        self.calibrate = yes;
        self
    }

    /// Give this run a real-time deadline of `ms` milliseconds of host
    /// wall-clock, measured from admission. A run past its deadline is
    /// cancelled cooperatively (checked at task-attempt and
    /// stream-batch granularity) and fails with a typed
    /// `deadline exceeded` error, releasing its admission ticket,
    /// namespace and intermediate DFS files like any other failure. A
    /// queued run whose deadline passes while waiting for admission is
    /// refused without ever running.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Enable or disable zone-map data skipping for this run (on by
    /// default). The result rows are bit-identical either way — the
    /// switch only moves the pruning counters and the Eq. 2–4
    /// byte/record metrics, so it exists for ablations and debugging.
    pub fn skipping(mut self, yes: bool) -> Self {
        self.skipping = yes;
        self
    }

    /// Enable or disable per-run tracing (on by default). With tracing
    /// off the run carries no profile tree; rows, plan choice and the
    /// simulated Eq. 2–4 metrics are bit-identical either way —
    /// instrumentation is observation-only by contract (and by
    /// differential test).
    pub fn tracing(mut self, yes: bool) -> Self {
        self.tracing = yes;
        self
    }

    /// Flag this run as slow when its real wall-clock time reaches
    /// `ms` milliseconds, overriding the engine-wide slow-query
    /// threshold for this run only (0 disables the log for the run).
    pub fn slow_query_ms(mut self, ms: u64) -> Self {
        self.slow_ms = Some(ms);
        self
    }

    /// The chosen method.
    pub fn get_method(&self) -> Method {
        self.method
    }

    /// The effective partition strategy: an explicit
    /// [`RunOptions::partition`] always wins; otherwise the method's
    /// default ([`Method::OursGrid`] → grid, everything else →
    /// Hilbert).
    pub fn effective_partition(&self) -> PartitionStrategy {
        match (self.method, self.partition) {
            (_, Some(p)) => p,
            (Method::OursGrid, None) => PartitionStrategy::Grid,
            (_, None) => PartitionStrategy::Hilbert,
        }
    }

    /// Whether this run asks for a calibrated cost model.
    pub fn wants_calibration(&self) -> bool {
        self.calibrate
    }

    /// Whether zone-map data skipping is enabled for this run.
    pub fn skipping_enabled(&self) -> bool {
        self.skipping
    }

    /// The run's real-time deadline in milliseconds, if one was set.
    pub fn get_deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Whether per-run tracing is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing
    }

    /// The run's slow-query threshold override in milliseconds, if one
    /// was set (`Some(0)` = logging explicitly off for this run).
    pub fn get_slow_query_ms(&self) -> Option<u64> {
        self.slow_ms
    }

    /// Lower these options into the planner's execution knobs.
    pub(crate) fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            strategy: self.effective_partition(),
            faults: self.faults.clone(),
            skipping: self.skipping,
            ..ExecOptions::default()
        }
    }
}

impl From<Method> for RunOptions {
    fn from(method: Method) -> Self {
        RunOptions::new().method(method)
    }
}

impl fmt::Display for RunOptions {
    /// `method[:partition][+faults=p@seed/attempts][+calibrated]
    /// [+noskip][+deadline=ms][+notrace][+slow=ms]` — the partition is
    /// printed only when it overrides the method default, `+noskip`
    /// only when skipping is disabled, `+deadline=`/`+slow=` only when
    /// set, `+notrace` only when tracing is disabled. Every printed
    /// form parses back to an equal value (`FromStr` is the exact
    /// inverse; the wire protocol relies on it).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.method)?;
        if let Some(p) = self.partition {
            write!(f, ":{p}")?;
        }
        if let Some(faults) = &self.faults {
            write!(f, "+faults={faults}")?;
        }
        if self.calibrate {
            write!(f, "+calibrated")?;
        }
        if !self.skipping {
            write!(f, "+noskip")?;
        }
        if let Some(ms) = self.deadline_ms {
            write!(f, "+deadline={ms}")?;
        }
        if !self.tracing {
            write!(f, "+notrace")?;
        }
        if let Some(ms) = self.slow_ms {
            write!(f, "+slow={ms}")?;
        }
        Ok(())
    }
}

impl FromStr for RunOptions {
    type Err = String;

    /// Parse `method[:partition][+faults=p@seed/attempts][+calibrated]
    /// [+noskip][+deadline=ms][+notrace][+slow=ms]` (e.g. `ours`,
    /// `ours:grid`, `hive+calibrated`, `pig+faults=0.25@99/4`,
    /// `ours+noskip`, `ours+deadline=500`, `ours+notrace`,
    /// `ours+slow=100`) — exactly the forms `Display` prints.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut opts = RunOptions::new();
        let mut parts = s.split('+');
        let head = parts.next().unwrap_or_default();
        for flag in parts {
            let lower = flag.trim().to_ascii_lowercase();
            match lower.as_str() {
                "calibrated" => opts.calibrate = true,
                "noskip" => opts.skipping = false,
                "notrace" => opts.tracing = false,
                _ => {
                    if let Some(plan) = lower.strip_prefix("faults=") {
                        opts.faults = Some(plan.parse()?);
                    } else if let Some(ms) = lower.strip_prefix("deadline=") {
                        opts.deadline_ms = Some(ms.parse::<u64>().map_err(|e| {
                            format!("bad deadline `{ms}` (expected milliseconds): {e}")
                        })?);
                    } else if let Some(ms) = lower.strip_prefix("slow=") {
                        opts.slow_ms = Some(ms.parse::<u64>().map_err(|e| {
                            format!("bad slow-query threshold `{ms}` (expected milliseconds): {e}")
                        })?);
                    } else {
                        return Err(format!("unknown run-option flag `{lower}`"));
                    }
                }
            }
        }
        let (method, partition) = match head.split_once(':') {
            Some((m, p)) => (m, Some(p)),
            None => (head, None),
        };
        opts.method = method.trim().parse()?;
        if let Some(p) = partition {
            opts.partition = Some(p.trim().parse()?);
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_display_fromstr_roundtrip() {
        for m in Method::ALL {
            assert_eq!(m.to_string().parse::<Method>().unwrap(), m);
        }
        assert_eq!("OURS_GRID".parse::<Method>().unwrap(), Method::OursGrid);
        assert!("mapreduce".parse::<Method>().is_err());
    }

    #[test]
    fn options_roundtrip_and_effective_partition() {
        let opts: RunOptions = "ours:zorder+calibrated".parse().unwrap();
        assert_eq!(opts.get_method(), Method::Ours);
        assert_eq!(opts.effective_partition(), PartitionStrategy::ZOrder);
        assert!(opts.wants_calibration());
        assert_eq!(opts.to_string(), "ours:zorder+calibrated");

        assert_eq!(
            RunOptions::from(Method::OursGrid).effective_partition(),
            PartitionStrategy::Grid
        );
        // An explicit partition beats the OursGrid shorthand.
        assert_eq!(
            "ours-grid:zorder"
                .parse::<RunOptions>()
                .unwrap()
                .effective_partition(),
            PartitionStrategy::ZOrder
        );
        assert!("ours+turbo".parse::<RunOptions>().is_err());
        assert!("ours:diagonal".parse::<RunOptions>().is_err());
    }

    #[test]
    fn noskip_roundtrips_and_defaults_on() {
        assert!(RunOptions::new().skipping_enabled());
        let opts: RunOptions = "ours+noskip".parse().unwrap();
        assert!(!opts.skipping_enabled());
        assert_eq!(opts.to_string(), "ours+noskip");
        assert_eq!(opts.to_string().parse::<RunOptions>().unwrap(), opts);
        // The default prints nothing and parses back enabled.
        let dflt = RunOptions::new().method(Method::Hive);
        assert_eq!(dflt.to_string(), "hive");
        assert!(dflt
            .to_string()
            .parse::<RunOptions>()
            .unwrap()
            .skipping_enabled());
    }

    #[test]
    fn fault_plans_roundtrip_through_option_strings() {
        let opts = RunOptions::new()
            .method(Method::Pig)
            .fault_plan(mwtj_mapreduce::FaultPlan::with_probability(0.25, 99));
        let s = opts.to_string();
        assert_eq!(s, "pig+faults=0.25@99/4");
        assert_eq!(s.parse::<RunOptions>().unwrap(), opts);
        // Bare `+faults` (the old asymmetric form) is rejected.
        assert!("ours+faults".parse::<RunOptions>().is_err());
        assert!("ours+faults=bogus".parse::<RunOptions>().is_err());
    }

    #[test]
    fn tracing_and_slow_flags_roundtrip() {
        // Tracing defaults on and prints nothing.
        assert!(RunOptions::new().tracing_enabled());
        assert_eq!(RunOptions::new().method(Method::Hive).to_string(), "hive");
        let opts: RunOptions = "ours+notrace".parse().unwrap();
        assert!(!opts.tracing_enabled());
        assert_eq!(opts.to_string(), "ours+notrace");
        assert_eq!(opts.to_string().parse::<RunOptions>().unwrap(), opts);
        // Slow-query threshold roundtrips and composes.
        let opts = RunOptions::new().slow_query_ms(250);
        assert_eq!(opts.get_slow_query_ms(), Some(250));
        assert_eq!(opts.to_string(), "ours+slow=250");
        assert_eq!(opts.to_string().parse::<RunOptions>().unwrap(), opts);
        let full: RunOptions = "pig+noskip+deadline=100+notrace+slow=10".parse().unwrap();
        assert!(!full.tracing_enabled());
        assert_eq!(full.get_slow_query_ms(), Some(10));
        assert_eq!(full.to_string().parse::<RunOptions>().unwrap(), full);
        assert!("ours+slow=".parse::<RunOptions>().is_err());
        assert!("ours+slow=fast".parse::<RunOptions>().is_err());
    }

    #[test]
    fn deadlines_roundtrip_through_option_strings() {
        assert_eq!(RunOptions::new().get_deadline_ms(), None);
        let opts = RunOptions::new().method(Method::Hive).deadline_ms(750);
        assert_eq!(opts.get_deadline_ms(), Some(750));
        let s = opts.to_string();
        assert_eq!(s, "hive+deadline=750");
        assert_eq!(s.parse::<RunOptions>().unwrap(), opts);
        // Composes with the other flags in print order.
        let full: RunOptions = "pig+faults=0.25@99/4+noskip+deadline=100".parse().unwrap();
        assert_eq!(full.get_deadline_ms(), Some(100));
        assert!(!full.skipping_enabled());
        assert_eq!(full.to_string().parse::<RunOptions>().unwrap(), full);
        assert!("ours+deadline=".parse::<RunOptions>().is_err());
        assert!("ours+deadline=soon".parse::<RunOptions>().is_err());
    }
}
