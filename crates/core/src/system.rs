//! The legacy façade, kept for one release as a thin shim over
//! [`Engine`](crate::Engine).
//!
//! New code should use [`Engine`](crate::Engine)/[`Session`](crate::Session)
//! with [`RunOptions`](crate::RunOptions): they return typed errors
//! instead of panicking, serve queries concurrently, and unify the
//! partition/fault/calibration knobs.

// The shim must call itself.
#![allow(deprecated)]

use crate::engine::Engine;
use crate::options::RunOptions;
use mwtj_mapreduce::{Cluster, ClusterConfig};
use mwtj_planner::{Planner, QueryRun};
use mwtj_query::MultiwayQuery;
use mwtj_storage::{Relation, RelationStats, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

pub use crate::engine::{LoadReport, RID_COLUMN};
pub use crate::options::Method;

/// The legacy top-level system: a thin wrapper over [`Engine`].
///
/// Unlike the engine it panics on unloaded relations and plan
/// failures, exactly as the old façade did.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine`/`Session` with `RunOptions`; they return `Result<_, EngineError>` \
            instead of panicking and serve queries concurrently"
)]
pub struct ThetaJoinSystem {
    engine: Engine,
    /// Local stats mirror so `stats_of` can keep returning a reference
    /// (the engine's catalog lives behind a lock).
    stats: HashMap<String, RelationStats>,
}

impl ThetaJoinSystem {
    /// Build over a cluster configuration with default (uncalibrated)
    /// cost parameters.
    pub fn new(config: ClusterConfig) -> Self {
        ThetaJoinSystem {
            engine: Engine::new(config),
            stats: HashMap::new(),
        }
    }

    /// Shorthand: default cluster with `k_P` processing units.
    pub fn with_units(k_p: u32) -> Self {
        Self::new(ClusterConfig::with_units(k_p))
    }

    /// The underlying engine (migration escape hatch).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Run the §6.2 calibration sweep and swap in the fitted `p`/`q`.
    pub fn calibrate(&mut self) {
        self.engine.calibrate();
    }

    /// The underlying cluster (inspection; the DFS holds every loaded
    /// relation under its schema name).
    pub fn cluster(&self) -> &Cluster {
        self.engine.cluster()
    }

    /// The planner (a snapshot; calibration swaps it).
    pub fn planner(&self) -> Arc<Planner> {
        self.engine.planner()
    }

    /// Statistics collected for a loaded relation.
    pub fn stats_of(&self, name: &str) -> Option<&RelationStats> {
        self.stats.get(name)
    }

    /// Load a relation: append the implicit rowid column, upload to the
    /// DFS (replicated blocks), and run the sampling/statistics pass.
    pub fn load_relation(&mut self, rel: &Relation) -> LoadReport {
        let report = self.engine.load_relation(rel);
        self.mirror_stats(rel.name());
        report
    }

    /// Load the same data under another schema name (self-join
    /// instances `t1`, `t2`, … of one base table).
    pub fn load_alias(&mut self, rel: &Relation, alias: &str) -> LoadReport {
        let report = self.engine.load_alias(rel, alias);
        self.mirror_stats(alias);
        report
    }

    fn mirror_stats(&mut self, name: &str) {
        if let Some(stats) = self.engine.stats_of(name) {
            self.stats.insert(name.to_string(), stats);
        }
    }

    /// Execute `query` (built against the *base* schemas, without the
    /// rowid column) with the chosen method.
    ///
    /// # Panics
    /// Panics if a referenced relation was not loaded. Prefer
    /// [`Engine::run`], which returns a typed error.
    pub fn run(&self, query: &MultiwayQuery, method: Method) -> QueryRun {
        self.engine
            .run(query, &RunOptions::from(method))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Single-threaded ground truth for `query` over the loaded data.
    ///
    /// # Panics
    /// Panics if a referenced relation was not loaded. Prefer
    /// [`Engine::oracle`], which returns a typed error.
    pub fn oracle(&self, query: &MultiwayQuery) -> Vec<Tuple> {
        self.engine.oracle(query).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_join::oracle::canonicalize;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::{tuple, DataType, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
                .collect(),
        )
    }

    #[test]
    fn load_reports_costs_and_registers_stats() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let r = random_rel("r", 5_000, 1, 100);
        let rep = sys.load_relation(&r);
        assert!(rep.upload_secs > 0.0);
        assert!(rep.sampling_secs > 0.0);
        assert!(rep.total_secs() > rep.upload_secs);
        let st = sys.stats_of("r").unwrap();
        assert_eq!(st.cardinality, 5_000);
        // rid column present in stats.
        assert!(st.column(RID_COLUMN).is_some());
    }

    #[test]
    fn all_methods_agree_with_oracle() {
        let mut sys = ThetaJoinSystem::with_units(16);
        let r = random_rel("r", 150, 2, 40);
        let s = random_rel("s", 120, 3, 40);
        let t = random_rel("t", 100, 4, 40);
        let _ = sys.load_relation(&r);
        let _ = sys.load_relation(&s);
        let _ = sys.load_relation(&t);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .relation(t.schema().clone())
            .join("r", "a", ThetaOp::Le, "s", "a")
            .join("s", "b", ThetaOp::Eq, "t", "b")
            .build()
            .unwrap();
        let want = canonicalize(sys.oracle(&q));
        for m in Method::ALL {
            let run = sys.run(&q, m);
            let got = canonicalize(run.output.into_rows());
            assert_eq!(got, want, "{m:?}");
        }
    }

    #[test]
    fn rids_do_not_leak_into_default_projection() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let r = random_rel("r", 30, 5, 10);
        let s = random_rel("s", 30, 6, 10);
        let _ = sys.load_relation(&r);
        let _ = sys.load_relation(&s);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Eq, "s", "a")
            .build()
            .unwrap();
        let run = sys.run(&q, Method::Ours);
        // Output arity = 2 + 2 base columns, no rids.
        assert_eq!(run.output.schema().arity(), 4);
        assert!(run
            .output
            .schema()
            .fields()
            .iter()
            .all(|f| !f.name.contains(RID_COLUMN)));
    }

    #[test]
    fn alias_enables_self_joins() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let base = random_rel("calls", 80, 7, 20);
        let _ = sys.load_alias(&base, "t1");
        let _ = sys.load_alias(&base, "t2");
        let t1 = Schema::new("t1", base.schema().fields().to_vec());
        let t2 = Schema::new("t2", base.schema().fields().to_vec());
        let q = QueryBuilder::new("self")
            .relation(t1)
            .relation(t2)
            .join("t1", "a", ThetaOp::Lt, "t2", "a")
            .build()
            .unwrap();
        let want = canonicalize(sys.oracle(&q));
        let got = canonicalize(sys.run(&q, Method::Ours).output.into_rows());
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn calibrate_swaps_model_parameters() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let before = sys.planner().model().params().p0;
        sys.calibrate();
        let after = sys.planner().model().params().p0;
        // Calibration must produce real observations (params may or may
        // not move, but observations prove the sweep ran).
        assert!(!sys.planner().model().params().observations.is_empty());
        let _ = (before, after);
    }
}
