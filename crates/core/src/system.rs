//! The system façade.

use mwtj_cost::{CalibratedParams, Calibrator, CostModel};
use mwtj_hilbert::PartitionStrategy;
use mwtj_join::oracle::oracle_join;
use mwtj_mapreduce::{Cluster, ClusterConfig};
use mwtj_planner::{Baseline, Planner, QueryRun};
use mwtj_query::MultiwayQuery;
use mwtj_storage::{DataType, Field, Relation, RelationStats, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The implicit row-identity column appended to every loaded relation.
/// Partial-result merging joins on it ("merge using the primary keys
/// ... only output keys or data IDs involved", §4.2); it is stripped
/// from final outputs unless explicitly projected.
pub const RID_COLUMN: &str = "__rid";

/// How to evaluate a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's method: `G'_JP` + set cover + Hilbert chain MRJs +
    /// `k_P`-aware malleable scheduling.
    Ours,
    /// Ablation: the paper's planner but grid (block) partitioning
    /// instead of the Hilbert curve.
    OursGrid,
    /// YSmart-style baseline.
    YSmart,
    /// Hive-style baseline.
    Hive,
    /// Pig-style baseline.
    Pig,
}

/// What loading a relation cost (Fig. 11's comparison).
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Simulated seconds for the raw replicated upload (the "Plain
    /// Hadoop Uploading" line).
    pub upload_secs: f64,
    /// Simulated seconds for the sampling + statistics pass our method
    /// adds (why "our method is a little more time consuming for the
    /// data uploading process", §6.3).
    pub sampling_secs: f64,
}

impl LoadReport {
    /// Total load time for our method.
    pub fn total_secs(&self) -> f64 {
        self.upload_secs + self.sampling_secs
    }
}

/// The top-level system: cluster + DFS + statistics + planner.
pub struct ThetaJoinSystem {
    cluster: Cluster,
    planner: Planner,
    stats: HashMap<String, RelationStats>,
    /// Kept for the oracle and tests: the augmented in-memory
    /// relations.
    relations: HashMap<String, Relation>,
    sample_cap: usize,
}

impl ThetaJoinSystem {
    /// Build over a cluster configuration with default (uncalibrated)
    /// cost parameters.
    pub fn new(config: ClusterConfig) -> Self {
        let model = CostModel::new(config.clone(), CalibratedParams::default());
        ThetaJoinSystem {
            cluster: Cluster::new(config),
            planner: Planner::new(model),
            stats: HashMap::new(),
            relations: HashMap::new(),
            sample_cap: 512,
        }
    }

    /// Shorthand: default cluster with `k_P` processing units.
    pub fn with_units(k_p: u32) -> Self {
        Self::new(ClusterConfig::with_units(k_p))
    }

    /// Run the §6.2 calibration sweep and swap in the fitted `p`/`q`.
    pub fn calibrate(&mut self) {
        let params = Calibrator::quick(self.cluster.config().clone()).calibrate();
        self.planner = Planner::new(CostModel::new(self.cluster.config().clone(), params));
    }

    /// The underlying cluster (inspection; the DFS holds every loaded
    /// relation under its schema name).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Statistics collected for a loaded relation.
    pub fn stats_of(&self, name: &str) -> Option<&RelationStats> {
        self.stats.get(name)
    }

    /// Load a relation: append the implicit rowid column, upload to the
    /// DFS (replicated blocks), and run the sampling/statistics pass.
    pub fn load_relation(&mut self, rel: &Relation) -> LoadReport {
        let augmented = augment_with_rid(rel);
        let upload_secs =
            self.cluster
                .dfs()
                .put_relation(augmented.name(), &augmented, self.cluster.config());
        // Sampling pass: one sequential scan of a sample's worth of
        // blocks + histogram building; priced as reading the sampled
        // fraction plus a fixed index-build overhead per block.
        let mut rng = StdRng::seed_from_u64(0x57a7 ^ augmented.len() as u64);
        let stats = RelationStats::collect(&augmented, self.sample_cap, &mut rng);
        let hw = &self.cluster.config().hardware;
        let sampled_bytes = (self.sample_cap as f64 * augmented.avg_row_bytes())
            .min(augmented.encoded_bytes() as f64);
        // Statistics collection re-reads the data once at scan rate and
        // writes a small index (the paper's "build the index structure").
        let sampling_secs = augmented.encoded_bytes() as f64 * hw.c1() * 0.25
            + sampled_bytes / hw.disk_write_bps;
        self.stats.insert(augmented.name().to_string(), stats);
        self.relations
            .insert(augmented.name().to_string(), augmented);
        LoadReport {
            upload_secs,
            sampling_secs,
        }
    }

    /// Load the same data under another schema name (self-join
    /// instances `t1`, `t2`, … of one base table).
    pub fn load_alias(&mut self, rel: &Relation, alias: &str) -> LoadReport {
        let renamed = Relation::from_rows_unchecked(
            Schema::new(alias, rel.schema().fields().to_vec()),
            rel.rows().to_vec(),
        );
        self.load_relation(&renamed)
    }

    /// Execute `query` (built against the *base* schemas, without the
    /// rowid column) with the chosen method.
    ///
    /// # Panics
    /// Panics if a referenced relation was not loaded.
    pub fn run(&self, query: &MultiwayQuery, method: Method) -> QueryRun {
        let q = self.augment_query(query);
        let stats: Vec<&RelationStats> = q
            .schemas
            .iter()
            .map(|s| {
                self.stats
                    .get(s.name())
                    .unwrap_or_else(|| panic!("relation `{}` not loaded", s.name()))
            })
            .collect();
        match method {
            Method::Ours => self.planner.execute_ours(&q, &stats, &self.cluster),
            Method::OursGrid => self.planner.execute_ours_with(
                &q,
                &stats,
                &self.cluster,
                PartitionStrategy::Grid,
            ),
            Method::YSmart => {
                self.planner
                    .execute_baseline(Baseline::YSmart, &q, &stats, &self.cluster)
            }
            Method::Hive => {
                self.planner
                    .execute_baseline(Baseline::Hive, &q, &stats, &self.cluster)
            }
            Method::Pig => {
                self.planner
                    .execute_baseline(Baseline::Pig, &q, &stats, &self.cluster)
            }
        }
    }

    /// Single-threaded ground truth for `query` over the loaded data.
    pub fn oracle(&self, query: &MultiwayQuery) -> Vec<Tuple> {
        let q = self.augment_query(query);
        let rels: Vec<&Relation> = q
            .schemas
            .iter()
            .map(|s| {
                self.relations
                    .get(s.name())
                    .unwrap_or_else(|| panic!("relation `{}` not loaded", s.name()))
            })
            .collect();
        oracle_join(&q, &rels)
    }

    /// Rebuild the query against the rowid-augmented schemas; if the
    /// user projected nothing, project every *base* column so the
    /// hidden rowids do not leak into results.
    fn augment_query(&self, query: &MultiwayQuery) -> MultiwayQuery {
        let schemas: Vec<Schema> = query
            .schemas
            .iter()
            .map(|s| {
                if s.index_of(RID_COLUMN).is_ok() {
                    s.clone()
                } else {
                    augment_schema(s)
                }
            })
            .collect();
        let projection = if query.projection.is_empty() {
            let mut all = Vec::new();
            for (r, s) in query.schemas.iter().enumerate() {
                for c in 0..s.arity() {
                    if s.fields()[c].name != RID_COLUMN {
                        all.push((r, c));
                    }
                }
            }
            all
        } else {
            query.projection.clone()
        };
        MultiwayQuery {
            schemas,
            conditions: query.conditions.clone(),
            projection,
            name: query.name.clone(),
        }
    }
}

/// Append the rowid column to a schema.
fn augment_schema(schema: &Schema) -> Schema {
    let mut fields: Vec<Field> = schema.fields().to_vec();
    fields.push(Field::new(RID_COLUMN, DataType::Int));
    Schema::new(schema.name(), fields)
}

/// Append per-row unique ids to a relation.
fn augment_with_rid(rel: &Relation) -> Relation {
    if rel.schema().index_of(RID_COLUMN).is_ok() {
        return rel.clone();
    }
    let schema = augment_schema(rel.schema());
    let rows: Vec<Tuple> = rel
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut v = row.values().to_vec();
            v.push(Value::Int(i as i64));
            Tuple::new(v)
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_join::oracle::canonicalize;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::tuple;
    use rand::Rng;

    fn random_rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
                .collect(),
        )
    }

    #[test]
    fn load_reports_costs_and_registers_stats() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let r = random_rel("r", 5_000, 1, 100);
        let rep = sys.load_relation(&r);
        assert!(rep.upload_secs > 0.0);
        assert!(rep.sampling_secs > 0.0);
        assert!(rep.total_secs() > rep.upload_secs);
        let st = sys.stats_of("r").unwrap();
        assert_eq!(st.cardinality, 5_000);
        // rid column present in stats.
        assert!(st.column(RID_COLUMN).is_some());
    }

    #[test]
    fn all_methods_agree_with_oracle() {
        let mut sys = ThetaJoinSystem::with_units(16);
        let r = random_rel("r", 150, 2, 40);
        let s = random_rel("s", 120, 3, 40);
        let t = random_rel("t", 100, 4, 40);
        sys.load_relation(&r);
        sys.load_relation(&s);
        sys.load_relation(&t);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .relation(t.schema().clone())
            .join("r", "a", ThetaOp::Le, "s", "a")
            .join("s", "b", ThetaOp::Eq, "t", "b")
            .build()
            .unwrap();
        let want = canonicalize(sys.oracle(&q));
        for m in [
            Method::Ours,
            Method::OursGrid,
            Method::YSmart,
            Method::Hive,
            Method::Pig,
        ] {
            let run = sys.run(&q, m);
            let got = canonicalize(run.output.into_rows());
            assert_eq!(got, want, "{m:?}");
        }
    }

    #[test]
    fn rids_do_not_leak_into_default_projection() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let r = random_rel("r", 30, 5, 10);
        let s = random_rel("s", 30, 6, 10);
        sys.load_relation(&r);
        sys.load_relation(&s);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Eq, "s", "a")
            .build()
            .unwrap();
        let run = sys.run(&q, Method::Ours);
        // Output arity = 2 + 2 base columns, no rids.
        assert_eq!(run.output.schema().arity(), 4);
        assert!(run
            .output
            .schema()
            .fields()
            .iter()
            .all(|f| !f.name.contains(RID_COLUMN)));
    }

    #[test]
    fn alias_enables_self_joins() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let base = random_rel("calls", 80, 7, 20);
        sys.load_alias(&base, "t1");
        sys.load_alias(&base, "t2");
        let t1 = Schema::new("t1", base.schema().fields().to_vec());
        let t2 = Schema::new("t2", base.schema().fields().to_vec());
        let q = QueryBuilder::new("self")
            .relation(t1)
            .relation(t2)
            .join("t1", "a", ThetaOp::Lt, "t2", "a")
            .build()
            .unwrap();
        let want = canonicalize(sys.oracle(&q));
        let got = canonicalize(sys.run(&q, Method::Ours).output.into_rows());
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn calibrate_swaps_model_parameters() {
        let mut sys = ThetaJoinSystem::with_units(8);
        let before = sys.planner().model().params().p0;
        sys.calibrate();
        let after = sys.planner().model().params().p0;
        // Calibration must produce real observations (params may or may
        // not move, but observations prove the sweep ran).
        assert!(!sys.planner().model().params().observations.is_empty());
        let _ = (before, after);
    }
}
