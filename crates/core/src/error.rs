//! The workspace-wide error type surfaced by the public API.

use crate::scheduler::AdmissionError;
use mwtj_mapreduce::ExecError;
use mwtj_planner::PlanError;
use std::fmt;

/// Any failure the engine can report for a query, load or parse.
///
/// Built on [`mwtj_storage::Error`] at the bottom of the stack: SQL
/// parsing and query compilation surface it via [`EngineError::Sql`],
/// planning and MapReduce execution via [`EngineError::Plan`] and
/// [`EngineError::Exec`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A query referenced a relation instance that was never loaded
    /// (or aliased) into the engine.
    RelationNotLoaded {
        /// The missing relation/instance name.
        name: String,
    },
    /// An alias registration asked to bind a name that is already
    /// bound to a different base table. Rebinding under a running
    /// engine would hand concurrent queries the wrong data, so it is
    /// refused; pick a fresh alias instead.
    AliasConflict {
        /// The contested instance name.
        alias: String,
        /// The base table the alias is currently bound to.
        bound_to: String,
        /// The base table the caller asked for.
        requested: String,
    },
    /// The admission controller refused the query (scheduler shutting
    /// down or admission queue full); the query never started.
    Admission(AdmissionError),
    /// SQL parsing or query compilation failed.
    Sql(mwtj_storage::Error),
    /// The planner could not produce or execute a plan.
    Plan(PlanError),
    /// The MapReduce layer rejected or failed a job outside planner
    /// control.
    Exec(ExecError),
}

impl EngineError {
    /// True when this failure is the query's real-time deadline
    /// expiring — whether it passed while the query was still parked
    /// in the admission queue or mid-execution (cooperatively observed
    /// at a block/batch boundary). Serving layers map this to a typed
    /// `err deadline exceeded` frame.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(
            self,
            EngineError::Admission(AdmissionError::DeadlineExceeded)
                | EngineError::Plan(PlanError::Exec(ExecError::DeadlineExceeded))
                | EngineError::Exec(ExecError::DeadlineExceeded)
        )
    }

    /// True when admission shed the query because its bounded queue
    /// was at capacity — the query never held units and is safe to
    /// retry after backing off. Serving layers map this to
    /// `err overloaded retry_after=<ms>`.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            EngineError::Admission(AdmissionError::QueueFull { .. })
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RelationNotLoaded { name } => {
                write!(f, "relation `{name}` not loaded")
            }
            EngineError::AliasConflict {
                alias,
                bound_to,
                requested,
            } => write!(
                f,
                "alias `{alias}` is bound to `{bound_to}`; cannot rebind it to `{requested}`"
            ),
            EngineError::Admission(e) => write!(f, "{e}"),
            EngineError::Sql(e) => write!(f, "SQL error: {e}"),
            EngineError::Plan(e) => write!(f, "planning error: {e}"),
            EngineError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Admission(e) => Some(e),
            EngineError::Sql(e) => Some(e),
            EngineError::Plan(e) => Some(e),
            EngineError::Exec(e) => Some(e),
            EngineError::RelationNotLoaded { .. } | EngineError::AliasConflict { .. } => None,
        }
    }
}

impl From<AdmissionError> for EngineError {
    fn from(e: AdmissionError) -> Self {
        EngineError::Admission(e)
    }
}

impl From<mwtj_storage::Error> for EngineError {
    fn from(e: mwtj_storage::Error) -> Self {
        EngineError::Sql(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nest_sources() {
        let e = EngineError::from(PlanError::Uncoverable {
            detail: "demo".into(),
        });
        assert_eq!(e.to_string(), "planning error: uncoverable query: demo");
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::RelationNotLoaded { name: "t9".into() };
        assert_eq!(e.to_string(), "relation `t9` not loaded");
    }
}
