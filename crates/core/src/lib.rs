//! # mwtj-core
//!
//! The public façade of the reproduction: [`ThetaJoinSystem`] loads
//! relations into the simulated cluster (upload + the paper's
//! load-time sampling/statistics pass, §6.3), takes a
//! [`MultiwayQuery`](mwtj_query::MultiwayQuery), plans it with the paper's method or one of the
//! baseline emulations, executes on the MapReduce runtime, and reports
//! results plus both clocks.
//!
//! ```
//! use mwtj_core::{Method, ThetaJoinSystem};
//! use mwtj_query::{QueryBuilder, ThetaOp};
//! use mwtj_storage::{tuple, DataType, Relation, Schema};
//!
//! let mut sys = ThetaJoinSystem::with_units(16);
//! let schema = Schema::from_pairs("r", &[("a", DataType::Int)]);
//! let rel = Relation::from_rows_unchecked(schema.clone(), vec![tuple![1], tuple![5]]);
//! let schema2 = Schema::from_pairs("s", &[("a", DataType::Int)]);
//! let rel2 = Relation::from_rows_unchecked(schema2.clone(), vec![tuple![3]]);
//! sys.load_relation(&rel);
//! sys.load_relation(&rel2);
//! let q = QueryBuilder::new("demo")
//!     .relation(schema)
//!     .relation(schema2)
//!     .join("r", "a", ThetaOp::Lt, "s", "a")
//!     .build()
//!     .unwrap();
//! let run = sys.run(&q, Method::Ours);
//! assert_eq!(run.output.len(), 1); // only (1, 3)
//! ```

#![warn(missing_docs)]

pub mod benchqueries;
pub mod system;

pub use benchqueries::{mobile_query, tpch_query, MobileQuery, TpchQuery};
pub use system::{LoadReport, Method, ThetaJoinSystem};
