//! # mwtj-core
//!
//! The public API of the reproduction, split engine-side and
//! session-side the way serving systems separate data ownership from
//! query execution:
//!
//! * [`Engine`] owns the simulated cluster, the loaded relations (with
//!   the paper's load-time sampling/statistics pass, §6.3) and the
//!   calibrated cost model, all behind `Arc`-shared state — so queries
//!   run from `&self` and [`Engine::run_many`] serves independent
//!   queries concurrently on a scoped thread pool.
//! * [`Session`] is a cheap, cloneable handle with per-caller default
//!   [`RunOptions`].
//! * [`RunOptions`] unifies the evaluation [`Method`], the space
//!   [`PartitionStrategy`](mwtj_hilbert::PartitionStrategy), per-run
//!   fault injection and cost-model calibration in one builder.
//! * Every fallible call returns [`EngineError`] instead of panicking,
//!   and [`Engine::run_sql`] wires the SQL frontend end-to-end
//!   (parse → auto-alias → plan → execute).
//!
//! ```
//! use mwtj_core::{Engine, Method, RunOptions};
//! use mwtj_query::{QueryBuilder, ThetaOp};
//! use mwtj_storage::{tuple, DataType, Relation, Schema};
//!
//! let engine = Engine::with_units(16);
//! let schema = Schema::from_pairs("r", &[("a", DataType::Int)]);
//! let rel = Relation::from_rows_unchecked(schema.clone(), vec![tuple![1], tuple![5]]);
//! let schema2 = Schema::from_pairs("s", &[("a", DataType::Int)]);
//! let rel2 = Relation::from_rows_unchecked(schema2.clone(), vec![tuple![3]]);
//! let _ = engine.load_relation(&rel);
//! let _ = engine.load_relation(&rel2);
//!
//! // Builder API …
//! let q = QueryBuilder::new("demo")
//!     .relation(schema)
//!     .relation(schema2)
//!     .join("r", "a", ThetaOp::Lt, "s", "a")
//!     .build()
//!     .unwrap();
//! let run = engine.run(&q, &RunOptions::from(Method::Ours)).unwrap();
//! assert_eq!(run.output.len(), 1); // only (1, 3)
//!
//! // … or SQL, end to end:
//! let run = engine.run_sql("SELECT * FROM r x, s y WHERE x.a < y.a").unwrap();
//! assert_eq!(run.output.len(), 1);
//!
//! // Unknown relations are typed errors, not panics:
//! assert!(engine.run_sql("SELECT * FROM nope a, r b WHERE a.a = b.a").is_err());
//! ```

#![warn(missing_docs)]

pub mod benchqueries;
pub mod engine;
pub mod error;
pub mod explain;
pub mod options;
pub mod prepare;
pub mod scheduler;
pub mod stream;
pub mod sys;

pub use benchqueries::{mobile_query, tpch_query, MobileQuery, TpchQuery};
pub use engine::{
    Engine, EngineStats, FaultStats, LoadReport, PlanCacheStats, Session, StorageStats,
    ZoneSkipStats, RID_COLUMN,
};
pub use error::EngineError;
pub use explain::ExplainReport;
pub use options::{Method, RunOptions};
pub use prepare::Prepared;
pub use scheduler::{AdmissionError, AdmissionPolicy, Scheduler, SchedulerStats, Ticket};
pub use stream::{QueryStream, StreamEnd, StreamOptions};

// Re-exported so stream consumers name the batch type without a
// direct mwtj-mapreduce dependency, and so callers can build and hold
// cancellation tokens for in-flight runs.
pub use mwtj_mapreduce::{CancelToken, RowBatch};
// Re-exported so serving layers name run results, plan artifacts and
// per-run fault totals without a direct mwtj-planner dependency.
pub use mwtj_planner::{FaultTotals, QueryPlan, QueryRun};
// Re-exported so serving layers scrape the engine's metrics registry
// and render query profiles without a direct mwtj-obs dependency.
pub use mwtj_obs::{
    FlightRecord, FlightRecorder, MetricValue, Outcome, QueryProfile, Registry, SpanRecord,
};
