//! The paper's benchmark queries.
//!
//! §6.3.1's four multi-way theta-join queries over the mobile-calls
//! data set (Table 2) and §6.3.2's four TPC-H queries (Table 3),
//! amended with inequality join conditions exactly as the paper does
//! ("since some queries only involve Equi-join, we slightly amend the
//! join predicate to add inequality join conditions").
//!
//! Each constructor returns a [`MultiwayQuery`] over schema *instances*
//! (`t1`, `t2`, … / `l1`, `l2`, …); load the corresponding data with
//! [`Engine::load_alias`](crate::Engine::load_alias) or
//! [`Engine::load_alias_of`](crate::Engine::load_alias_of).

use mwtj_datagen::{MobileGen, TpchGen};
use mwtj_query::{ColExpr, MultiwayQuery, QueryBuilder, ThetaOp};
use mwtj_storage::Schema;

/// The four mobile-data benchmark queries (§6.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobileQuery {
    /// Concurrent phone calls at the *same* base station.
    Q1,
    /// Concurrent phone calls at *different* base stations.
    Q2,
    /// Calls handled by the same base station 3 days in a row.
    Q3,
    /// Calls handled by different base stations 3 days in a row.
    Q4,
}

impl MobileQuery {
    /// All four queries.
    pub const ALL: [MobileQuery; 4] = [
        MobileQuery::Q1,
        MobileQuery::Q2,
        MobileQuery::Q3,
        MobileQuery::Q4,
    ];

    /// The relation-instance names the query joins.
    pub fn instances(&self) -> &'static [&'static str] {
        match self {
            MobileQuery::Q1 | MobileQuery::Q2 => &["t1", "t2", "t3"],
            MobileQuery::Q3 | MobileQuery::Q4 => &["t1", "t2", "t3", "t4"],
        }
    }
}

/// Build a mobile benchmark query.
///
/// * Q1: `SELECT t3.id WHERE t1.bt≤t2.bt, t1.l≥t2.l, t2.bsc=t3.bsc,
///   t2.d=t3.d`
/// * Q2: like Q1 with `t2.bsc≠t3.bsc`
/// * Q3: `SELECT t1.id WHERE t1.d<t2.d, t2.d<t3.d, t1.d+3>t3.d,
///   t1.bsc=t4.bsc`
/// * Q4: like Q3 with `t1.bsc≠t4.bsc`
pub fn mobile_query(which: MobileQuery) -> MultiwayQuery {
    let t = |name: &str| MobileGen::schema(name);
    match which {
        MobileQuery::Q1 | MobileQuery::Q2 => {
            let bsc_op = if which == MobileQuery::Q1 {
                ThetaOp::Eq
            } else {
                ThetaOp::Ne
            };
            QueryBuilder::new(format!("{which:?}"))
                .relation(t("t1"))
                .relation(t("t2"))
                .relation(t("t3"))
                .join("t1", "bt", ThetaOp::Le, "t2", "bt")
                .join("t1", "l", ThetaOp::Ge, "t2", "l")
                .join("t2", "bsc", bsc_op, "t3", "bsc")
                .and_expr(
                    ColExpr::col("t2", "d"),
                    ThetaOp::Eq,
                    ColExpr::col("t3", "d"),
                )
                .project("t3", "id")
                .build()
                .expect("mobile query builds")
        }
        MobileQuery::Q3 | MobileQuery::Q4 => {
            let bsc_op = if which == MobileQuery::Q3 {
                ThetaOp::Eq
            } else {
                ThetaOp::Ne
            };
            QueryBuilder::new(format!("{which:?}"))
                .relation(t("t1"))
                .relation(t("t2"))
                .relation(t("t3"))
                .relation(t("t4"))
                .join("t1", "d", ThetaOp::Lt, "t2", "d")
                .join("t2", "d", ThetaOp::Lt, "t3", "d")
                .join_expr(
                    ColExpr::col_plus("t1", "d", 3.0),
                    ThetaOp::Gt,
                    ColExpr::col("t3", "d"),
                )
                .join("t1", "bsc", bsc_op, "t4", "bsc")
                .project("t1", "id")
                .build()
                .expect("mobile query builds")
        }
    }
}

/// The four TPC-H benchmark queries (§6.3.2, Table 3), with the
/// paper's inequality amendments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchQuery {
    /// Volume shipping (5 relations, 8 join atoms, {≤, ≥, ≠}).
    Q7,
    /// Small-quantity-order revenue (3 relations, 4 join atoms, {≤}).
    Q17,
    /// Large-volume customers (4 relations, 4 join atoms, {≥}).
    Q18,
    /// Suppliers who kept orders waiting (6 relations, 8 join atoms,
    /// {≥, ≠}).
    Q21,
}

impl TpchQuery {
    /// All four queries.
    pub const ALL: [TpchQuery; 4] = [
        TpchQuery::Q7,
        TpchQuery::Q17,
        TpchQuery::Q18,
        TpchQuery::Q21,
    ];

    /// `(instance name, base table)` pairs the query needs loaded.
    pub fn instances(&self) -> &'static [(&'static str, &'static str)] {
        match self {
            TpchQuery::Q7 => &[
                ("supplier", "supplier"),
                ("lineitem", "lineitem"),
                ("orders", "orders"),
                ("customer", "customer"),
                ("nation", "nation"),
            ],
            TpchQuery::Q17 => &[("l1", "lineitem"), ("part", "part"), ("l2", "lineitem")],
            TpchQuery::Q18 => &[
                ("customer", "customer"),
                ("orders", "orders"),
                ("l1", "lineitem"),
                ("l2", "lineitem"),
            ],
            TpchQuery::Q21 => &[
                ("supplier", "supplier"),
                ("l1", "lineitem"),
                ("orders", "orders"),
                ("nation", "nation"),
                ("l2", "lineitem"),
                ("l3", "lineitem"),
            ],
        }
    }
}

fn tpch_schema(instance: &str, base: &str) -> Schema {
    let g = TpchGen::default();
    let proto = match base {
        "supplier" => g.supplier().schema().clone(),
        "customer" => g.customer().schema().clone(),
        "orders" => g.orders().schema().clone(),
        "part" => g.part().schema().clone(),
        "nation" => g.nation().schema().clone(),
        "lineitem" => TpchGen::lineitem_schema("lineitem"),
        other => panic!("unknown TPC-H table `{other}`"),
    };
    Schema::new(instance, proto.fields().to_vec())
}

/// Build a TPC-H benchmark query (with inequality amendments).
pub fn tpch_query(which: TpchQuery) -> MultiwayQuery {
    let s = |i: &str, b: &str| tpch_schema(i, b);
    match which {
        TpchQuery::Q7 => QueryBuilder::new("Q7")
            .relation(s("supplier", "supplier"))
            .relation(s("lineitem", "lineitem"))
            .relation(s("orders", "orders"))
            .relation(s("customer", "customer"))
            .relation(s("nation", "nation"))
            .join(
                "supplier",
                "s_suppkey",
                ThetaOp::Eq,
                "lineitem",
                "l_suppkey",
            )
            .join(
                "lineitem",
                "l_orderkey",
                ThetaOp::Eq,
                "orders",
                "o_orderkey",
            )
            .and_expr(
                ColExpr::col("orders", "o_orderdate"),
                ThetaOp::Le,
                ColExpr::col("lineitem", "l_shipdate"),
            )
            .and_expr(
                ColExpr::col("orders", "o_orderdate"),
                ThetaOp::Le,
                ColExpr::col("lineitem", "l_receiptdate"),
            )
            .and_expr(
                ColExpr::col("orders", "o_totalprice"),
                ThetaOp::Ge,
                ColExpr::col("lineitem", "l_extendedprice"),
            )
            .join("orders", "o_custkey", ThetaOp::Eq, "customer", "c_custkey")
            .join(
                "supplier",
                "s_nationkey",
                ThetaOp::Eq,
                "nation",
                "n_nationkey",
            )
            .join(
                "supplier",
                "s_nationkey",
                ThetaOp::Ne,
                "customer",
                "c_nationkey",
            )
            .project("supplier", "s_name")
            .project("customer", "c_name")
            .build()
            .expect("Q7 builds"),
        TpchQuery::Q17 => QueryBuilder::new("Q17")
            .relation(s("l1", "lineitem"))
            .relation(s("part", "part"))
            .relation(s("l2", "lineitem"))
            .join("l1", "l_partkey", ThetaOp::Eq, "part", "p_partkey")
            .join("part", "p_partkey", ThetaOp::Eq, "l2", "l_partkey")
            .join("l1", "l_quantity", ThetaOp::Le, "l2", "l_quantity")
            .and_expr(
                ColExpr::col("l1", "l_shipdate"),
                ThetaOp::Le,
                ColExpr::col("l2", "l_receiptdate"),
            )
            .project("l1", "l_extendedprice")
            .build()
            .expect("Q17 builds"),
        TpchQuery::Q18 => QueryBuilder::new("Q18")
            .relation(s("customer", "customer"))
            .relation(s("orders", "orders"))
            .relation(s("l1", "lineitem"))
            .relation(s("l2", "lineitem"))
            .join("customer", "c_custkey", ThetaOp::Eq, "orders", "o_custkey")
            .join("orders", "o_orderkey", ThetaOp::Eq, "l1", "l_orderkey")
            .join("orders", "o_orderkey", ThetaOp::Eq, "l2", "l_orderkey")
            .join("l1", "l_quantity", ThetaOp::Ge, "l2", "l_quantity")
            .project("customer", "c_name")
            .build()
            .expect("Q18 builds"),
        TpchQuery::Q21 => QueryBuilder::new("Q21")
            .relation(s("supplier", "supplier"))
            .relation(s("l1", "lineitem"))
            .relation(s("orders", "orders"))
            .relation(s("nation", "nation"))
            .relation(s("l2", "lineitem"))
            .relation(s("l3", "lineitem"))
            .join("supplier", "s_suppkey", ThetaOp::Eq, "l1", "l_suppkey")
            .join("l1", "l_orderkey", ThetaOp::Eq, "orders", "o_orderkey")
            .join(
                "supplier",
                "s_nationkey",
                ThetaOp::Eq,
                "nation",
                "n_nationkey",
            )
            .join("l1", "l_orderkey", ThetaOp::Eq, "l2", "l_orderkey")
            .and_expr(
                ColExpr::col("l2", "l_suppkey"),
                ThetaOp::Ne,
                ColExpr::col("l1", "l_suppkey"),
            )
            .join("l1", "l_orderkey", ThetaOp::Eq, "l3", "l_orderkey")
            .and_expr(
                ColExpr::col("l3", "l_suppkey"),
                ThetaOp::Ne,
                ColExpr::col("l1", "l_suppkey"),
            )
            .and_expr(
                ColExpr::col("l3", "l_receiptdate"),
                ThetaOp::Ge,
                ColExpr::col("l1", "l_commitdate"),
            )
            .project("supplier", "s_name")
            .build()
            .expect("Q21 builds"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_queries_match_table2() {
        // Table 2: Q1/Q2 have 3 join conditions, Q3/Q4 have 4.
        for q in [MobileQuery::Q1, MobileQuery::Q2] {
            let mq = mobile_query(q);
            assert_eq!(mq.num_relations(), 3, "{q:?}");
            assert_eq!(mq.num_conditions(), 3, "{q:?}");
        }
        for q in [MobileQuery::Q3, MobileQuery::Q4] {
            let mq = mobile_query(q);
            assert_eq!(mq.num_relations(), 4, "{q:?}");
            assert_eq!(mq.num_conditions(), 4, "{q:?}");
        }
    }

    #[test]
    fn mobile_q2_uses_ne() {
        let q = mobile_query(MobileQuery::Q2);
        let has_ne = q
            .conditions
            .iter()
            .flat_map(|(_, _, p)| p)
            .any(|p| p.op == ThetaOp::Ne);
        assert!(has_ne);
    }

    #[test]
    fn mobile_queries_are_connected() {
        for q in MobileQuery::ALL {
            assert!(mobile_query(q).join_graph().is_connected(), "{q:?}");
        }
    }

    #[test]
    fn tpch_queries_match_table3() {
        // Table 3: relation counts 5/3/4/6, join atom counts 8/4/4/8.
        let expect = [
            (TpchQuery::Q7, 5usize, 8usize),
            (TpchQuery::Q17, 3, 4),
            (TpchQuery::Q18, 4, 4),
            (TpchQuery::Q21, 6, 8),
        ];
        for (q, rels, atoms) in expect {
            let tq = tpch_query(q);
            assert_eq!(tq.num_relations(), rels, "{q:?} relations");
            let n_atoms: usize = tq.conditions.iter().map(|(_, _, p)| p.len()).sum();
            assert_eq!(n_atoms, atoms, "{q:?} atoms");
            assert!(tq.join_graph().is_connected(), "{q:?}");
        }
    }

    #[test]
    fn tpch_inequality_sets_match_table3() {
        let ops = |q: TpchQuery| -> Vec<ThetaOp> {
            tpch_query(q)
                .conditions
                .iter()
                .flat_map(|(_, _, p)| p.iter().map(|x| x.op))
                .filter(|o| !o.is_equality())
                .collect()
        };
        assert!(ops(TpchQuery::Q17).iter().all(|o| *o == ThetaOp::Le));
        assert!(ops(TpchQuery::Q18).iter().all(|o| *o == ThetaOp::Ge));
        assert!(ops(TpchQuery::Q21)
            .iter()
            .all(|o| matches!(o, ThetaOp::Ge | ThetaOp::Ne)));
        assert!(!ops(TpchQuery::Q7).is_empty());
    }

    #[test]
    fn instances_align_with_query_relations() {
        for q in TpchQuery::ALL {
            let tq = tpch_query(q);
            let inst = q.instances();
            assert_eq!(tq.num_relations(), inst.len(), "{q:?}");
            for (i, (name, _)) in inst.iter().enumerate() {
                assert_eq!(tq.schemas[i].name(), *name, "{q:?} instance {i}");
            }
        }
        for q in MobileQuery::ALL {
            let mq = mobile_query(q);
            assert_eq!(mq.num_relations(), q.instances().len());
        }
    }
}
