//! The `sys.*` system introspection catalog: engine state exposed as
//! relations, so telemetry is queryable with the same theta-join SQL
//! the engine serves — including band-joining `sys.queries` against
//! itself to find latency-adjacent runs.
//!
//! This module owns the *shape* of the catalog — the static schemas
//! and the row encodings — as pure functions over plain data, so it
//! is unit-testable without an engine. The engine glues them to live
//! state in [`crate::Engine`]: each referenced `sys.` relation is
//! snapshot-materialised **once per query** (a self-join sees one
//! consistent snapshot), registered under the query's private
//! instance aliases, and dropped with them afterwards. Sys queries
//! are never plan-cached (the snapshot changes every query) and never
//! admission-ticketed (introspection must answer while the unit
//! budget is exhausted).
//!
//! | relation        | one row per                              |
//! |-----------------|------------------------------------------|
//! | `sys.queries`   | recorded run in the flight-recorder ring |
//! | `sys.jobs`      | MRJ of a recorded run                    |
//! | `sys.metrics`   | metrics-registry series                  |
//! | `sys.relations` | loaded (non-transient) catalog instance  |
//! | `sys.scheduler` | admission scheduler (single row)         |

use crate::scheduler::SchedulerStats;
use mwtj_obs::{FlightRecord, MetricValue};
use mwtj_storage::{DataType, Relation, Schema, Tuple, Value};

/// The reserved relation-name prefix the query layer resolves through
/// this catalog instead of the user catalog.
pub const SYS_PREFIX: &str = "sys.";

/// Whether `name` addresses the system catalog.
pub fn is_sys(name: &str) -> bool {
    name.starts_with(SYS_PREFIX)
}

/// Names of every sys relation, for listings and docs.
pub const SYS_RELATIONS: [&str; 5] = [
    "sys.queries",
    "sys.jobs",
    "sys.metrics",
    "sys.relations",
    "sys.scheduler",
];

/// The static schema of a sys relation (`None` for names outside the
/// catalog; the caller surfaces its usual unknown-relation error).
pub fn schema_of(base: &str) -> Option<Schema> {
    let fields: &[(&str, DataType)] = match base {
        "sys.queries" => &[
            ("trace_id", DataType::Int),
            ("ticket", DataType::Int),
            ("shape", DataType::Str),
            ("method", DataType::Str),
            ("partition", DataType::Str),
            ("outcome", DataType::Str),
            ("requested_units", DataType::Int),
            ("granted_units", DataType::Int),
            ("queued", DataType::Int),
            ("wall_ms", DataType::Double),
            ("sim_secs", DataType::Double),
            ("rows_out", DataType::Int),
            ("skip_fraction", DataType::Double),
            ("attempts", DataType::Int),
            ("retries", DataType::Int),
            ("panics", DataType::Int),
        ],
        "sys.jobs" => &[
            ("trace_id", DataType::Int),
            ("seq", DataType::Int),
            ("job", DataType::Str),
            ("units", DataType::Int),
            ("map_tasks", DataType::Int),
            ("reduce_tasks", DataType::Int),
            ("input_records", DataType::Int),
            ("output_records", DataType::Int),
            ("shuffle_bytes", DataType::Int),
            ("sim_secs", DataType::Double),
            ("real_secs", DataType::Double),
            ("skip_fraction", DataType::Double),
            ("attempts", DataType::Int),
            ("retries", DataType::Int),
            ("panics", DataType::Int),
        ],
        "sys.metrics" => &[
            ("name", DataType::Str),
            ("kind", DataType::Str),
            ("value", DataType::Double),
            ("sum", DataType::Double),
            ("count", DataType::Int),
        ],
        "sys.relations" => &[
            ("name", DataType::Str),
            ("base", DataType::Str),
            ("rows", DataType::Int),
            ("bytes", DataType::Int),
            ("blocks", DataType::Int),
            ("zoned_blocks", DataType::Int),
            ("stats_epoch", DataType::Int),
            // Storage layout: columnar backing (1/0), its column and
            // dictionary shape, and resident vs encoded size.
            ("columnar", DataType::Int),
            ("columns", DataType::Int),
            ("dict_entries", DataType::Int),
            ("dict_bytes", DataType::Int),
            ("null_values", DataType::Int),
            ("resident_bytes", DataType::Int),
            ("compression", DataType::Double),
        ],
        "sys.scheduler" => &[
            ("budget", DataType::Int),
            ("in_flight_units", DataType::Int),
            ("peak_in_flight_units", DataType::Int),
            ("queued_now", DataType::Int),
            ("admitted", DataType::Int),
            ("degraded", DataType::Int),
            ("queued", DataType::Int),
            ("shed", DataType::Int),
        ],
        _ => return None,
    };
    Some(Schema::from_pairs(base, fields))
}

/// Clamp a u64 telemetry count into the Int column domain.
fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// `sys.queries`: one row per recorded run, in recorder order
/// (newest first, the order [`mwtj_obs::FlightRecorder::all`] yields).
pub fn queries_relation(records: &[FlightRecord]) -> Relation {
    let schema = schema_of("sys.queries").expect("static schema");
    let rows = records
        .iter()
        .map(|r| {
            Tuple::new(vec![
                int(r.trace_id),
                int(r.ticket),
                Value::from(r.shape.as_str()),
                Value::from(r.method.as_str()),
                Value::from(r.partition.as_str()),
                Value::from(r.outcome.as_str()),
                Value::Int(i64::from(r.requested_units)),
                Value::Int(i64::from(r.granted_units)),
                Value::Int(i64::from(r.queued)),
                Value::Double(r.wall_ms),
                Value::Double(r.sim_secs),
                int(r.rows_out),
                Value::Double(r.skip_fraction),
                int(r.attempts),
                int(r.real_retries),
                int(r.panics_caught),
            ])
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

/// `sys.jobs`: the per-job records of every recorded run, flattened.
pub fn jobs_relation(records: &[FlightRecord]) -> Relation {
    let schema = schema_of("sys.jobs").expect("static schema");
    let rows = records
        .iter()
        .flat_map(|r| {
            r.jobs.iter().enumerate().map(move |(seq, j)| {
                Tuple::new(vec![
                    int(r.trace_id),
                    Value::Int(seq as i64),
                    Value::from(j.name.as_str()),
                    Value::Int(i64::from(j.units)),
                    Value::Int(i64::from(j.map_tasks)),
                    Value::Int(i64::from(j.reduce_tasks)),
                    int(j.input_records),
                    int(j.output_records),
                    int(j.shuffle_bytes),
                    Value::Double(j.sim_secs),
                    Value::Double(j.real_secs),
                    Value::Double(j.skip_fraction),
                    int(j.attempts),
                    int(j.real_retries),
                    int(j.panics_caught),
                ])
            })
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

/// `sys.metrics`: one row per registry series. Counters and gauges
/// carry their value in `value` (0 `sum`/`count`); histograms carry
/// their observation count in both `value` and `count` plus the `sum`.
pub fn metrics_relation(series: &[(String, MetricValue)]) -> Relation {
    let schema = schema_of("sys.metrics").expect("static schema");
    let rows = series
        .iter()
        .map(|(name, value)| {
            let (kind, v, sum, count) = match value {
                MetricValue::Counter(c) => ("counter", *c as f64, 0.0, 0u64),
                MetricValue::Gauge(g) => ("gauge", *g, 0.0, 0),
                MetricValue::Histogram { sum, count, .. } => {
                    ("histogram", *count as f64, *sum, *count)
                }
            };
            Tuple::new(vec![
                Value::from(name.as_str()),
                Value::from(kind),
                Value::Double(v),
                Value::Double(sum),
                int(count),
            ])
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

/// One `sys.relations` row, pre-extracted from the engine catalog and
/// DFS by the engine (this module never locks engine state).
#[derive(Debug, Clone)]
pub struct RelationRow {
    /// Catalog instance name.
    pub name: String,
    /// Base table the instance is bound to (itself for direct loads).
    pub base: String,
    /// Row count.
    pub rows: u64,
    /// Encoded byte size.
    pub bytes: u64,
    /// DFS block count.
    pub blocks: u64,
    /// Blocks carrying at least one column zone map.
    pub zoned_blocks: u64,
    /// The statistics epoch at snapshot time.
    pub stats_epoch: u64,
    /// The instance's columnar layout, `None` when stored row-major.
    pub layout: Option<mwtj_storage::ColumnarLayout>,
}

/// `sys.relations`: one row per loaded (non-transient) instance.
pub fn relations_relation(rows: &[RelationRow]) -> Relation {
    let schema = schema_of("sys.relations").expect("static schema");
    let tuples = rows
        .iter()
        .map(|r| {
            let layout = r.layout.unwrap_or_default();
            // Compression = encoded (row codec) bytes over resident
            // columnar bytes; 0.0 for row-major instances.
            let compression = if r.layout.is_some() && layout.resident_bytes > 0 {
                r.bytes as f64 / layout.resident_bytes as f64
            } else {
                0.0
            };
            Tuple::new(vec![
                Value::from(r.name.as_str()),
                Value::from(r.base.as_str()),
                int(r.rows),
                int(r.bytes),
                int(r.blocks),
                int(r.zoned_blocks),
                int(r.stats_epoch),
                Value::Int(i64::from(r.layout.is_some())),
                int(layout.columns as u64),
                int(layout.dict_entries),
                int(layout.dict_bytes),
                int(layout.null_count),
                int(layout.resident_bytes),
                Value::Double(compression),
            ])
        })
        .collect();
    Relation::from_rows_unchecked(schema, tuples)
}

/// `sys.scheduler`: the admission controller as a single row.
pub fn scheduler_relation(stats: &SchedulerStats) -> Relation {
    let schema = schema_of("sys.scheduler").expect("static schema");
    let rows = vec![Tuple::new(vec![
        Value::Int(i64::from(stats.budget)),
        Value::Int(i64::from(stats.in_flight_units)),
        Value::Int(i64::from(stats.peak_in_flight_units)),
        Value::Int(i64::from(stats.queued_now)),
        int(stats.admitted),
        int(stats.degraded),
        int(stats.queued),
        int(stats.shed),
    ])];
    Relation::from_rows_unchecked(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_obs::{JobRecord, Outcome};

    #[test]
    fn every_sys_relation_has_a_schema() {
        for name in SYS_RELATIONS {
            let schema = schema_of(name).unwrap();
            assert_eq!(schema.name(), name);
            assert!(schema.arity() >= 5, "{name}");
            assert!(is_sys(name));
        }
        assert!(schema_of("sys.nope").is_none());
        assert!(schema_of("queries").is_none());
        assert!(!is_sys("queries"));
    }

    #[test]
    fn queries_and_jobs_rows_match_schemas() {
        let rec = FlightRecord {
            trace_id: 7,
            shape: "SELECT …".into(),
            method: "ours".into(),
            partition: "hilbert".into(),
            requested_units: 8,
            granted_units: 4,
            queued: true,
            wall_ms: 12.5,
            sim_secs: 0.25,
            rows_out: 99,
            skip_fraction: 0.5,
            attempts: 6,
            real_retries: 1,
            panics_caught: 0,
            outcome: Outcome::Ok,
            ticket: 3,
            jobs: vec![JobRecord {
                name: "mrj0".into(),
                units: 4,
                map_tasks: 2,
                reduce_tasks: 2,
                input_records: 100,
                output_records: 99,
                shuffle_bytes: 2048,
                sim_secs: 0.25,
                real_secs: 0.01,
                skip_fraction: 0.5,
                attempts: 6,
                real_retries: 1,
                panics_caught: 0,
            }],
        };
        let q = queries_relation(std::slice::from_ref(&rec));
        assert_eq!(q.len(), 1);
        assert_eq!(q.schema().arity(), q.rows()[0].arity());
        let idx = q.schema().index_of("outcome").unwrap();
        assert_eq!(q.rows()[0].values()[idx], Value::from("ok"));
        let j = jobs_relation(&[rec]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.schema().arity(), j.rows()[0].arity());
        let idx = j.schema().index_of("trace_id").unwrap();
        assert_eq!(j.rows()[0].values()[idx], Value::Int(7));
    }

    #[test]
    fn metrics_rows_encode_all_kinds() {
        let series = vec![
            ("a_total".to_string(), MetricValue::Counter(3)),
            ("g".to_string(), MetricValue::Gauge(1.5)),
            (
                "h_ms".to_string(),
                MetricValue::Histogram {
                    bounds: vec![1.0],
                    counts: vec![2],
                    sum: 9.0,
                    count: 4,
                },
            ),
        ];
        let rel = metrics_relation(&series);
        assert_eq!(rel.len(), 3);
        let kind = rel.schema().index_of("kind").unwrap();
        let value = rel.schema().index_of("value").unwrap();
        let sum = rel.schema().index_of("sum").unwrap();
        assert_eq!(rel.rows()[0].values()[kind], Value::from("counter"));
        assert_eq!(rel.rows()[0].values()[value], Value::Double(3.0));
        assert_eq!(rel.rows()[2].values()[kind], Value::from("histogram"));
        assert_eq!(rel.rows()[2].values()[sum], Value::Double(9.0));
    }

    #[test]
    fn scheduler_is_a_single_row() {
        let rel = scheduler_relation(&SchedulerStats {
            budget: 16,
            in_flight_units: 4,
            peak_in_flight_units: 12,
            queued_now: 1,
            admitted: 10,
            degraded: 2,
            queued: 3,
            shed: 1,
        });
        assert_eq!(rel.len(), 1);
        let budget = rel.schema().index_of("budget").unwrap();
        assert_eq!(rel.rows()[0].values()[budget], Value::Int(16));
    }

    #[test]
    fn counts_above_i64_saturate() {
        assert_eq!(int(u64::MAX), Value::Int(i64::MAX));
        assert_eq!(int(5), Value::Int(5));
    }
}
