//! The engine/session API: data ownership separated from query
//! execution.
//!
//! [`Engine`] owns the simulated cluster, the loaded (rowid-augmented)
//! relations, their statistics, and the cost-model-equipped planner —
//! all behind `Arc`-shared, lock-protected state, so query execution
//! needs only `&self` and independent queries can be served
//! concurrently ([`Engine::run_many`]). [`Session`] is a cheap,
//! cloneable handle carrying per-caller default [`RunOptions`].
//!
//! Every fallible entry point returns [`EngineError`] instead of
//! panicking: an unknown relation, a malformed SQL string or an
//! unplannable query fails *that query*, never the process.

use crate::error::EngineError;
use crate::options::{Method, RunOptions};
use crate::scheduler::{AdmissionPolicy, Scheduler, Ticket};
use mwtj_cost::{CalibratedParams, Calibrator, CostModel};
use mwtj_join::oracle::oracle_join;
use mwtj_mapreduce::{CancelToken, Cluster, ClusterConfig, ExecError, JobMetrics};
use mwtj_obs::{
    next_trace_id, FlightRecord, FlightRecorder, JobRecord, Outcome, QueryProfile, Registry, Span,
    SpanRecord,
};
use mwtj_planner::{Baseline, PlanError, Planner, QueryPlan, QueryRun};
use mwtj_query::{MultiwayQuery, ParsedQuery};
use mwtj_storage::{DataType, Field, Relation, RelationStats, Schema, Tuple, Value};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The implicit row-identity column appended to every loaded relation.
/// Partial-result merging joins on it ("merge using the primary keys
/// ... only output keys or data IDs involved", §4.2); it is stripped
/// from final outputs unless explicitly projected.
pub const RID_COLUMN: &str = "__rid";

/// What loading a relation cost (Fig. 11's comparison).
#[must_use = "loading is priced on the simulated clock; inspect or explicitly drop the report"]
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Simulated seconds for the raw replicated upload (the "Plain
    /// Hadoop Uploading" line).
    pub upload_secs: f64,
    /// Simulated seconds for the sampling + statistics pass our method
    /// adds (why "our method is a little more time consuming for the
    /// data uploading process", §6.3).
    pub sampling_secs: f64,
}

impl LoadReport {
    /// Total load time for our method.
    pub fn total_secs(&self) -> f64 {
        self.upload_secs + self.sampling_secs
    }
}

/// Loaded data: augmented relations and their statistics, keyed by
/// instance name.
#[derive(Default)]
struct Catalog {
    stats: HashMap<String, RelationStats>,
    relations: HashMap<String, Arc<Relation>>,
    /// Instance name → the base table it was loaded from (itself for
    /// direct loads). SQL auto-registration consults this so an alias
    /// can never be silently rebound to a different base.
    bases: HashMap<String, String>,
    /// Bumped whenever loaded data *changes* (an entry is replaced,
    /// refreshed or unloaded, or the cost model is recalibrated) —
    /// never for a fresh name. Cached plan artifacts are tagged with
    /// the epoch they were planned under and discarded on mismatch, so
    /// an execution can never run a plan made from superseded
    /// statistics.
    epoch: u64,
}

/// One plan-cache entry: the `Arc`-shared [`QueryPlan`] artifact plus
/// the statistics epoch it was planned under. A mismatched epoch at
/// admission time means the loaded data changed since planning — the
/// entry is discarded and the query replanned against fresh statistics,
/// so an execution can never run against a stale plan. `last_used` is
/// an LRU stamp from the shared cache clock, touched on every hit (an
/// atomic, so hits under the read lock can update it).
struct CachedPlan {
    epoch: u64,
    plan: Arc<QueryPlan>,
    last_used: AtomicU64,
}

/// Keep the plan cache from growing without bound in a long-lived
/// server (distinct SQL texts keep arriving). At the cap the
/// least-recently-used entry is evicted — hot prepared shapes stay
/// warm while one-off ad-hoc texts cycle through.
const PLAN_CACHE_CAP: usize = 1024;

/// Observed zone-map effectiveness for one plan-cache key prefix:
/// the fraction of input rows skipping pruned on the most recent run,
/// tagged with the statistics epoch it was observed under. The
/// admission controller discounts the Eq. 2 unit estimate by this
/// fraction on statistics-warm runs — a query whose input mostly
/// prunes occupies a smaller `k_P` slice, so more queries pack in.
struct SkipStat {
    epoch: u64,
    fraction: f64,
}

/// Engine-wide zone-map pruning totals, accumulated across every
/// completed run (what the server's `stats` command reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneSkipStats {
    /// Input blocks considered by skip filters.
    pub blocks: u64,
    /// Blocks skipped unread.
    pub blocks_pruned: u64,
    /// Block pairs examined across predicate graphs.
    pub pairs: u64,
    /// Block pairs proven empty by zone ranges.
    pub pairs_pruned: u64,
    /// Rows in considered blocks.
    pub rows: u64,
    /// Rows whose map work was skipped.
    pub rows_pruned: u64,
}

impl ZoneSkipStats {
    /// Block pairs that survived zone pruning.
    pub fn pairs_kept(&self) -> u64 {
        self.pairs.saturating_sub(self.pairs_pruned)
    }

    /// Fraction of considered rows pruned, in [0, 1].
    pub fn skip_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.rows_pruned as f64 / self.rows as f64
        }
    }
}

/// Engine-wide real fault-handling totals, accumulated across every
/// run (what the server's `stats` command reports next to the
/// plan-cache and zone-skip counters). All counts are *real* host
/// events — attempts actually executed, attempts that really aborted
/// mid-execution and were rerun, panics contained by `catch_unwind` —
/// not simulated-clock charges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Task attempts really executed (map + reduce, including reruns).
    pub attempts: u64,
    /// Attempts that really aborted mid-execution and were rerun.
    pub real_retries: u64,
    /// Panics caught by the engine's panic isolation.
    pub panics_caught: u64,
    /// Runs killed mid-execution by their real-time deadline.
    pub deadline_exceeded: u64,
}

/// A snapshot of the shared plan cache's counters (all monotonic
/// except `entries`). `hits` counting up while `misses` stays flat is
/// the signature of a warmed cache — the CI smoke asserts exactly that
/// after a repeated `execute`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans currently cached (across all shapes and `k` values).
    pub entries: usize,
    /// Executions that reused a cached plan (skipped planning).
    pub hits: u64,
    /// Lookups that found no valid entry and planned from scratch.
    pub misses: u64,
    /// Entries discarded — stale-epoch replacements plus
    /// least-recently-used evictions at the cap (one per entry).
    pub evictions: u64,
    /// Fresh plans that *re*-planned an existing shape: stale-epoch
    /// refreshes and reduced-`k` replans after admission degradation.
    pub replans: u64,
}

/// One coherent snapshot of every engine-wide counter group the
/// server's `stats` command reports, gathered by a single
/// [`Engine::stats_snapshot`] call. The previous protocol
/// implementation read each group through a separate accessor, so a
/// frame could pair plan-cache counters from before a run with fault
/// counters from after it; a snapshot is assembled at one point in
/// time instead.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Shared plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Engine-wide zone-map pruning totals.
    pub zone: ZoneSkipStats,
    /// Engine-wide real fault-handling totals.
    pub faults: FaultStats,
    /// Admission-controller counters.
    pub scheduler: crate::scheduler::SchedulerStats,
    /// DFS zone-map cache hits (namespaced instances sharing a base's
    /// maps).
    pub zone_cache_hits: u64,
    /// DFS zone-map cache misses.
    pub zone_cache_misses: u64,
    /// Units the most recent `Ours` admission requested.
    pub last_admission_request: u32,
    /// The statistics epoch at snapshot time.
    pub epoch: u64,
    /// Storage-layout totals over loaded (non-transient) instances.
    pub storage: StorageStats,
}

/// Aggregate storage-layout totals over the loaded (non-transient)
/// catalog instances, reported by the server's `stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageStats {
    /// Loaded instances.
    pub relations: u64,
    /// Instances carrying a columnar backing.
    pub columnar_relations: u64,
    /// Total typed column vectors across columnar instances.
    pub columns: u64,
    /// Total distinct dictionary entries across string columns.
    pub dict_entries: u64,
    /// Total dictionary string bytes (shared per column, counted once).
    pub dict_bytes: u64,
    /// Total NULL values recorded in null bitmaps.
    pub null_values: u64,
    /// Resident bytes of the columnar backings.
    pub resident_bytes: u64,
    /// Encoded (row codec) bytes of all loaded instances — the
    /// numerator of the compression ratio when every instance is
    /// columnar (the default).
    pub encoded_bytes: u64,
}

/// Process-unique engine ids (see [`Engine::engine_id`]); a freed
/// engine's id is never reused, unlike its `Arc` allocation address.
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

/// State shared by an engine and all its sessions.
struct Shared {
    /// This engine's process-unique identity (prepared-statement
    /// rebinding checks it).
    id: u64,
    cluster: Cluster,
    /// Swapped wholesale on calibration; executions snapshot the `Arc`.
    planner: RwLock<Arc<Planner>>,
    catalog: RwLock<Catalog>,
    /// Guards the run-once calibration sweep.
    calibrated: Mutex<bool>,
    sample_cap: usize,
    /// Admission controller over the cluster's `k_P` unit budget.
    scheduler: Scheduler,
    /// Per-engine counter namespacing each SQL run's alias instances.
    next_query: AtomicU64,
    /// Full plan artifacts keyed by (namespace-stripped query shape ×
    /// base bindings, planning `k`), invalidated via [`Catalog::epoch`].
    /// Reduced-`k` replans of a degraded admission live beside the
    /// full-`k` plan under their own `k` key.
    plan_cache: RwLock<HashMap<(String, u32), CachedPlan>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_replans: AtomicU64,
    /// Monotonic LRU clock for [`CachedPlan::last_used`] stamps.
    cache_clock: AtomicU64,
    /// Cap before LRU eviction kicks in — [`PLAN_CACHE_CAP`] in
    /// production, lowered by tests to exercise eviction cheaply.
    cache_cap: AtomicUsize,
    /// Observed skip fraction per plan-cache key prefix (the Eq. 2
    /// admission discount), epoch-tagged like the plan cache itself.
    skip_stats: RwLock<HashMap<String, SkipStat>>,
    /// Units the most recent admission *requested* (after the skip
    /// discount) — the observable for "the warm Eq. 2 estimate
    /// shrank"; benches and tests compare it across cold/warm runs.
    last_admission_request: AtomicU64,
    /// Engine-wide zone-map pruning totals, accumulated per run.
    zone_blocks: AtomicU64,
    zone_blocks_pruned: AtomicU64,
    zone_pairs: AtomicU64,
    zone_pairs_pruned: AtomicU64,
    zone_rows: AtomicU64,
    zone_rows_pruned: AtomicU64,
    /// Engine-wide real fault-handling totals, accumulated per run
    /// (host attempts, real mid-execution retries, caught panics) plus
    /// runs killed by their deadline mid-execution.
    fault_attempts: AtomicU64,
    fault_retries: AtomicU64,
    fault_panics: AtomicU64,
    deadline_exceeded: AtomicU64,
    /// Engine-local metrics registry: the one naming scheme behind the
    /// server's `metrics` verb. Engine-local (not the process-global
    /// [`mwtj_obs::global`] registry) so concurrent engines — every
    /// test builds its own — never cross-contaminate scrapes.
    metrics: Registry,
    /// Engine-wide slow-query threshold in milliseconds (0 = off).
    /// A run's [`RunOptions::slow_query_ms`] overrides it per query.
    slow_query_ms: AtomicU64,
    /// Attach a columnar backing (`mwtj_storage::Columns`) to every
    /// relation at load time. On by default; the `--row-major` server
    /// flag and the differential suite turn it off to pin
    /// bit-identical results across storage layouts. Purely a storage
    /// accelerator — never observable in query output, plans or
    /// simulated metrics.
    columnar: AtomicBool,
    /// The always-on flight recorder behind `sys.queries`/`sys.jobs`:
    /// a bounded ring of completed-run records (including refused and
    /// failed runs) plus retained profiles of slow runs. Swapped
    /// wholesale by [`Engine::set_flight_capacity`], hence the lock;
    /// recording paths clone the `Arc` and never hold it.
    recorder: RwLock<Arc<FlightRecorder>>,
}

/// The top-level system: cluster + DFS + statistics + planner behind
/// shared immutable state, serving queries from `&self`.
///
/// See the crate-level docs for a full example.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
}

/// Everything a run needs after admission: the planner snapshot, the
/// owned statistics snapshot, the held RAII ticket and — for the
/// `Ours` methods — the `Arc`-shared plan artifact to execute, already
/// replanned at the granted `k` if the admission degraded. Dropping it
/// releases the ticket.
pub(crate) struct Admitted {
    pub(crate) planner: Arc<Planner>,
    pub(crate) stats: Vec<RelationStats>,
    pub(crate) ticket: Ticket,
    pub(crate) plan: Option<Arc<QueryPlan>>,
    /// The plan-cache key prefix (`Ours` methods only) — where the
    /// run's observed skip fraction is recorded for the next
    /// admission's Eq. 2 discount.
    pub(crate) key_prefix: Option<String>,
    /// Statistics epoch the admission snapshotted; tags the recorded
    /// skip fraction so a reload invalidates it like a cached plan.
    pub(crate) epoch: u64,
    /// The run's cancellation token, carrying its deadline when
    /// [`RunOptions::deadline_ms`] was set (the deadline clock starts
    /// *before* admission, so time parked in the admission queue counts
    /// against it). `None` when the run has no deadline.
    pub(crate) cancel: Option<CancelToken>,
    /// Process-unique trace id for this run, also stamped on the
    /// ticket; [`Engine::execute_admitted`] stamps it on the finished
    /// run and its per-job metrics.
    pub(crate) trace_id: u64,
    /// Finished pre-execution spans (plan, admission wait — the SQL
    /// paths push a parse span in front) in lifecycle order; empty
    /// when the run's options disabled tracing.
    pub(crate) spans: Vec<SpanRecord>,
    /// When admission started — anchors the end-to-end latency the
    /// `mwtj_query_latency_ms` histogram observes and the profile
    /// root's wall time.
    pub(crate) started: std::time::Instant,
}

/// The namespace-stripped shape of a query: its Display form with the
/// caller-chosen query name dropped and `__q<N>_` per-run alias
/// prefixes removed — the plan-cache key prefix shared by every run of
/// the same query text.
pub(crate) fn query_shape(q: &MultiwayQuery) -> String {
    let display = q.to_string();
    let shape = display
        .split_once(": ")
        .map_or(display.as_str(), |(_, rest)| rest);
    strip_query_namespaces(shape)
}

impl Engine {
    /// Build over a cluster configuration with default (uncalibrated)
    /// cost parameters and the default [`AdmissionPolicy`].
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_admission_policy(config, AdmissionPolicy::default())
    }

    /// Build with an explicit admission policy (degradation floor,
    /// queue bound) for the scheduler serving this engine's `k_P`
    /// budget.
    pub fn with_admission_policy(config: ClusterConfig, policy: AdmissionPolicy) -> Self {
        let model = CostModel::new(config.clone(), CalibratedParams::default());
        let scheduler = Scheduler::with_policy(config.processing_units, policy);
        Engine {
            shared: Arc::new(Shared {
                id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
                cluster: Cluster::new(config),
                planner: RwLock::new(Arc::new(Planner::new(model))),
                catalog: RwLock::new(Catalog::default()),
                calibrated: Mutex::new(false),
                sample_cap: 512,
                scheduler,
                next_query: AtomicU64::new(0),
                plan_cache: RwLock::new(HashMap::new()),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                cache_evictions: AtomicU64::new(0),
                cache_replans: AtomicU64::new(0),
                cache_clock: AtomicU64::new(0),
                cache_cap: AtomicUsize::new(PLAN_CACHE_CAP),
                skip_stats: RwLock::new(HashMap::new()),
                last_admission_request: AtomicU64::new(0),
                zone_blocks: AtomicU64::new(0),
                zone_blocks_pruned: AtomicU64::new(0),
                zone_pairs: AtomicU64::new(0),
                zone_pairs_pruned: AtomicU64::new(0),
                zone_rows: AtomicU64::new(0),
                zone_rows_pruned: AtomicU64::new(0),
                fault_attempts: AtomicU64::new(0),
                fault_retries: AtomicU64::new(0),
                fault_panics: AtomicU64::new(0),
                deadline_exceeded: AtomicU64::new(0),
                metrics: Registry::new(),
                slow_query_ms: AtomicU64::new(0),
                columnar: AtomicBool::new(true),
                recorder: RwLock::new(Arc::new(FlightRecorder::new())),
            }),
        }
    }

    /// Shorthand: default cluster with `k_P` processing units.
    pub fn with_units(k_p: u32) -> Self {
        Self::new(ClusterConfig::with_units(k_p))
    }

    /// Shorthand: default cluster with `k_P` units and an explicit
    /// admission policy (what serving front-ends construct).
    pub fn with_units_and_policy(k_p: u32, policy: AdmissionPolicy) -> Self {
        Self::with_admission_policy(ClusterConfig::with_units(k_p), policy)
    }

    /// The admission controller sharing the cluster's `k_P` budget
    /// across concurrent queries.
    pub fn scheduler(&self) -> &Scheduler {
        &self.shared.scheduler
    }

    /// The current statistics epoch (bumped whenever loaded data
    /// changes; cached plan estimates from older epochs are discarded).
    pub fn stats_epoch(&self) -> u64 {
        self.shared.catalog.read().epoch
    }

    /// Number of cached plan artifacts (inspection).
    pub fn plan_cache_len(&self) -> usize {
        self.shared.plan_cache.read().len()
    }

    /// One coherent snapshot of every engine-wide counter group —
    /// plan cache, zone skipping, faults, admission, DFS zone-map
    /// cache — gathered at a single point in time. This is what the
    /// server's `stats` command serialises; prefer it over the
    /// per-group accessors whenever more than one group is read.
    pub fn stats_snapshot(&self) -> EngineStats {
        let s = &self.shared;
        // Read the hit/miss counters while holding the cache read
        // lock, so `entries` and the counters describe one moment.
        let plan_cache = {
            let cache = s.plan_cache.read();
            PlanCacheStats {
                entries: cache.len(),
                hits: s.cache_hits.load(Ordering::Relaxed),
                misses: s.cache_misses.load(Ordering::Relaxed),
                evictions: s.cache_evictions.load(Ordering::Relaxed),
                replans: s.cache_replans.load(Ordering::Relaxed),
            }
        };
        let (zone_cache_hits, zone_cache_misses) = s.cluster.dfs().zone_cache_stats();
        let storage = {
            let catalog = s.catalog.read();
            let mut t = StorageStats::default();
            for (name, rel) in catalog
                .relations
                .iter()
                .filter(|(name, _)| !is_internal_instance(name))
            {
                let _ = name;
                t.relations += 1;
                t.encoded_bytes += rel.encoded_bytes() as u64;
                if let Some(layout) = rel.layout() {
                    t.columnar_relations += 1;
                    t.columns += layout.columns as u64;
                    t.dict_entries += layout.dict_entries;
                    t.dict_bytes += layout.dict_bytes;
                    t.null_values += layout.null_count;
                    t.resident_bytes += layout.resident_bytes;
                }
            }
            t
        };
        EngineStats {
            plan_cache,
            zone: ZoneSkipStats {
                blocks: s.zone_blocks.load(Ordering::Relaxed),
                blocks_pruned: s.zone_blocks_pruned.load(Ordering::Relaxed),
                pairs: s.zone_pairs.load(Ordering::Relaxed),
                pairs_pruned: s.zone_pairs_pruned.load(Ordering::Relaxed),
                rows: s.zone_rows.load(Ordering::Relaxed),
                rows_pruned: s.zone_rows_pruned.load(Ordering::Relaxed),
            },
            faults: FaultStats {
                attempts: s.fault_attempts.load(Ordering::Relaxed),
                real_retries: s.fault_retries.load(Ordering::Relaxed),
                panics_caught: s.fault_panics.load(Ordering::Relaxed),
                deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            },
            scheduler: s.scheduler.stats(),
            zone_cache_hits,
            zone_cache_misses,
            last_admission_request: s.last_admission_request.load(Ordering::Relaxed) as u32,
            epoch: self.stats_epoch(),
            storage,
        }
    }

    /// The engine-local metrics registry: counters, gauges and
    /// histograms for every query's lifecycle, exposed by the server's
    /// `metrics` verb. Purely observational — nothing in the engine
    /// reads it back.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Set the engine-wide slow-query threshold: any run whose
    /// end-to-end wall time reaches `ms` milliseconds logs one
    /// structured line to stderr (0 disables; a run's
    /// [`RunOptions::slow_query_ms`] overrides per query).
    pub fn set_slow_query_ms(&self, ms: u64) {
        self.shared.slow_query_ms.store(ms, Ordering::Relaxed);
    }

    /// The engine-wide slow-query threshold in milliseconds (0 = off).
    pub fn slow_query_threshold_ms(&self) -> u64 {
        self.shared.slow_query_ms.load(Ordering::Relaxed)
    }

    /// Toggle columnar relation storage for *future* loads (already
    /// loaded relations keep their layout). On by default. Off forces
    /// row-major storage — the differential suite and the smoke
    /// script's parity run use this; results are bit-identical either
    /// way, only the storage layout and host wall-clock change.
    pub fn set_columnar_storage(&self, on: bool) {
        self.shared.columnar.store(on, Ordering::Relaxed);
    }

    /// Whether future loads attach a columnar backing.
    pub fn columnar_storage(&self) -> bool {
        self.shared.columnar.load(Ordering::Relaxed)
    }

    /// Apply the engine's storage-layout policy to a freshly augmented
    /// relation: attach typed column vectors when columnar storage is
    /// on (a no-op for relations that already carry a backing, e.g.
    /// straight from CSV ingest), or strip them when it is off.
    fn apply_storage_layout(&self, augmented: Relation) -> Relation {
        if self.columnar_storage() {
            if augmented.columns().is_some() {
                augmented
            } else {
                augmented.with_columnar()
            }
        } else if augmented.columns().is_some() {
            augmented.without_columns()
        } else {
            augmented
        }
    }

    /// The flight recorder behind `sys.queries`/`sys.jobs`: the
    /// bounded, always-on ring of completed-run records (including
    /// refused, failed and cancelled runs) plus retained profiles of
    /// runs slower than the slow-query threshold.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.recorder.read())
    }

    /// Replace the flight recorder with a fresh one holding at most
    /// `capacity` records (0 disables recording entirely — the
    /// observation-only differential test runs against this).
    /// Existing history is discarded.
    pub fn set_flight_capacity(&self, capacity: usize) {
        *self.shared.recorder.write() = Arc::new(FlightRecorder::with_capacity(capacity));
    }

    /// Units the most recent `Ours` admission requested from the
    /// scheduler — `plan.units` cold, the skip-discounted value on a
    /// statistics-warm run of a shape whose zone maps pruned. Zero
    /// until the first planned admission. Benches compare this across
    /// a cold/warm pair to show the Eq. 2 estimate shrinking.
    pub fn last_admission_request(&self) -> u32 {
        self.shared.last_admission_request.load(Ordering::Relaxed) as u32
    }

    /// The epoch-valid skip fraction recorded for a plan-cache key
    /// prefix, if any — what the Eq. 2 admission discount would apply
    /// on the next statistics-warm run of the same shape (inspection).
    pub fn recorded_skip_fraction(&self, key_prefix: &str) -> Option<f64> {
        let epoch = self.stats_epoch();
        self.shared
            .skip_stats
            .read()
            .get(key_prefix)
            .filter(|s| s.epoch == epoch)
            .map(|s| s.fraction)
    }

    /// Lower the plan-cache cap (tests only — exercising LRU eviction
    /// at the production cap would need a thousand distinct shapes).
    #[cfg(test)]
    pub(crate) fn set_plan_cache_cap(&self, cap: usize) {
        self.shared.cache_cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// Fold one finished run's zone counters into the engine totals
    /// and, for plan-cached shapes, remember the observed skip fraction
    /// so the next admission of the same shape can discount its Eq. 2
    /// unit request. Only skipping-enabled runs record a fraction — a
    /// `+noskip` ablation would otherwise wipe a real observation.
    fn note_run_skipping(&self, run: &QueryRun, key_prefix: Option<&str>, epoch: u64) {
        let (blocks, blocks_pruned, pairs, pairs_pruned, rows, rows_pruned) = run.zone_totals();
        let s = &self.shared;
        s.zone_blocks.fetch_add(blocks, Ordering::Relaxed);
        s.zone_blocks_pruned
            .fetch_add(blocks_pruned, Ordering::Relaxed);
        s.zone_pairs.fetch_add(pairs, Ordering::Relaxed);
        s.zone_pairs_pruned
            .fetch_add(pairs_pruned, Ordering::Relaxed);
        s.zone_rows.fetch_add(rows, Ordering::Relaxed);
        s.zone_rows_pruned.fetch_add(rows_pruned, Ordering::Relaxed);
        if let Some(key) = key_prefix {
            if rows > 0 {
                let fraction = rows_pruned as f64 / rows as f64;
                s.skip_stats
                    .write()
                    .insert(key.to_string(), SkipStat { epoch, fraction });
            }
        }
    }

    /// The Eq. 2 unit request after the skip discount: if a previous
    /// run of this shape (same statistics epoch) pruned fraction `f` of
    /// its input rows, the shuffle and reduce work the estimate prices
    /// shrinks roughly with the surviving input, so request
    /// `ceil(units × (1 − f))` (never below one unit, discount capped
    /// at 95% as a safety margin). Admission packs the freed units into
    /// concurrent queries; the executed plan itself is unchanged.
    pub(crate) fn discounted_units(&self, key_prefix: &str, units: u32, epoch: u64) -> u32 {
        let f = self
            .shared
            .skip_stats
            .read()
            .get(key_prefix)
            .filter(|s| s.epoch == epoch)
            .map_or(0.0, |s| s.fraction);
        if f <= 0.0 {
            return units;
        }
        let f = f.min(0.95);
        ((f64::from(units)) * (1.0 - f)).ceil().max(1.0) as u32
    }

    /// A stable, process-unique identity for this engine — used by
    /// [`Prepared`](crate::Prepared) handles to notice they are being
    /// executed on a different engine than they were bound against
    /// (two unrelated engines' statistics epochs coincide trivially,
    /// and an allocation address could be reused by a later engine).
    pub(crate) fn engine_id(&self) -> u64 {
        self.shared.id
    }

    /// A session sharing this engine's state, with default run options.
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            defaults: RunOptions::default(),
        }
    }

    /// The underlying cluster (inspection; the DFS holds every loaded
    /// relation under its instance name).
    pub fn cluster(&self) -> &Cluster {
        &self.shared.cluster
    }

    /// A snapshot of the current planner (calibration swaps it).
    pub fn planner(&self) -> Arc<Planner> {
        Arc::clone(&self.shared.planner.read())
    }

    /// Statistics collected for a loaded relation instance.
    pub fn stats_of(&self, name: &str) -> Option<RelationStats> {
        self.shared.catalog.read().stats.get(name).cloned()
    }

    /// The loaded (rowid-augmented) relation under `name`.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        self.shared.catalog.read().relations.get(name).cloned()
    }

    /// Every loaded instance as `(name, cardinality)`, sorted by name
    /// (catalog inspection for serving front-ends). Transient `__q<N>_`
    /// instances of in-flight SQL runs are internal and excluded.
    pub fn loaded_instances(&self) -> Vec<(String, usize)> {
        let catalog = self.shared.catalog.read();
        let mut all: Vec<(String, usize)> = catalog
            .relations
            .iter()
            .filter(|(name, _)| !is_internal_instance(name))
            .map(|(name, rel)| (name.clone(), rel.len()))
            .collect();
        all.sort();
        all
    }

    /// Run the §6.2 calibration sweep and swap in the fitted `p`/`q`.
    pub fn calibrate(&self) {
        let config = self.shared.cluster.config().clone();
        let params = Calibrator::quick(config.clone()).calibrate();
        let planner = Planner::new(CostModel::new(config, params));
        *self.shared.planner.write() = Arc::new(planner);
        *self.shared.calibrated.lock() = true;
        // A new cost model invalidates cached plan estimates.
        self.shared.catalog.write().epoch += 1;
    }

    /// Calibrate at most once per engine (the [`RunOptions::calibrated`]
    /// toggle).
    pub(crate) fn ensure_calibrated(&self) {
        let mut done = self.shared.calibrated.lock();
        if !*done {
            let config = self.shared.cluster.config().clone();
            let params = Calibrator::quick(config.clone()).calibrate();
            *self.shared.planner.write() = Arc::new(Planner::new(CostModel::new(config, params)));
            *done = true;
            self.shared.catalog.write().epoch += 1;
        }
    }

    /// Load a relation: append the implicit rowid column, upload to the
    /// DFS (replicated blocks), and run the sampling/statistics pass.
    ///
    /// This is an *administrative* operation: loading under a name that
    /// already exists replaces that catalog entry (and its binding),
    /// matching the legacy façade's reload semantics. Only SQL
    /// auto-registration ([`Engine::load_alias_of`]) refuses to rebind.
    pub fn load_relation(&self, rel: &Relation) -> LoadReport {
        let augmented = self.apply_storage_layout(augment_with_rid(rel));
        let mut rng = StdRng::seed_from_u64(0x57a7 ^ augmented.len() as u64);
        let stats = RelationStats::collect(&augmented, self.shared.sample_cap, &mut rng);
        let base = rel.name().to_string();
        self.register(augmented, stats, base)
    }

    /// Load the same data under another schema name (self-join
    /// instances `t1`, `t2`, … of one base table).
    ///
    /// Augmentation materialises one rowid-extended copy of `rel`'s
    /// rows per call (the rid column cannot be shared with rows that
    /// lack it); everything downstream of that copy shares storage.
    /// When the base is already loaded, prefer [`Engine::load_alias_of`],
    /// which shares the augmented rows and statistics outright.
    ///
    /// Like [`Engine::load_relation`], this is administrative and will
    /// replace an existing entry under `alias`.
    pub fn load_alias(&self, rel: &Relation, alias: &str) -> LoadReport {
        if rel.name() == alias {
            return self.load_relation(rel);
        }
        let augmented = self.apply_storage_layout(augment_with_rid(rel).rename(alias));
        let mut rng = StdRng::seed_from_u64(0x57a7 ^ augmented.len() as u64);
        let stats = RelationStats::collect(&augmented, self.shared.sample_cap, &mut rng);
        let base = rel.name().to_string();
        self.register(augmented, stats, base)
    }

    /// Alias an *already loaded* base relation: row storage and
    /// statistics are shared outright (no copy, no sampling pass);
    /// only the DFS upload of the instance file is priced, as each
    /// instance is a distinct DFS file on a real cluster.
    ///
    /// Idempotent: if `alias` is already bound to `base`, nothing
    /// happens and a zero-cost report is returned. Binding an alias
    /// that currently points at a *different* base is an
    /// [`EngineError::AliasConflict`] — rebinding under a running
    /// engine would hand concurrent queries the wrong data.
    pub fn load_alias_of(&self, base: &str, alias: &str) -> Result<LoadReport, EngineError> {
        // One write lock for check + upload + publish. Keeping the DFS
        // upload inside the critical section means a large alias load
        // briefly blocks stat lookups, but releasing the lock around it
        // would open a window where either the catalog names a DFS file
        // that does not exist yet, or a losing racer clobbers the
        // winner's DFS file after the conflict check. Alias loads are
        // rare administrative events; correctness wins.
        let mut catalog = self.shared.catalog.write();
        match catalog.bases.get(alias) {
            Some(bound) if bound == base => {
                return Ok(LoadReport {
                    upload_secs: 0.0,
                    sampling_secs: 0.0,
                })
            }
            Some(bound) => {
                return Err(EngineError::AliasConflict {
                    alias: alias.into(),
                    bound_to: bound.clone(),
                    requested: base.into(),
                })
            }
            None => {}
        }
        let rel = catalog
            .relations
            .get(base)
            .ok_or_else(|| EngineError::RelationNotLoaded { name: base.into() })?
            .rename(alias);
        let stats = catalog
            .stats
            .get(base)
            .cloned()
            .ok_or_else(|| EngineError::RelationNotLoaded { name: base.into() })?;
        let config = self.shared.cluster.config();
        let upload_secs = self.shared.cluster.dfs().put_relation(alias, &rel, config);
        catalog.stats.insert(alias.to_string(), stats);
        catalog.relations.insert(alias.to_string(), Arc::new(rel));
        catalog.bases.insert(alias.to_string(), base.to_string());
        Ok(LoadReport {
            upload_secs,
            // Statistics are shared with the base; no sampling pass.
            sampling_secs: 0.0,
        })
    }

    /// Upload `augmented` to the DFS, price the load, and publish it in
    /// the catalog bound to `base`.
    ///
    /// Reloading a name that already exists refreshes every alias
    /// bound to it (their rows and statistics re-share the new data
    /// and their DFS instance files are re-uploaded), so stale
    /// statistics cannot survive a reload; the statistics epoch is
    /// bumped, invalidating cached plan estimates.
    fn register(&self, augmented: Relation, stats: RelationStats, base: String) -> LoadReport {
        let config = self.shared.cluster.config();
        let mut upload_secs =
            self.shared
                .cluster
                .dfs()
                .put_relation(augmented.name(), &augmented, config);
        // Sampling pass: one sequential scan of a sample's worth of
        // blocks + histogram building; priced as reading the sampled
        // fraction plus a fixed index-build overhead per block.
        let hw = &config.hardware;
        let sampled_bytes = (self.shared.sample_cap as f64 * augmented.avg_row_bytes())
            .min(augmented.encoded_bytes() as f64);
        let sampling_secs =
            augmented.encoded_bytes() as f64 * hw.c1() * 0.25 + sampled_bytes / hw.disk_write_bps;
        // Publish the storage layout to the metrics registry (the
        // server's `metrics` verb and `sys.metrics`): per-relation
        // gauges describing the columnar backing, or zeroed gauges for
        // a row-major (re)load so a layout toggle is visible.
        {
            let m = &self.shared.metrics;
            let labels: &[(&str, &str)] = &[("relation", augmented.name())];
            let layout = augmented.layout().unwrap_or_default();
            m.gauge_set(
                "mwtj_storage_columnar",
                labels,
                if augmented.columns().is_some() {
                    1.0
                } else {
                    0.0
                },
            );
            m.gauge_set("mwtj_storage_columns", labels, layout.columns as f64);
            m.gauge_set(
                "mwtj_storage_dict_entries",
                labels,
                layout.dict_entries as f64,
            );
            m.gauge_set("mwtj_storage_dict_bytes", labels, layout.dict_bytes as f64);
            m.gauge_set("mwtj_storage_null_values", labels, layout.null_count as f64);
            m.gauge_set(
                "mwtj_storage_resident_bytes",
                labels,
                layout.resident_bytes as f64,
            );
            m.gauge_set(
                "mwtj_storage_encoded_bytes",
                labels,
                augmented.encoded_bytes() as f64,
            );
        }
        let mut catalog = self.shared.catalog.write();
        let name = augmented.name().to_string();
        let replaced = catalog.relations.contains_key(&name);
        let augmented = Arc::new(augmented);
        catalog.stats.insert(name.clone(), stats.clone());
        catalog
            .relations
            .insert(name.clone(), Arc::clone(&augmented));
        catalog.bases.insert(name.clone(), base);
        // Refresh dependent aliases: anything bound to this name now
        // shares the new rows and statistics outright. This must also
        // run when the name was previously `unload`ed (the alias
        // bindings survive and would otherwise serve stale data
        // forever) — so the trigger is "dependents exist", not
        // "entry replaced". Transient `__q<N>_` instances of in-flight
        // SQL runs are *excluded*: those queries own a mid-execution
        // snapshot and must not have their DFS inputs swapped under
        // them.
        let dependents: Vec<String> = catalog
            .bases
            .iter()
            .filter(|(alias, b)| *b == &name && *alias != &name && !is_internal_instance(alias))
            .map(|(alias, _)| alias.clone())
            .collect();
        for alias in &dependents {
            let renamed = augmented.rename(alias);
            upload_secs += self
                .shared
                .cluster
                .dfs()
                .put_relation(alias, &renamed, config);
            catalog.relations.insert(alias.clone(), Arc::new(renamed));
            catalog.stats.insert(alias.clone(), stats.clone());
        }
        if replaced || !dependents.is_empty() {
            catalog.epoch += 1;
        }
        LoadReport {
            upload_secs,
            sampling_secs,
        }
    }

    /// Drop a loaded instance from the catalog and the DFS. Returns
    /// whether the name existed. Administrative: a query concurrently
    /// using the instance keeps its snapshotted rows, but new queries
    /// will fail to resolve the name.
    pub fn unload(&self, name: &str) -> bool {
        let existed = self.unload_quiet(name);
        if existed {
            self.shared.catalog.write().epoch += 1;
        }
        existed
    }

    /// [`Engine::unload`] without the epoch bump — cleanup of per-query
    /// internal alias instances, which no other query can reference.
    pub(crate) fn unload_quiet(&self, name: &str) -> bool {
        let mut catalog = self.shared.catalog.write();
        let existed = catalog.relations.remove(name).is_some();
        catalog.stats.remove(name);
        catalog.bases.remove(name);
        drop(catalog);
        self.shared.cluster.dfs().remove(name);
        existed
    }

    /// Execute `query` (built against the *base* schemas, without the
    /// rowid column) under `opts`, returning the result or a typed
    /// error — never panicking on unknown relations or plan failures.
    ///
    /// Every run is admission-controlled: the planner's cost estimate
    /// (Eq. 2) sizes the query's `k_P` slice, the [`Scheduler`]
    /// reserves it against the shared budget (queueing or degrading to
    /// a smaller-`k` replan when the cluster is oversubscribed), and
    /// the reservation is released when the run completes. The
    /// returned [`QueryRun`] carries the admission ticket and the
    /// granted units.
    pub fn run(&self, query: &MultiwayQuery, opts: &RunOptions) -> Result<QueryRun, EngineError> {
        if opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let q = augment_query(query);
        let admitted = self.admit_for(&q, opts, None)?;
        self.execute_admitted(&admitted, &q, opts, None)
    }

    /// Snapshot the statistics for an (augmented) query's instances,
    /// plus each instance's base binding (which keys the estimate
    /// cache) and the epoch — releasing the catalog guard before the
    /// caller executes: holding it across a multi-second run would
    /// stall every concurrent load (and, with writers queued, new
    /// runs).
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot_stats(
        &self,
        q: &MultiwayQuery,
    ) -> Result<(Vec<RelationStats>, Vec<String>, u64), EngineError> {
        let catalog = self.shared.catalog.read();
        let stats: Vec<RelationStats> =
            q.schemas
                .iter()
                .map(|s| {
                    catalog.stats.get(s.name()).cloned().ok_or_else(|| {
                        EngineError::RelationNotLoaded {
                            name: s.name().to_string(),
                        }
                    })
                })
                .collect::<Result<_, _>>()?;
        let bases: Vec<String> = q
            .schemas
            .iter()
            .map(|s| {
                catalog
                    .bases
                    .get(s.name())
                    .cloned()
                    .unwrap_or_else(|| s.name().to_string())
            })
            .collect();
        Ok((stats, bases, catalog.epoch))
    }

    /// Price an (augmented) query and reserve its `k_P` slice: snapshot
    /// statistics, fetch or compute the plan artifact (shared plan
    /// cache, epoch-verified), and admit with its unit estimate and
    /// predicted makespan as the scheduler's SJF key. A degraded grant
    /// replans at the granted `k` before execution starts (cached per
    /// `k`, so repeated degradations of the same shape also skip
    /// planning).
    ///
    /// `shape` overrides the cache-key shape — the prepared-statement
    /// path passes its *template* shape (with `?` slots) so every
    /// execution of one statement shares a single plan entry across
    /// parameter bindings.
    pub(crate) fn admit_for(
        &self,
        q: &MultiwayQuery,
        opts: &RunOptions,
        shape: Option<&str>,
    ) -> Result<Admitted, EngineError> {
        let started = std::time::Instant::now();
        let trace_id = next_trace_id();
        let traced = opts.tracing_enabled();
        let mut spans = Vec::new();
        let planner = self.planner();
        let (owned_stats, bases, epoch) = self.snapshot_stats(q)?;
        let k_full = self.shared.cluster.config().processing_units;
        // The deadline clock starts here, before admission: a query
        // stuck in the admission queue past its deadline is refused
        // without ever running (the scheduler's wait is bounded on it).
        let cancel = opts.get_deadline_ms().map(CancelToken::with_timeout_ms);
        let deadline = cancel.as_ref().and_then(|c| c.deadline());
        // Introspection bypass: a query over any `sys.*` relation plans
        // directly — never through the plan cache, since each run
        // materialises a fresh snapshot the cached plan would outlive —
        // and executes on an admission-exempt zero-unit ticket, so
        // introspection still answers while the unit budget is
        // exhausted, the queue is full, or the scheduler is draining.
        if bases.iter().any(|b| crate::sys::is_sys(b)) {
            return self.admit_sys(
                q,
                opts,
                planner,
                owned_stats,
                epoch,
                cancel,
                trace_id,
                started,
            );
        }
        // Size the slice this query needs. The paper's planner packs
        // its jobs into a peak concurrent allotment we can price
        // exactly; the baselines are k_P-unaware and assume the whole
        // cluster (and carry no makespan estimate, so they queue behind
        // every estimated query under SJF). Baselines plan nothing, so
        // they carry no plan artifact either.
        match opts.get_method() {
            Method::Ours | Method::OursGrid => {
                let stats: Vec<&RelationStats> = owned_stats.iter().collect();
                // The cache key is the query's *shape*: its Display
                // form with the caller-chosen query name dropped
                // (run_sql names every query "sql"/"sql<i>"/"server")
                // and per-query alias namespaces stripped, so every run
                // of the same text shares one entry — plus the *base
                // tables* each instance binds to, so shape-identical
                // queries over different bases (whose statistics
                // differ) never share a plan.
                let key_prefix = format!(
                    "{}|{}",
                    shape.map_or_else(|| query_shape(q), str::to_string),
                    bases.join(",")
                );
                let mut plan_span = Span::enter("plan");
                let (plan, cache_hit) =
                    self.plan_for(&planner, q, &stats, &key_prefix, k_full, epoch, false)?;
                // Statistics-warm discount: a shape whose zone maps
                // pruned fraction f of its input last run (same epoch)
                // requests a (1 − f)-scaled slice — the estimate's
                // shuffle/reduce work shrinks with the surviving rows,
                // so admission packs more queries into k_P.
                let requested = if opts.skipping_enabled() {
                    self.discounted_units(&key_prefix, plan.units, epoch)
                } else {
                    plan.units
                };
                plan_span.meta("cache", if cache_hit { "hit" } else { "miss" });
                plan_span.meta("units", requested);
                plan_span.meta("predicted_secs", format!("{:.6}", plan.predicted_secs()));
                let plan_record = plan_span.finish();
                self.shared
                    .last_admission_request
                    .store(u64::from(requested), Ordering::Relaxed);
                let ticket = match self.admit_units(requested, plan.predicted_secs(), deadline) {
                    Ok(ticket) => ticket,
                    Err(e) => {
                        return Err(self.record_refusal(q, opts, trace_id, requested, started, e))
                    }
                };
                let plan = if ticket.degraded() {
                    let (replanned, _) = self.plan_for(
                        &planner,
                        q,
                        &stats,
                        &key_prefix,
                        ticket.granted(),
                        epoch,
                        true,
                    )?;
                    replanned
                } else {
                    plan
                };
                let (ticket, wait_record) =
                    self.finish_admission(ticket, trace_id, requested, started, &plan_record);
                if traced {
                    spans.push(plan_record);
                    spans.push(wait_record);
                }
                Ok(Admitted {
                    planner,
                    stats: owned_stats,
                    ticket,
                    plan: Some(plan),
                    key_prefix: Some(key_prefix),
                    epoch,
                    cancel,
                    trace_id,
                    spans,
                    started,
                })
            }
            Method::YSmart | Method::Hive | Method::Pig => {
                let plan_record = SpanRecord::synthetic("plan").with_meta("cache", "none");
                let ticket = match self.admit_units(k_full, f64::INFINITY, deadline) {
                    Ok(ticket) => ticket,
                    Err(e) => {
                        return Err(self.record_refusal(q, opts, trace_id, k_full, started, e))
                    }
                };
                let (ticket, wait_record) =
                    self.finish_admission(ticket, trace_id, k_full, started, &plan_record);
                if traced {
                    spans.push(plan_record);
                    spans.push(wait_record);
                }
                Ok(Admitted {
                    planner,
                    stats: owned_stats,
                    ticket,
                    plan: None,
                    key_prefix: None,
                    epoch,
                    cancel,
                    trace_id,
                    spans,
                    started,
                })
            }
        }
    }

    /// Admission for a query that reads `sys.*` relations. The plan is
    /// computed directly from this run's snapshot statistics — the plan
    /// cache is bypassed in both directions (no lookup, no insert), so
    /// a plan over one snapshot can never be replayed against the next
    /// — and the ticket is an admission-exempt zero-unit grant from
    /// [`Scheduler::exempt`], so introspection works even when the
    /// cluster budget is fully committed.
    #[allow(clippy::too_many_arguments)]
    fn admit_sys(
        &self,
        q: &MultiwayQuery,
        opts: &RunOptions,
        planner: Arc<Planner>,
        owned_stats: Vec<RelationStats>,
        epoch: u64,
        cancel: Option<CancelToken>,
        trace_id: u64,
        started: std::time::Instant,
    ) -> Result<Admitted, EngineError> {
        let traced = opts.tracing_enabled();
        let k_full = self.shared.cluster.config().processing_units;
        let mut spans = Vec::new();
        let plan = match opts.get_method() {
            Method::Ours | Method::OursGrid => {
                let stats: Vec<&RelationStats> = owned_stats.iter().collect();
                let mut plan_span = Span::enter("plan");
                let plan = Arc::new(planner.plan_query(q, &stats, k_full)?);
                plan_span.meta("cache", "bypass");
                plan_span.meta("units", plan.units);
                plan_span.meta("predicted_secs", format!("{:.6}", plan.predicted_secs()));
                if traced {
                    spans.push(plan_span.finish());
                }
                Some(plan)
            }
            Method::YSmart | Method::Hive | Method::Pig => {
                if traced {
                    spans.push(SpanRecord::synthetic("plan").with_meta("cache", "bypass"));
                }
                None
            }
        };
        let mut ticket = self.shared.scheduler.exempt();
        ticket.set_trace_id(trace_id);
        if traced {
            spans.push(
                SpanRecord::synthetic("admission")
                    .with_meta("requested", 0u32)
                    .with_meta("granted", 0u32)
                    .with_meta("exempt", true),
            );
        }
        Ok(Admitted {
            planner,
            stats: owned_stats,
            ticket,
            plan,
            key_prefix: None,
            epoch,
            cancel,
            trace_id,
            spans,
            started,
        })
    }

    /// An admission refusal still leaves a trace: the run enters the
    /// flight recorder with a `shed` (queue full / shutdown) or
    /// `deadline` outcome and zero granted units, and the per-outcome
    /// counter is charged, before the error is surfaced unchanged.
    fn record_refusal(
        &self,
        q: &MultiwayQuery,
        opts: &RunOptions,
        trace_id: u64,
        requested: u32,
        started: std::time::Instant,
        e: EngineError,
    ) -> EngineError {
        let outcome = match &e {
            EngineError::Admission(crate::scheduler::AdmissionError::DeadlineExceeded) => {
                Outcome::Deadline
            }
            _ => Outcome::Shed,
        };
        self.shared.metrics.counter_add(
            "mwtj_query_outcomes_total",
            &[("outcome", outcome.as_str())],
            1,
        );
        let recorder = self.flight_recorder();
        if recorder.is_enabled() {
            recorder.record(FlightRecord {
                trace_id,
                shape: query_shape(q),
                method: opts.get_method().as_str().to_string(),
                partition: opts.effective_partition().to_string(),
                requested_units: requested,
                granted_units: 0,
                queued: false,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                sim_secs: 0.0,
                rows_out: 0,
                skip_fraction: 0.0,
                attempts: 0,
                real_retries: 0,
                panics_caught: 0,
                outcome,
                ticket: 0,
                jobs: Vec::new(),
            });
        }
        e
    }

    /// Reserve `requested` units through the scheduler, charging a
    /// refusal (queue-full shed, deadline refusal, shutdown) to the
    /// registry before surfacing it.
    fn admit_units(
        &self,
        requested: u32,
        predicted_secs: f64,
        deadline: Option<std::time::Instant>,
    ) -> Result<Ticket, EngineError> {
        match self
            .shared
            .scheduler
            .admit_with_cost_until(requested, predicted_secs, deadline)
        {
            Ok(ticket) => Ok(ticket),
            Err(e) => {
                let reason = match &e {
                    crate::scheduler::AdmissionError::QueueFull { .. } => "queue_full",
                    crate::scheduler::AdmissionError::DeadlineExceeded => "deadline",
                    crate::scheduler::AdmissionError::ShuttingDown => "shutdown",
                };
                self.shared.metrics.counter_add(
                    "mwtj_admission_refused_total",
                    &[("reason", reason)],
                    1,
                );
                Err(e.into())
            }
        }
    }

    /// Post-admission bookkeeping shared by the planned and baseline
    /// branches: stamp the trace id on the ticket, finish the
    /// admission-wait span (wait = elapsed since `started` minus the
    /// plan span), and record the admission metrics.
    fn finish_admission(
        &self,
        mut ticket: Ticket,
        trace_id: u64,
        requested: u32,
        started: std::time::Instant,
        plan_record: &SpanRecord,
    ) -> (Ticket, SpanRecord) {
        ticket.set_trace_id(trace_id);
        let wait_ms = (started.elapsed().as_secs_f64() * 1e3 - plan_record.wall_ms).max(0.0);
        let record = SpanRecord {
            stage: "admission".to_string(),
            wall_ms: wait_ms,
            sim_secs: None,
            meta: vec![
                ("requested".to_string(), requested.to_string()),
                ("granted".to_string(), ticket.granted().to_string()),
                ("queued".to_string(), ticket.queued().to_string()),
            ],
            children: Vec::new(),
        };
        let m = &self.shared.metrics;
        m.observe("mwtj_admission_wait_ms", &[], wait_ms);
        m.counter_add("mwtj_units_requested_total", &[], u64::from(requested));
        m.counter_add("mwtj_units_granted_total", &[], u64::from(ticket.granted()));
        m.gauge_set(
            "mwtj_queue_depth",
            &[],
            f64::from(self.shared.scheduler.stats().queued_now),
        );
        (ticket, record)
    }

    /// Execute under a held admission: an `Ours` run executes exactly
    /// the admitted plan artifact (no replanning — a degraded grant's
    /// reduced-`k` plan was already fetched at admission); baselines
    /// cascade as before. With a `sink`, the terminal job streams its
    /// output as row batches and the returned run's `output` is empty.
    pub(crate) fn execute_admitted(
        &self,
        admitted: &Admitted,
        q: &MultiwayQuery,
        opts: &RunOptions,
        sink: Option<mwtj_mapreduce::SinkSpec>,
    ) -> Result<QueryRun, EngineError> {
        let cluster = &self.shared.cluster;
        let method = opts.get_method();
        let stats: Vec<&RelationStats> = admitted.stats.iter().collect();
        let mut exec_opts = opts.exec_options();
        exec_opts.ticket = admitted.ticket.id();
        exec_opts.sink = sink;
        exec_opts.cancel = admitted.cancel.clone();
        if admitted.ticket.degraded() {
            exec_opts.units = Some(admitted.ticket.granted());
        }
        let planner = &admitted.planner;
        let exec_span = Span::enter("execute");
        let run = match method {
            Method::Ours | Method::OursGrid => {
                let plan = admitted
                    .plan
                    .as_ref()
                    .expect("ours admission always carries a plan artifact");
                planner.try_execute_planned(q, plan, &stats, cluster, &exec_opts)
            }
            Method::YSmart => {
                planner.try_execute_baseline(Baseline::YSmart, q, &stats, cluster, &exec_opts)
            }
            Method::Hive => {
                planner.try_execute_baseline(Baseline::Hive, q, &stats, cluster, &exec_opts)
            }
            Method::Pig => {
                planner.try_execute_baseline(Baseline::Pig, q, &stats, cluster, &exec_opts)
            }
        };
        let method_label: [(&str, &str); 1] = [("method", method.as_str())];
        // Every execution path — Engine::run, prepared execute, and the
        // streaming worker — funnels through here, so this is the one
        // place the engine-wide fault counters are charged.
        let mut run = match run {
            Ok(run) => {
                let totals = run.fault_totals();
                let shared = &self.shared;
                shared
                    .fault_attempts
                    .fetch_add(totals.attempts, Ordering::Relaxed);
                shared
                    .fault_retries
                    .fetch_add(totals.real_retries, Ordering::Relaxed);
                shared
                    .fault_panics
                    .fetch_add(totals.panics_caught, Ordering::Relaxed);
                let m = &shared.metrics;
                m.counter_add("mwtj_task_attempts_total", &[], totals.attempts);
                m.counter_add("mwtj_task_retries_total", &[], totals.real_retries);
                m.counter_add("mwtj_task_panics_total", &[], totals.panics_caught);
                run
            }
            Err(e) => {
                let outcome = match &e {
                    PlanError::Exec(ExecError::DeadlineExceeded) => Outcome::Deadline,
                    PlanError::Exec(ExecError::Cancelled) => Outcome::Cancelled,
                    _ => Outcome::Error,
                };
                if matches!(outcome, Outcome::Deadline | Outcome::Cancelled) {
                    self.shared
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.counter_add(
                        "mwtj_deadline_exceeded_total",
                        &method_label,
                        1,
                    );
                }
                // A failed run is still a flight: it enters the
                // recorder with its outcome and zero output so
                // `sys.queries` shows errors, deadline kills and
                // cancellations next to successes.
                self.shared.metrics.counter_add(
                    "mwtj_query_outcomes_total",
                    &[("outcome", outcome.as_str())],
                    1,
                );
                let recorder = self.flight_recorder();
                if recorder.is_enabled() {
                    recorder.record(flight_record_for(admitted, q, opts, outcome, None));
                }
                return Err(e.into());
            }
        };
        if opts.skipping_enabled() {
            self.note_run_skipping(&run, admitted.key_prefix.as_deref(), admitted.epoch);
        }
        // Observation only, below this line: trace-id stamping, the
        // profile tree, metrics and the slow-query log never feed back
        // into rows, plan choice, or the simulated Eq. 2–4 clocks (the
        // differential test holds runs bit-identical tracing on vs
        // off).
        run.trace_id = admitted.trace_id;
        for job in &mut run.jobs {
            job.trace_id = admitted.trace_id;
        }
        let wall_ms = admitted.started.elapsed().as_secs_f64() * 1e3;
        let m = &self.shared.metrics;
        m.counter_add("mwtj_queries_total", &method_label, 1);
        m.observe("mwtj_query_latency_ms", &method_label, wall_ms);
        m.gauge_set("mwtj_skip_fraction", &[], run.skip_fraction());
        if opts.tracing_enabled() {
            let mut exec = exec_span.finish();
            exec.sim_secs = Some(run.sim_secs);
            exec = exec
                .with_meta("rows", run.output.len())
                .with_meta("granted_units", run.granted_units);
            for (i, job) in run.jobs.iter().enumerate() {
                exec.children.push(job_span(i, job));
            }
            let mut root = SpanRecord::synthetic("query")
                .with_meta("method", method)
                .with_sim_secs(run.sim_secs);
            root.wall_ms = wall_ms;
            root.children = admitted.spans.clone();
            root.children.push(exec);
            run.profile = Some(QueryProfile {
                trace_id: admitted.trace_id,
                root,
            });
        }
        m.counter_add("mwtj_query_outcomes_total", &[("outcome", "ok")], 1);
        let recorder = self.flight_recorder();
        if recorder.is_enabled() {
            recorder.record(flight_record_for(
                admitted,
                q,
                opts,
                Outcome::Ok,
                Some(&run),
            ));
        }
        let threshold = opts
            .get_slow_query_ms()
            .unwrap_or_else(|| self.shared.slow_query_ms.load(Ordering::Relaxed));
        if threshold > 0 && wall_ms >= threshold as f64 {
            m.counter_add("mwtj_slow_queries_total", &method_label, 1);
            // Slow runs keep their full profile tree in the recorder's
            // bounded retention ring, fetchable later by trace id.
            if let Some(profile) = &run.profile {
                recorder.record_profile(profile.clone());
            }
            eprintln!(
                "slow-query trace={} method={} wall_ms={:.1} sim_secs={:.3} rows={} ticket={} plan={:?}",
                admitted.trace_id,
                method,
                wall_ms,
                run.sim_secs,
                run.output.len(),
                run.ticket,
                run.plan,
            );
        }
        Ok(run)
    }

    /// The plan artifact for `(key_prefix, k)` — from the shared plan
    /// cache when its epoch still matches (returned with `true`),
    /// otherwise freshly planned against `stats` and cached (returned
    /// with `false`). `replan` marks a reduced-`k` plan after
    /// admission degradation (counted as a replan when it has to be
    /// computed; a cached reduced-`k` entry is an ordinary hit).
    ///
    /// A miss plans *while holding the cache write lock* (single
    /// flight): N sessions cold-executing one statement do one
    /// planning pass, the other N−1 block briefly and then hit.
    /// Planning is sub-millisecond-to-few-millisecond on measured
    /// shapes (`BENCH_prepared.json`), orders of magnitude below the
    /// executions the lock's readers are about to start, so the
    /// serialization is cheap.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn plan_for(
        &self,
        planner: &Planner,
        q: &MultiwayQuery,
        stats: &[&RelationStats],
        key_prefix: &str,
        k: u32,
        epoch: u64,
        replan: bool,
    ) -> Result<(Arc<QueryPlan>, bool), EngineError> {
        let key = (key_prefix.to_string(), k);
        let touch = || self.shared.cache_clock.fetch_add(1, Ordering::Relaxed) + 1;
        let hit_metrics = || {
            self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.shared.metrics.counter_add(
                "mwtj_plan_cache_lookups_total",
                &[("result", "hit")],
                1,
            );
        };
        {
            let cache = self.shared.plan_cache.read();
            if let Some(hit) = cache.get(&key) {
                if hit.epoch == epoch {
                    hit.last_used.store(touch(), Ordering::Relaxed);
                    hit_metrics();
                    return Ok((Arc::clone(&hit.plan), true));
                }
            }
        }
        let mut cache = self.shared.plan_cache.write();
        // Double-check under the write lock: a concurrent planner may
        // have published this key while we waited.
        let stale = match cache.get(&key) {
            Some(hit) if hit.epoch == epoch => {
                hit.last_used.store(touch(), Ordering::Relaxed);
                hit_metrics();
                return Ok((Arc::clone(&hit.plan), true));
            }
            Some(_) => true,
            None => false,
        };
        self.shared.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.shared
            .metrics
            .counter_add("mwtj_plan_cache_lookups_total", &[("result", "miss")], 1);
        let plan = Arc::new(planner.plan_query(q, stats, k)?);
        // At the cap, evict the least-recently-used entries (one count
        // each) — never when refreshing an existing key in place.
        let cap = self.shared.cache_cap.load(Ordering::Relaxed).max(1);
        if !cache.contains_key(&key) {
            while cache.len() >= cap {
                let victim = cache
                    .iter()
                    .min_by_key(|(_, v)| v.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(v) => {
                        cache.remove(&v);
                        self.shared.cache_evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        cache.insert(
            key,
            CachedPlan {
                epoch,
                plan: Arc::clone(&plan),
                last_used: AtomicU64::new(touch()),
            },
        );
        if stale {
            // A stale-epoch entry was refreshed in place: one eviction,
            // and by definition a replan of a known shape.
            self.shared.cache_evictions.fetch_add(1, Ordering::Relaxed);
            self.shared.cache_replans.fetch_add(1, Ordering::Relaxed);
        } else if replan {
            self.shared.cache_replans.fetch_add(1, Ordering::Relaxed);
        }
        Ok((plan, false))
    }

    /// Execute several independent queries concurrently on a scoped
    /// thread pool (one worker per host core, capped at the batch
    /// size), all under the same options. Results are returned in input
    /// order; each query fails independently. Shared engine state is
    /// read-only during execution and every run's intermediate DFS
    /// files are namespaced, so results are identical to sequential
    /// [`Engine::run`] calls.
    pub fn run_many(
        &self,
        queries: &[&MultiwayQuery],
        opts: &RunOptions,
    ) -> Vec<Result<QueryRun, EngineError>> {
        if opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let n = queries.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<QueryRun, EngineError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock() = Some(self.run(queries[i], opts));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap_or_else(|| {
                    Err(EngineError::Exec(ExecError::BadRequest {
                        detail: "internal: query slot never executed".into(),
                    }))
                })
            })
            .collect()
    }

    /// Parse a SQL query against the loaded base relations. The
    /// returned [`ParsedQuery`] lists each FROM-clause `(alias, base)`
    /// instance. Parsing alone does **not** register aliases —
    /// [`Engine::run_sql`]/[`Engine::run_sql_many`] do, or call
    /// [`Engine::load_alias_of`] per instance before
    /// [`Engine::run`]ning a parsed query yourself.
    pub fn parse_sql(&self, name: &str, sql: &str) -> Result<ParsedQuery, EngineError> {
        let catalog = self.shared.catalog.read();
        let resolver = |base: &str| -> Option<Schema> {
            if crate::sys::is_sys(base) {
                return crate::sys::schema_of(base);
            }
            catalog
                .relations
                .get(base)
                .map(|rel| base_schema(rel.schema()))
        };
        mwtj_query::parse_sql(name, sql, &resolver).map_err(EngineError::from)
    }

    /// Parse a statement — a query optionally prefixed with `EXPLAIN`
    /// or `EXPLAIN ANALYZE` — against the loaded base relations.
    /// Like [`Engine::parse_sql`], parsing registers nothing.
    pub fn parse_statement(
        &self,
        name: &str,
        sql: &str,
    ) -> Result<mwtj_query::Statement, EngineError> {
        let catalog = self.shared.catalog.read();
        let resolver = |base: &str| -> Option<Schema> {
            if crate::sys::is_sys(base) {
                return crate::sys::schema_of(base);
            }
            catalog
                .relations
                .get(base)
                .map(|rel| base_schema(rel.schema()))
        };
        mwtj_query::parse_statement(name, sql, &resolver).map_err(EngineError::from)
    }

    /// Parse and execute a SQL query end-to-end with default options:
    /// parse → register per-query alias instances → plan → execute.
    ///
    /// Each run binds its FROM-clause aliases in a private namespace
    /// (internal instance names, rewritten back to the public aliases
    /// on output), so concurrent tenants can bind the same alias to
    /// *different* bases without an `AliasConflict` — the engine-global
    /// alias limit applies only to explicit [`Engine::load_alias_of`]
    /// bindings.
    pub fn run_sql(&self, sql: &str) -> Result<QueryRun, EngineError> {
        self.run_sql_with("sql", sql, &RunOptions::default())
    }

    /// [`Engine::run_sql`] with an explicit query name and options.
    ///
    /// Since the prepared-query refactor this is a thin composition of
    /// the lifecycle stages — parse ([`Engine::prepare_sql`]) then
    /// execute ([`Engine::execute`]) with no parameters — so ad-hoc SQL
    /// shares the plan cache with prepared statements of the same text:
    /// the second ad-hoc run of a query skips planning entirely.
    pub fn run_sql_with(
        &self,
        name: &str,
        sql: &str,
        opts: &RunOptions,
    ) -> Result<QueryRun, EngineError> {
        let prepared = self.prepare_sql(name, sql)?;
        self.execute(&prepared, &[], opts)
    }

    /// Parse several SQL queries, register their per-query alias
    /// namespaces, and execute them concurrently via
    /// [`Engine::run_many`]. Results come back in input order; a query
    /// that fails to parse fails alone, and two queries binding the
    /// same alias to different bases do not conflict.
    pub fn run_sql_many(
        &self,
        sqls: &[&str],
        opts: &RunOptions,
    ) -> Vec<Result<QueryRun, EngineError>> {
        type Prep = (ParsedQuery, Vec<(String, String)>);
        let prepared: Vec<Result<Prep, EngineError>> = sqls
            .iter()
            .enumerate()
            .map(|(i, sql)| {
                let p = self.parse_sql(&format!("sql{i}"), sql)?;
                let (ns, renames) = self.namespace_instances(&p);
                if let Err(e) = self.register_instances(&ns) {
                    // Drop whatever part of the namespace did register.
                    for (internal, _) in &ns.instances {
                        self.unload_quiet(internal);
                    }
                    return Err(e);
                }
                Ok((ns, renames))
            })
            .collect();
        let runnable: Vec<&MultiwayQuery> = prepared
            .iter()
            .filter_map(|p| p.as_ref().ok().map(|(ns, _)| &ns.query))
            .collect();
        let mut executed = self.run_many(&runnable, opts).into_iter();
        prepared
            .into_iter()
            .map(|p| match p {
                Ok((ns, renames)) => {
                    let run = executed.next().unwrap_or_else(|| {
                        Err(EngineError::Exec(ExecError::BadRequest {
                            detail: "internal: SQL batch slot never executed".into(),
                        }))
                    });
                    for (internal, _) in &ns.instances {
                        self.unload_quiet(internal);
                    }
                    run.map(|r| restore_public_names(r, &renames))
                }
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Rewrite `parsed`'s instances into this engine's next private
    /// query namespace.
    pub(crate) fn namespace_instances(
        &self,
        parsed: &ParsedQuery,
    ) -> (ParsedQuery, Vec<(String, String)>) {
        let tag = self.shared.next_query.fetch_add(1, Ordering::Relaxed);
        parsed.namespaced(&format!("__q{tag}_"))
    }

    /// Register every FROM-clause instance of `parsed`, sharing rows
    /// and statistics with its base table. [`Engine::load_alias_of`] is
    /// idempotent and rejects rebinding an alias to a different base,
    /// so concurrent registrations cannot hand a query the wrong data
    /// (namespaced instance names never collide in the first place).
    pub(crate) fn register_instances(&self, parsed: &ParsedQuery) -> Result<(), EngineError> {
        // Each distinct `sys.` base referenced by this query is
        // snapshot-materialised exactly once, so a self-join (e.g.
        // band-joining `sys.queries` with itself) sees one consistent
        // snapshot on both sides.
        let mut sys_snapshots: HashMap<String, Relation> = HashMap::new();
        for (alias, base) in &parsed.instances {
            if crate::sys::is_sys(base) {
                if !sys_snapshots.contains_key(base) {
                    sys_snapshots.insert(base.clone(), augment_with_rid(&self.sys_relation(base)?));
                }
                let renamed = sys_snapshots[base].rename(alias);
                let mut rng = StdRng::seed_from_u64(0x5105 ^ renamed.len() as u64);
                let stats = RelationStats::collect(&renamed, self.shared.sample_cap, &mut rng);
                // `register` never bumps the statistics epoch for a
                // fresh internal instance name, so materialising a
                // sys snapshot cannot invalidate cached user plans.
                let _report = self.register(renamed, stats, base.clone());
            } else {
                let _report = self.load_alias_of(base, alias)?;
            }
        }
        Ok(())
    }

    /// Materialise one `sys.` relation from live engine state — the
    /// snapshot behind one query's view of the system catalog.
    fn sys_relation(&self, base: &str) -> Result<Relation, EngineError> {
        let rel = match base {
            "sys.queries" => crate::sys::queries_relation(&self.flight_recorder().all()),
            "sys.jobs" => crate::sys::jobs_relation(&self.flight_recorder().all()),
            "sys.metrics" => crate::sys::metrics_relation(&self.shared.metrics.series()),
            "sys.scheduler" => crate::sys::scheduler_relation(&self.shared.scheduler.stats()),
            "sys.relations" => {
                let catalog = self.shared.catalog.read();
                let dfs = self.shared.cluster.dfs();
                let mut rows: Vec<crate::sys::RelationRow> = catalog
                    .relations
                    .iter()
                    // Transient `__q<N>_` instances of in-flight runs
                    // (including this query's own sys snapshots) are
                    // private to their query; listing them would make
                    // the relation's contents racy and self-referential.
                    .filter(|(name, _)| !is_internal_instance(name))
                    .map(|(name, rel)| {
                        let (blocks, zoned_blocks) = dfs
                            .get(name)
                            .map(|f| {
                                let zoned = f
                                    .blocks
                                    .iter()
                                    .filter(|b| !b.zones.columns.is_empty())
                                    .count();
                                (f.blocks.len() as u64, zoned as u64)
                            })
                            .unwrap_or((0, 0));
                        crate::sys::RelationRow {
                            name: name.clone(),
                            base: catalog
                                .bases
                                .get(name)
                                .cloned()
                                .unwrap_or_else(|| name.clone()),
                            rows: rel.len() as u64,
                            bytes: rel.encoded_bytes() as u64,
                            blocks,
                            zoned_blocks,
                            stats_epoch: catalog.epoch,
                            layout: rel.layout(),
                        }
                    })
                    .collect();
                rows.sort_by(|a, b| a.name.cmp(&b.name));
                crate::sys::relations_relation(&rows)
            }
            _ => {
                return Err(EngineError::RelationNotLoaded {
                    name: base.to_string(),
                })
            }
        };
        Ok(rel)
    }

    /// Single-threaded ground truth for `query` over the loaded data.
    pub fn oracle(&self, query: &MultiwayQuery) -> Result<Vec<Tuple>, EngineError> {
        let q = augment_query(query);
        // Snapshot the `Arc`s and release the guard before the
        // CPU-heavy nested-loop join, as in [`Engine::run`].
        let arcs: Vec<Arc<Relation>> = {
            let catalog = self.shared.catalog.read();
            q.schemas
                .iter()
                .map(|s| {
                    catalog.relations.get(s.name()).cloned().ok_or_else(|| {
                        EngineError::RelationNotLoaded {
                            name: s.name().to_string(),
                        }
                    })
                })
                .collect::<Result<_, _>>()?
        };
        let rels: Vec<&Relation> = arcs.iter().map(|a| a.as_ref()).collect();
        Ok(oracle_join(&q, &rels))
    }
}

/// A cheap, cloneable query handle over a shared [`Engine`], carrying
/// per-session default [`RunOptions`]. Sessions are `Send`, so every
/// connection of a multi-user server can hold its own.
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    defaults: RunOptions,
}

impl Session {
    /// Replace this session's default options.
    pub fn with_options(mut self, defaults: RunOptions) -> Self {
        self.defaults = defaults;
        self
    }

    /// This session's default options.
    pub fn options(&self) -> &RunOptions {
        &self.defaults
    }

    /// The engine this session serves from.
    pub fn engine(&self) -> Engine {
        Engine {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Execute `query` under `opts` (ignoring the session defaults).
    pub fn run(&self, query: &MultiwayQuery, opts: &RunOptions) -> Result<QueryRun, EngineError> {
        self.engine().run(query, opts)
    }

    /// Execute `query` under the session's default options.
    pub fn query(&self, query: &MultiwayQuery) -> Result<QueryRun, EngineError> {
        self.engine().run(query, &self.defaults)
    }

    /// Parse and execute a SQL string under the session's default
    /// options.
    pub fn run_sql(&self, sql: &str) -> Result<QueryRun, EngineError> {
        self.engine().run_sql_with("sql", sql, &self.defaults)
    }

    /// Single-threaded ground truth over the engine's loaded data.
    pub fn oracle(&self, query: &MultiwayQuery) -> Result<Vec<Tuple>, EngineError> {
        self.engine().oracle(query)
    }
}

/// Rebuild the query against the rowid-augmented schemas; if the
/// user projected nothing, project every *base* column so the
/// hidden rowids do not leak into results.
pub(crate) fn augment_query(query: &MultiwayQuery) -> MultiwayQuery {
    let schemas: Vec<Schema> = query
        .schemas
        .iter()
        .map(|s| {
            if s.index_of(RID_COLUMN).is_ok() {
                s.clone()
            } else {
                augment_schema(s)
            }
        })
        .collect();
    let projection = if query.projection.is_empty() {
        let mut all = Vec::new();
        for (r, s) in query.schemas.iter().enumerate() {
            for c in 0..s.arity() {
                if s.fields()[c].name != RID_COLUMN {
                    all.push((r, c));
                }
            }
        }
        all
    } else {
        query.projection.clone()
    };
    MultiwayQuery {
        schemas,
        conditions: query.conditions.clone(),
        projection,
        name: query.name.clone(),
    }
}

/// Append the rowid column to a schema.
fn augment_schema(schema: &Schema) -> Schema {
    let mut fields: Vec<Field> = schema.fields().to_vec();
    fields.push(Field::new(RID_COLUMN, DataType::Int));
    Schema::new(schema.name(), fields)
}

/// The schema without the rowid column (what SQL queries resolve
/// against).
fn base_schema(schema: &Schema) -> Schema {
    let fields: Vec<Field> = schema
        .fields()
        .iter()
        .filter(|f| f.name != RID_COLUMN)
        .cloned()
        .collect();
    Schema::new(schema.name(), fields)
}

/// Append per-row unique ids to a relation.
fn augment_with_rid(rel: &Relation) -> Relation {
    if rel.schema().index_of(RID_COLUMN).is_ok() {
        return rel.clone();
    }
    let schema = augment_schema(rel.schema());
    let rows: Vec<Tuple> = rel
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut v = row.values().to_vec();
            v.push(Value::Int(i as i64));
            Tuple::new(v)
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

/// Renames sorted longest-internal-name first, so one instance name
/// can never mangle another that contains it as a prefix.
pub(crate) fn sorted_renames(renames: &[(String, String)]) -> Vec<(String, String)> {
    let mut sorted = renames.to_vec();
    sorted.sort_by_key(|(internal, _)| std::cmp::Reverse(internal.len()));
    sorted
}

/// Apply [`sorted_renames`]-ordered internal→public substitutions.
pub(crate) fn apply_renames(s: &str, sorted: &[(String, String)]) -> String {
    let mut out = s.to_string();
    for (internal, public) in sorted {
        out = out.replace(internal.as_str(), public.as_str());
    }
    out
}

/// Rewrite a schema's name and field names through the renames.
pub(crate) fn rename_schema(schema: &Schema, sorted: &[(String, String)]) -> Schema {
    if sorted.is_empty() {
        return schema.clone();
    }
    let fields: Vec<Field> = schema
        .fields()
        .iter()
        .map(|f| Field::new(apply_renames(&f.name, sorted), f.data_type))
        .collect();
    Schema::new(apply_renames(schema.name(), sorted), fields)
}

/// Rewrite a finished run's output schema, plan description and job
/// names from internal namespaced instance names back to the public
/// aliases the SQL query used.
pub(crate) fn restore_public_names(run: QueryRun, renames: &[(String, String)]) -> QueryRun {
    let sorted = sorted_renames(renames);
    let QueryRun {
        output,
        plan,
        predicted_secs,
        sim_secs,
        real_secs,
        mut jobs,
        ticket,
        granted_units,
        trace_id,
        mut profile,
    } = run;
    let schema = rename_schema(output.schema(), &sorted);
    for m in &mut jobs {
        m.name = apply_renames(&m.name, &sorted);
    }
    if let Some(p) = &mut profile {
        rename_span_tree(&mut p.root, &sorted);
    }
    QueryRun {
        output: Relation::from_rows_unchecked(schema, output.into_rows()),
        plan: apply_renames(&plan, &sorted),
        predicted_secs,
        sim_secs,
        real_secs,
        jobs,
        ticket,
        granted_units,
        trace_id,
        profile,
    }
}

/// Rewrite internal instance names in a profile tree's stages and
/// metadata back to the public aliases (job spans carry job names).
fn rename_span_tree(span: &mut SpanRecord, sorted: &[(String, String)]) {
    span.stage = apply_renames(&span.stage, sorted);
    for (_, v) in &mut span.meta {
        *v = apply_renames(v, sorted);
    }
    for c in &mut span.children {
        rename_span_tree(c, sorted);
    }
}

/// The flight-recorder entry for one finished (or failed) execution,
/// assembled read-only from the admission context and the run result.
/// `run` is `None` on the failure path — the record then carries zero
/// output and no jobs, only the outcome and admission facts.
fn flight_record_for(
    admitted: &Admitted,
    q: &MultiwayQuery,
    opts: &RunOptions,
    outcome: Outcome,
    run: Option<&QueryRun>,
) -> FlightRecord {
    let ticket = &admitted.ticket;
    let (sim_secs, rows_out, skip_fraction, totals, jobs) = match run {
        Some(run) => (
            run.sim_secs,
            run.output.len() as u64,
            run.skip_fraction(),
            run.fault_totals(),
            run.jobs.iter().map(job_record).collect(),
        ),
        None => (
            0.0,
            0,
            0.0,
            mwtj_planner::FaultTotals::default(),
            Vec::new(),
        ),
    };
    FlightRecord {
        trace_id: admitted.trace_id,
        shape: query_shape(q),
        method: opts.get_method().as_str().to_string(),
        partition: opts.effective_partition().to_string(),
        requested_units: ticket.desired(),
        granted_units: ticket.granted(),
        queued: ticket.queued(),
        wall_ms: admitted.started.elapsed().as_secs_f64() * 1e3,
        sim_secs,
        rows_out,
        skip_fraction,
        attempts: totals.attempts,
        real_retries: totals.real_retries,
        panics_caught: totals.panics_caught,
        outcome,
        ticket: ticket.id(),
        jobs,
    }
}

/// One job's flight-recorder line, condensed from its [`JobMetrics`].
fn job_record(m: &JobMetrics) -> JobRecord {
    JobRecord {
        name: m.name.clone(),
        units: m.units,
        map_tasks: m.map_tasks,
        reduce_tasks: m.reduce_tasks,
        input_records: m.input_records,
        output_records: m.output_records,
        shuffle_bytes: m.map_output_bytes,
        sim_secs: m.sim_total_secs,
        real_secs: m.real_secs,
        skip_fraction: m.skip_fraction(),
        attempts: u64::from(m.map_attempts) + u64::from(m.reduce_attempts),
        real_retries: u64::from(m.real_map_retries) + u64::from(m.real_reduce_retries),
        panics_caught: u64::from(m.panics_caught),
    }
}

/// A per-job profile node reconstructed from one [`JobMetrics`]: the
/// simulated map/shuffle/reduce phase durations are derived from the
/// recorded phase-end clocks (the shuffle overlaps the map as in the
/// paper's Fig. 3, so each phase is charged its tail past the
/// previous phase's end), never measured separately — so building the
/// profile cannot perturb the run.
fn job_span(index: usize, m: &JobMetrics) -> SpanRecord {
    let map_secs = m.sim_map_end_secs;
    let shuffle_secs = (m.sim_shuffle_end_secs - m.sim_map_end_secs).max(0.0);
    let reduce_secs = (m.sim_total_secs - m.sim_shuffle_end_secs.max(m.sim_map_end_secs)).max(0.0);
    let mut job = SpanRecord::synthetic(&format!("job{index}"))
        .with_sim_secs(m.sim_total_secs)
        .with_meta("name", &m.name)
        .with_meta("units", m.units)
        .with_meta("output_rows", m.output_records);
    if m.real_map_retries + m.real_reduce_retries > 0 {
        job = job.with_meta("retries", m.real_map_retries + m.real_reduce_retries);
    }
    if m.panics_caught > 0 {
        job = job.with_meta("panics", m.panics_caught);
    }
    let mut map = SpanRecord::synthetic(&format!("job{index}/map"))
        .with_sim_secs(map_secs)
        .with_meta("tasks", m.map_tasks)
        .with_meta("input_rows", m.input_records);
    if m.zone_blocks > 0 {
        map = map.with_meta("skipped_blocks", m.zone_blocks_pruned);
    }
    job.children.push(map);
    job.children.push(
        SpanRecord::synthetic(&format!("job{index}/shuffle"))
            .with_sim_secs(shuffle_secs)
            .with_meta("bytes", m.map_output_bytes),
    );
    job.children.push(
        SpanRecord::synthetic(&format!("job{index}/reduce"))
            .with_sim_secs(reduce_secs)
            .with_meta("tasks", m.reduce_tasks)
            .with_meta("candidates", m.reduce_candidates),
    );
    job
}

/// Whether `name` is a transient `__q<N>_` internal instance of an
/// in-flight SQL run (the inverse of [`strip_query_namespaces`]).
fn is_internal_instance(name: &str) -> bool {
    let Some(after) = name.strip_prefix("__q") else {
        return false;
    };
    let digits = after.chars().take_while(|c| c.is_ascii_digit()).count();
    digits > 0 && after[digits..].starts_with('_')
}

/// Strip `__q<N>_` per-query namespace prefixes, so cache keys built
/// from query shapes are shared across SQL runs of the same text.
fn strip_query_namespaces(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find("__q") {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 3..];
        let digits = after.chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 && after[digits..].starts_with('_') {
            rest = &after[digits + 1..];
        } else {
            out.push_str("__q");
            rest = after;
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_join::oracle::canonicalize;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::tuple;
    use rand::Rng;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_and_session_are_shareable() {
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
    }

    fn random_rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
                .collect(),
        )
    }

    fn two_rel_engine() -> (Engine, MultiwayQuery) {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 60, 1, 20);
        let s = random_rel("s", 50, 2, 20);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Le, "s", "a")
            .build()
            .unwrap();
        (engine, q)
    }

    #[test]
    fn unknown_relation_is_a_typed_error_not_a_panic() {
        let engine = Engine::with_units(4);
        let r = random_rel("r", 10, 1, 5);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(Schema::from_pairs("ghost", &[("a", DataType::Int)]))
            .join("r", "a", ThetaOp::Eq, "ghost", "a")
            .build()
            .unwrap();
        let _ = engine.load_relation(&r);
        match engine.run(&q, &RunOptions::default()) {
            Err(EngineError::RelationNotLoaded { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected RelationNotLoaded, got {other:?}"),
        }
        match engine.oracle(&q) {
            Err(EngineError::RelationNotLoaded { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected RelationNotLoaded, got {other:?}"),
        }
    }

    #[test]
    fn all_methods_agree_with_oracle_via_options() {
        let (engine, q) = two_rel_engine();
        let want = canonicalize(engine.oracle(&q).unwrap());
        for m in Method::ALL {
            let run = engine.run(&q, &RunOptions::from(m)).unwrap();
            assert_eq!(canonicalize(run.output.into_rows()), want, "{m}");
        }
    }

    #[test]
    fn alias_shares_rows_with_base() {
        let engine = Engine::with_units(4);
        let base = random_rel("calls", 40, 3, 10);
        let _ = engine.load_relation(&base);
        let rep = engine.load_alias_of("calls", "t1").unwrap();
        assert!(rep.total_secs() > 0.0);
        let a = engine.relation("calls").unwrap();
        let b = engine.relation("t1").unwrap();
        // Same row storage, different schema names.
        assert!(std::ptr::eq(a.rows().as_ptr(), b.rows().as_ptr()));
        assert_eq!(b.name(), "t1");
        assert!(engine.stats_of("t1").is_some());
        // Aliasing an unloaded base errors.
        assert!(matches!(
            engine.load_alias_of("nope", "t2"),
            Err(EngineError::RelationNotLoaded { .. })
        ));
    }

    #[test]
    fn load_reports_costs_and_registers_stats() {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 5_000, 1, 100);
        let rep = engine.load_relation(&r);
        assert!(rep.upload_secs > 0.0);
        assert!(rep.sampling_secs > 0.0);
        assert!(rep.total_secs() > rep.upload_secs);
        let st = engine.stats_of("r").unwrap();
        assert_eq!(st.cardinality, 5_000);
        // rid column present in stats.
        assert!(st.column(RID_COLUMN).is_some());
    }

    #[test]
    fn rids_do_not_leak_into_default_projection() {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 30, 5, 10);
        let s = random_rel("s", 30, 6, 10);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Eq, "s", "a")
            .build()
            .unwrap();
        let run = engine.run(&q, &RunOptions::default()).unwrap();
        // Output arity = 2 + 2 base columns, no rids.
        assert_eq!(run.output.schema().arity(), 4);
        assert!(run
            .output
            .schema()
            .fields()
            .iter()
            .all(|f| !f.name.contains(RID_COLUMN)));
    }

    #[test]
    fn per_run_fault_plans_do_not_change_results() {
        let (engine, q) = two_rel_engine();
        let clean = engine.run(&q, &RunOptions::default()).unwrap();
        let faulty = engine
            .run(
                &q,
                &RunOptions::new().fault_plan(mwtj_mapreduce::FaultPlan::with_probability(0.4, 99)),
            )
            .unwrap();
        assert_eq!(
            canonicalize(clean.output.into_rows()),
            canonicalize(faulty.output.into_rows())
        );
        // The reruns cost simulated time.
        assert!(faulty.sim_secs >= clean.sim_secs);
    }

    #[test]
    fn calibrated_option_swaps_model_once() {
        let (engine, q) = two_rel_engine();
        let before = Arc::as_ptr(&engine.planner());
        let opts = RunOptions::new().calibrated(true);
        engine.run(&q, &opts).unwrap();
        let after = engine.planner();
        assert_ne!(before, Arc::as_ptr(&after), "calibration swaps planner");
        assert!(!after.model().params().observations.is_empty());
        engine.run(&q, &opts).unwrap();
        assert_eq!(
            Arc::as_ptr(&after),
            Arc::as_ptr(&engine.planner()),
            "second calibrated run reuses the fitted model"
        );
    }

    #[test]
    fn run_reports_admission_and_respects_budget() {
        let (engine, q) = two_rel_engine();
        let run = engine.run(&q, &RunOptions::default()).unwrap();
        assert!(run.ticket > 0, "runs are admission-controlled");
        assert!(run.granted_units >= 1 && run.granted_units <= 8);
        assert!(run.jobs.iter().all(|j| j.ticket == run.ticket));
        let st = engine.scheduler().stats();
        assert_eq!(st.in_flight_units, 0, "ticket released after the run");
        assert!(st.peak_in_flight_units <= st.budget);
        assert_eq!(st.admitted, 1);
    }

    #[test]
    fn sql_aliases_are_namespaced_per_query() {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 40, 1, 12);
        let s = random_rel("s", 40, 2, 12);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        // The same alias `t1` bound to *different* bases in back-to-back
        // queries: the old engine-global registry refused the second.
        let a = engine
            .run_sql("SELECT t1.a FROM r t1, s t2 WHERE t1.a = t2.a")
            .unwrap();
        let b = engine
            .run_sql("SELECT t1.a FROM s t1, r t2 WHERE t1.a = t2.a")
            .unwrap();
        // Output schemas carry the *public* aliases, not internal names.
        assert_eq!(a.output.schema().fields()[0].name, "t1.a");
        assert_eq!(b.output.schema().fields()[0].name, "t1.a");
        // Shape-identical queries over *different* bases must not share
        // one admission estimate (the key includes the base bindings).
        assert_eq!(
            engine.plan_cache_len(),
            2,
            "swapped-base queries collided in the plan cache"
        );
        assert!(
            !a.plan.contains("__q"),
            "plan leaked internal names: {}",
            a.plan
        );
        assert!(a.jobs.iter().all(|j| !j.name.contains("__q")));
        // Internal instances are cleaned up afterwards.
        assert!(engine.relation("t1").is_none());
        assert!(engine
            .cluster()
            .dfs()
            .list()
            .iter()
            .all(|f| !f.contains("__q")));
        // And the answer matches the oracle over the bases themselves.
        let qa = QueryBuilder::new("qa")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Eq, "s", "a")
            .project("r", "a")
            .build()
            .unwrap();
        let want = canonicalize(engine.oracle(&qa).unwrap());
        assert_eq!(canonicalize(a.output.into_rows()), want);
    }

    #[test]
    fn concurrent_sql_tenants_can_reuse_aliases() {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 50, 3, 15);
        let s = random_rel("s", 45, 4, 15);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        let sql_a = "SELECT t1.a FROM r t1, s t2 WHERE t1.a <= t2.a";
        let sql_b = "SELECT t1.a FROM s t1, r t2 WHERE t1.a < t2.a";
        let results = engine.run_sql_many(&[sql_a, sql_b, sql_a, sql_b], &RunOptions::default());
        for res in &results {
            assert!(res.is_ok(), "{res:?}");
        }
        let a0 = canonicalize(results[0].as_ref().unwrap().output.rows().to_vec());
        let a2 = canonicalize(results[2].as_ref().unwrap().output.rows().to_vec());
        assert_eq!(a0, a2, "same SQL twice gives identical results");
    }

    #[test]
    fn reload_refreshes_alias_stats_and_invalidates_plan_cache() {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 60, 5, 20);
        let s = random_rel("s", 50, 6, 20);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        let _ = engine.load_alias_of("r", "t1").unwrap();
        assert_eq!(engine.stats_of("t1").unwrap().cardinality, 60);
        // A run populates the admission plan cache.
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Le, "s", "a")
            .build()
            .unwrap();
        engine.run(&q, &RunOptions::default()).unwrap();
        assert_eq!(engine.plan_cache_len(), 1);
        let epoch = engine.stats_epoch();
        // Reload `r` with different data: alias stats must follow and
        // the epoch bump must invalidate the cached estimate.
        let r2 = random_rel("r", 200, 7, 20);
        let _ = engine.load_relation(&r2);
        assert!(engine.stats_epoch() > epoch);
        assert_eq!(engine.stats_of("r").unwrap().cardinality, 200);
        assert_eq!(
            engine.stats_of("t1").unwrap().cardinality,
            200,
            "alias stats must not survive a reload of their base"
        );
        // Alias rows re-share the reloaded base's storage.
        let base = engine.relation("r").unwrap();
        let alias = engine.relation("t1").unwrap();
        assert!(std::ptr::eq(base.rows().as_ptr(), alias.rows().as_ptr()));
        // Re-running replans (epoch mismatch) and still agrees with the
        // oracle over the new data.
        let want = canonicalize(engine.oracle(&q).unwrap());
        let run = engine.run(&q, &RunOptions::default()).unwrap();
        assert_eq!(canonicalize(run.output.into_rows()), want);
    }

    #[test]
    fn reload_after_unload_still_refreshes_dependent_aliases() {
        let engine = Engine::with_units(4);
        let r = random_rel("r", 40, 21, 10);
        let _ = engine.load_relation(&r);
        let _ = engine.load_alias_of("r", "t1").unwrap();
        assert!(engine.unload("r"));
        // The alias binding survives the unload (snapshot semantics)…
        assert_eq!(engine.stats_of("t1").unwrap().cardinality, 40);
        // …but a reload of the base must still reach it.
        let r2 = random_rel("r", 150, 22, 10);
        let _ = engine.load_relation(&r2);
        assert_eq!(
            engine.stats_of("t1").unwrap().cardinality,
            150,
            "alias went stale across unload + reload"
        );
        let base = engine.relation("r").unwrap();
        let alias = engine.relation("t1").unwrap();
        assert!(std::ptr::eq(base.rows().as_ptr(), alias.rows().as_ptr()));
    }

    #[test]
    fn reload_leaves_in_flight_internal_instances_untouched() {
        let engine = Engine::with_units(4);
        let r = random_rel("r", 40, 23, 10);
        let _ = engine.load_relation(&r);
        // Simulate an in-flight SQL run's internal instance.
        let _ = engine.load_alias_of("r", "__q99_t1").unwrap();
        let before = engine.relation("__q99_t1").unwrap();
        let r2 = random_rel("r", 200, 24, 10);
        let _ = engine.load_relation(&r2);
        // The running query's snapshot must not be swapped under it.
        let after = engine.relation("__q99_t1").unwrap();
        assert!(std::ptr::eq(before.rows().as_ptr(), after.rows().as_ptr()));
        assert_eq!(engine.stats_of("__q99_t1").unwrap().cardinality, 40);
        // Public aliases do follow the reload.
        assert_eq!(engine.stats_of("r").unwrap().cardinality, 200);
    }

    #[test]
    fn internal_instance_detection_and_stripping() {
        assert!(is_internal_instance("__q12_t1"));
        assert!(is_internal_instance("__q0_x"));
        assert!(!is_internal_instance("__query"));
        assert!(!is_internal_instance("__q_t1"));
        assert!(!is_internal_instance("t1"));
        assert_eq!(
            strip_query_namespaces("q: __q3_a ⋈ __q3_b ON __q3_a.x<__q3_b.x"),
            "q: a ⋈ b ON a.x<b.x"
        );
        assert_eq!(strip_query_namespaces("__qx no match"), "__qx no match");
    }

    #[test]
    fn unload_removes_instance_and_bumps_epoch() {
        let engine = Engine::with_units(4);
        let r = random_rel("r", 10, 8, 5);
        let _ = engine.load_relation(&r);
        let epoch = engine.stats_epoch();
        assert!(engine.unload("r"));
        assert!(!engine.unload("r"));
        assert!(engine.stats_epoch() > epoch);
        assert!(engine.relation("r").is_none());
        assert!(engine.cluster().dfs().get("r").is_none());
    }

    #[test]
    fn plan_cache_lru_evicts_cold_shapes_not_hot_ones() {
        let (engine, _) = two_rel_engine();
        engine.set_plan_cache_cap(2);
        let mk = |op| {
            QueryBuilder::new("q")
                .relation(engine.relation("r").unwrap().schema().clone())
                .relation(engine.relation("s").unwrap().schema().clone())
                .join("r", "a", op, "s", "a")
                .build()
                .unwrap()
        };
        let (q1, q2, q3) = (mk(ThetaOp::Le), mk(ThetaOp::Lt), mk(ThetaOp::Ge));
        let opts = RunOptions::default();
        engine.run(&q1, &opts).unwrap();
        engine.run(&q2, &opts).unwrap();
        // Touch q1 so q2 is the least-recently-used entry.
        engine.run(&q1, &opts).unwrap();
        let before = engine.stats_snapshot().plan_cache;
        engine.run(&q3, &opts).unwrap();
        let after = engine.stats_snapshot().plan_cache;
        // Exactly one entry was evicted to admit q3 — not a full clear.
        assert!(after.entries <= 2);
        assert_eq!(after.evictions, before.evictions + 1);
        // The hot shape survived: re-running q1 hits without planning.
        engine.run(&q1, &opts).unwrap();
        let warm = engine.stats_snapshot().plan_cache;
        assert_eq!(warm.misses, after.misses);
        assert!(warm.hits > after.hits);
        // The evicted cold shape must re-plan.
        engine.run(&q2, &opts).unwrap();
        assert!(engine.stats_snapshot().plan_cache.misses > warm.misses);
    }

    /// Value-clustered blocks + a narrow band: skipping fires, its
    /// fraction is recorded under the plan-cache key, the next
    /// admission's Eq. 2 request shrinks, and a reload (epoch bump)
    /// forgets the observation.
    #[test]
    fn skip_fraction_recorded_and_discounts_admission() {
        let engine = Engine::with_units(8);
        let left = Relation::from_rows_unchecked(
            Schema::from_pairs("left", &[("a", DataType::Int), ("b", DataType::Int)]),
            (0..12_000i64).map(|i| tuple![i, i]).collect(),
        );
        let right = Relation::from_rows_unchecked(
            Schema::from_pairs("right", &[("a", DataType::Int), ("b", DataType::Int)]),
            (0..10i64).map(|i| tuple![i + 40, i]).collect(),
        );
        let _ = engine.load_relation(&left);
        let _ = engine.load_relation(&right);
        let q = QueryBuilder::new("q")
            .relation(left.schema().clone())
            .relation(right.schema().clone())
            .join("left", "a", ThetaOp::Lt, "right", "a")
            .build()
            .unwrap();
        let run = engine.run(&q, &RunOptions::default()).unwrap();
        let f = run.skip_fraction();
        assert!(f > 0.5, "clustered blocks should mostly prune, got {f}");
        let totals = engine.stats_snapshot().zone;
        assert!(totals.rows_pruned > 0 && totals.blocks_pruned > 0);
        assert!(totals.skip_fraction() > 0.0);

        let key = format!("{}|left,right", query_shape(&augment_query(&q)));
        let epoch = engine.stats_epoch();
        assert_eq!(engine.recorded_skip_fraction(&key), Some(f));
        // The warm Eq. 2 request shrinks (never below one unit).
        assert!(engine.discounted_units(&key, 8, epoch) < 8);
        assert_eq!(engine.discounted_units(&key, 1, epoch), 1);
        // An unknown shape and a stale epoch are undiscounted.
        assert_eq!(engine.discounted_units("nope|x", 8, epoch), 8);
        assert_eq!(engine.discounted_units(&key, 8, epoch + 1), 8);

        // The warm run is bit-identical, skips identically, and its
        // admission requested a discounted slice.
        let cold_units = engine.last_admission_request();
        assert!(cold_units >= 1);
        let warm = engine.run(&q, &RunOptions::default()).unwrap();
        assert_eq!(warm.output.rows(), run.output.rows());
        assert_eq!(warm.skip_fraction(), f);
        let warm_units = engine.last_admission_request();
        assert!(warm_units <= cold_units);
        if cold_units > 1 {
            assert!(warm_units < cold_units, "{warm_units} !< {cold_units}");
        }

        // A +noskip run prunes nothing and leaves the stat untouched.
        let off = engine
            .run(&q, &RunOptions::default().skipping(false))
            .unwrap();
        assert_eq!(off.output.rows(), run.output.rows());
        assert_eq!(off.zone_totals(), (0, 0, 0, 0, 0, 0));
        assert_eq!(engine.recorded_skip_fraction(&key), Some(f));

        // Reloading bumps the epoch; the stale observation is dropped.
        let _ = engine.load_relation(&right);
        assert_eq!(engine.recorded_skip_fraction(&key), None);
    }

    #[test]
    fn session_defaults_apply() {
        let (engine, q) = two_rel_engine();
        let session = engine
            .session()
            .with_options(RunOptions::from(Method::Hive));
        let want = canonicalize(session.oracle(&q).unwrap());
        let run = session.query(&q).unwrap();
        assert!(run.plan.starts_with("Hive"));
        assert_eq!(canonicalize(run.output.into_rows()), want);
    }
}
