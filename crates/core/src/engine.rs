//! The engine/session API: data ownership separated from query
//! execution.
//!
//! [`Engine`] owns the simulated cluster, the loaded (rowid-augmented)
//! relations, their statistics, and the cost-model-equipped planner —
//! all behind `Arc`-shared, lock-protected state, so query execution
//! needs only `&self` and independent queries can be served
//! concurrently ([`Engine::run_many`]). [`Session`] is a cheap,
//! cloneable handle carrying per-caller default [`RunOptions`].
//!
//! Every fallible entry point returns [`EngineError`] instead of
//! panicking: an unknown relation, a malformed SQL string or an
//! unplannable query fails *that query*, never the process.

use crate::error::EngineError;
use crate::options::{Method, RunOptions};
use mwtj_cost::{CalibratedParams, Calibrator, CostModel};
use mwtj_join::oracle::oracle_join;
use mwtj_mapreduce::{Cluster, ClusterConfig, ExecError};
use mwtj_planner::{Baseline, Planner, QueryRun};
use mwtj_query::{MultiwayQuery, ParsedSql};
use mwtj_storage::{DataType, Field, Relation, RelationStats, Schema, Tuple, Value};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The implicit row-identity column appended to every loaded relation.
/// Partial-result merging joins on it ("merge using the primary keys
/// ... only output keys or data IDs involved", §4.2); it is stripped
/// from final outputs unless explicitly projected.
pub const RID_COLUMN: &str = "__rid";

/// What loading a relation cost (Fig. 11's comparison).
#[must_use = "loading is priced on the simulated clock; inspect or explicitly drop the report"]
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Simulated seconds for the raw replicated upload (the "Plain
    /// Hadoop Uploading" line).
    pub upload_secs: f64,
    /// Simulated seconds for the sampling + statistics pass our method
    /// adds (why "our method is a little more time consuming for the
    /// data uploading process", §6.3).
    pub sampling_secs: f64,
}

impl LoadReport {
    /// Total load time for our method.
    pub fn total_secs(&self) -> f64 {
        self.upload_secs + self.sampling_secs
    }
}

/// Loaded data: augmented relations and their statistics, keyed by
/// instance name.
#[derive(Default)]
struct Catalog {
    stats: HashMap<String, RelationStats>,
    relations: HashMap<String, Arc<Relation>>,
    /// Instance name → the base table it was loaded from (itself for
    /// direct loads). SQL auto-registration consults this so an alias
    /// can never be silently rebound to a different base.
    bases: HashMap<String, String>,
}

/// State shared by an engine and all its sessions.
struct Shared {
    cluster: Cluster,
    /// Swapped wholesale on calibration; executions snapshot the `Arc`.
    planner: RwLock<Arc<Planner>>,
    catalog: RwLock<Catalog>,
    /// Guards the run-once calibration sweep.
    calibrated: Mutex<bool>,
    sample_cap: usize,
}

/// The top-level system: cluster + DFS + statistics + planner behind
/// shared immutable state, serving queries from `&self`.
///
/// See the crate-level docs for a full example.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
}

impl Engine {
    /// Build over a cluster configuration with default (uncalibrated)
    /// cost parameters.
    pub fn new(config: ClusterConfig) -> Self {
        let model = CostModel::new(config.clone(), CalibratedParams::default());
        Engine {
            shared: Arc::new(Shared {
                cluster: Cluster::new(config),
                planner: RwLock::new(Arc::new(Planner::new(model))),
                catalog: RwLock::new(Catalog::default()),
                calibrated: Mutex::new(false),
                sample_cap: 512,
            }),
        }
    }

    /// Shorthand: default cluster with `k_P` processing units.
    pub fn with_units(k_p: u32) -> Self {
        Self::new(ClusterConfig::with_units(k_p))
    }

    /// A session sharing this engine's state, with default run options.
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            defaults: RunOptions::default(),
        }
    }

    /// The underlying cluster (inspection; the DFS holds every loaded
    /// relation under its instance name).
    pub fn cluster(&self) -> &Cluster {
        &self.shared.cluster
    }

    /// A snapshot of the current planner (calibration swaps it).
    pub fn planner(&self) -> Arc<Planner> {
        Arc::clone(&self.shared.planner.read())
    }

    /// Statistics collected for a loaded relation instance.
    pub fn stats_of(&self, name: &str) -> Option<RelationStats> {
        self.shared.catalog.read().stats.get(name).cloned()
    }

    /// The loaded (rowid-augmented) relation under `name`.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        self.shared.catalog.read().relations.get(name).cloned()
    }

    /// Run the §6.2 calibration sweep and swap in the fitted `p`/`q`.
    pub fn calibrate(&self) {
        let config = self.shared.cluster.config().clone();
        let params = Calibrator::quick(config.clone()).calibrate();
        let planner = Planner::new(CostModel::new(config, params));
        *self.shared.planner.write() = Arc::new(planner);
        *self.shared.calibrated.lock() = true;
    }

    /// Calibrate at most once per engine (the [`RunOptions::calibrated`]
    /// toggle).
    fn ensure_calibrated(&self) {
        let mut done = self.shared.calibrated.lock();
        if !*done {
            let config = self.shared.cluster.config().clone();
            let params = Calibrator::quick(config.clone()).calibrate();
            *self.shared.planner.write() = Arc::new(Planner::new(CostModel::new(config, params)));
            *done = true;
        }
    }

    /// Load a relation: append the implicit rowid column, upload to the
    /// DFS (replicated blocks), and run the sampling/statistics pass.
    ///
    /// This is an *administrative* operation: loading under a name that
    /// already exists replaces that catalog entry (and its binding),
    /// matching the legacy façade's reload semantics. Only SQL
    /// auto-registration ([`Engine::load_alias_of`]) refuses to rebind.
    pub fn load_relation(&self, rel: &Relation) -> LoadReport {
        let augmented = augment_with_rid(rel);
        let mut rng = StdRng::seed_from_u64(0x57a7 ^ augmented.len() as u64);
        let stats = RelationStats::collect(&augmented, self.shared.sample_cap, &mut rng);
        let base = rel.name().to_string();
        self.register(augmented, stats, base)
    }

    /// Load the same data under another schema name (self-join
    /// instances `t1`, `t2`, … of one base table).
    ///
    /// Augmentation materialises one rowid-extended copy of `rel`'s
    /// rows per call (the rid column cannot be shared with rows that
    /// lack it); everything downstream of that copy shares storage.
    /// When the base is already loaded, prefer [`Engine::load_alias_of`],
    /// which shares the augmented rows and statistics outright.
    ///
    /// Like [`Engine::load_relation`], this is administrative and will
    /// replace an existing entry under `alias`.
    pub fn load_alias(&self, rel: &Relation, alias: &str) -> LoadReport {
        if rel.name() == alias {
            return self.load_relation(rel);
        }
        let augmented = augment_with_rid(rel).rename(alias);
        let mut rng = StdRng::seed_from_u64(0x57a7 ^ augmented.len() as u64);
        let stats = RelationStats::collect(&augmented, self.shared.sample_cap, &mut rng);
        let base = rel.name().to_string();
        self.register(augmented, stats, base)
    }

    /// Alias an *already loaded* base relation: row storage and
    /// statistics are shared outright (no copy, no sampling pass);
    /// only the DFS upload of the instance file is priced, as each
    /// instance is a distinct DFS file on a real cluster.
    ///
    /// Idempotent: if `alias` is already bound to `base`, nothing
    /// happens and a zero-cost report is returned. Binding an alias
    /// that currently points at a *different* base is an
    /// [`EngineError::AliasConflict`] — rebinding under a running
    /// engine would hand concurrent queries the wrong data.
    pub fn load_alias_of(&self, base: &str, alias: &str) -> Result<LoadReport, EngineError> {
        // One write lock for check + upload + publish. Keeping the DFS
        // upload inside the critical section means a large alias load
        // briefly blocks stat lookups, but releasing the lock around it
        // would open a window where either the catalog names a DFS file
        // that does not exist yet, or a losing racer clobbers the
        // winner's DFS file after the conflict check. Alias loads are
        // rare administrative events; correctness wins.
        let mut catalog = self.shared.catalog.write();
        match catalog.bases.get(alias) {
            Some(bound) if bound == base => {
                return Ok(LoadReport {
                    upload_secs: 0.0,
                    sampling_secs: 0.0,
                })
            }
            Some(bound) => {
                return Err(EngineError::AliasConflict {
                    alias: alias.into(),
                    bound_to: bound.clone(),
                    requested: base.into(),
                })
            }
            None => {}
        }
        let rel = catalog
            .relations
            .get(base)
            .ok_or_else(|| EngineError::RelationNotLoaded { name: base.into() })?
            .rename(alias);
        let stats = catalog
            .stats
            .get(base)
            .cloned()
            .ok_or_else(|| EngineError::RelationNotLoaded { name: base.into() })?;
        let config = self.shared.cluster.config();
        let upload_secs = self.shared.cluster.dfs().put_relation(alias, &rel, config);
        catalog.stats.insert(alias.to_string(), stats);
        catalog.relations.insert(alias.to_string(), Arc::new(rel));
        catalog.bases.insert(alias.to_string(), base.to_string());
        Ok(LoadReport {
            upload_secs,
            // Statistics are shared with the base; no sampling pass.
            sampling_secs: 0.0,
        })
    }

    /// Upload `augmented` to the DFS, price the load, and publish it in
    /// the catalog bound to `base`.
    fn register(&self, augmented: Relation, stats: RelationStats, base: String) -> LoadReport {
        let config = self.shared.cluster.config();
        let upload_secs =
            self.shared
                .cluster
                .dfs()
                .put_relation(augmented.name(), &augmented, config);
        // Sampling pass: one sequential scan of a sample's worth of
        // blocks + histogram building; priced as reading the sampled
        // fraction plus a fixed index-build overhead per block.
        let hw = &config.hardware;
        let sampled_bytes = (self.shared.sample_cap as f64 * augmented.avg_row_bytes())
            .min(augmented.encoded_bytes() as f64);
        let sampling_secs =
            augmented.encoded_bytes() as f64 * hw.c1() * 0.25 + sampled_bytes / hw.disk_write_bps;
        let mut catalog = self.shared.catalog.write();
        let name = augmented.name().to_string();
        catalog.stats.insert(name.clone(), stats);
        catalog.relations.insert(name.clone(), Arc::new(augmented));
        catalog.bases.insert(name, base);
        LoadReport {
            upload_secs,
            sampling_secs,
        }
    }

    /// Execute `query` (built against the *base* schemas, without the
    /// rowid column) under `opts`, returning the result or a typed
    /// error — never panicking on unknown relations or plan failures.
    pub fn run(&self, query: &MultiwayQuery, opts: &RunOptions) -> Result<QueryRun, EngineError> {
        if opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let q = augment_query(query);
        let planner = self.planner();
        // Snapshot the statistics and release the catalog guard before
        // executing: holding it across a multi-second run would stall
        // every concurrent load (and, with writers queued, new runs).
        let owned_stats: Vec<RelationStats> = {
            let catalog = self.shared.catalog.read();
            q.schemas
                .iter()
                .map(|s| {
                    catalog.stats.get(s.name()).cloned().ok_or_else(|| {
                        EngineError::RelationNotLoaded {
                            name: s.name().to_string(),
                        }
                    })
                })
                .collect::<Result<_, _>>()?
        };
        let stats: Vec<&RelationStats> = owned_stats.iter().collect();
        let cluster = &self.shared.cluster;
        let exec_opts = opts.exec_options();
        let run = match opts.get_method() {
            Method::Ours | Method::OursGrid => {
                planner.try_execute_ours(&q, &stats, cluster, &exec_opts)?
            }
            Method::YSmart => {
                planner.try_execute_baseline(Baseline::YSmart, &q, &stats, cluster, &exec_opts)?
            }
            Method::Hive => {
                planner.try_execute_baseline(Baseline::Hive, &q, &stats, cluster, &exec_opts)?
            }
            Method::Pig => {
                planner.try_execute_baseline(Baseline::Pig, &q, &stats, cluster, &exec_opts)?
            }
        };
        Ok(run)
    }

    /// Execute several independent queries concurrently on a scoped
    /// thread pool (one worker per host core, capped at the batch
    /// size), all under the same options. Results are returned in input
    /// order; each query fails independently. Shared engine state is
    /// read-only during execution and every run's intermediate DFS
    /// files are namespaced, so results are identical to sequential
    /// [`Engine::run`] calls.
    pub fn run_many(
        &self,
        queries: &[&MultiwayQuery],
        opts: &RunOptions,
    ) -> Vec<Result<QueryRun, EngineError>> {
        if opts.wants_calibration() {
            self.ensure_calibrated();
        }
        let n = queries.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<QueryRun, EngineError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock() = Some(self.run(queries[i], opts));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap_or_else(|| {
                    Err(EngineError::Exec(ExecError::BadRequest {
                        detail: "internal: query slot never executed".into(),
                    }))
                })
            })
            .collect()
    }

    /// Parse a SQL query against the loaded base relations. The
    /// returned [`ParsedSql`] lists each FROM-clause `(alias, base)`
    /// instance. Parsing alone does **not** register aliases —
    /// [`Engine::run_sql`]/[`Engine::run_sql_many`] do, or call
    /// [`Engine::load_alias_of`] per instance before
    /// [`Engine::run`]ning a parsed query yourself.
    pub fn parse_sql(&self, name: &str, sql: &str) -> Result<ParsedSql, EngineError> {
        let catalog = self.shared.catalog.read();
        let resolver = |base: &str| -> Option<Schema> {
            catalog
                .relations
                .get(base)
                .map(|rel| base_schema(rel.schema()))
        };
        mwtj_query::parse_sql(name, sql, &resolver).map_err(EngineError::from)
    }

    /// Parse and execute a SQL query end-to-end with default options:
    /// parse → auto-register FROM-clause aliases (sharing rows with the
    /// loaded base) → plan → execute.
    pub fn run_sql(&self, sql: &str) -> Result<QueryRun, EngineError> {
        self.run_sql_with("sql", sql, &RunOptions::default())
    }

    /// [`Engine::run_sql`] with an explicit query name and options.
    pub fn run_sql_with(
        &self,
        name: &str,
        sql: &str,
        opts: &RunOptions,
    ) -> Result<QueryRun, EngineError> {
        let parsed = self.parse_sql(name, sql)?;
        self.register_instances(&parsed)?;
        self.run(&parsed.query, opts)
    }

    /// Parse several SQL queries, register their aliases, and execute
    /// them concurrently via [`Engine::run_many`]. Results come back in
    /// input order; a query that fails to parse fails alone.
    pub fn run_sql_many(
        &self,
        sqls: &[&str],
        opts: &RunOptions,
    ) -> Vec<Result<QueryRun, EngineError>> {
        let parsed: Vec<Result<MultiwayQuery, EngineError>> = sqls
            .iter()
            .enumerate()
            .map(|(i, sql)| {
                let p = self.parse_sql(&format!("sql{i}"), sql)?;
                self.register_instances(&p)?;
                Ok(p.query)
            })
            .collect();
        let runnable: Vec<&MultiwayQuery> = parsed.iter().filter_map(|p| p.as_ref().ok()).collect();
        let mut executed = self.run_many(&runnable, opts).into_iter();
        parsed
            .into_iter()
            .map(|p| match p {
                Ok(_) => executed.next().unwrap_or_else(|| {
                    Err(EngineError::Exec(ExecError::BadRequest {
                        detail: "internal: SQL batch slot never executed".into(),
                    }))
                }),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Register every FROM-clause alias of `parsed`, sharing rows and
    /// statistics with its base table. [`Engine::load_alias_of`] is
    /// idempotent and rejects rebinding an alias to a different base,
    /// so concurrent registrations cannot hand a query the wrong data.
    fn register_instances(&self, parsed: &ParsedSql) -> Result<(), EngineError> {
        for (alias, base) in &parsed.instances {
            let _report = self.load_alias_of(base, alias)?;
        }
        Ok(())
    }

    /// Single-threaded ground truth for `query` over the loaded data.
    pub fn oracle(&self, query: &MultiwayQuery) -> Result<Vec<Tuple>, EngineError> {
        let q = augment_query(query);
        // Snapshot the `Arc`s and release the guard before the
        // CPU-heavy nested-loop join, as in [`Engine::run`].
        let arcs: Vec<Arc<Relation>> = {
            let catalog = self.shared.catalog.read();
            q.schemas
                .iter()
                .map(|s| {
                    catalog.relations.get(s.name()).cloned().ok_or_else(|| {
                        EngineError::RelationNotLoaded {
                            name: s.name().to_string(),
                        }
                    })
                })
                .collect::<Result<_, _>>()?
        };
        let rels: Vec<&Relation> = arcs.iter().map(|a| a.as_ref()).collect();
        Ok(oracle_join(&q, &rels))
    }
}

/// A cheap, cloneable query handle over a shared [`Engine`], carrying
/// per-session default [`RunOptions`]. Sessions are `Send`, so every
/// connection of a multi-user server can hold its own.
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    defaults: RunOptions,
}

impl Session {
    /// Replace this session's default options.
    pub fn with_options(mut self, defaults: RunOptions) -> Self {
        self.defaults = defaults;
        self
    }

    /// This session's default options.
    pub fn options(&self) -> &RunOptions {
        &self.defaults
    }

    /// The engine this session serves from.
    pub fn engine(&self) -> Engine {
        Engine {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Execute `query` under `opts` (ignoring the session defaults).
    pub fn run(&self, query: &MultiwayQuery, opts: &RunOptions) -> Result<QueryRun, EngineError> {
        self.engine().run(query, opts)
    }

    /// Execute `query` under the session's default options.
    pub fn query(&self, query: &MultiwayQuery) -> Result<QueryRun, EngineError> {
        self.engine().run(query, &self.defaults)
    }

    /// Parse and execute a SQL string under the session's default
    /// options.
    pub fn run_sql(&self, sql: &str) -> Result<QueryRun, EngineError> {
        self.engine().run_sql_with("sql", sql, &self.defaults)
    }

    /// Single-threaded ground truth over the engine's loaded data.
    pub fn oracle(&self, query: &MultiwayQuery) -> Result<Vec<Tuple>, EngineError> {
        self.engine().oracle(query)
    }
}

/// Rebuild the query against the rowid-augmented schemas; if the
/// user projected nothing, project every *base* column so the
/// hidden rowids do not leak into results.
fn augment_query(query: &MultiwayQuery) -> MultiwayQuery {
    let schemas: Vec<Schema> = query
        .schemas
        .iter()
        .map(|s| {
            if s.index_of(RID_COLUMN).is_ok() {
                s.clone()
            } else {
                augment_schema(s)
            }
        })
        .collect();
    let projection = if query.projection.is_empty() {
        let mut all = Vec::new();
        for (r, s) in query.schemas.iter().enumerate() {
            for c in 0..s.arity() {
                if s.fields()[c].name != RID_COLUMN {
                    all.push((r, c));
                }
            }
        }
        all
    } else {
        query.projection.clone()
    };
    MultiwayQuery {
        schemas,
        conditions: query.conditions.clone(),
        projection,
        name: query.name.clone(),
    }
}

/// Append the rowid column to a schema.
fn augment_schema(schema: &Schema) -> Schema {
    let mut fields: Vec<Field> = schema.fields().to_vec();
    fields.push(Field::new(RID_COLUMN, DataType::Int));
    Schema::new(schema.name(), fields)
}

/// The schema without the rowid column (what SQL queries resolve
/// against).
fn base_schema(schema: &Schema) -> Schema {
    let fields: Vec<Field> = schema
        .fields()
        .iter()
        .filter(|f| f.name != RID_COLUMN)
        .cloned()
        .collect();
    Schema::new(schema.name(), fields)
}

/// Append per-row unique ids to a relation.
fn augment_with_rid(rel: &Relation) -> Relation {
    if rel.schema().index_of(RID_COLUMN).is_ok() {
        return rel.clone();
    }
    let schema = augment_schema(rel.schema());
    let rows: Vec<Tuple> = rel
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut v = row.values().to_vec();
            v.push(Value::Int(i as i64));
            Tuple::new(v)
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwtj_join::oracle::canonicalize;
    use mwtj_query::{QueryBuilder, ThetaOp};
    use mwtj_storage::tuple;
    use rand::Rng;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_and_session_are_shareable() {
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
    }

    fn random_rel(name: &str, n: usize, seed: u64, domain: i64) -> Relation {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_rows_unchecked(
            schema,
            (0..n)
                .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
                .collect(),
        )
    }

    fn two_rel_engine() -> (Engine, MultiwayQuery) {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 60, 1, 20);
        let s = random_rel("s", 50, 2, 20);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Le, "s", "a")
            .build()
            .unwrap();
        (engine, q)
    }

    #[test]
    fn unknown_relation_is_a_typed_error_not_a_panic() {
        let engine = Engine::with_units(4);
        let r = random_rel("r", 10, 1, 5);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(Schema::from_pairs("ghost", &[("a", DataType::Int)]))
            .join("r", "a", ThetaOp::Eq, "ghost", "a")
            .build()
            .unwrap();
        let _ = engine.load_relation(&r);
        match engine.run(&q, &RunOptions::default()) {
            Err(EngineError::RelationNotLoaded { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected RelationNotLoaded, got {other:?}"),
        }
        match engine.oracle(&q) {
            Err(EngineError::RelationNotLoaded { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected RelationNotLoaded, got {other:?}"),
        }
    }

    #[test]
    fn all_methods_agree_with_oracle_via_options() {
        let (engine, q) = two_rel_engine();
        let want = canonicalize(engine.oracle(&q).unwrap());
        for m in Method::ALL {
            let run = engine.run(&q, &RunOptions::from(m)).unwrap();
            assert_eq!(canonicalize(run.output.into_rows()), want, "{m}");
        }
    }

    #[test]
    fn alias_shares_rows_with_base() {
        let engine = Engine::with_units(4);
        let base = random_rel("calls", 40, 3, 10);
        let _ = engine.load_relation(&base);
        let rep = engine.load_alias_of("calls", "t1").unwrap();
        assert!(rep.total_secs() > 0.0);
        let a = engine.relation("calls").unwrap();
        let b = engine.relation("t1").unwrap();
        // Same row storage, different schema names.
        assert!(std::ptr::eq(a.rows().as_ptr(), b.rows().as_ptr()));
        assert_eq!(b.name(), "t1");
        assert!(engine.stats_of("t1").is_some());
        // Aliasing an unloaded base errors.
        assert!(matches!(
            engine.load_alias_of("nope", "t2"),
            Err(EngineError::RelationNotLoaded { .. })
        ));
    }

    #[test]
    fn load_reports_costs_and_registers_stats() {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 5_000, 1, 100);
        let rep = engine.load_relation(&r);
        assert!(rep.upload_secs > 0.0);
        assert!(rep.sampling_secs > 0.0);
        assert!(rep.total_secs() > rep.upload_secs);
        let st = engine.stats_of("r").unwrap();
        assert_eq!(st.cardinality, 5_000);
        // rid column present in stats.
        assert!(st.column(RID_COLUMN).is_some());
    }

    #[test]
    fn rids_do_not_leak_into_default_projection() {
        let engine = Engine::with_units(8);
        let r = random_rel("r", 30, 5, 10);
        let s = random_rel("s", 30, 6, 10);
        let _ = engine.load_relation(&r);
        let _ = engine.load_relation(&s);
        let q = QueryBuilder::new("q")
            .relation(r.schema().clone())
            .relation(s.schema().clone())
            .join("r", "a", ThetaOp::Eq, "s", "a")
            .build()
            .unwrap();
        let run = engine.run(&q, &RunOptions::default()).unwrap();
        // Output arity = 2 + 2 base columns, no rids.
        assert_eq!(run.output.schema().arity(), 4);
        assert!(run
            .output
            .schema()
            .fields()
            .iter()
            .all(|f| !f.name.contains(RID_COLUMN)));
    }

    #[test]
    fn per_run_fault_plans_do_not_change_results() {
        let (engine, q) = two_rel_engine();
        let clean = engine.run(&q, &RunOptions::default()).unwrap();
        let faulty = engine
            .run(
                &q,
                &RunOptions::new().fault_plan(mwtj_mapreduce::FaultPlan::with_probability(0.4, 99)),
            )
            .unwrap();
        assert_eq!(
            canonicalize(clean.output.into_rows()),
            canonicalize(faulty.output.into_rows())
        );
        // The reruns cost simulated time.
        assert!(faulty.sim_secs >= clean.sim_secs);
    }

    #[test]
    fn calibrated_option_swaps_model_once() {
        let (engine, q) = two_rel_engine();
        let before = Arc::as_ptr(&engine.planner());
        let opts = RunOptions::new().calibrated(true);
        engine.run(&q, &opts).unwrap();
        let after = engine.planner();
        assert_ne!(before, Arc::as_ptr(&after), "calibration swaps planner");
        assert!(!after.model().params().observations.is_empty());
        engine.run(&q, &opts).unwrap();
        assert_eq!(
            Arc::as_ptr(&after),
            Arc::as_ptr(&engine.planner()),
            "second calibrated run reuses the fitted model"
        );
    }

    #[test]
    fn session_defaults_apply() {
        let (engine, q) = two_rel_engine();
        let session = engine
            .session()
            .with_options(RunOptions::from(Method::Hive));
        let want = canonicalize(session.oracle(&q).unwrap());
        let run = session.query(&q).unwrap();
        assert!(run.plan.starts_with("Hive"));
        assert_eq!(canonicalize(run.output.into_rows()), want);
    }
}
