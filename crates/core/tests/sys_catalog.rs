//! End-to-end contract of the `sys.*` introspection catalog.
//!
//! * `sys.queries` / `sys.jobs` answer plain theta-join SQL and carry
//!   the trace ids of real prior runs.
//! * A theta join **between two sys relations** works unchanged.
//! * Introspection answers while the unit budget is fully committed
//!   (admission-exempt zero-unit tickets) and is never plan-cached.
//! * The flight recorder is observation-only: capacity 0 vs default
//!   is **bit-identical** on results, plans and simulated metrics for
//!   all five methods × three partition strategies.
//! * Failed admissions and deadline kills appear with distinct
//!   `outcome` values and charge `mwtj_query_outcomes_total`.

use mwtj_core::scheduler::AdmissionPolicy;
use mwtj_core::{Engine, Method, MetricValue, QueryRun, RunOptions};
use mwtj_hilbert::PartitionStrategy;
use mwtj_storage::{tuple, DataType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identically-seeded engine: two builds are bit-identical.
fn seeded_engine(units: u32) -> Engine {
    let engine = Engine::with_units(units);
    let mut rng = StdRng::seed_from_u64(0x515);
    for (name, n, domain) in [("r", 80usize, 25i64), ("s", 60, 25)] {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let rows = (0..n)
            .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
            .collect();
        let _ = engine.load_relation(&Relation::from_rows_unchecked(schema, rows));
    }
    engine
}

const Q: &str = "SELECT x.a, y.b FROM r x, s y WHERE x.a <= y.a";

/// Column values of `col` across all output rows.
fn column(run: &QueryRun, col: &str) -> Vec<Value> {
    let idx = run.output.schema().index_of(col).unwrap();
    run.output
        .rows()
        .iter()
        .map(|t| t.values()[idx].clone())
        .collect()
}

#[test]
fn sys_queries_records_runs_and_answers_sql() {
    let engine = seeded_engine(8);
    let first = engine.run_sql(Q).unwrap();
    assert_ne!(first.trace_id, 0);

    // Theta join between two sys relations, through the ordinary SQL
    // path: every recorded run's granted slice fits the budget.
    let sys = engine
        .run_sql(
            "SELECT q.trace_id, q.outcome, s.budget FROM sys.queries q, sys.scheduler s \
             WHERE q.granted_units <= s.budget",
        )
        .unwrap();
    let traces = column(&sys, "q.trace_id");
    assert!(
        traces.contains(&Value::Int(first.trace_id as i64)),
        "first run's trace id missing from sys.queries: {traces:?}"
    );
    assert!(column(&sys, "q.outcome").contains(&Value::from("ok")));

    // sys.jobs carries the per-MRJ breakdown, joinable back to
    // sys.queries on trace_id.
    let jobs = engine
        .run_sql(
            "SELECT q.trace_id, j.job FROM sys.queries q, sys.jobs j \
             WHERE q.trace_id = j.trace_id",
        )
        .unwrap();
    assert!(
        column(&jobs, "q.trace_id").contains(&Value::Int(first.trace_id as i64)),
        "first run has no sys.jobs rows"
    );

    // The recorder itself agrees with what SQL sees.
    let recorder = engine.flight_recorder();
    assert!(recorder.all().iter().any(|r| r.trace_id == first.trace_id));
}

#[test]
fn sys_metrics_and_relations_answer_sql() {
    let engine = seeded_engine(8);
    engine.run_sql(Q).unwrap();

    let metrics = engine
        .run_sql(
            "SELECT m.name, m.value FROM sys.metrics m, sys.scheduler s \
             WHERE m.count >= s.queued_now",
        )
        .unwrap();
    let names: Vec<String> = column(&metrics, "m.name")
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    assert!(
        names.iter().any(|n| n.contains("mwtj_queries_total")),
        "registry series missing from sys.metrics: {names:?}"
    );

    let rels = engine
        .run_sql(
            "SELECT a.name, b.name FROM sys.relations a, sys.relations b \
             WHERE a.rows < b.rows",
        )
        .unwrap();
    // r (80 rows) and s (60 rows) are both listed; transient __q*
    // instances are not.
    let listed: Vec<String> = column(&rels, "b.name")
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    assert!(listed.iter().any(|n| n.contains('r')), "{listed:?}");
    assert!(
        listed.iter().all(|n| !n.contains("__q")),
        "transient instances leaked: {listed:?}"
    );
}

#[test]
fn sys_answers_while_budget_is_exhausted() {
    let engine = seeded_engine(4);
    engine.run_sql(Q).unwrap();
    // Hold the entire unit budget.
    let _hog = engine.scheduler().admit(4).unwrap();
    assert_eq!(engine.scheduler().stats().in_flight_units, 4);

    // Introspection still answers — exempt zero-unit ticket.
    let sys = engine
        .run_sql(
            "SELECT q.trace_id, s.in_flight_units FROM sys.queries q, sys.scheduler s \
             WHERE q.granted_units <= s.budget",
        )
        .unwrap();
    assert!(!sys.output.rows().is_empty());
    // The snapshot itself saw the exhausted scheduler.
    assert!(column(&sys, "s.in_flight_units").contains(&Value::Int(4)));
    // And the sys run never consumed admission budget: its exempt
    // ticket held zero units, so in-flight never moved.
    assert_eq!(engine.scheduler().stats().in_flight_units, 4);
    let sys_record = engine
        .flight_recorder()
        .all()
        .into_iter()
        .find(|r| r.trace_id == sys.trace_id)
        .expect("sys run is itself recorded");
    assert_eq!(sys_record.granted_units, 0);
    assert_eq!(sys_record.requested_units, 0);
}

#[test]
fn sys_queries_are_never_plan_cached() {
    let engine = seeded_engine(8);
    engine.run_sql(Q).unwrap();
    let entries_before = engine.stats_snapshot().plan_cache.entries;

    let sys_sql = "SELECT q.trace_id FROM sys.queries q, sys.scheduler s \
                   WHERE q.granted_units <= s.budget";
    engine.run_sql(sys_sql).unwrap();
    engine.run_sql(sys_sql).unwrap();
    let stats = engine.stats_snapshot().plan_cache;
    assert_eq!(
        stats.entries, entries_before,
        "a sys query must not populate the plan cache"
    );

    // EXPLAIN agrees: no cache verdict for sys queries, ever.
    let report = engine
        .explain_sql("e", &format!("EXPLAIN {sys_sql}"), &RunOptions::default())
        .unwrap();
    assert_eq!(report.cache_hit, None);
    assert_eq!(report.requested_units, 0, "sys admission requests nothing");
}

#[test]
fn empty_recorder_still_answers_with_zero_rows() {
    let engine = seeded_engine(8);
    // No prior runs: sys.queries is empty but must not error.
    let sys = engine
        .run_sql(
            "SELECT q.trace_id FROM sys.queries q, sys.scheduler s \
             WHERE q.granted_units <= s.budget",
        )
        .unwrap();
    assert_eq!(sys.output.len(), 0);
}

/// The observation-only differential: a disabled recorder (capacity 0)
/// and the default ring must produce bit-identical rows, plans and
/// simulated metrics for every method × partition strategy.
#[test]
fn recorder_capacity_zero_vs_default_is_bit_identical() {
    let recording = seeded_engine(8);
    let disabled = seeded_engine(8);
    disabled.set_flight_capacity(0);
    assert!(!disabled.flight_recorder().is_enabled());

    let strategies = [
        PartitionStrategy::Hilbert,
        PartitionStrategy::Grid,
        PartitionStrategy::ZOrder,
    ];
    for method in Method::ALL {
        for strategy in strategies {
            let opts = RunOptions::from(method).partition(strategy);
            let a = recording
                .run_sql_with("diff", Q, &opts)
                .unwrap_or_else(|e| panic!("{method:?}/{strategy:?} recording: {e}"));
            let b = disabled
                .run_sql_with("diff", Q, &opts)
                .unwrap_or_else(|e| panic!("{method:?}/{strategy:?} disabled: {e}"));
            let rows = |r: &QueryRun| {
                let mut rows: Vec<String> =
                    r.output.rows().iter().map(|t| format!("{t:?}")).collect();
                rows.sort();
                rows
            };
            assert_eq!(rows(&a), rows(&b), "{method:?}/{strategy:?} rows");
            assert_eq!(a.plan, b.plan, "{method:?}/{strategy:?} plan");
            assert_eq!(
                a.sim_secs.to_bits(),
                b.sim_secs.to_bits(),
                "{method:?}/{strategy:?} sim clock"
            );
            assert_eq!(
                a.predicted_secs.to_bits(),
                b.predicted_secs.to_bits(),
                "{method:?}/{strategy:?} prediction"
            );
            assert_eq!(a.granted_units, b.granted_units);
        }
    }
    // The recording engine kept every run; the disabled one kept none.
    assert_eq!(
        recording.flight_recorder().len(),
        Method::ALL.len() * strategies.len()
    );
    assert_eq!(disabled.flight_recorder().len(), 0);
    assert_eq!(
        disabled.flight_recorder().total_recorded(),
        0,
        "capacity 0 must not even count"
    );
}

#[test]
fn refused_and_killed_runs_get_distinct_outcomes() {
    // Queue bounded at 0: once the budget is held, new arrivals shed.
    let engine = Engine::with_units_and_policy(
        4,
        AdmissionPolicy {
            degrade_floor: 1.0,
            max_queue: Some(0),
        },
    );
    let mut rng = StdRng::seed_from_u64(0x515);
    for name in ["r", "s"] {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int)]);
        let rows = (0..40).map(|_| tuple![rng.gen_range(0..20i64)]).collect();
        let _ = engine.load_relation(&Relation::from_rows_unchecked(schema, rows));
    }
    let q = "SELECT x.a FROM r x, s y WHERE x.a <= y.a";

    // Deadline already expired before admission → `deadline` outcome.
    let err = engine
        .run_sql_with("dl", q, &RunOptions::default().deadline_ms(0))
        .unwrap_err();
    assert!(format!("{err}").contains("deadline"), "{err}");

    // Budget held + zero queue → `shed` outcome.
    let hog = engine.scheduler().admit(4).unwrap();
    let err = engine.run_sql(q).unwrap_err();
    drop(hog);
    assert!(format!("{err}").to_lowercase().contains("queue"), "{err}");

    let outcomes: Vec<String> = engine
        .flight_recorder()
        .all()
        .iter()
        .map(|r| r.outcome.to_string())
        .collect();
    assert!(outcomes.contains(&"deadline".to_string()), "{outcomes:?}");
    assert!(outcomes.contains(&"shed".to_string()), "{outcomes:?}");

    // Both charged the per-outcome counter.
    for outcome in ["deadline", "shed"] {
        let key = format!("mwtj_query_outcomes_total{{outcome={outcome}}}");
        let found = engine
            .metrics()
            .series()
            .into_iter()
            .find(|(name, _)| *name == key);
        match found {
            Some((_, MetricValue::Counter(n))) => assert!(n >= 1, "{key} = {n}"),
            other => panic!("missing counter {key}: {other:?}"),
        }
    }
}
