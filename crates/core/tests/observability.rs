//! Observability is observation-only — enforced differentially.
//!
//! * Tracing on vs off: rows, schema, plan choice and every simulated
//!   Eq. 2–4 metric are **bit-identical** across all five methods and
//!   all three partition strategies; only the profile tree appears or
//!   disappears.
//! * Fault/retry/shed counters are monotone across [`Engine::run_many`]
//!   batches — never reset, never decremented.
//! * `skip_fraction()` stays in `[0, 1]` under proptest-random band
//!   widths with zone-map skipping on.
//! * The profile tree carries the lifecycle stages, and the engine's
//!   metrics registry fills from real runs.

use mwtj_core::{Engine, Method, QueryRun, RunOptions};
use mwtj_hilbert::PartitionStrategy;
use mwtj_mapreduce::FaultPlan;
use mwtj_storage::{tuple, DataType, Relation, Schema};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build an engine with three identically-seeded relations, so two
/// engines built by this function are bit-identical.
fn seeded_engine(units: u32) -> Engine {
    let engine = Engine::with_units(units);
    let mut rng = StdRng::seed_from_u64(0x0b5e);
    for (name, n, domain) in [("r", 90usize, 30i64), ("s", 70, 30), ("t", 50, 30)] {
        let schema = Schema::from_pairs(name, &[("a", DataType::Int), ("b", DataType::Int)]);
        let rows = (0..n)
            .map(|_| tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)])
            .collect();
        let _ = engine.load_relation(&Relation::from_rows_unchecked(schema, rows));
    }
    engine
}

const Q3: &str = "SELECT x.a, y.b, z.a FROM r x, s y, t z \
                  WHERE x.a <= y.a AND y.b < z.b";

/// Everything a run reports that instrumentation must not perturb,
/// with f64s captured as bits so "close enough" can never pass.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    rows: Vec<String>,
    schema: String,
    plan: String,
    granted_units: u32,
    predicted_secs: u64,
    sim_secs: u64,
    job_sims: Vec<(u64, u64, u64)>,
    fault_attempts: u64,
}

fn fingerprint(run: &QueryRun) -> Fingerprint {
    let mut rows: Vec<String> = run.output.rows().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    Fingerprint {
        rows,
        schema: format!("{:?}", run.output.schema()),
        plan: run.plan.clone(),
        granted_units: run.granted_units,
        predicted_secs: run.predicted_secs.to_bits(),
        sim_secs: run.sim_secs.to_bits(),
        job_sims: run
            .jobs
            .iter()
            .map(|j| {
                (
                    j.sim_map_end_secs.to_bits(),
                    j.sim_shuffle_end_secs.to_bits(),
                    j.sim_total_secs.to_bits(),
                )
            })
            .collect(),
        fault_attempts: run.fault_totals().attempts,
    }
}

/// The tentpole contract: instrumentation is observation-only. Two
/// identically-seeded engines run the same query traced and untraced;
/// everything but the profile must match to the bit, for every method
/// × partition strategy.
#[test]
fn tracing_on_vs_off_is_bit_identical_everywhere() {
    let traced_engine = seeded_engine(8);
    let plain_engine = seeded_engine(8);
    let strategies = [
        PartitionStrategy::Hilbert,
        PartitionStrategy::Grid,
        PartitionStrategy::ZOrder,
    ];
    for method in Method::ALL {
        for strategy in strategies {
            let base = RunOptions::from(method).partition(strategy);
            let traced = traced_engine
                .run_sql_with("diff", Q3, &base.clone().tracing(true))
                .unwrap_or_else(|e| panic!("{method:?}/{strategy:?} traced: {e}"));
            let plain = plain_engine
                .run_sql_with("diff", Q3, &base.clone().tracing(false))
                .unwrap_or_else(|e| panic!("{method:?}/{strategy:?} untraced: {e}"));
            assert_eq!(
                fingerprint(&traced),
                fingerprint(&plain),
                "tracing perturbed {method:?}/{strategy:?}"
            );
            assert!(traced.profile().is_some(), "{method:?}/{strategy:?}");
            assert!(plain.profile().is_none(), "{method:?}/{strategy:?}");
            // Trace ids are stamped either way (they are free).
            assert_ne!(traced.trace_id, 0);
            assert_ne!(plain.trace_id, 0);
        }
    }
}

/// The profile tree carries the whole lifecycle: parse → plan (with a
/// cache verdict) → admission → execute → per-job map/shuffle/reduce.
#[test]
fn profile_tree_carries_lifecycle_stages() {
    let engine = seeded_engine(8);
    let run = engine
        .run_sql_with("prof", Q3, &RunOptions::default())
        .unwrap();
    let profile = run.profile().expect("tracing defaults on");
    assert_eq!(profile.trace_id, run.trace_id);
    for stage in [
        "parse",
        "plan",
        "admission",
        "execute",
        "job0/map",
        "job0/shuffle",
        "job0/reduce",
    ] {
        assert!(profile.find(stage).is_some(), "missing stage `{stage}`");
    }
    let plan = profile.find("plan").unwrap();
    assert!(
        plan.meta
            .iter()
            .any(|(k, v)| k == "cache" && (v == "hit" || v == "miss")),
        "{plan:?}"
    );
    let rendered = profile.render();
    assert!(rendered.starts_with(&format!("trace={}\n", run.trace_id)));
    assert!(rendered.contains("execute"), "{rendered}");
    // Per-job trace ids correlate with the run's.
    for job in &run.jobs {
        assert_eq!(job.trace_id, run.trace_id);
    }
}

/// Fault counters are cumulative across `run_many` batches: monotone,
/// never reset — the contract a scraper depends on.
#[test]
fn fault_counters_are_monotone_across_run_many() {
    let engine = seeded_engine(8);
    let parsed = engine.parse_sql("mono", Q3).expect("parse");
    for (alias, base) in &parsed.instances {
        let _ = engine.load_alias_of(base, alias).expect("alias");
    }
    let opts = RunOptions::from(Method::Ours).fault_plan(FaultPlan::with_probability(0.3, 0x5eed));
    let mut last = engine.stats_snapshot();
    for round in 0..3 {
        let results = engine.run_many(&[&parsed.query, &parsed.query], &opts);
        assert!(results.iter().all(Result::is_ok), "round {round}");
        let now = engine.stats_snapshot();
        let (f, g) = (now.faults, last.faults);
        assert!(f.attempts > g.attempts, "attempts stalled in round {round}");
        assert!(f.real_retries >= g.real_retries, "retries reset");
        assert!(f.panics_caught >= g.panics_caught, "panics reset");
        assert!(
            f.deadline_exceeded >= g.deadline_exceeded,
            "deadlines reset"
        );
        assert!(now.scheduler.shed >= last.scheduler.shed, "shed reset");
        assert!(now.scheduler.admitted > last.scheduler.admitted);
        last = now;
    }
    // With p = 0.3 over three 2-query rounds, some retry fired with
    // overwhelming probability — the counter is not constant-zero.
    assert!(last.faults.real_retries > 0, "{:?}", last.faults);
}

/// A run populates the engine's registry: query counters, latency
/// histogram samples, admission units.
#[test]
fn metrics_registry_fills_from_runs() {
    let engine = seeded_engine(8);
    let run = engine
        .run_sql_with("m", Q3, &RunOptions::default())
        .unwrap();
    let metrics = engine.metrics();
    assert_eq!(
        metrics.counter_value("mwtj_queries_total", &[("method", "ours")]),
        1
    );
    assert_eq!(
        metrics.histogram_count("mwtj_query_latency_ms", &[("method", "ours")]),
        1
    );
    assert!(metrics.counter_value("mwtj_units_granted_total", &[]) >= u64::from(run.granted_units));
    let text = metrics.render_text();
    assert!(
        text.contains("mwtj_plan_cache_lookups_total{result=miss} 1"),
        "{text}"
    );
    // A fresh engine's registry is empty — no cross-engine bleed.
    assert_eq!(
        seeded_engine(8)
            .metrics()
            .counter_value("mwtj_queries_total", &[("method", "ours")]),
        0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Zone-map skipping under random band widths (and band direction)
    /// keeps `skip_fraction()` a true fraction: in [0, 1] on every run,
    /// with rows matching the untraced, unskipped baseline.
    #[test]
    fn skip_fraction_stays_in_unit_interval(width in 0i64..40, flip in any::<bool>()) {
        let engine = seeded_engine(8);
        let op = if flip { ">" } else { "<=" };
        let offset = width - 20;
        let sql = format!(
            "SELECT x.a, y.b FROM r x, s y WHERE x.a {op} y.a {} {}",
            if offset < 0 { "-" } else { "+" },
            offset.abs()
        );
        let run = engine
            .run_sql_with("band", &sql, &RunOptions::from(Method::Ours).skipping(true))
            .unwrap();
        let f = run.skip_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "skip_fraction {f} for width {width}");
        for job in &run.jobs {
            let jf = job.skip_fraction();
            prop_assert!((0.0..=1.0).contains(&jf), "job skip_fraction {jf}");
        }
        // Engine-level zone stats agree with the bounded contract too.
        let zs = engine.stats_snapshot().zone;
        prop_assert!((0.0..=1.0).contains(&zs.skip_fraction()));
    }
}
