//! Hyper-cube space partitioning for multi-way theta-joins.
//!
//! [`SpacePartition`] realises §5.1 of the paper: the cross-product space
//! `R_1 × … × R_d` is modelled as a `2^b`-per-axis grid ("stripes" of
//! tuples per axis), and the grid cells are distributed to `k_R` reduce
//! components. Two strategies are provided:
//!
//! * **Hilbert** — contiguous segments of the d-dimensional Hilbert
//!   curve (the paper's perfect partition function, Theorem 2);
//! * **Grid** — axis-aligned rectangular blocks (the natural extension
//!   of 1-Bucket-Theta to d dimensions), kept as the ablation baseline so
//!   the benefit of the curve is measurable.
//!
//! For either strategy the partition precomputes, for every
//! `(dimension, stripe)` pair, the sorted list of components whose region
//! intersects that stripe. A map task then emits a tuple once per entry
//! in its stripe's list (the `Cnt(t, C)` of Eq. 7), and a reduce task
//! deduplicates output by only reporting result combinations whose cell
//! it *owns* ([`SpacePartition::owner_of_cell`]).

use crate::curve::HilbertCurve;

/// Which cell-to-component mapping to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionStrategy {
    /// Contiguous Hilbert-curve segments (the paper's choice).
    #[default]
    Hilbert,
    /// Axis-aligned blocks: the cube is cut into a `k_1 × … × k_d`
    /// lattice with `Π k_i ≈ k_R`.
    Grid,
    /// Contiguous Z-order (Morton) curve segments — the ablation
    /// sandwich between Grid and Hilbert: cheap bit interleaving like
    /// Hilbert's traversal, but with long diagonal jumps that break
    /// segment compactness and cost extra duplication.
    ZOrder,
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PartitionStrategy::Hilbert => "hilbert",
            PartitionStrategy::Grid => "grid",
            PartitionStrategy::ZOrder => "zorder",
        })
    }
}

impl std::str::FromStr for PartitionStrategy {
    type Err = String;

    /// Parse a strategy name as printed by `Display` (case-insensitive;
    /// `z-order` is accepted for `zorder`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hilbert" => Ok(PartitionStrategy::Hilbert),
            "grid" => Ok(PartitionStrategy::Grid),
            "zorder" | "z-order" => Ok(PartitionStrategy::ZOrder),
            other => Err(format!(
                "unknown partition strategy `{other}` (expected hilbert, grid or zorder)"
            )),
        }
    }
}

/// A partition of the `d`-dimensional cross-product space into `k_R`
/// components.
#[derive(Debug, Clone)]
pub struct SpacePartition {
    strategy: PartitionStrategy,
    curve: HilbertCurve,
    cardinalities: Vec<u64>,
    k_r: u32,
    /// `stripe_components[dim][stripe]` = sorted component ids whose
    /// region intersects `stripe` on `dim`.
    stripe_components: Vec<Vec<Vec<u32>>>,
    /// For `Grid`: per-dimension number of block cuts; empty for Hilbert.
    grid_cuts: Vec<u64>,
}

impl SpacePartition {
    /// Default bound on total grid cells (`2^(b·d)`); keeps the one-off
    /// curve walk around a millisecond-to-a-second at the largest sizes.
    pub const MAX_TOTAL_BITS: u32 = 20;

    /// Pick the grid order `b` (bits per dimension): the smallest `b`
    /// with at least `64·k_R` cells so components are much finer than
    /// stripes, capped so `b·d ≤ MAX_TOTAL_BITS` and `b ≥ 1`.
    pub fn auto_bits(dims: usize, k_r: u32) -> u32 {
        let target_cells = 64u64.saturating_mul(k_r as u64);
        let mut b = 1u32;
        while (dims as u32 * (b + 1)) <= Self::MAX_TOTAL_BITS
            && (1u64 << (dims as u32 * b)) < target_cells
        {
            b += 1;
        }
        b
    }

    /// Build a partition of the space `|R_1| × … × |R_d|` into `k_r`
    /// components using `strategy`, with `bits` bits per dimension.
    ///
    /// # Panics
    /// Panics if `k_r == 0`, `cardinalities` is empty, or the grid would
    /// not fit in a `u64` index.
    pub fn new(strategy: PartitionStrategy, cardinalities: &[u64], k_r: u32, bits: u32) -> Self {
        assert!(k_r >= 1, "need at least one component");
        assert!(!cardinalities.is_empty(), "need at least one dimension");
        let dims = cardinalities.len();
        let curve = HilbertCurve::new(dims, bits);
        // More components than cells would leave components empty; clamp.
        let k_r = (k_r as u64).min(curve.num_cells()) as u32;
        let mut part = SpacePartition {
            strategy,
            curve,
            cardinalities: cardinalities.to_vec(),
            k_r,
            stripe_components: Vec::new(),
            grid_cuts: Vec::new(),
        };
        match strategy {
            PartitionStrategy::Hilbert | PartitionStrategy::ZOrder => part.build_curve(),
            PartitionStrategy::Grid => part.build_grid(),
        }
        part
    }

    /// Convenience: Hilbert partition with automatically chosen order.
    pub fn hilbert(cardinalities: &[u64], k_r: u32) -> Self {
        let bits = Self::auto_bits(cardinalities.len(), k_r);
        Self::new(PartitionStrategy::Hilbert, cardinalities, k_r, bits)
    }

    /// Convenience: grid partition with automatically chosen order.
    pub fn grid(cardinalities: &[u64], k_r: u32) -> Self {
        let bits = Self::auto_bits(cardinalities.len(), k_r);
        Self::new(PartitionStrategy::Grid, cardinalities, k_r, bits)
    }

    /// Walk the (Hilbert or Z-order) curve once, recording which
    /// components intersect each (dimension, stripe) pair.
    fn build_curve(&mut self) {
        let dims = self.curve.dims();
        let side = self.curve.side() as usize;
        let n = self.curve.num_cells();
        // last_seen[dim][stripe] = last component appended, to avoid
        // consecutive duplicates during the walk (the common case, since
        // the walk moves one cell at a time).
        let mut lists: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); side]; dims];
        let mut coords = vec![0u64; dims];
        for h in 0..n {
            let comp = self.component_of_index(h);
            self.decode_position(h, &mut coords);
            for (dim, &c) in coords.iter().enumerate() {
                let list = &mut lists[dim][c as usize];
                if list.last() != Some(&comp) {
                    list.push(comp);
                }
            }
        }
        for dim_lists in &mut lists {
            for list in dim_lists.iter_mut() {
                list.sort_unstable();
                list.dedup();
            }
        }
        self.stripe_components = lists;
    }

    fn build_grid(&mut self) {
        let dims = self.curve.dims();
        let side = self.curve.side();
        // Choose per-dimension cut counts k_i with Π k_i ≤ k_R, greedily
        // multiplying the dimension whose duplication saving is largest —
        // for equal cardinalities this yields the balanced k^(1/d) lattice.
        let mut cuts = vec![1u64; dims];
        loop {
            // Try to double the dimension with the largest current
            // per-component extent, if capacity allows.
            let prod: u64 = cuts.iter().product();
            let mut best: Option<usize> = None;
            let mut best_extent = 0.0f64;
            for (d, &cut) in cuts.iter().enumerate() {
                if prod * 2 > self.k_r as u64 || cut * 2 > side {
                    continue;
                }
                let extent = self.cardinalities[d] as f64 / cut as f64;
                if extent > best_extent {
                    best_extent = extent;
                    best = Some(d);
                }
            }
            match best {
                Some(d) => cuts[d] *= 2,
                None => break,
            }
        }
        self.grid_cuts = cuts.clone();
        // Components are lattice blocks, numbered in row-major order of
        // their block coordinates. stripe s on dim d falls in block
        // s*cuts[d]/side; the stripe's component list is every block with
        // that coordinate on dim d.
        let total: u64 = cuts.iter().product();
        self.k_r = total as u32;
        let sideu = side as usize;
        let mut lists: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); sideu]; dims];
        for comp in 0..total {
            let block = self.grid_block_coords(comp);
            for dim in 0..dims {
                let lo = block[dim] * side / cuts[dim];
                let hi = (block[dim] + 1) * side / cuts[dim];
                for stripe in lo..hi {
                    lists[dim][stripe as usize].push(comp as u32);
                }
            }
        }
        for dim_lists in &mut lists {
            for list in dim_lists.iter_mut() {
                list.sort_unstable();
                list.dedup();
            }
        }
        self.stripe_components = lists;
    }

    fn grid_block_coords(&self, mut comp: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.grid_cuts.len()];
        for (d, &k) in self.grid_cuts.iter().enumerate().rev() {
            out[d] = comp % k;
            comp /= k;
        }
        out
    }

    /// The strategy this partition was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Number of dimensions (relations in the chain).
    pub fn dims(&self) -> usize {
        self.curve.dims()
    }

    /// Number of reduce components `k_R` (may be clamped below the
    /// requested value when the grid is tiny, or rounded to a lattice
    /// size for [`PartitionStrategy::Grid`]).
    pub fn num_components(&self) -> u32 {
        self.k_r
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.curve.bits()
    }

    /// The relation cardinalities this partition was sized for.
    pub fn cardinalities(&self) -> &[u64] {
        &self.cardinalities
    }

    /// Which stripe a tuple with `global_id ∈ [0, |R_dim|)` falls into.
    /// Stripes divide each axis evenly; when `|R| < 2^b` upper stripes
    /// are simply empty.
    pub fn stripe_of(&self, dim: usize, global_id: u64) -> u64 {
        let card = self.cardinalities[dim].max(1);
        debug_assert!(global_id < card.max(global_id + 1));
        ((global_id as u128 * self.curve.side() as u128) / card as u128) as u64
    }

    /// Sorted component ids a tuple in `stripe` of `dim` must be copied
    /// to. Length of this list is the tuple's `Cnt(t, C)` from Eq. 7.
    pub fn components_for_stripe(&self, dim: usize, stripe: u64) -> &[u32] {
        &self.stripe_components[dim][stripe as usize]
    }

    /// Components a tuple with the given global id must be copied to.
    pub fn components_for(&self, dim: usize, global_id: u64) -> &[u32] {
        self.components_for_stripe(dim, self.stripe_of(dim, global_id))
    }

    /// Decode curve position `h` to cell coordinates per the strategy.
    fn decode_position(&self, h: u64, coords: &mut [u64]) {
        match self.strategy {
            PartitionStrategy::ZOrder => zorder_coords(h, self.curve.bits(), coords),
            _ => self.curve.coords_into(h, coords),
        }
    }

    /// The component owning the cell at `stripes` — the reducer that is
    /// responsible for emitting results falling in that cell.
    pub fn owner_of_cell(&self, stripes: &[u64]) -> u32 {
        match self.strategy {
            PartitionStrategy::Hilbert => self.component_of_index(self.curve.index(stripes)),
            PartitionStrategy::ZOrder => {
                self.component_of_index(zorder_index(stripes, self.curve.bits()))
            }
            PartitionStrategy::Grid => {
                let side = self.curve.side();
                let mut comp = 0u64;
                for (d, &s) in stripes.iter().enumerate() {
                    let block = s * self.grid_cuts[d] / side;
                    comp = comp * self.grid_cuts[d] + block;
                }
                comp as u32
            }
        }
    }

    /// Component of a raw Hilbert index (balanced contiguous segments).
    pub fn component_of_index(&self, h: u64) -> u32 {
        let n = self.curve.num_cells() as u128;
        ((h as u128 * self.k_r as u128) / n) as u32
    }

    /// The partition score of Eq. 7 under the uniform-tuple-per-stripe
    /// assumption: `Σ_dims Σ_stripes (tuples in stripe) · |components|`.
    /// This is exactly the number of `(tuple, component)` copies the
    /// shuffle will carry.
    pub fn score(&self) -> f64 {
        let side = self.curve.side();
        let mut total = 0.0;
        for dim in 0..self.dims() {
            let per_stripe = self.cardinalities[dim] as f64 / side as f64;
            for stripe in 0..side {
                total += per_stripe * self.stripe_components[dim][stripe as usize].len() as f64;
            }
        }
        total
    }

    /// Average duplication factor: score / Σ|R_i| (how many reducers the
    /// average tuple is copied to).
    pub fn replication_factor(&self) -> f64 {
        let tuples: u64 = self.cardinalities.iter().sum();
        if tuples == 0 {
            0.0
        } else {
            self.score() / tuples as f64
        }
    }

    /// Expected number of cross-product cells each component must check:
    /// `Π|R_i| / k_R` (the second term of Eq. 10).
    pub fn work_per_component(&self) -> f64 {
        let prod: f64 = self.cardinalities.iter().map(|&c| c as f64).product();
        prod / self.k_r as f64
    }
}

/// Z-order (Morton) index: interleave coordinate bits, dimension 0
/// highest.
fn zorder_index(coords: &[u64], bits: u32) -> u64 {
    let mut h = 0u64;
    for i in (0..bits).rev() {
        for &c in coords {
            h = (h << 1) | ((c >> i) & 1);
        }
    }
    h
}

/// Inverse of [`zorder_index`].
fn zorder_coords(mut h: u64, bits: u32, out: &mut [u64]) {
    out.fill(0);
    for i in 0..bits {
        for j in (0..out.len()).rev() {
            out[j] |= (h & 1) << i;
            h >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn auto_bits_scales_with_kr() {
        assert!(SpacePartition::auto_bits(2, 1) >= 1);
        let b4 = SpacePartition::auto_bits(2, 4);
        let b64 = SpacePartition::auto_bits(2, 64);
        assert!(b64 >= b4);
        // cap respected
        assert!(3 * SpacePartition::auto_bits(3, 10_000) <= SpacePartition::MAX_TOTAL_BITS);
    }

    /// Every cell must be owned by exactly one component, and that
    /// component must appear in the stripe lists of all of the cell's
    /// coordinates — otherwise a join result could be lost.
    fn check_cover(p: &SpacePartition) {
        let side = p.curve.side();
        let dims = p.dims();
        let mut idx = vec![0u64; dims];
        loop {
            let owner = p.owner_of_cell(&idx);
            assert!(owner < p.num_components());
            for d in 0..dims {
                assert!(
                    p.components_for_stripe(d, idx[d]).contains(&owner),
                    "cell {idx:?}: owner {owner} missing from dim {d} stripe list"
                );
            }
            // odometer increment
            let mut d = 0;
            loop {
                idx[d] += 1;
                if idx[d] < side {
                    break;
                }
                idx[d] = 0;
                d += 1;
                if d == dims {
                    return;
                }
            }
        }
    }

    #[test]
    fn hilbert_cover_2d() {
        let p = SpacePartition::new(PartitionStrategy::Hilbert, &[1000, 800], 7, 4);
        check_cover(&p);
    }

    #[test]
    fn hilbert_cover_3d() {
        let p = SpacePartition::new(PartitionStrategy::Hilbert, &[100, 100, 100], 5, 3);
        check_cover(&p);
    }

    #[test]
    fn grid_cover_2d() {
        let p = SpacePartition::new(PartitionStrategy::Grid, &[1000, 800], 8, 4);
        check_cover(&p);
    }

    #[test]
    fn grid_cover_3d() {
        let p = SpacePartition::new(PartitionStrategy::Grid, &[500, 500, 500], 8, 3);
        check_cover(&p);
    }

    #[test]
    fn components_are_balanced_hilbert() {
        let p = SpacePartition::new(PartitionStrategy::Hilbert, &[100, 100], 6, 4);
        let n = p.curve.num_cells();
        let mut counts = vec![0u64; p.num_components() as usize];
        for h in 0..n {
            counts[p.component_of_index(h) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= 1, "segment sizes {counts:?} not balanced");
    }

    #[test]
    fn hilbert_beats_grid_on_score_3d() {
        // The headline property (Theorem 2): for multi-way joins the
        // curve's duplication is no worse than (and typically beats) the
        // axis-aligned lattice at equal k_R.
        let cards = [10_000u64, 10_000, 10_000];
        for k in [8u32, 27, 64] {
            let h = SpacePartition::new(PartitionStrategy::Hilbert, &cards, k, 4);
            let g = SpacePartition::new(PartitionStrategy::Grid, &cards, k, 4);
            // Compare per-component duplication (grid may round k down).
            let hs = h.score() / h.num_components() as f64;
            let gs = g.score() / g.num_components() as f64;
            assert!(
                hs <= gs * 1.35,
                "k={k}: hilbert {hs} vs grid {gs} per component"
            );
        }
    }

    #[test]
    fn score_counts_stripe_duplication() {
        // One component: every tuple goes exactly once -> score = Σ|R|.
        let p = SpacePartition::new(PartitionStrategy::Hilbert, &[100, 200], 1, 3);
        assert!((p.score() - 300.0).abs() < 1e-9);
        assert!((p.replication_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stripes_partition_ids() {
        let p = SpacePartition::hilbert(&[1000, 50], 8);
        let side = p.curve.side();
        let mut seen = HashSet::new();
        for id in 0..1000 {
            let s = p.stripe_of(0, id);
            assert!(s < side);
            seen.insert(s);
        }
        // With |R| >= side, every stripe gets some tuple.
        if 1000 >= side {
            assert_eq!(seen.len() as u64, side);
        }
        // Tiny relation: ids map to distinct stripes monotonically.
        let s0 = p.stripe_of(1, 0);
        let s49 = p.stripe_of(1, 49);
        assert!(s0 <= s49);
    }

    #[test]
    fn kr_clamped_to_cells() {
        let p = SpacePartition::new(PartitionStrategy::Hilbert, &[10, 10], 1000, 2);
        assert!(p.num_components() as u64 <= p.curve.num_cells());
    }

    #[test]
    fn work_per_component_is_product_over_kr() {
        let p = SpacePartition::new(PartitionStrategy::Hilbert, &[10, 20, 30], 6, 2);
        let expect = (10.0 * 20.0 * 30.0) / p.num_components() as f64;
        assert!((p.work_per_component() - expect).abs() < 1e-9);
    }

    #[test]
    fn zorder_roundtrip() {
        let mut out = vec![0u64; 3];
        for h in 0..512u64 {
            zorder_coords(h, 3, &mut out);
            assert_eq!(zorder_index(&out, 3), h);
        }
    }

    #[test]
    fn zorder_cover_3d() {
        let p = SpacePartition::new(PartitionStrategy::ZOrder, &[300, 300, 300], 7, 3);
        check_cover(&p);
    }

    /// The ablation's claim: Hilbert duplication ≤ Z-order duplication
    /// (Z-curve segments are less compact).
    #[test]
    fn hilbert_no_worse_than_zorder() {
        let cards = [10_000u64, 10_000, 10_000];
        for k in [8u32, 27, 64] {
            let h = SpacePartition::new(PartitionStrategy::Hilbert, &cards, k, 4);
            let z = SpacePartition::new(PartitionStrategy::ZOrder, &cards, k, 4);
            assert!(
                h.score() <= z.score() * 1.05,
                "k={k}: hilbert {} vs zorder {}",
                h.score(),
                z.score()
            );
        }
    }
}
