//! # mwtj-hilbert
//!
//! d-dimensional Hilbert space-filling curve and the hyper-cube space
//! partitioning built on it — the paper's "perfect partition function"
//! (§5.1, Theorem 2).
//!
//! A chain theta-join over relations `R_1 … R_d` conceptually fills the
//! hyper-cube `R_1 × … × R_d`. The paper partitions this cube into `k_R`
//! contiguous segments of a Hilbert curve; each segment is one reduce
//! task. Because a Hilbert curve of order `b` traverses every dimension
//! "fairly", a segment of length `|H|/k_R` touches the same *proportion*
//! of stripes on every axis, which (Theorem 2) minimizes the partition
//! score — the total number of `(tuple, component)` copies sent over the
//! network — while keeping each reducer's share of the cube equal.
//!
//! Modules:
//! * [`curve`] — index ⇄ coordinates for the d-dimensional curve
//!   (Skilling's transpose algorithm).
//! * [`partition`] — [`partition::SpacePartition`]: curve segments as
//!   reduce components, per-(dimension, stripe) component lists, cell
//!   ownership for reducer-side dedup, and the partition score of Eq. 7.
//! * [`rect`] — 2-D rectangle partitioning (Okcan & Riedewald's
//!   1-Bucket-Theta), used by the pairwise baseline and the ablations.

#![warn(missing_docs)]

pub mod curve;
pub mod partition;
pub mod rect;

pub use curve::HilbertCurve;
pub use partition::{PartitionStrategy, SpacePartition};
pub use rect::RectPartition;
